"""Wide-area scientific collaboration (paper §1's motivating scenario).

A molecular-dynamics simulation in Atlanta streams trajectory frames to a
collaborator at Bar-Ilan over the international Internet link (0.109 MB/s
mean, 46 % jitter — Figure 5).  The same stream is replayed with every
fixed policy and with the adaptive selector; on a link this slow even
modest compression wins, and the adaptive policy must land near the best
fixed choice without being told anything about the data.

Run:  python examples/wide_area_collaboration.py
"""

from repro import AdaptivePipeline, FixedPolicy, MolecularDataGenerator
from repro.netsim import DEFAULT_COSTS, SUN_FIRE, make_link


def replay(policy, blocks):
    link = make_link("international", seed=7)
    pipeline = AdaptivePipeline(policy=policy, cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
    return pipeline.run(blocks, link, pipelined=True)


def main() -> None:
    generator = MolecularDataGenerator(atom_count=4096, seed=11)
    blocks = list(generator.stream(128 * 1024, 24))  # 3 MB of trajectory
    total_mb = sum(len(b) for b in blocks) / (1 << 20)
    print(f"Streaming {total_mb:.1f} MB of MD trajectory Atlanta -> Ramat-Gan\n")

    print(f"{'policy':24s} {'total s':>9s} {'wire MB':>9s} {'ratio':>7s}")
    results = {}
    for label, policy in [
        ("fixed: none", FixedPolicy("none")),
        ("fixed: huffman", FixedPolicy("huffman")),
        ("fixed: lempel-ziv", FixedPolicy("lempel-ziv")),
        ("fixed: burrows-wheeler", FixedPolicy("burrows-wheeler")),
        ("adaptive (paper §2.5)", None),
    ]:
        result = replay(policy, blocks)
        results[label] = result
        print(
            f"{label:24s} {result.total_time:9.1f} "
            f"{result.total_compressed_bytes / (1 << 20):9.2f} "
            f"{result.overall_ratio:7.2f}"
        )

    adaptive = results["adaptive (paper §2.5)"]
    best_fixed = min(
        (r.total_time, label) for label, r in results.items() if label != "adaptive (paper §2.5)"
    )
    print(f"\nadaptive methods chosen: {adaptive.method_counts()}")
    print(
        f"adaptive total {adaptive.total_time:.1f}s vs best fixed "
        f"({best_fixed[1]}) {best_fixed[0]:.1f}s — no manual tuning required."
    )


if __name__ == "__main__":
    main()
