"""One producer, two consumers on very different links (paper §3.2).

Event channel subscription is anonymous: "event producers cannot take the
responsibility of customizing event delivery for all or some subset of
their consumers."  So each consumer derives its *own* compression channel
and adapts independently — a LAN analyst gets raw events over the 1 GBit
intranet while an international collaborator on the loaded transatlantic
link pulls compressed ones, from the same untouched producer.

Run:  python examples/heterogeneous_consumers.py
"""

from repro.core import LzSampler
from repro.data import CommercialDataGenerator
from repro.middleware import (
    AdaptiveSubscriber,
    EchoSystem,
    SamplingPublisher,
    TransportBridge,
)
from repro.netsim import (
    DEFAULT_COSTS,
    PAPER_LINKS,
    SUN_FIRE,
    SimulatedLink,
    VirtualClock,
    mbone_trace,
)


def main() -> None:
    clock = VirtualClock()
    system = EchoSystem()
    source = system.create_channel("ois/transactions")
    publisher = SamplingPublisher(
        source, sampler=LzSampler(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE), clock=clock
    )

    lan_bridge = TransportBridge(
        SimulatedLink(PAPER_LINKS["1gbit"], seed=1), clock, advance_clock=False
    )
    intl_bridge = TransportBridge(
        SimulatedLink(PAPER_LINKS["international"], seed=2),
        clock,
        load=mbone_trace(seed=9).scaled(2.0),
        advance_clock=False,
    )
    lan = AdaptiveSubscriber(
        system, source, lan_bridge,
        cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, consumer_id="lan-analyst",
    )
    intl = AdaptiveSubscriber(
        system, source, intl_bridge,
        cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, consumer_id="intl-collaborator",
    )

    feed = CommercialDataGenerator(seed=5)
    for index, block in enumerate(feed.stream(64 * 1024, 60)):
        target = index * 1.0
        if clock.now() < target:
            clock.advance(target - clock.now())
        publisher.publish(block)

    def describe(label, subscriber, bridge):
        counts = {}
        for record in subscriber.records:
            counts[record.method] = counts.get(record.method, 0) + 1
        raw = sum(r.original_size for r in subscriber.records)
        print(f"{label}:")
        print(f"  method now   : {subscriber.current_method}")
        print(f"  deliveries   : {counts}")
        print(f"  wire traffic : {bridge.stats.wire_bytes / (1 << 20):.2f} MB "
              f"for {raw / (1 << 20):.2f} MB of data")
        print(f"  switches     : {subscriber.switches}")

    describe("LAN analyst (1 GBit intranet)", lan, lan_bridge)
    print()
    describe("International collaborator (US-IL link, loaded)", intl, intl_bridge)
    print()
    print("announced attributes:",
          {k: v for k, v in system.attributes.snapshot().items()
           if k.startswith("compression.method")})
    print(f"producer-side derived channels: "
          f"{[c.channel_id for c in source.derived_channels]}")


if __name__ == "__main__":
    main()
