"""Regenerate Figures 7-10 as ASCII charts.

Replays the commercial-data stream across the MBone-loaded 100 Mbit link
(the paper's §4.2 scenario) and renders the load trace, the method chosen
per block, and the compressed block sizes over time.

Run:  python examples/mbone_replay.py
"""

from repro.experiments import (
    FIG8_CONFIG,
    ReplayConfig,
    build_trace,
    commercial_blocks,
    figure7_trace_series,
    run_replay,
)

_METHOD_NAMES = {1: "none", 2: "lempel-ziv", 3: "burrows-wheeler", 4: "huffman"}


def chart(series, width=60, label="{:5.0f}"):
    top = max(value for _, value in series) or 1
    for t, value in series:
        bar = "#" * int(width * value / top)
        print(f"{t:7.1f}s {label.format(value)} {bar}")


def main() -> None:
    config = ReplayConfig(block_count=96, production_interval=1.6)

    print("=== Figure 7: MBone connections over time (raw trace) ===")
    chart(figure7_trace_series(step=5.0))

    result = run_replay(commercial_blocks(config), config)

    print("\n=== Figure 8: method of compression over time ===")
    print("    (1=none  2=Lempel-Ziv  3=Burrows-Wheeler  4=Huffman)")
    previous = None
    for t, code in result.method_series():
        if code != previous:
            print(f"{t:7.1f}s -> {code} ({_METHOD_NAMES[code]})")
            previous = code

    print("\n=== Figure 9: compression time per block (µs) ===")
    chart(result.compression_time_series()[::4], label="{:9.0f}")

    print("\n=== Figure 10: compressed block size (bytes) ===")
    chart(result.block_size_series()[::4], label="{:7.0f}")

    print("\nsummary:", result.summary())


if __name__ == "__main__":
    main()
