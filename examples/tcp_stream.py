"""The middleware over real sockets (no simulation anywhere).

A producer process-half serves an event channel over loopback TCP; a
consumer half connects, receives compressed events, and reconstructs the
stream.  This is the deployment configuration of the §3 architecture —
the same channels, handlers, and wire format as the simulated replays,
pointed at a real network.

Run:  python examples/tcp_stream.py
"""

from repro.data import CommercialDataGenerator
from repro.middleware import (
    ChannelServer,
    CompressionHandler,
    DecompressionHandler,
    Event,
    EventChannel,
    RemoteChannel,
)


def main() -> None:
    # --- producer side --------------------------------------------------------
    source = EventChannel("ois/transactions")
    compressed = source.derive(
        CompressionHandler("burrows-wheeler"), "ois/transactions/bw"
    )
    server = ChannelServer()
    server.offer(compressed)
    host, port = server.address
    print(f"serving channel 'ois/transactions/bw' on {host}:{port}")

    # --- consumer side ----------------------------------------------------------
    remote = RemoteChannel(host, port, "ois/transactions/bw")
    decompress = DecompressionHandler()
    restored = []
    remote.mirror.subscribe(lambda e: restored.append(decompress(e).payload))

    # --- stream ------------------------------------------------------------------
    blocks = list(CommercialDataGenerator(seed=13).stream(32 * 1024, 12))
    for block in blocks:
        source.submit(Event(payload=block))
    assert remote.wait_for(len(blocks)), "consumer did not receive every event"

    raw = sum(len(b) for b in blocks)
    print(f"sent {len(blocks)} blocks, {raw / 1024:.0f} KB of application data")
    print(f"wire traffic: {remote.wire_bytes / 1024:.0f} KB "
          f"({100 * remote.wire_bytes / raw:.0f}%) over real TCP")
    print(f"stream intact: {restored == blocks}")

    remote.close()
    server.close()


if __name__ == "__main__":
    main()
