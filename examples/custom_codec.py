"""Deploying a new compression method at runtime (paper §3.2 / §5).

"As improved compression algorithms are developed ... this middleware
capability allows applications to take advantage of such methods without
any associated re-engineering costs."  This example registers a custom
codec (a delta-filtered Huffman coder tuned for the molecular velocity
field), derives an event channel carrying it while the system is live,
and shows consumers switching onto it — no producer changes anywhere.

Run:  python examples/custom_codec.py
"""

import numpy as np

from repro.compression import Codec, get_codec, register_codec, unregister_codec
from repro.data import MolecularDataGenerator
from repro.middleware import (
    CompressionHandler,
    DecompressionHandler,
    EchoSystem,
    Event,
)


class ShuffleLzCodec(Codec):
    """Byte-plane shuffle + Lempel-Ziv — a domain-specific method for
    packed float32 arrays (quantized velocities), exactly the kind of
    application-specific codec §5 anticipates end users deploying.

    Grouping byte 0 of every float together (then byte 1, ...) turns the
    shared exponent/high-mantissa bytes into long runs the dictionary
    coder exploits — the classic HDF5 "shuffle" filter.
    """

    name = "shuffle-lz"
    family = "domain-specific"
    _WIDTH = 4  # float32 lanes

    def compress(self, data: bytes) -> bytes:
        tail_length = len(data) % self._WIDTH
        body = np.frombuffer(data[: len(data) - tail_length], dtype=np.uint8)
        planes = body.reshape(-1, self._WIDTH).T.copy().tobytes()
        tail = data[len(data) - tail_length :]
        return bytes([tail_length]) + get_codec("lempel-ziv").compress(planes) + tail

    def decompress(self, payload: bytes) -> bytes:
        tail_length = payload[0]
        compressed = payload[1 : len(payload) - tail_length or None]
        tail = payload[len(payload) - tail_length :] if tail_length else b""
        planes = np.frombuffer(
            get_codec("lempel-ziv").decompress(compressed), dtype=np.uint8
        )
        body = planes.reshape(self._WIDTH, -1).T.copy().tobytes()
        return body + tail


def main() -> None:
    velocities = MolecularDataGenerator(atom_count=16384, seed=4).velocities_block()

    print("Velocity field, stock methods:")
    for method in ("huffman", "lempel-ziv", "burrows-wheeler"):
        ratio = get_codec(method).ratio(velocities)
        print(f"  {method:16s} {100 * ratio:5.1f}%")

    # --- deploy the new method into the live registry -----------------------
    register_codec("shuffle-lz", ShuffleLzCodec)
    custom = get_codec("shuffle-lz")
    assert custom.decompress(custom.compress(velocities)) == velocities
    print(f"  {'shuffle-lz':16s} {100 * custom.ratio(velocities):5.1f}%   (deployed at runtime)")

    # --- derive a channel carrying it, middleware-side ----------------------
    system = EchoSystem()
    source = system.create_channel("md/velocities")
    derived = source.derive(CompressionHandler("shuffle-lz"), "md/velocities/shuffle")

    received = []
    decompress = DecompressionHandler()
    derived.subscribe(lambda event: received.append(decompress(event)))

    source.submit(Event(payload=velocities))
    assert received[0].payload == velocities
    print(f"\nderived channel {derived.channel_id!r} delivered "
          f"{len(received)} event(s), payload intact after decompression")
    print("producer code was never touched — the consumer derived the channel.")

    unregister_codec("shuffle-lz")


if __name__ == "__main__":
    main()
