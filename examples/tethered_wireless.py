"""The embedded 'tethered proxy' scenario (paper §1).

"We expect configurable compression to compete well in embedded systems,
as well, where they are best deployed on 'tethered' machines before data
is transmitted to mobile machines linked via wireless connections."

A powered proxy sits between the OIS feed and a handheld on a lossy
802.11b link.  Transfers run over the rate-controlled reliable transport
(the IQ-RUDP model, ref [14]): the proxy compares shipping each block raw
vs. compressing on the tether first, under increasing packet loss.

Run:  python examples/tethered_wireless.py
"""

from repro.compression import get_codec
from repro.data import CommercialDataGenerator
from repro.netsim import PacketLink, RateControlledTransport, make_link


def ship(blocks, loss_rate, method):
    codec = get_codec(method)
    transport = RateControlledTransport(
        PacketLink(make_link("wireless-11mbit", seed=3), loss_rate=loss_rate, seed=3),
        initial_rate=4e5,
    )
    total_time = 0.0
    wire_bytes = 0
    retransmissions = 0
    for block in blocks:
        payload = codec.compress(block)
        report = transport.transfer(len(payload))
        total_time += report.elapsed
        wire_bytes += len(payload)
        retransmissions += report.retransmissions
    return total_time, wire_bytes, retransmissions


def main() -> None:
    blocks = list(CommercialDataGenerator(seed=77).stream(64 * 1024, 16))  # 1 MB
    total_mb = sum(len(b) for b in blocks) / (1 << 20)
    print(f"Shipping {total_mb:.1f} MB from tethered proxy to handheld (802.11b)\n")
    print(f"{'loss':>6s} {'method':18s} {'time s':>8s} {'wire KB':>9s} {'retx':>6s}")
    for loss in (0.0, 0.02, 0.10):
        for method in ("none", "lempel-ziv", "burrows-wheeler"):
            seconds, wire, retx = ship(blocks, loss, method)
            print(
                f"{100 * loss:5.0f}% {method:18s} {seconds:8.1f} "
                f"{wire / 1024:9.0f} {retx:6d}"
            )
        print()
    print("On the slow lossy hop, tether-side compression wins at every loss")
    print("level — and the stronger the loss, the more each saved byte pays.")


if __name__ == "__main__":
    main()
