"""Quickstart: codecs, the selector, and an adaptive run in ~60 lines.

Run:  python examples/quickstart.py
"""

from repro import (
    AdaptivePipeline,
    CommercialDataGenerator,
    get_codec,
    select_method,
    DecisionInputs,
)
from repro.netsim import DEFAULT_COSTS, SUN_FIRE, make_link, mbone_trace


def main() -> None:
    # --- 1. The compression methods (paper §2), all from scratch -------------
    data = CommercialDataGenerator().xml_block(128 * 1024)
    print("Compression of a 128 KB commercial-transaction block:")
    for method in ("huffman", "arithmetic", "lempel-ziv", "burrows-wheeler"):
        codec = get_codec(method)
        payload = codec.compress(data)
        assert codec.decompress(payload) == data
        print(f"  {method:16s} -> {100 * len(payload) / len(data):5.1f}% of original")

    # --- 2. One decision of the §2.5 selection algorithm ---------------------
    decision = select_method(
        DecisionInputs(
            block_size=128 * 1024,
            sending_time=0.4,        # slow, loaded link
            lz_reducing_speed=1.4e6,  # measured bytes-removed/second
            sampled_ratio=0.35,       # the 4 KB probe compressed well
        )
    )
    print(f"\nSelector for a loaded link + compressible sample: {decision.method}")

    # --- 3. A full adaptive run over a loaded 100 Mbit link ------------------
    blocks = list(CommercialDataGenerator().stream(128 * 1024, 40))
    pipeline = AdaptivePipeline(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
    result = pipeline.run(
        blocks,
        make_link("100mbit", seed=1),
        load=mbone_trace().scaled(4.0),
        production_interval=1.5,
    )
    print("\nAdaptive stream over the MBone-loaded 100 Mbit link:")
    for key, value in result.summary().items():
        print(f"  {key:26s} {value:10.3f}")
    print(f"  methods used: {result.method_counts()}")


if __name__ == "__main__":
    main()
