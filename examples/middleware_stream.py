"""The full §3 middleware integration, end to end.

An operational-information-system feed publishes transaction blocks into
an ECho-like event channel.  The consumer on the far side of a loaded
100 Mbit link runs the adaptive controller: it measures every delivery,
re-runs the §2.5 decision algorithm, derives compression channels at
runtime, and re-subscribes as conditions change — announcing each switch
through the shared quality attributes.  The producer never learns who is
listening or which method is in force.

Run:  python examples/middleware_stream.py
"""

from repro.core import LzSampler
from repro.data import CommercialDataGenerator
from repro.middleware import (
    ATTR_COMPRESSION_METHOD,
    AdaptiveSubscriber,
    EchoSystem,
    SamplingPublisher,
    TransportBridge,
)
from repro.netsim import (
    DEFAULT_COSTS,
    PAPER_LINKS,
    SUN_FIRE,
    SimulatedLink,
    VirtualClock,
    mbone_trace,
)


def main() -> None:
    clock = VirtualClock()
    trace = mbone_trace(seed=7).scaled(4.0)
    link = SimulatedLink(PAPER_LINKS["100mbit"], seed=5, congestion_per_connection=0.4)

    system = EchoSystem()
    source = system.create_channel("ois/transactions")
    bridge = TransportBridge(link, clock, load=trace)
    publisher = SamplingPublisher(
        source, sampler=LzSampler(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE), clock=clock
    )
    subscriber = AdaptiveSubscriber(
        system, source, bridge, cost_model=DEFAULT_COSTS, cpu=SUN_FIRE
    )

    # Log every method switch announced through the quality attributes.
    switches = []
    system.attributes.subscribe(
        lambda name, value: switches.append((clock.now(), value))
        if name == ATTR_COMPRESSION_METHOD
        else None
    )

    feed = CommercialDataGenerator(seed=2004)
    print("Replaying 100 transaction blocks across the 160 s MBone trace...\n")
    for index, block in enumerate(feed.stream(128 * 1024, 100)):
        target = index * 1.6
        if clock.now() < target:
            clock.advance(target - clock.now())
        publisher.publish(block)

    print(f"{'time':>8s}  announced compression method")
    for t, method in switches:
        print(f"{t:7.1f}s  {method}")

    counts = {}
    for record in subscriber.records:
        counts[record.method] = counts.get(record.method, 0) + 1
    wire_mb = bridge.stats.wire_bytes / (1 << 20)
    raw_mb = sum(r.original_size for r in subscriber.records) / (1 << 20)
    print(f"\ndelivered {len(subscriber.records)} events, {subscriber.switches} switches")
    print(f"per-method deliveries: {counts}")
    print(f"wire traffic {wire_mb:.1f} MB for {raw_mb:.1f} MB of application data "
          f"({100 * wire_mb / raw_mb:.0f}%)")
    print(f"active derived channels at exit: "
          f"{[c.channel_id for c in source.derived_channels]}")


if __name__ == "__main__":
    main()
