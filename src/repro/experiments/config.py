"""Shared experiment configuration.

One place for every parameter the figure harnesses share, so benchmarks,
examples, and tests replay identical scenarios.  Values are the paper's
where the paper states them (block 128 KB, sample 4 KB, MBone x4,
160 s trace) and calibrated where it does not (congestion factor,
dataset block counts — see DESIGN.md §3 for the back-solving).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ReplayConfig", "FIG8_CONFIG", "FIG11_CONFIG", "HEADLINE_CONFIG"]

#: Paper §2.5: "Take a block of 128KB."
BLOCK_SIZE = 128 * 1024
#: Paper §2.5: "compress the first 4KB of the next block".
SAMPLE_SIZE = 4096
#: Paper §4.2: "the raw MBone numbers multiplied by a factor of 4".
MBONE_SCALE = 4.0
#: Paper Figure 7: the trace spans 160 seconds.
TRACE_DURATION = 160.0


@dataclass(frozen=True)
class ReplayConfig:
    """Parameters of one end-to-end replay."""

    link: str = "100mbit"
    block_size: int = BLOCK_SIZE
    block_count: int = 128
    #: Selection dialect: "table" (the paper-faithful §2.5 threshold
    #: grid, default — baseline CRCs never move) or "bicriteria" (the
    #: Pareto optimizer of :mod:`repro.core.bicriteria`).
    policy: str = "table"
    #: Bicriteria only: modeled compressed/original ratio cap.
    space_budget: float = 1.0
    #: Where compression runs (:mod:`repro.core.placement`):
    #: "producer" (default — the paper's arrangement, decisions and
    #: baseline CRCs untouched), "raw", "consumer" (needs a relay
    #: topology), or "auto" (per-block break-even scheduling).
    placement: str = "producer"
    #: Producer-side I/O-interference fraction for placement pricing.
    interference: float = 0.0
    #: Relay topology for "consumer"/"auto" placement: the downstream
    #: hop modeled as this multiple of the replay link's sending time
    #: (None = no relay, so "consumer" is unpriceable and "auto" never
    #: chooses it).
    downstream_factor: Optional[float] = None
    #: Seconds between successive blocks becoming available (0 = bulk).
    production_interval: float = 1.25
    #: Per-connection bandwidth erosion (calibrated, see DESIGN.md §3).
    congestion_per_connection: float = 0.4
    #: Seconds of quiet MBone prologue to skip (bulk runs face load at once).
    trace_offset: float = 0.0
    link_seed: int = 2
    trace_seed: int = 7
    pipelined: bool = False
    #: Codec pool workers (1 = in-process).  Modeled costs make replay
    #: output identical at any worker count, so this only buys wall clock.
    workers: int = 1
    pool_mode: str = "processes"
    #: Fault injection: a :class:`~repro.netsim.faults.FaultPlan`, or a
    #: path to its JSON form, or None (default — the clean wire every
    #: figure replay uses; faults are strictly opt-in so baseline CRCs
    #: never move).  When set, the replay link is wrapped in a
    #: :class:`~repro.netsim.faults.FaultyLink` and recovery costs land
    #: in the simulated transfer times.
    fault_plan: Optional[object] = None


#: Figures 8, 9, 10: commercial data paced across the whole 160 s trace.
FIG8_CONFIG = ReplayConfig()

#: Figures 11, 12: molecular data, same trace and pacing.
FIG11_CONFIG = ReplayConfig()

#: Headline bulk transfer (paper §5: 10.71 s vs 29.14 s commercial;
#: ~29 s vs 30.5 s molecular).  ~15.75 MB, busy trace region, asynchronous
#: (pipelined) transport.
HEADLINE_CONFIG = ReplayConfig(
    block_count=126,
    production_interval=0.0,
    trace_offset=20.0,
    pipelined=True,
)
