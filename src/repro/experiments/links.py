"""Figure 5 harness: transfer speeds of the four link classes.

Replays 128 KB block transfers on each simulated link and reports the
measured mean throughput and relative standard deviation, next to the
paper's values (which the link specs were built from — this experiment
verifies the substrate reproduces its calibration, including the
46 % jitter of the international link).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..netsim.link import MEGABYTE, PAPER_LINKS, SimulatedLink
from .config import BLOCK_SIZE

__all__ = ["LinkMeasurement", "figure5_link_speeds", "PAPER_FIG5"]

#: The paper's Figure 5 numbers: (MB/s, stddev %).
PAPER_FIG5 = {
    "1gbit": (26.32094622, 0.782),
    "100mbit": (7.520270348, 8.95),
    "1mbit": (0.146907607, 1.17),
    "international": (0.10891426, 46.02),
}


@dataclass(frozen=True)
class LinkMeasurement:
    """Measured operating point of one link."""

    link: str
    mean_mb_per_s: float
    stddev_percent: float
    transfers: int


def figure5_link_speeds(
    transfers: int = 400, block_size: int = BLOCK_SIZE, seed: int = 11
) -> Dict[str, LinkMeasurement]:
    """Measure every paper link with repeated block transfers."""
    results: Dict[str, LinkMeasurement] = {}
    for name, spec in PAPER_LINKS.items():
        link = SimulatedLink(spec, seed=seed)
        speeds: List[float] = []
        for _ in range(transfers):
            seconds = link.transfer_time(block_size)
            speeds.append(block_size / seconds / MEGABYTE)
        mean = float(np.mean(speeds))
        stddev = float(np.std(speeds))
        results[name] = LinkMeasurement(
            link=name,
            mean_mb_per_s=mean,
            stddev_percent=100.0 * stddev / mean if mean else 0.0,
            transfers=transfers,
        )
    return results
