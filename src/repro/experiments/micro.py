"""Microbenchmark harnesses: Figures 1, 2, 3, 4 and 6.

Every function really compresses data with the from-scratch codecs and
returns the paper's series; formatting helpers print the rows a reader
would compare against the figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.decision import FIGURE1_TABLE
from ..core.engine import CodecExecutor
from ..data.commercial import CommercialDataGenerator
from ..data.molecular import MolecularDataGenerator
from ..netsim.cpu import SUN_FIRE, ULTRA_SPARC, CpuModel

__all__ = [
    "METHOD_ORDER",
    "MicroResult",
    "commercial_sample",
    "figure1_rows",
    "figure2_ratios",
    "figure3_times",
    "figure4_reducing_speeds",
    "figure6_molecular_ratios",
    "format_table",
]

#: Presentation order used on the figures' x-axes.
METHOD_ORDER = ["burrows-wheeler", "lempel-ziv", "arithmetic", "huffman"]

#: Paper values for quick side-by-side printing.
PAPER_FIG2_PERCENT = {
    "burrows-wheeler": 34.0,
    "lempel-ziv": 41.0,
    "arithmetic": 46.0,
    "huffman": 47.0,
}


@dataclass(frozen=True)
class MicroResult:
    """One (method, dataset) measurement."""

    method: str
    ratio: float
    compress_seconds: float
    decompress_seconds: float

    @property
    def percent(self) -> float:
        return self.ratio * 100.0


def commercial_sample(size: int = 512 * 1024, seed: int = 2004) -> bytes:
    """The commercial dataset slice used by the microbenchmarks."""
    return CommercialDataGenerator(seed=seed).xml_block(size)


#: Shared measured-mode executor: the microbenchmarks time real codec
#: runs on the host (no cost model, no CPU scaling).
_EXECUTOR = CodecExecutor()


def _measure_method(method: str, data: bytes) -> MicroResult:
    execution, decompress_seconds = _EXECUTOR.measure_roundtrip(method, data)
    return MicroResult(
        method=method,
        ratio=execution.ratio,
        compress_seconds=execution.seconds,
        decompress_seconds=decompress_seconds,
    )


def figure1_rows() -> List[Tuple[str, Dict[str, str]]]:
    """The qualitative decision table, rendered as printable rows."""
    return [
        (characteristic, {m: str(r) for m, r in by_method.items()})
        for characteristic, by_method in FIGURE1_TABLE.items()
    ]


def figure2_ratios(data: Optional[bytes] = None) -> Dict[str, MicroResult]:
    """Compression percentages on commercial data (Figure 2)."""
    payload = data if data is not None else commercial_sample()
    return {method: _measure_method(method, payload) for method in METHOD_ORDER}


def figure3_times(data: Optional[bytes] = None) -> Dict[str, MicroResult]:
    """Compression/decompression times on commercial data (Figure 3).

    Identical measurement to Figure 2 — the paper presents the same runs'
    times; callers typically reuse :func:`figure2_ratios`' results, this
    exists for symmetry and independent invocation.
    """
    return figure2_ratios(data)


def figure4_reducing_speeds(
    data: Optional[bytes] = None,
    machines: Optional[List[CpuModel]] = None,
) -> Dict[str, Dict[str, float]]:
    """Reducing speed (bytes removed / second) per method per machine.

    The host measurement provides the reference machine's speeds; other
    machines are derived through their :class:`CpuModel` factors — the
    substitution for the paper's two physical Suns (DESIGN.md §3).
    Returns ``{machine_name: {method: bytes_per_second}}``.
    """
    payload = data if data is not None else commercial_sample()
    cpus = machines if machines is not None else [SUN_FIRE, ULTRA_SPARC]
    reference: Dict[str, float] = {}
    for method in METHOD_ORDER:
        reference[method] = _EXECUTOR.compress(method, payload).reducing_speed
    return {
        cpu.name: {m: cpu.scale_speed(s) for m, s in reference.items()} for cpu in cpus
    }


def figure6_molecular_ratios(
    atom_count: int = 8192, seed: int = 42
) -> Dict[str, Dict[str, MicroResult]]:
    """Per-field compression on molecular data (Figure 6).

    Returns ``{field: {method: MicroResult}}`` for the three fields the
    paper separates: atom types, velocities, coordinates.
    """
    generator = MolecularDataGenerator(atom_count=atom_count, seed=seed)
    fields = {
        "type": generator.types_block(),
        "velocity": generator.velocities_block(),
        "coordinates": generator.coordinates_block(),
    }
    return {
        field: {method: _measure_method(method, blob) for method in METHOD_ORDER}
        for field, blob in fields.items()
    }


def format_table(rows: List[Tuple[str, List[str]]], header: List[str]) -> str:
    """Render aligned rows for terminal output."""
    widths = [len(h) for h in header]
    rendered = [[label] + values for label, values in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
