"""Placement time-breakdown experiment — the DTSchedule-style figure.

DTSchedule's evaluation (SNIPPETS.md) presents compression *placement*
as stacked per-phase time bars: for each strategy the end-to-end time
splits into producer-side compression, wire transfer, relay-side
compression, and subscriber-side decompression — with the producer
compression bar conspicuously *empty* for the offloaded strategies.
:func:`placement_breakdown` reproduces that figure for this codebase:
the same commercial block stream is scheduled through the
producer → 1 Gbit upstream → relay → downstream topology of
:mod:`repro.core.placement` across the paper's four link classes, once
per placement mode (``producer``, ``raw``, ``consumer``, and the
break-even ``auto``).

Everything is deterministic: codec times are modeled
(``DEFAULT_COSTS`` on ``SUN_FIRE``), wire times use each link's *mean*
transfer time over the block's **real** compressed size (the codecs
really run, so wire bytes — and the CRC chains the byte-exactness gate
compares — are real), and the end-to-end makespan comes from
:func:`~repro.core.workers.simulate_relay_pipeline`.  Identical output
on every machine is what lets ``BENCH_baseline.json`` pin the numbers.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.bicriteria import default_candidates, evaluate_candidates
from ..core.engine import CodecExecutor
from ..core.placement import PLACEMENTS, PlacementCost, choose_placement
from ..core.sampler import LzSampler
from ..core.workers import DEFAULT_QUEUE_DEPTH, RelaySchedule, simulate_relay_pipeline
from ..data.commercial import CommercialDataGenerator
from ..netsim.cpu import DEFAULT_COSTS, SUN_FIRE
from ..netsim.link import EXTRA_LINKS, PAPER_LINKS, SimulatedLink

__all__ = [
    "LINK_CLASSES",
    "UPSTREAM_LINK",
    "DEFAULT_INTERFERENCE",
    "PLACEMENT_MODES_ORDER",
    "PlacementBreakdown",
    "placement_breakdown",
]

#: The paper's four link classes, fastest first — the figure's x-axis.
LINK_CLASSES = ("1gbit", "100mbit", "1mbit", "international")

#: The producer → relay hop: a fast intranet link (the placement
#: question only exists because this hop outruns the downstream one).
UPSTREAM_LINK = "1gbit"

#: Producer-side I/O-interference fraction (DTSchedule measures ~15 %:
#: compression at the producer competes with its real work; the relay
#: compresses unloaded).
DEFAULT_INTERFERENCE = 0.15

#: Row order of the figure: the three forced arrangements, then auto.
PLACEMENT_MODES_ORDER = PLACEMENTS + ("auto",)


@dataclass(frozen=True)
class PlacementBreakdown:
    """One (link class, placement mode) cell of the breakdown figure."""

    link: str
    mode: str
    blocks: int
    #: The four stacked bars (plus the wire split), in seconds.
    compress_seconds: float
    upstream_seconds: float
    relay_seconds: float
    downstream_seconds: float
    decompress_seconds: float
    #: End-to-end makespan of the pipelined 5-stage schedule.
    makespan: float
    #: Unpipelined phase sum (the stacked bar's total height).
    serial_seconds: float
    #: Arrangements actually taken per block (``auto`` mixes them).
    placements: Dict[str, int]
    #: CRC-32 chain over the downstream wire payloads, in block order —
    #: the byte-exactness fingerprint the relay must reproduce.
    downstream_crc32: int

    @property
    def wire_seconds(self) -> float:
        return self.upstream_seconds + self.downstream_seconds

    @property
    def total_seconds(self) -> float:
        """The figure's headline number per bar (pipelined end-to-end)."""
        return self.makespan


def _phase_costs(
    comp_seconds: float,
    dec_seconds: float,
    method: str,
    params: Tuple[Tuple[str, object], ...],
    ratio: float,
    up_raw: float,
    up_compressed: float,
    down_raw: float,
    down_compressed: float,
    interference: float,
) -> Dict[str, PlacementCost]:
    """Per-block placement costs from real-size wire times.

    Same shape as :func:`repro.core.placement.evaluate_placements`, but
    the wire legs are priced from the block's *actual* compressed size
    rather than the modeled ratio — the experiment has really run the
    codec, so it uses the real bytes it is about to account.
    """
    return {
        "producer": PlacementCost(
            placement="producer",
            method=method,
            params=params,
            compress_seconds=comp_seconds * (1.0 + interference),
            wire_seconds=up_compressed + down_compressed,
            relay_seconds=0.0,
            decompress_seconds=dec_seconds,
            ratio=ratio,
        ),
        "raw": PlacementCost(
            placement="raw",
            method="none",
            params=(),
            compress_seconds=0.0,
            wire_seconds=up_raw + down_raw,
            relay_seconds=0.0,
            decompress_seconds=0.0,
            ratio=1.0,
        ),
        "consumer": PlacementCost(
            placement="consumer",
            method=method,
            params=params,
            compress_seconds=0.0,
            wire_seconds=up_raw + down_compressed,
            relay_seconds=comp_seconds,
            decompress_seconds=dec_seconds,
            ratio=ratio,
        ),
    }


def _split_wire(cost: PlacementCost, up: float) -> Tuple[float, float]:
    """Split a cost's wire bar back into its (upstream, downstream) legs."""
    return up, cost.wire_seconds - up


def placement_breakdown(
    total_blocks: int = 16,
    block_size: int = 128 * 1024,
    links: Optional[Sequence[str]] = None,
    interference: float = DEFAULT_INTERFERENCE,
    workers: int = 1,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    seed: int = 2004,
) -> List[PlacementBreakdown]:
    """Run the placement × link-class matrix; one cell per combination.

    Per block the compressing codec is chosen from the bicriteria
    candidate set priced against the *downstream* link (the bottleneck),
    refined by the 4 KB sampling probe — the same cross-pricing the
    placement-aware policy uses.  The chosen codec then really runs
    (once; producer- and consumer-placed bytes are identical by
    construction, which is the invariant the relay CRC chain audits).
    """
    if total_blocks < 1:
        raise ValueError("total_blocks must be positive")
    if interference < 0:
        raise ValueError("interference must be non-negative")
    link_names = tuple(links) if links is not None else LINK_CLASSES
    blocks = list(CommercialDataGenerator(seed=seed).stream(block_size, total_blocks))
    up_spec = PAPER_LINKS.get(UPSTREAM_LINK) or EXTRA_LINKS[UPSTREAM_LINK]
    up_link = SimulatedLink(up_spec, seed=5)
    executor = CodecExecutor(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
    sampler = LzSampler(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
    candidates = default_candidates(block_size, native=False)

    cells: List[PlacementBreakdown] = []
    for link_name in link_names:
        spec = PAPER_LINKS.get(link_name) or EXTRA_LINKS[link_name]
        down_link = SimulatedLink(spec, seed=5)
        per_block: List[Dict[str, PlacementCost]] = []
        payloads: List[bytes] = []
        for block in blocks:
            sample = sampler.sample(block)
            down_raw = down_link.mean_transfer_time(len(block))
            points = evaluate_candidates(
                candidates,
                down_raw,
                calibration=DEFAULT_COSTS,
                cpu=SUN_FIRE,
                sample=sample,
                base_block_size=len(block),
            )
            compressing = [p for p in points.values() if p.method != "none"]
            point = min(compressing, key=lambda p: (p.total_seconds, p.space))
            execution = executor.compress(point.method, block)
            payloads.append(execution.payload)
            comp_seconds = execution.seconds
            dec_seconds = DEFAULT_COSTS.decompression_time(
                execution.method, len(block), SUN_FIRE
            ) if execution.method != "none" else 0.0
            per_block.append(
                _phase_costs(
                    comp_seconds=comp_seconds,
                    dec_seconds=dec_seconds,
                    method=execution.method,
                    params=point.params,
                    ratio=len(execution.payload) / max(len(block), 1),
                    up_raw=up_link.mean_transfer_time(len(block)),
                    up_compressed=up_link.mean_transfer_time(len(execution.payload)),
                    down_raw=down_raw,
                    down_compressed=down_link.mean_transfer_time(
                        len(execution.payload)
                    ),
                    interference=interference,
                )
            )
        for mode in PLACEMENT_MODES_ORDER:
            chosen: List[PlacementCost] = [
                choose_placement(costs) if mode == "auto" else costs[mode]
                for costs in per_block
            ]
            ups = [
                up_link.mean_transfer_time(
                    len(block) if cost.placement != "producer" else len(payload)
                )
                for block, payload, cost in zip(blocks, payloads, chosen)
            ]
            downs = [
                _split_wire(cost, up)[1] for cost, up in zip(chosen, ups)
            ]
            schedule: RelaySchedule = simulate_relay_pipeline(
                [c.compress_seconds for c in chosen],
                ups,
                [c.relay_seconds for c in chosen],
                downs,
                [c.decompress_seconds for c in chosen],
                workers=workers,
                relay_workers=workers,
                queue_depth=queue_depth,
            )
            crc = 0
            counts: Dict[str, int] = {}
            for block, payload, cost in zip(blocks, payloads, chosen):
                counts[cost.placement] = counts.get(cost.placement, 0) + 1
                wire = payload if cost.placement != "raw" else block
                crc = zlib.crc32(wire, crc) & 0xFFFFFFFF
            cells.append(
                PlacementBreakdown(
                    link=link_name,
                    mode=mode,
                    blocks=len(blocks),
                    compress_seconds=schedule.compress_seconds,
                    upstream_seconds=schedule.upstream_seconds,
                    relay_seconds=schedule.relay_seconds,
                    downstream_seconds=schedule.downstream_seconds,
                    decompress_seconds=schedule.decompress_seconds,
                    makespan=schedule.makespan,
                    serial_seconds=schedule.serial_seconds,
                    placements=counts,
                    downstream_crc32=crc,
                )
            )
    return cells
