"""Experiment harnesses that regenerate every figure and headline number
of the paper's evaluation (see the experiment index in DESIGN.md)."""

from .ablation import (
    AblationPoint,
    sweep_block_size,
    sweep_sample_size,
    sweep_thresholds,
)
from .config import (
    BLOCK_SIZE,
    FIG8_CONFIG,
    FIG11_CONFIG,
    HEADLINE_CONFIG,
    MBONE_SCALE,
    SAMPLE_SIZE,
    TRACE_DURATION,
    ReplayConfig,
)
from .endtoend import PAPER_HEADLINE, HeadlineRow, headline_comparison
from .links import PAPER_FIG5, LinkMeasurement, figure5_link_speeds
from .micro import (
    METHOD_ORDER,
    MicroResult,
    commercial_sample,
    figure1_rows,
    figure2_ratios,
    figure3_times,
    figure4_reducing_speeds,
    figure6_molecular_ratios,
    format_table,
)
from .multilink import MultilinkCell, multilink_matrix
from .placement import (
    DEFAULT_INTERFERENCE,
    LINK_CLASSES,
    UPSTREAM_LINK,
    PlacementBreakdown,
    placement_breakdown,
)
from .report import generate_report
from .replay import (
    build_trace,
    commercial_blocks,
    figure7_trace_series,
    figure8_commercial_replay,
    figure11_molecular_replay,
    molecular_blocks,
    run_replay,
)

__all__ = [
    "AblationPoint",
    "BLOCK_SIZE",
    "DEFAULT_INTERFERENCE",
    "FIG11_CONFIG",
    "FIG8_CONFIG",
    "HEADLINE_CONFIG",
    "HeadlineRow",
    "LINK_CLASSES",
    "LinkMeasurement",
    "MBONE_SCALE",
    "METHOD_ORDER",
    "MicroResult",
    "MultilinkCell",
    "PAPER_FIG5",
    "PAPER_HEADLINE",
    "PlacementBreakdown",
    "ReplayConfig",
    "SAMPLE_SIZE",
    "TRACE_DURATION",
    "UPSTREAM_LINK",
    "build_trace",
    "commercial_blocks",
    "commercial_sample",
    "figure11_molecular_replay",
    "figure1_rows",
    "figure2_ratios",
    "figure3_times",
    "figure4_reducing_speeds",
    "figure5_link_speeds",
    "figure6_molecular_ratios",
    "figure7_trace_series",
    "figure8_commercial_replay",
    "format_table",
    "generate_report",
    "headline_comparison",
    "molecular_blocks",
    "multilink_matrix",
    "placement_breakdown",
    "run_replay",
    "sweep_block_size",
    "sweep_sample_size",
    "sweep_thresholds",
]
