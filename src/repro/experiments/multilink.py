"""Multi-link utility matrix — the paper's §1/§4 textual claims.

"We were able to significantly improve the speeds of data exchange for
links from the U.S. to an Israeli university machine, in both low-load
and high-load usage scenarios.  Similarly, for home-based machines, even
when using broadband links like DSL, notable performance advantages are
attained ...  In Intranets, however, the utility of compression is less
evident, especially ... networks offering from 100MB to 1GB connectivity."

:func:`multilink_matrix` transfers the same commercial dataset across
every link class under low and high load, adaptive vs. uncompressed, and
reports the speedup factor per cell — the quantitative version of that
paragraph.  Each cell also carries a placement-aware run
(``AdaptivePolicy(placement="auto")`` over the same blocks): on the fast
intranet links the break-even model ships raw outright instead of asking
the decision table per block, the placement-scheduling reading of "the
utility of compression is less evident" (see
:mod:`repro.core.placement`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.pipeline import AdaptivePipeline
from ..core.policy import AdaptivePolicy, CompressionPolicy, FixedPolicy
from ..data.commercial import CommercialDataGenerator
from ..netsim.cpu import DEFAULT_COSTS, SUN_FIRE
from ..netsim.link import EXTRA_LINKS, PAPER_LINKS, SimulatedLink
from ..netsim.loadtrace import LoadTrace
from .placement import DEFAULT_INTERFERENCE

__all__ = ["MultilinkCell", "multilink_matrix", "DEFAULT_LINK_ORDER"]

DEFAULT_LINK_ORDER = ["1gbit", "100mbit", "dsl", "1mbit", "international"]

#: Constant competing-connection counts for the two usage scenarios.
LOW_LOAD_CONNECTIONS = 0.0
HIGH_LOAD_CONNECTIONS = 40.0


@dataclass(frozen=True)
class MultilinkCell:
    """One (link, load) comparison."""

    link: str
    load_label: str
    adaptive_seconds: float
    uncompressed_seconds: float
    adaptive_methods: Dict[str, int]
    #: Same stream under the placement-aware selector
    #: (``placement="auto"``): end-to-end seconds and the arrangements
    #: it chose per block.
    auto_seconds: float = 0.0
    auto_placements: Dict[str, int] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.adaptive_seconds <= 0:
            return float("inf")
        return self.uncompressed_seconds / self.adaptive_seconds

    @property
    def speedup_auto(self) -> float:
        if self.auto_seconds <= 0:
            return float("inf")
        return self.uncompressed_seconds / self.auto_seconds


def _run(
    blocks: Sequence[bytes],
    link_name: str,
    connections: float,
    policy: Optional[CompressionPolicy],
    pipelined: bool,
) -> Tuple[float, Dict[str, int], Dict[str, int]]:
    spec = PAPER_LINKS.get(link_name) or EXTRA_LINKS[link_name]
    link = SimulatedLink(spec, seed=5, congestion_per_connection=0.4)
    load = LoadTrace.from_pairs([(0.0, connections)]) if connections else None
    pipeline = AdaptivePipeline(policy=policy, cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
    result = pipeline.run(list(blocks), link, load=load, pipelined=pipelined)
    return result.total_time, result.method_counts(), result.placement_counts()


def multilink_matrix(
    total_blocks: int = 24,
    block_size: int = 128 * 1024,
    links: Optional[List[str]] = None,
    pipelined: bool = True,
    seed: int = 2004,
) -> List[MultilinkCell]:
    """Run the low/high-load × link matrix; returns one cell per combination."""
    link_names = links if links is not None else DEFAULT_LINK_ORDER
    blocks = list(CommercialDataGenerator(seed=seed).stream(block_size, total_blocks))
    cells: List[MultilinkCell] = []
    for link_name in link_names:
        for label, connections in (
            ("low-load", LOW_LOAD_CONNECTIONS),
            ("high-load", HIGH_LOAD_CONNECTIONS),
        ):
            adaptive_seconds, methods, _ = _run(
                blocks, link_name, connections, AdaptivePolicy(), pipelined
            )
            plain_seconds, _, _ = _run(
                blocks, link_name, connections, FixedPolicy("none"), pipelined
            )
            auto_seconds, _, auto_placements = _run(
                blocks,
                link_name,
                connections,
                AdaptivePolicy(
                    placement="auto",
                    cost_model=DEFAULT_COSTS,
                    cpu=SUN_FIRE,
                    interference=DEFAULT_INTERFERENCE,
                ),
                pipelined,
            )
            cells.append(
                MultilinkCell(
                    link=link_name,
                    load_label=label,
                    adaptive_seconds=adaptive_seconds,
                    uncompressed_seconds=plain_seconds,
                    adaptive_methods=methods,
                    auto_seconds=auto_seconds,
                    auto_placements=auto_placements,
                )
            )
    return cells
