"""Full reproduction report: every figure regenerated into one document.

:func:`generate_report` runs all the figure harnesses and renders a
markdown document with measured-vs-paper rows — what EXPERIMENTS.md
records statically, regenerated live on the current machine.  Exposed on
the CLI as ``repro report``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.pipeline import StreamResult
from .config import FIG8_CONFIG, ReplayConfig
from .endtoend import PAPER_HEADLINE, headline_comparison
from .links import PAPER_FIG5, figure5_link_speeds
from .micro import (
    METHOD_ORDER,
    PAPER_FIG2_PERCENT,
    figure1_rows,
    figure2_ratios,
    figure4_reducing_speeds,
    figure6_molecular_ratios,
)
from .replay import (
    commercial_blocks,
    figure7_trace_series,
    molecular_blocks,
    run_replay,
)

__all__ = ["generate_report"]

_MB = float(1 << 20)


def _table(header: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(header) + " |"]
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    return lines


def _replay_section(title: str, result: StreamResult) -> List[str]:
    counts = result.method_counts()
    lines = [f"## {title}", ""]
    lines += _table(
        ["metric", "value"],
        [
            ["blocks", str(len(result.records))],
            ["overall ratio", f"{result.overall_ratio:.3f}"],
            ["total time (s)", f"{result.total_time:.2f}"],
            ["compression time fraction", f"{result.compression_time_fraction:.3f}"],
            ["method counts", str(counts)],
        ],
    )
    return lines


def generate_report(
    replay_config: Optional[ReplayConfig] = None,
    headline_config: Optional[ReplayConfig] = None,
    link_transfers: int = 300,
) -> str:
    """Run every harness and return the markdown report."""
    lines: List[str] = [
        "# Reproduction report",
        "",
        "Regenerated live by `repro report`; compare against EXPERIMENTS.md.",
        "",
        "## Figure 1 — decision table",
        "",
    ]
    lines += _table(
        ["characteristic"] + METHOD_ORDER,
        [
            [label] + [cells[m] for m in METHOD_ORDER]
            for label, cells in figure1_rows()
        ],
    )

    lines += ["## Figures 2-3 — commercial ratios and times", ""]
    micro = figure2_ratios()
    lines += _table(
        ["method", "measured %", "paper %", "compress ms", "decompress ms"],
        [
            [
                method,
                f"{result.percent:.1f}",
                f"{PAPER_FIG2_PERCENT[method]:.0f}",
                f"{result.compress_seconds * 1e3:.1f}",
                f"{result.decompress_seconds * 1e3:.1f}",
            ]
            for method, result in micro.items()
        ],
    )

    lines += ["## Figure 4 — reducing speeds (MB removed / s)", ""]
    speeds = figure4_reducing_speeds()
    lines += _table(
        ["machine"] + METHOD_ORDER,
        [
            [machine] + [f"{by_method[m] / _MB:.3f}" for m in METHOD_ORDER]
            for machine, by_method in speeds.items()
        ],
    )

    lines += ["## Figure 5 — link speeds", ""]
    measured_links = figure5_link_speeds(transfers=link_transfers)
    lines += _table(
        ["link", "measured MB/s", "paper MB/s", "measured σ%", "paper σ%"],
        [
            [
                name,
                f"{measurement.mean_mb_per_s:.4f}",
                f"{PAPER_FIG5[name][0]:.4f}",
                f"{measurement.stddev_percent:.2f}",
                f"{PAPER_FIG5[name][1]:.2f}",
            ]
            for name, measurement in measured_links.items()
        ],
    )

    lines += ["## Figure 6 — molecular fields (compressed %)", ""]
    molecular = figure6_molecular_ratios()
    lines += _table(
        ["field"] + METHOD_ORDER,
        [
            [field] + [f"{by_method[m].percent:.1f}" for m in METHOD_ORDER]
            for field, by_method in molecular.items()
        ],
    )

    lines += ["## Figure 7 — MBone trace", ""]
    series = figure7_trace_series(step=10.0)
    lines += _table(
        ["t (s)", "connections"],
        [[f"{t:.0f}", f"{c:.0f}"] for t, c in series],
    )

    config = replay_config if replay_config is not None else FIG8_CONFIG
    lines += _replay_section(
        "Figures 8-10 — commercial replay", run_replay(commercial_blocks(config), config)
    )
    lines += _replay_section(
        "Figures 11-12 — molecular replay", run_replay(molecular_blocks(config), config)
    )

    lines += ["## Headline — bulk transfer (§5)", ""]
    rows = headline_comparison(headline_config, baselines=["none"])
    lines += _table(
        ["dataset", "policy", "total s", "comp fraction", "ratio"],
        [
            [
                row.dataset,
                row.policy,
                f"{row.total_seconds:.2f}",
                f"{row.compression_fraction:.2f}",
                f"{row.overall_ratio:.2f}",
            ]
            for row in rows
        ],
    )
    lines += [
        "Paper reference: commercial "
        f"{PAPER_HEADLINE[('commercial', 'adaptive')]} s adaptive vs "
        f"{PAPER_HEADLINE[('commercial', 'none')]} s uncompressed; molecular "
        f"{PAPER_HEADLINE[('molecular', 'adaptive')]} s vs "
        f"{PAPER_HEADLINE[('molecular', 'none')]} s.",
        "",
    ]
    return "\n".join(lines)
