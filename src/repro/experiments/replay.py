"""End-to-end replays: Figures 7-12.

One shared runner builds the MBone-loaded 100 MBit scenario from a
:class:`~repro.experiments.config.ReplayConfig`, streams a dataset through
the adaptive pipeline in deterministic (modeled-cost) mode, and hands back
the :class:`~repro.core.pipeline.StreamResult` whose series methods *are*
the figures:

* Figure 7  — the load trace itself (:func:`figure7_trace_series`),
* Figure 8  — ``result.method_series()`` on commercial data,
* Figure 9  — ``result.compression_time_series()``,
* Figure 10 — ``result.block_size_series()``,
* Figure 11 — ``result.method_series()`` on molecular data,
* Figure 12 — ``result.block_size_series()`` on molecular data.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..core.engine import Observer
from ..core.pipeline import AdaptivePipeline, StreamResult
from ..core.policy import AdaptivePolicy, CompressionPolicy
from ..data.commercial import CommercialDataGenerator
from ..data.logs import LogDataGenerator
from ..data.molecular import MolecularDataGenerator
from ..data.timeseries import TimeSeriesGenerator
from ..netsim.cpu import DEFAULT_COSTS, SUN_FIRE, CpuModel
from ..netsim.faults import FaultPlan, FaultyLink, RetryPolicy
from ..netsim.link import make_link
from ..netsim.loadtrace import LoadTrace, mbone_trace
from ..obs.metrics import MetricsRegistry
from .config import FIG8_CONFIG, FIG11_CONFIG, MBONE_SCALE, TRACE_DURATION, ReplayConfig

__all__ = [
    "build_trace",
    "commercial_blocks",
    "dataset_blocks",
    "log_blocks",
    "molecular_blocks",
    "timeseries_blocks",
    "make_policy",
    "run_replay",
    "figure7_trace_series",
    "figure8_commercial_replay",
    "figure11_molecular_replay",
]


def build_trace(config: ReplayConfig) -> LoadTrace:
    """The scaled (and possibly shifted) MBone trace for a replay."""
    trace = mbone_trace(duration=TRACE_DURATION, seed=config.trace_seed).scaled(MBONE_SCALE)
    if config.trace_offset > 0:
        trace = trace.shifted(config.trace_offset)
    return trace


def commercial_blocks(config: ReplayConfig, seed: int = 2004) -> List[bytes]:
    """The commercial transaction stream cut into pipeline blocks."""
    generator = CommercialDataGenerator(seed=seed)
    return list(generator.stream(config.block_size, config.block_count))


def molecular_blocks(
    config: ReplayConfig, atom_count: int = 4096, seed: int = 3
) -> List[bytes]:
    """The molecular trajectory stream cut into pipeline blocks."""
    generator = MolecularDataGenerator(atom_count=atom_count, seed=seed)
    return list(generator.stream(config.block_size, config.block_count))


def log_blocks(config: ReplayConfig, seed: int = 2004) -> List[bytes]:
    """The templated-log stream cut into pipeline blocks."""
    generator = LogDataGenerator(seed=seed)
    return list(generator.stream(config.block_size, config.block_count))


def timeseries_blocks(config: ReplayConfig, seed: int = 2004) -> List[bytes]:
    """The multi-channel telemetry stream cut into pipeline blocks."""
    generator = TimeSeriesGenerator(seed=seed)
    return list(generator.stream(config.block_size, config.block_count))


def dataset_blocks(name: str, config: ReplayConfig) -> List[bytes]:
    """Blocks for a replay dataset name (``repro replay --source``)."""
    builders = {
        "commercial": commercial_blocks,
        "molecular": molecular_blocks,
        "logs": log_blocks,
        "timeseries": timeseries_blocks,
    }
    try:
        builder = builders[name]
    except KeyError:
        raise ValueError(f"unknown replay dataset: {name!r}") from None
    return builder(config)


def make_policy(config: ReplayConfig, cpu: Optional[CpuModel] = None) -> CompressionPolicy:
    """Build the selection policy a replay config names.

    ``"table"`` returns the default :class:`AdaptivePolicy`; ``"bicriteria"``
    arms the Pareto optimizer with the same modeled-cost substrate the
    replay pipeline itself uses (``DEFAULT_COSTS`` on ``SUN_FIRE``), so
    its frontier prices blocks exactly as the replay will account them.
    A non-default ``config.placement`` arms the break-even placement
    scheduler on either dialect; it needs the cost substrate too, so the
    table dialect gains it exactly when placement scheduling asks for it
    (the default-config table policy stays untouched).
    """
    placement_kwargs = {}
    if config.placement != "producer":
        placement_kwargs = dict(
            placement=config.placement,
            interference=config.interference,
            downstream_factor=config.downstream_factor,
            cost_model=DEFAULT_COSTS,
            cpu=cpu if cpu is not None else SUN_FIRE,
        )
    if config.policy == "table":
        return AdaptivePolicy(**placement_kwargs)
    if config.policy == "bicriteria":
        return AdaptivePolicy(
            policy="bicriteria",
            space_budget=config.space_budget,
            cost_model=DEFAULT_COSTS,
            cpu=cpu if cpu is not None else SUN_FIRE,
            **{k: v for k, v in placement_kwargs.items() if k not in ("cost_model", "cpu")},
        )
    raise ValueError(
        f"unknown policy {config.policy!r}; choose from ('table', 'bicriteria')"
    )


def run_replay(
    blocks: List[bytes],
    config: ReplayConfig,
    policy: Optional[CompressionPolicy] = None,
    cpu: Optional[CpuModel] = None,
    observers: Optional[Iterable[Observer]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> StreamResult:
    """Run one deterministic replay of ``blocks`` under ``config``.

    ``observers`` (e.g. a :class:`~repro.obs.block.BlockTelemetry`) are
    attached to the pipeline's block engine; observation is read-only, so
    the replay stays bit-identical with or without them.  ``registry``
    is handed to the pipeline's monitor, making selector-side metrics
    (speed/ratio gauges, ``repro_bicriteria_*``) visible to the caller.
    """
    link = make_link(
        config.link,
        seed=config.link_seed,
        congestion_per_connection=config.congestion_per_connection,
    )
    if policy is None:
        policy = make_policy(config, cpu=cpu)
    if config.fault_plan is not None:
        plan = (
            config.fault_plan
            if isinstance(config.fault_plan, FaultPlan)
            else FaultPlan.load(str(config.fault_plan))
        )
        link = FaultyLink(link, plan, retry=RetryPolicy(seed=plan.seed))
    pipeline = AdaptivePipeline(
        policy=policy,
        block_size=config.block_size,
        cost_model=DEFAULT_COSTS,
        cpu=cpu if cpu is not None else SUN_FIRE,
        observers=observers,
        workers=config.workers,
        pool_mode=config.pool_mode,
        registry=registry,
    )
    try:
        return pipeline.run(
            blocks,
            link,
            load=build_trace(config),
            production_interval=config.production_interval,
            pipelined=config.pipelined,
        )
    finally:
        pipeline.close()


def figure7_trace_series(step: float = 1.0, seed: int = FIG8_CONFIG.trace_seed) -> List[Tuple[float, float]]:
    """The raw (unscaled) MBone connection counts over time — Figure 7."""
    return list(mbone_trace(duration=TRACE_DURATION, seed=seed).sample(step))


def figure8_commercial_replay(
    config: ReplayConfig = FIG8_CONFIG,
    observers: Optional[Iterable[Observer]] = None,
) -> StreamResult:
    """The commercial-data replay behind Figures 8, 9 and 10."""
    return run_replay(commercial_blocks(config), config, observers=observers)


def figure11_molecular_replay(
    config: ReplayConfig = FIG11_CONFIG,
    observers: Optional[Iterable[Observer]] = None,
) -> StreamResult:
    """The molecular-data replay behind Figures 11 and 12."""
    return run_replay(molecular_blocks(config), config, observers=observers)
