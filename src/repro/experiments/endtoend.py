"""Headline end-to-end comparison (paper §5 / table T1 in DESIGN.md).

"Using configurable compression, we could transport the transactional
data of a large company ... on a 100MBits network link under variable
load in 10.7142 seconds (where compression took slightly more than 60% of
total time) rather than in the 29.1388 seconds it took without
compression."  And for the molecular data: "dynamic data compression
actually increases the total time required for data streaming, from
roughly 29 to 30.5 seconds" — i.e. no benefit.

:func:`headline_comparison` reruns that bulk transfer for both datasets
with the adaptive policy and with every fixed baseline (none / huffman /
lempel-ziv / burrows-wheeler), under both the synchronous (pseudocode-
literal) and pipelined (asynchronous-transport) models.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..core.policy import AdaptivePolicy, FixedPolicy
from ..core.pipeline import StreamResult
from .config import HEADLINE_CONFIG, ReplayConfig
from .replay import commercial_blocks, molecular_blocks, run_replay

__all__ = ["HeadlineRow", "headline_comparison", "PAPER_HEADLINE"]

#: The paper's reported totals (seconds).
PAPER_HEADLINE = {
    ("commercial", "adaptive"): 10.7142,
    ("commercial", "none"): 29.1388,
    ("molecular", "none"): 29.0,
    ("molecular", "adaptive"): 30.5,
}


@dataclass(frozen=True)
class HeadlineRow:
    """One policy's bulk-transfer outcome on one dataset."""

    dataset: str
    policy: str
    total_seconds: float
    compression_fraction: float
    overall_ratio: float
    method_counts: Dict[str, int]

    @classmethod
    def from_result(cls, dataset: str, policy: str, result: StreamResult) -> "HeadlineRow":
        return cls(
            dataset=dataset,
            policy=policy,
            total_seconds=result.total_time,
            compression_fraction=result.compression_time_fraction,
            overall_ratio=result.overall_ratio,
            method_counts=result.method_counts(),
        )


def headline_comparison(
    config: Optional[ReplayConfig] = None,
    baselines: Optional[List[str]] = None,
    pipelined: Optional[bool] = None,
) -> List[HeadlineRow]:
    """Run adaptive vs. fixed baselines on both datasets.

    Returns rows ordered dataset-major.  ``pipelined`` overrides the
    config's transport model when given.
    """
    cfg = config if config is not None else HEADLINE_CONFIG
    if pipelined is not None:
        cfg = replace(cfg, pipelined=pipelined)
    methods = baselines if baselines is not None else ["none", "huffman", "lempel-ziv", "burrows-wheeler"]

    datasets = {
        "commercial": commercial_blocks(cfg),
        "molecular": molecular_blocks(cfg),
    }
    rows: List[HeadlineRow] = []
    for dataset, blocks in datasets.items():
        adaptive = run_replay(blocks, cfg, policy=AdaptivePolicy())
        rows.append(HeadlineRow.from_result(dataset, "adaptive", adaptive))
        for method in methods:
            fixed = run_replay(blocks, cfg, policy=FixedPolicy(method))
            rows.append(HeadlineRow.from_result(dataset, f"fixed:{method}", fixed))
    return rows
