"""Ablations of the design choices DESIGN.md §6 calls out.

The paper fixes three groups of constants — block size (128 KB), sample
size (4 KB), and the decision thresholds (0.83 / 3.48 / 48.78 %) — noting
only that they were "chosen according to the efficiency of compression
methods" and "can be tuned easily".  These sweeps quantify the
sensitivity on the commercial bulk-transfer scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..core.decision import DecisionThresholds
from ..core.pipeline import AdaptivePipeline
from ..core.policy import AdaptivePolicy
from ..core.sampler import LzSampler
from ..data.commercial import CommercialDataGenerator
from ..netsim.cpu import DEFAULT_COSTS, SUN_FIRE
from ..netsim.link import PAPER_LINKS, SimulatedLink
from .config import HEADLINE_CONFIG, ReplayConfig
from .replay import build_trace

__all__ = [
    "AblationPoint",
    "sweep_block_size",
    "sweep_sample_size",
    "sweep_thresholds",
]


@dataclass(frozen=True)
class AblationPoint:
    """One sweep point's outcome."""

    parameter: str
    value: str
    total_seconds: float
    overall_ratio: float
    method_counts: Dict[str, int]


def _run(
    config: ReplayConfig,
    total_bytes: int,
    block_size: int,
    sampler: Optional[LzSampler] = None,
    thresholds: Optional[DecisionThresholds] = None,
    seed: int = 2004,
) -> AblationPoint:
    generator = CommercialDataGenerator(seed=seed)
    block_count = max(1, total_bytes // block_size)
    blocks = list(generator.stream(block_size, block_count))
    link = SimulatedLink(
        PAPER_LINKS[config.link],
        seed=config.link_seed,
        congestion_per_connection=config.congestion_per_connection,
    )
    pipeline = AdaptivePipeline(
        policy=AdaptivePolicy(thresholds if thresholds is not None else DecisionThresholds()),
        block_size=block_size,
        sampler=sampler if sampler is not None else LzSampler(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE),
        cost_model=DEFAULT_COSTS,
        cpu=SUN_FIRE,
    )
    result = pipeline.run(
        blocks,
        link,
        load=build_trace(config),
        production_interval=config.production_interval,
        pipelined=config.pipelined,
    )
    return AblationPoint(
        parameter="",
        value="",
        total_seconds=result.total_time,
        overall_ratio=result.overall_ratio,
        method_counts=result.method_counts(),
    )


def sweep_block_size(
    sizes: Sequence[int] = (16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024),
    config: Optional[ReplayConfig] = None,
    total_bytes: int = 8 * 1024 * 1024,
) -> List[AblationPoint]:
    """Vary the pipeline block size around the paper's 128 KB."""
    cfg = config if config is not None else HEADLINE_CONFIG
    points = []
    for size in sizes:
        point = _run(cfg, total_bytes, size)
        points.append(replace(point, parameter="block_size", value=str(size)))
    return points


def sweep_sample_size(
    sizes: Sequence[int] = (1024, 2048, 4096, 8192, 16384, 32768),
    config: Optional[ReplayConfig] = None,
    total_bytes: int = 8 * 1024 * 1024,
) -> List[AblationPoint]:
    """Vary the sampling probe size around the paper's 4 KB."""
    cfg = config if config is not None else HEADLINE_CONFIG
    points = []
    for size in sizes:
        sampler = LzSampler(sample_size=size, cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
        point = _run(cfg, total_bytes, cfg.block_size, sampler=sampler)
        points.append(replace(point, parameter="sample_size", value=str(size)))
    return points


def sweep_thresholds(
    config: Optional[ReplayConfig] = None,
    total_bytes: int = 8 * 1024 * 1024,
) -> List[AblationPoint]:
    """Perturb each decision constant independently around the paper's values."""
    cfg = config if config is not None else HEADLINE_CONFIG
    variants = {
        "paper(0.83/3.48/0.4878)": DecisionThresholds(),
        "eager(0.4/2.0/0.4878)": DecisionThresholds(compress_factor=0.4, bw_factor=2.0),
        "lazy(1.6/6.0/0.4878)": DecisionThresholds(compress_factor=1.6, bw_factor=6.0),
        "tight-gate(0.83/3.48/0.30)": DecisionThresholds(ratio_gate=0.30),
        "loose-gate(0.83/3.48/0.70)": DecisionThresholds(ratio_gate=0.70),
    }
    points = []
    for label, thresholds in variants.items():
        point = _run(cfg, total_bytes, cfg.block_size, thresholds=thresholds)
        points.append(replace(point, parameter="thresholds", value=label))
    return points
