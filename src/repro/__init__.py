"""repro — Configurable compression for efficient end-to-end data exchange.

A full reproduction of Wiseman, Schwan & Widener, "Efficient End to End
Data Exchange Using Configurable Compression" (ICDCS 2004): from-scratch
lossless codecs (Huffman, arithmetic, Lempel-Ziv with Huffman-coded
pointers, a chunk-synchronizable Burrows-Wheeler pipeline), the
table-driven adaptive method selector, an ECho-like publish/subscribe
middleware with derived channels and quality attributes, and the
simulation substrate (links, CPU models, MBone load traces) needed to
regenerate every figure of the paper's evaluation.

Quick start::

    from repro import AdaptivePipeline, CommercialDataGenerator
    from repro.netsim import make_link, mbone_trace, DEFAULT_COSTS, SUN_FIRE

    blocks = list(CommercialDataGenerator().stream(128 * 1024, 50))
    pipeline = AdaptivePipeline(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
    result = pipeline.run(blocks, make_link("100mbit"),
                          load=mbone_trace().scaled(4.0),
                          production_interval=1.25)
    summary = result.summary()
"""

from .compression import (
    ArithmeticCodec,
    BurrowsWheelerCodec,
    Codec,
    CodecError,
    CompressionResult,
    CorruptStreamError,
    HuffmanCodec,
    IdentityCodec,
    Lz77Codec,
    available_codecs,
    get_codec,
    register_codec,
)
from .core import (
    DEFAULT_BLOCK_SIZE,
    FIGURE1_TABLE,
    METHOD_CODES,
    AdaptivePipeline,
    AdaptivePolicy,
    BlockEngine,
    BlockExecution,
    BlockRecord,
    BlockStats,
    CodecExecutor,
    Decision,
    DecisionInputs,
    DecisionThresholds,
    FixedPolicy,
    LzSampler,
    Rating,
    ReducingSpeedMonitor,
    SampleResult,
    StreamResult,
    measure,
    select_method,
)
from .data import (
    CommercialDataGenerator,
    MolecularDataGenerator,
    RecordFormat,
    decode_records,
    encode_records,
)
from .middleware import (
    AdaptiveSubscriber,
    EchoSystem,
    Event,
    EventChannel,
    SamplingPublisher,
    TransportBridge,
)
from .netsim import (
    DEFAULT_COSTS,
    PAPER_LINKS,
    SUN_FIRE,
    ULTRA_SPARC,
    CodecCostModel,
    CpuModel,
    LoadTrace,
    SimulatedLink,
    VirtualClock,
    make_link,
    mbone_trace,
)
from .obs import (
    BenchReport,
    BlockTelemetry,
    MetricsRegistry,
    TraceWriter,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptivePipeline",
    "AdaptivePolicy",
    "AdaptiveSubscriber",
    "ArithmeticCodec",
    "BenchReport",
    "BlockEngine",
    "BlockExecution",
    "BlockRecord",
    "BlockStats",
    "BlockTelemetry",
    "BurrowsWheelerCodec",
    "Codec",
    "CodecCostModel",
    "CodecError",
    "CodecExecutor",
    "CommercialDataGenerator",
    "CompressionResult",
    "CorruptStreamError",
    "CpuModel",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_COSTS",
    "Decision",
    "DecisionInputs",
    "DecisionThresholds",
    "EchoSystem",
    "Event",
    "EventChannel",
    "FIGURE1_TABLE",
    "FixedPolicy",
    "HuffmanCodec",
    "IdentityCodec",
    "LoadTrace",
    "Lz77Codec",
    "LzSampler",
    "METHOD_CODES",
    "MetricsRegistry",
    "MolecularDataGenerator",
    "PAPER_LINKS",
    "Rating",
    "RecordFormat",
    "ReducingSpeedMonitor",
    "SUN_FIRE",
    "SampleResult",
    "SamplingPublisher",
    "SimulatedLink",
    "StreamResult",
    "TraceWriter",
    "TransportBridge",
    "ULTRA_SPARC",
    "VirtualClock",
    "available_codecs",
    "decode_records",
    "encode_records",
    "get_codec",
    "make_link",
    "mbone_trace",
    "measure",
    "register_codec",
    "select_method",
]
