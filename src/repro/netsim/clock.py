"""Clocks for the simulation substrate.

End-to-end experiments (Figures 8-12) run on a :class:`VirtualClock` so a
160-second MBone replay finishes in milliseconds and is bit-for-bit
reproducible; microbenchmarks use the :class:`WallClock` so codec times are
real.  Everything above this module takes "a clock" and does not care
which.
"""

from __future__ import annotations

import time
from typing import Protocol

__all__ = ["Clock", "VirtualClock", "WallClock"]


class Clock(Protocol):
    """Minimal clock interface used across the simulator."""

    def now(self) -> float:
        """Current time in seconds."""
        ...

    def advance(self, seconds: float) -> None:
        """Move time forward (no-op for real clocks)."""
        ...


class VirtualClock:
    """Deterministic simulated time."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds


class WallClock:
    """Real time (monotonic); ``advance`` sleeps nothing and is a no-op,
    because real time advances by itself while work runs."""

    def now(self) -> float:
        return time.perf_counter()

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time cannot move backwards")
