"""End-to-end bandwidth estimation (paper refs [10-13]).

"Also continually measured is the speed with which compressed blocks are
accepted by receivers, thereby assessing both current network bandwidth
and receiver speed.  These end-to-end measurements are more relevant than
knowledge of actual network bandwidth, since decompression requires the
use of receivers' CPU cycles." (§2.5)

Two estimators are provided: an exponentially weighted moving average (the
default — cheap and reactive) and a sliding-window mean (smoother, used in
the threshold-sensitivity ablation).  Both consume raw observations of
``(bytes delivered, seconds elapsed)`` and expose bytes/second.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Protocol, Tuple

__all__ = [
    "BandwidthEstimator",
    "EwmaBandwidthEstimator",
    "WindowedBandwidthEstimator",
]


class BandwidthEstimator(Protocol):
    """Interface the adaptive pipeline consumes."""

    def observe(self, size: int, seconds: float) -> None:
        """Record one end-to-end delivery."""
        ...

    @property
    def estimate(self) -> Optional[float]:
        """Current bytes/second estimate, or None before any observation."""
        ...


class EwmaBandwidthEstimator:
    """Exponentially weighted moving average of delivery throughput."""

    def __init__(self, alpha: float = 0.25) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._estimate: Optional[float] = None
        self.observations = 0

    def observe(self, size: int, seconds: float) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        sample = size / seconds
        if self._estimate is None:
            self._estimate = sample
        else:
            self._estimate += self.alpha * (sample - self._estimate)
        self.observations += 1

    @property
    def estimate(self) -> Optional[float]:
        return self._estimate

    def reset(self) -> None:
        self._estimate = None
        self.observations = 0


class WindowedBandwidthEstimator:
    """Mean throughput over the last ``window`` deliveries."""

    def __init__(self, window: int = 8) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self._samples: Deque[Tuple[int, float]] = deque(maxlen=window)

    def observe(self, size: int, seconds: float) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        self._samples.append((size, seconds))

    @property
    def estimate(self) -> Optional[float]:
        if not self._samples:
            return None
        total_bytes = sum(size for size, _ in self._samples)
        total_seconds = sum(seconds for _, seconds in self._samples)
        return total_bytes / total_seconds

    @property
    def observations(self) -> int:
        return len(self._samples)

    def reset(self) -> None:
        self._samples.clear()
