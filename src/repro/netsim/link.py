"""Simulated communication links (paper Figure 5).

The paper measured four link classes end to end with 128 KB blocks on warm
connections:

====================  ==================  ==========================
link                  transfer speed      standard deviation
====================  ==================  ==========================
1 GBit/s              26.32094622 MB/s    0.782 %
100 MBit/s            7.520270348 MB/s    8.95 %
1 MBit/s              0.146907607 MB/s    1.17 %
international (US-IL) 0.10891426 MB/s     46.02 %
====================  ==================  ==========================

:class:`SimulatedLink` reproduces those operating points: each transfer
samples an effective throughput from a (truncated) normal around the mean,
optionally divided by a congestion factor derived from the current number
of competing connections (the MBone-driven load of §4.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = [
    "LinkSpec",
    "SimulatedLink",
    "PAPER_LINKS",
    "EXTRA_LINKS",
    "MEGABYTE",
    "make_link",
]

MEGABYTE = 1 << 20


@dataclass(frozen=True)
class LinkSpec:
    """Static description of a link class."""

    name: str
    #: Mean end-to-end throughput in bytes/second (warm line, no load).
    throughput: float
    #: Relative standard deviation of per-transfer throughput (0.0895 = 8.95 %).
    stddev_fraction: float
    #: One-way startup latency charged once per transfer, seconds.
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.throughput <= 0:
            raise ValueError("throughput must be positive")
        if self.stddev_fraction < 0:
            raise ValueError("stddev_fraction must be non-negative")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")


#: The four link classes of Figure 5, keyed by the paper's labels.  The
#: throughputs are the paper's *measured end-to-end* speeds for 128 KB
#: blocks on warm lines, so per-transfer latency is already folded in;
#: the latency fields only add a small fixed floor for tiny transfers.
PAPER_LINKS: Dict[str, LinkSpec] = {
    "1gbit": LinkSpec("1gbit", 26.32094622 * MEGABYTE, 0.00782, latency=0.0001),
    "100mbit": LinkSpec("100mbit", 7.520270348 * MEGABYTE, 0.0895, latency=0.0002),
    "1mbit": LinkSpec("1mbit", 0.146907607 * MEGABYTE, 0.0117, latency=0.002),
    "international": LinkSpec(
        "international", 0.10891426 * MEGABYTE, 0.4602, latency=0.020
    ),
}


#: Extra link classes for scenarios the paper discusses qualitatively:
#: §1 expects configurable compression "to compete well in embedded
#: systems ... deployed on 'tethered' machines before data is transmitted
#: to mobile machines linked via wireless connections", and home DSL.
EXTRA_LINKS: Dict[str, LinkSpec] = {
    "wireless-11mbit": LinkSpec(
        "wireless-11mbit", 0.62 * MEGABYTE, 0.25, latency=0.003
    ),
    "dsl": LinkSpec("dsl", 0.095 * MEGABYTE, 0.06, latency=0.015),
}


class SimulatedLink:
    """A stochastic link with optional connection-count congestion.

    ``congestion_per_connection`` models how much each competing MBone
    connection erodes this sender's share: with ``n`` competing
    connections the mean throughput is divided by
    ``1 + congestion_per_connection * n``.
    """

    def __init__(
        self,
        spec: LinkSpec,
        seed: int = 0,
        congestion_per_connection: float = 0.25,
    ) -> None:
        if congestion_per_connection < 0:
            raise ValueError("congestion_per_connection must be non-negative")
        self.spec = spec
        self._rng = random.Random(seed)
        self.congestion_per_connection = congestion_per_connection
        self.bytes_sent = 0
        self.transfers = 0

    def effective_throughput(self, connections: float = 0.0) -> float:
        """Sample this transfer's throughput in bytes/second."""
        mean = self.spec.throughput / (
            1.0 + self.congestion_per_connection * max(0.0, connections)
        )
        sample = self._rng.gauss(mean, mean * self.spec.stddev_fraction)
        # Truncate at 5 % of the mean: even the international link never
        # measured a negative or near-zero speed.
        return max(sample, mean * 0.05)

    def transfer_time(self, size: int, connections: float = 0.0) -> float:
        """Seconds to move ``size`` bytes under the given competing load."""
        if size < 0:
            raise ValueError("size must be non-negative")
        if size == 0:
            return self.spec.latency
        self.bytes_sent += size
        self.transfers += 1
        return self.spec.latency + size / self.effective_throughput(connections)

    def mean_transfer_time(self, size: int, connections: float = 0.0) -> float:
        """Deterministic expected transfer time (no sampling, no counters)."""
        mean = self.spec.throughput / (
            1.0 + self.congestion_per_connection * max(0.0, connections)
        )
        return self.spec.latency + size / mean


def make_link(name: str, seed: int = 0, congestion_per_connection: float = 0.25) -> SimulatedLink:
    """Construct a link by label (Figure 5's four classes or the extras)."""
    spec = PAPER_LINKS.get(name) or EXTRA_LINKS.get(name)
    if spec is None:
        known = sorted(PAPER_LINKS) + sorted(EXTRA_LINKS)
        raise ValueError(f"unknown link {name!r}; choose from {known}")
    return SimulatedLink(spec, seed=seed, congestion_per_connection=congestion_per_connection)
