"""CPU models and codec cost calibration (paper Figure 4 substrate).

The paper ran on a Sun-Fire-280R (UltraSPARC-III) and an Ultra-Sparc
(UltraSPARC-II); Figure 4 shows the Sun-Fire reducing data roughly 2-2.5x
faster.  We cannot run on Solaris hardware, so:

* :class:`CpuModel` captures a machine as a *relative speed factor* plus a
  dynamic load level.  Any per-byte codec cost is divided by the factor
  and multiplied by ``1 + load`` — which is all the selection algorithm
  ever observes.
* :class:`CodecCostModel` holds calibrated per-codec compression and
  decompression throughputs plus typical ratios.  The deterministic
  end-to-end experiments consume these instead of wall-clock timings so
  Figures 8-12 are exactly reproducible; :func:`calibrate` measures a real
  cost model from the host with any dataset.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..compression.base import Codec

__all__ = [
    "CpuModel",
    "CodecCost",
    "CodecCostModel",
    "DEFAULT_COSTS",
    "calibrate",
    "SUN_FIRE",
    "ULTRA_SPARC",
]


@dataclass
class CpuModel:
    """A machine with a relative speed and a varying load.

    ``speed_factor`` is relative to the reference machine (the paper's
    Sun-Fire, factor 1.0).  ``load`` in [0, inf) is the competing-work
    level: a load of 1.0 doubles every compression time, which is how
    "compression speed due to available CPU resources" (§1) enters the
    selector.
    """

    name: str
    speed_factor: float = 1.0
    load: float = 0.0

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        if self.load < 0:
            raise ValueError("load must be non-negative")

    def scale_time(self, seconds: float) -> float:
        """Time this machine needs for work the reference does in ``seconds``."""
        return seconds / self.speed_factor * (1.0 + self.load)

    def scale_speed(self, bytes_per_second: float) -> float:
        """Throughput this machine achieves given the reference's."""
        return bytes_per_second * self.speed_factor / (1.0 + self.load)


#: The two testbed machines (Figure 4).  Factors chosen to reproduce the
#: roughly 2.4x reducing-speed gap the paper measured.
SUN_FIRE = CpuModel("Sun-Fire-280R", speed_factor=1.0)
ULTRA_SPARC = CpuModel("Ultra-Sparc", speed_factor=0.42)


@dataclass(frozen=True)
class CodecCost:
    """Calibrated operating point of one codec on the reference machine."""

    #: Input bytes compressed per second.
    compress_throughput: float
    #: Output bytes decompressed per second (of original size).
    decompress_throughput: float
    #: Typical compressed/original ratio on the calibration data.
    typical_ratio: float

    def __post_init__(self) -> None:
        if self.compress_throughput <= 0 or self.decompress_throughput <= 0:
            raise ValueError("throughputs must be positive")
        if self.typical_ratio < 0:
            raise ValueError("typical_ratio must be non-negative")


class CodecCostModel:
    """Per-codec cost table used by the deterministic simulation mode."""

    def __init__(self, costs: Dict[str, CodecCost]) -> None:
        if "none" not in costs:
            costs = dict(costs)
            costs["none"] = CodecCost(
                compress_throughput=1e12, decompress_throughput=1e12, typical_ratio=1.0
            )
        self._costs = dict(costs)

    def cost(self, codec_name: str) -> CodecCost:
        try:
            return self._costs[codec_name]
        except KeyError:
            raise KeyError(f"no calibrated cost for codec {codec_name!r}") from None

    def codecs(self) -> Iterable[str]:
        return sorted(self._costs)

    def compression_time(self, codec_name: str, size: int, cpu: Optional[CpuModel] = None) -> float:
        """Seconds to compress ``size`` bytes on ``cpu`` (reference if None)."""
        seconds = size / self.cost(codec_name).compress_throughput
        return cpu.scale_time(seconds) if cpu else seconds

    def decompression_time(self, codec_name: str, size: int, cpu: Optional[CpuModel] = None) -> float:
        """Seconds to decompress back to ``size`` original bytes."""
        seconds = size / self.cost(codec_name).decompress_throughput
        return cpu.scale_time(seconds) if cpu else seconds

    def reducing_speed(self, codec_name: str, cpu: Optional[CpuModel] = None) -> float:
        """Bytes removed per second — the Figure 4 metric — for this codec."""
        cost = self.cost(codec_name)
        saved_per_input_byte = max(0.0, 1.0 - cost.typical_ratio)
        speed = cost.compress_throughput * saved_per_input_byte
        return cpu.scale_speed(speed) if cpu else speed


_MB = float(1 << 20)

#: Calibrated to the paper's Sun-Fire-280R measurements: throughputs are
#: back-solved from the Figure 3 compression/decompression times over the
#: commercial dataset, typical ratios come from Figure 2.  With these
#: numbers :meth:`CodecCostModel.reducing_speed` reproduces the Figure 4
#: bars (Huffman highest, Lempel-Ziv mid, Burrows-Wheeler and arithmetic
#: low) and the modeled end-to-end replays (Figures 8-12) run at the
#: paper's operating point rather than this host's.  Use :func:`calibrate`
#: for a host-measured model instead.
DEFAULT_COSTS = CodecCostModel(
    {
        "huffman": CodecCost(
            compress_throughput=8.2 * _MB,
            decompress_throughput=11.0 * _MB,
            typical_ratio=0.47,
        ),
        "lempel-ziv": CodecCost(
            compress_throughput=2.2 * _MB,
            decompress_throughput=9.8 * _MB,
            typical_ratio=0.41,
        ),
        "burrows-wheeler": CodecCost(
            compress_throughput=0.95 * _MB,
            decompress_throughput=2.4 * _MB,
            typical_ratio=0.34,
        ),
        "arithmetic": CodecCost(
            compress_throughput=1.3 * _MB,
            decompress_throughput=1.0 * _MB,
            typical_ratio=0.46,
        ),
        # Modern fast-compressor tier (zstd-native / lz4-native), scaled to
        # the same reference machine.  Public lzbench-class measurements
        # put zstd -3 near 25x and lz4 near 100x zlib's compression
        # throughput with weaker ratios; the entries are harmless when the
        # bindings are absent — the modeled mode only ever looks up codecs
        # a candidate set names.
        "zstd-native": CodecCost(
            compress_throughput=55.0 * _MB,
            decompress_throughput=160.0 * _MB,
            typical_ratio=0.44,
        ),
        "lz4-native": CodecCost(
            compress_throughput=180.0 * _MB,
            decompress_throughput=700.0 * _MB,
            typical_ratio=0.55,
        ),
        # Structure-aware family, calibrated on the seeded log/telemetry
        # corpora (scripts/bench_structured measurements).  The ratios
        # only hold on data the sniffers matched — which is the only time
        # a candidate grid names these codecs (default_candidates keeps
        # them out unless structured=True), so the entries are harmless
        # for opaque traffic.
        "template": CodecCost(
            compress_throughput=7.0 * _MB,
            decompress_throughput=30.0 * _MB,
            typical_ratio=0.18,
        ),
        "columnar": CodecCost(
            compress_throughput=40.0 * _MB,
            decompress_throughput=200.0 * _MB,
            typical_ratio=0.19,
        ),
    }
)


def calibrate(codecs: Dict[str, Codec], sample: bytes) -> CodecCostModel:
    """Measure a :class:`CodecCostModel` from real codec runs on ``sample``.

    Calibration times the *host* directly (``netsim/`` is, with
    ``core/engine.py``, one of the two sanctioned timing sites): the
    resulting throughputs feed the modeled mode that the rest of the
    system consumes through :class:`~repro.core.engine.CodecExecutor`.
    """
    if not sample:
        raise ValueError("calibration sample must be non-empty")
    costs: Dict[str, CodecCost] = {}
    for name, codec in codecs.items():
        start = time.perf_counter()
        payload = codec.compress(sample)
        compress_elapsed = max(time.perf_counter() - start, 1e-9)
        start = time.perf_counter()
        codec.decompress(payload)
        decompress_elapsed = max(time.perf_counter() - start, 1e-9)
        costs[name] = CodecCost(
            compress_throughput=len(sample) / compress_elapsed,
            decompress_throughput=len(sample) / decompress_elapsed,
            typical_ratio=len(payload) / len(sample),
        )
    return CodecCostModel(costs)
