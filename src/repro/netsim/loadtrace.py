"""MBone-style network load traces (paper §4.2, Figure 7, ref [36]).

The paper varies network load by replaying "load traces captured for the
MBone multicast infrastructure … the number of end users that connect to
MBone sessions over time", scaled by a factor of 4 to match 100 MBit
capacities.  The original traces are not published, so
:func:`mbone_trace` synthesizes a piecewise-constant session-count series
with the qualitative shape of Figure 7: a quiet start, a ramp into a busy
regime of 5-19 connections with short bursts, a mid-run lull, and late
spikes, over 160 seconds.
"""

from __future__ import annotations

import bisect
import csv
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Sequence, Tuple, Union

__all__ = ["LoadTrace", "mbone_trace"]


@dataclass(frozen=True)
class LoadTrace:
    """A piecewise-constant ``connections(t)`` series."""

    #: Segment start times, strictly increasing, starting at 0.0.
    times: Tuple[float, ...]
    #: Connection counts per segment (same length as ``times``).
    connections: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.connections) or not self.times:
            raise ValueError("times and connections must be equal-length, non-empty")
        if self.times[0] != 0.0:
            raise ValueError("traces must start at t=0")
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("times must be strictly increasing")
        if any(c < 0 for c in self.connections):
            raise ValueError("connection counts must be non-negative")

    @classmethod
    def from_pairs(cls, pairs: Sequence[Tuple[float, float]]) -> "LoadTrace":
        """Build from ``(time, connections)`` pairs."""
        times, connections = zip(*pairs)
        return cls(tuple(float(t) for t in times), tuple(float(c) for c in connections))

    def connections_at(self, t: float) -> float:
        """Connection count in force at time ``t`` (clamped at the ends)."""
        if t <= self.times[0]:
            return self.connections[0]
        index = bisect.bisect_right(self.times, t) - 1
        return self.connections[index]

    def scaled(self, factor: float) -> "LoadTrace":
        """Connection counts multiplied by ``factor`` (the paper's x4 rule)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return LoadTrace(self.times, tuple(c * factor for c in self.connections))

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as a two-column CSV (``time,connections``).

        The MBone traces the paper used were distributed as flat files;
        this lets users replay their own captures through the simulator.
        """
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time", "connections"])
            for t, c in zip(self.times, self.connections):
                writer.writerow([t, c])

    @classmethod
    def load(cls, path: Union[str, Path]) -> "LoadTrace":
        """Read a trace written by :meth:`save` (header optional)."""
        pairs: List[Tuple[float, float]] = []
        with open(path, newline="") as handle:
            for row in csv.reader(handle):
                if not row or row[0].strip().lower() == "time":
                    continue
                pairs.append((float(row[0]), float(row[1])))
        if not pairs:
            raise ValueError(f"no trace rows in {path}")
        return cls.from_pairs(pairs)

    def shifted(self, offset: float) -> "LoadTrace":
        """Drop everything before ``offset`` and rebase that instant to t=0.

        Used by the bulk-transfer experiments, which run against the busy
        region of the MBone trace rather than its quiet prologue.
        """
        if offset < 0:
            raise ValueError("offset must be non-negative")
        if offset >= self.times[-1]:
            raise ValueError("offset beyond end of trace")
        level = self.connections_at(offset)
        pairs = [(0.0, level)] + [
            (t - offset, c)
            for t, c in zip(self.times, self.connections)
            if t > offset
        ]
        return LoadTrace.from_pairs(pairs)

    @property
    def duration(self) -> float:
        """Time of the last segment start (the replay horizon)."""
        return self.times[-1]

    def sample(self, step: float = 1.0) -> Iterator[Tuple[float, float]]:
        """Yield ``(t, connections)`` on a regular grid — Figure 7's series."""
        if step <= 0:
            raise ValueError("step must be positive")
        t = 0.0
        while t <= self.duration:
            yield t, self.connections_at(t)
            t += step


def mbone_trace(duration: float = 160.0, seed: int = 7, peak: float = 19.0) -> LoadTrace:
    """Synthesize an MBone-shaped load trace (Figure 7).

    Structure: ~8 s of silence, a busy phase with bursty levels between a
    third of ``peak`` and ``peak``, a lull around 60 % of the run, and a
    final burst before decay.  Deterministic per ``seed``.
    """
    if duration <= 20:
        raise ValueError("duration too short for the MBone shape")
    rng = random.Random(seed)
    pairs: List[Tuple[float, float]] = [(0.0, 0.0)]
    t = rng.uniform(6.0, 10.0)
    lull_start = duration * 0.58
    lull_end = duration * 0.75
    while t < duration:
        if lull_start <= t < lull_end:
            level = rng.uniform(0.0, peak * 0.2)
        else:
            base = rng.uniform(peak * 0.3, peak * 0.8)
            burst = rng.random() < 0.3
            level = min(peak, base + (rng.uniform(peak * 0.2, peak * 0.5) if burst else 0.0))
        pairs.append((t, round(level)))
        t += rng.uniform(4.0, 12.0)
    pairs.append((duration, 0.0))
    return LoadTrace.from_pairs(pairs)
