"""Deterministic fault injection: the chaos substrate (robustness layer).

The paper's end-to-end argument only holds if the selector keeps making
good choices while the network misbehaves — variable MBone-derived load,
lossy international links, IQ-RUDP congestion response.  This module
supplies the misbehavior as data: a :class:`FaultPlan` is a seeded,
schedule-driven description of *which* packet/frame indices suffer
*which* faults (drop, duplicate, reorder, delay, byte-corrupt), fully
deterministic per seed so every chaos run is replayable bit for bit.

Three consumers wrap it around existing machinery:

* :class:`FaultyPacketLink` — wraps a :class:`~repro.netsim.rudp.PacketLink`
  so the IQ-RUDP transport model sees scheduled losses, corruptions
  (checksum-failed at the receiver, hence NACKed), delays, and duplicate
  deliveries (observable as duplicate ACKs);
* :class:`FaultyLink` — wraps a :class:`~repro.netsim.link.SimulatedLink`
  at frame/transfer granularity: a dropped or corrupted transfer models a
  frame the integrity-checked framing rejected, and the wrapper pays the
  recovery cost (capped exponential backoff with deterministic jitter +
  re-send time) into the returned transfer time;
* the middleware's corrupting in-memory transport
  (:mod:`repro.middleware.chaos`) applies the same plan to framed wire
  bytes, where CRC32 rejection and retry/re-request recovery run for real.

:class:`RetryPolicy` lives here (clock-free, transport-agnostic) and is
re-exported by :mod:`repro.middleware.transport` for the recovery layers.
Nothing in this module reads a wall clock; all randomness is derived from
``(seed, index)`` via stable string seeding, so decisions are independent
of call order and identical across processes and platforms.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .link import SimulatedLink
from .rudp import PacketLink

__all__ = [
    "FAULT_KINDS",
    "FaultDecision",
    "FaultExhaustedError",
    "FaultPlan",
    "FaultRule",
    "FaultyLink",
    "FaultyPacketLink",
    "RetryPolicy",
]

#: The five schedulable fault kinds.
FAULT_KINDS = ("drop", "duplicate", "reorder", "delay", "corrupt")


class FaultExhaustedError(RuntimeError):
    """Recovery gave up: retries exhausted without a successful delivery."""


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: a kind plus its addressing and parameters.

    Addressing is by packet/frame index — exact (``index``), inclusive
    range (``first``/``last``), or everywhere (neither) — gated by
    ``probability`` (deterministic per plan seed and index; 1.0 means
    every addressed index fires).
    """

    kind: str
    index: Optional[int] = None
    first: Optional[int] = None
    last: Optional[int] = None
    probability: float = 1.0
    #: Extra seconds charged to delivery (kind == "delay").
    delay: float = 0.0
    #: Byte position to corrupt (kind == "corrupt"); None = seeded-random.
    byte_offset: Optional[int] = None
    #: XOR mask applied to the corrupted byte (never a no-op: 0 -> 0xFF).
    xor_mask: int = 0xFF

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.index is not None and (self.first is not None or self.last is not None):
            raise ValueError("use either index or first/last, not both")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")
        if not 0 <= self.xor_mask <= 0xFF:
            raise ValueError("xor_mask must be one byte")
        if self.kind == "delay" and self.delay == 0.0:
            raise ValueError("delay rules need delay > 0")

    def matches(self, index: int) -> bool:
        """Does this rule address packet/frame ``index`` (before the coin flip)?"""
        if self.index is not None:
            return index == self.index
        if self.first is not None and index < self.first:
            return False
        if self.last is not None and index > self.last:
            return False
        return True

    def to_dict(self) -> dict:
        out: Dict[str, object] = {"kind": self.kind}
        for key in ("index", "first", "last", "byte_offset"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.probability != 1.0:
            out["probability"] = self.probability
        if self.delay:
            out["delay"] = self.delay
        if self.xor_mask != 0xFF:
            out["xor_mask"] = self.xor_mask
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        return cls(**data)


@dataclass(frozen=True)
class FaultDecision:
    """Every fault hitting one packet/frame index (empty = clean delivery)."""

    kinds: Tuple[str, ...] = ()
    delay: float = 0.0
    corrupt_rule: Optional[FaultRule] = None

    @property
    def clean(self) -> bool:
        return not self.kinds

    @property
    def dropped(self) -> bool:
        return "drop" in self.kinds

    @property
    def duplicated(self) -> bool:
        return "duplicate" in self.kinds

    @property
    def reordered(self) -> bool:
        return "reorder" in self.kinds

    @property
    def corrupted(self) -> bool:
        return "corrupt" in self.kinds


class FaultPlan:
    """A seeded schedule of faults, addressable by packet/frame index.

    :meth:`decide` is a pure function of ``(seed, rules, index)`` — the
    same index always yields the same decision regardless of query order,
    which is what makes chaos runs replayable.  ``counts`` accumulates
    injected faults per kind for observability (one count per *distinct
    deciding call site progression*; wrappers call it once per wire
    transmission).
    """

    def __init__(
        self, rules: Sequence[FaultRule], seed: int = 0, name: str = ""
    ) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = seed
        self.name = name
        self.counts: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self.decisions = 0

    # -- the schedule ------------------------------------------------------------

    def _fires(self, rule_position: int, rule: FaultRule, index: int) -> bool:
        if not rule.matches(index):
            return False
        if rule.probability >= 1.0:
            return True
        rng = random.Random(f"fault:{self.seed}:{rule_position}:{index}")
        return rng.random() < rule.probability

    def decide(self, index: int) -> FaultDecision:
        """The faults scheduled for packet/frame ``index`` (deterministic)."""
        kinds: List[str] = []
        delay = 0.0
        corrupt_rule: Optional[FaultRule] = None
        for position, rule in enumerate(self.rules):
            if not self._fires(position, rule, index):
                continue
            if rule.kind not in kinds:
                kinds.append(rule.kind)
            if rule.kind == "delay":
                delay += rule.delay
            if rule.kind == "corrupt" and corrupt_rule is None:
                corrupt_rule = rule
        self.decisions += 1
        for kind in kinds:
            self.counts[kind] += 1
        return FaultDecision(kinds=tuple(kinds), delay=delay, corrupt_rule=corrupt_rule)

    def corrupt(self, data: bytes, index: int, rule: Optional[FaultRule] = None) -> bytes:
        """Flip one byte of ``data``, deterministically per (seed, index)."""
        if not data:
            return data
        if rule is None:
            rule = FaultRule(kind="corrupt")
        if rule.byte_offset is not None:
            position = min(rule.byte_offset, len(data) - 1)
        else:
            position = random.Random(f"corrupt:{self.seed}:{index}").randrange(len(data))
        mask = rule.xor_mask or 0xFF
        mutated = bytearray(data)
        mutated[position] ^= mask
        return bytes(mutated)

    @property
    def faults_injected(self) -> int:
        return sum(self.counts.values())

    def reset(self) -> None:
        """Zero the counters (the schedule itself is stateless)."""
        self.counts = {kind: 0 for kind in FAULT_KINDS}
        self.decisions = 0

    # -- (de)serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        out: Dict[str, object] = {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }
        if self.name:
            out["name"] = self.name
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            rules=[FaultRule.from_dict(rule) for rule in data.get("rules", [])],
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())

    def dump(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter (clock-free).

    ``backoff(attempt)`` is a pure function: the jitter for attempt *n*
    comes from a stable string-seeded RNG, so two processes holding the
    same policy compute identical delay schedules — the property that
    keeps chaos runs and the ``scripts/check.sh`` timing invariant intact
    (delays are *charged to injected clocks*, never slept from here).
    """

    max_attempts: int = 6
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    #: Jitter fraction: attempt delays are scaled by a deterministic
    #: factor in [1 - jitter, 1 + jitter].
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter:
            rng = random.Random(f"retry:{self.seed}:{attempt}")
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return min(raw, self.max_delay)

    def delays(self) -> Tuple[float, ...]:
        """The full backoff schedule (one entry per retry attempt)."""
        return tuple(self.backoff(n) for n in range(1, self.max_attempts))


class FaultyPacketLink:
    """A :class:`~repro.netsim.rudp.PacketLink` with scheduled faults.

    Per-packet semantics (packet indices count every transmission,
    including retransmissions, so a plan can target either):

    * ``drop`` — the packet vanishes (returns ``None``, like Bernoulli loss);
    * ``corrupt`` — the packet arrives damaged, fails the receiver's
      checksum, and is NACKed — indistinguishable from loss to the
      sender, but counted separately;
    * ``delay`` — delivered late (service time + rule delay);
    * ``duplicate`` — delivered, and the receiver's duplicate ACK is
      observable through :meth:`consume_duplicate` (the transport counts
      it without double-crediting delivery);
    * ``reorder`` — counted only: the round-based selective-repeat model
      is insensitive to within-round order.
    """

    def __init__(self, inner: PacketLink, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.packets_dropped = 0
        self.packets_corrupted = 0
        self.packets_delayed = 0
        self.packets_duplicated = 0
        self._index = 0
        self._pending_duplicate = False

    # -- PacketLink surface ------------------------------------------------------

    @property
    def link(self) -> SimulatedLink:
        return self.inner.link

    @property
    def packets_sent(self) -> int:
        return self.inner.packets_sent

    @property
    def packets_lost(self) -> int:
        return self.inner.packets_lost

    @property
    def observed_loss_rate(self) -> float:
        return self.inner.observed_loss_rate

    def send_packet(self, size: int, connections: float = 0.0) -> Optional[float]:
        index = self._index
        self._index += 1
        decision = self.plan.decide(index)
        service = self.inner.send_packet(size, connections)
        if decision.dropped:
            self.packets_dropped += 1
            if service is not None:
                self.inner.packets_lost += 1  # keep observed_loss_rate truthful
            return None
        if decision.corrupted:
            self.packets_corrupted += 1
            if service is not None:
                self.inner.packets_lost += 1
            return None
        if service is None:
            return None
        if decision.delay:
            self.packets_delayed += 1
            service += decision.delay
        if decision.duplicated:
            self.packets_duplicated += 1
            self._pending_duplicate = True
        return service

    def consume_duplicate(self) -> bool:
        """True once per duplicated delivery (the duplicate-ACK signal)."""
        pending = self._pending_duplicate
        self._pending_duplicate = False
        return pending


class FaultyLink:
    """A :class:`~repro.netsim.link.SimulatedLink` with faults + recovery.

    Operates at frame/transfer granularity: every :meth:`transfer_time`
    call is one framed wire transmission.  A ``drop`` or ``corrupt``
    models a frame the CRC-checked framing rejected at the receiver; the
    wrapper then *recovers* — capped exponential backoff (deterministic
    jitter) followed by a re-send, all charged into the returned transfer
    time so virtual clocks see the true recovery cost.  Exhausting
    ``retry.max_attempts`` raises :class:`FaultExhaustedError` (a chaos
    gate failure, never silent data loss).
    """

    def __init__(
        self,
        inner: SimulatedLink,
        plan: FaultPlan,
        retry: RetryPolicy = RetryPolicy(),
        registry=None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.retry = retry
        self.registry = registry
        self.retries = 0
        self.recovery_seconds = 0.0
        self._index = 0

    # -- SimulatedLink surface ---------------------------------------------------

    @property
    def spec(self):
        return self.inner.spec

    @property
    def bytes_sent(self) -> int:
        return self.inner.bytes_sent

    @property
    def transfers(self) -> int:
        return self.inner.transfers

    def effective_throughput(self, connections: float = 0.0) -> float:
        return self.inner.effective_throughput(connections)

    def mean_transfer_time(self, size: int, connections: float = 0.0) -> float:
        return self.inner.mean_transfer_time(size, connections)

    def _count(self, name: str, amount: float = 1.0, **labels: str) -> None:
        if self.registry is not None:
            self.registry.counter(
                name, help="fault-injection bookkeeping (repro.netsim.faults)"
            ).inc(amount, **labels)

    def transfer_time(self, size: int, connections: float = 0.0) -> float:
        attempt = 1
        total = 0.0
        while True:
            index = self._index
            self._index += 1
            decision = self.plan.decide(index)
            total += self.inner.transfer_time(size, connections) + decision.delay
            for kind in decision.kinds:
                self._count("repro_faults_injected_total", kind=kind)
            if not (decision.dropped or decision.corrupted):
                return total
            if attempt >= self.retry.max_attempts:
                raise FaultExhaustedError(
                    f"transfer still failing after {attempt} attempts "
                    f"(plan {self.plan.name or 'unnamed'!r}, wire index {index})"
                )
            backoff = self.retry.backoff(attempt)
            total += backoff
            self.retries += 1
            self.recovery_seconds += backoff
            self._count("repro_link_retries_total")
            attempt += 1
