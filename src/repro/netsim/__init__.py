"""Network/CPU simulation substrate: virtual clocks, the paper's four link
classes (Figure 5), CPU models with calibrated codec costs (Figure 4),
MBone load traces (Figure 7), and end-to-end bandwidth estimators."""

from .bandwidth import (
    BandwidthEstimator,
    EwmaBandwidthEstimator,
    WindowedBandwidthEstimator,
)
from .clock import Clock, VirtualClock, WallClock
from .faults import (
    FAULT_KINDS,
    FaultDecision,
    FaultExhaustedError,
    FaultPlan,
    FaultRule,
    FaultyLink,
    FaultyPacketLink,
    RetryPolicy,
)
from .cpu import (
    DEFAULT_COSTS,
    SUN_FIRE,
    ULTRA_SPARC,
    CodecCost,
    CodecCostModel,
    CpuModel,
    calibrate,
)
from .link import (
    EXTRA_LINKS,
    MEGABYTE,
    PAPER_LINKS,
    LinkSpec,
    SimulatedLink,
    make_link,
)
from .loadtrace import LoadTrace, mbone_trace
from .rudp import PacketLink, RateControlledTransport, TransferReport

__all__ = [
    "BandwidthEstimator",
    "Clock",
    "CodecCost",
    "CodecCostModel",
    "CpuModel",
    "DEFAULT_COSTS",
    "EwmaBandwidthEstimator",
    "EXTRA_LINKS",
    "FAULT_KINDS",
    "FaultDecision",
    "FaultExhaustedError",
    "FaultPlan",
    "FaultRule",
    "FaultyLink",
    "FaultyPacketLink",
    "LinkSpec",
    "LoadTrace",
    "MEGABYTE",
    "PAPER_LINKS",
    "PacketLink",
    "RateControlledTransport",
    "RetryPolicy",
    "SUN_FIRE",
    "SimulatedLink",
    "TransferReport",
    "ULTRA_SPARC",
    "VirtualClock",
    "WallClock",
    "WindowedBandwidthEstimator",
    "calibrate",
    "make_link",
    "mbone_trace",
]
