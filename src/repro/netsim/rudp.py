"""IQ-RUDP-style rate-controlled reliable transport (paper ref [14]).

The paper's middleware targets "alternative communication protocols,
including those well-suited for the large-data transfers" — specifically
IQ-RUDP (He & Schwan, HPDC 2002), a rate-based reliable UDP that
coordinates application adaptation with transport-level congestion
response.  This module supplies a packet-level simulation of that
transport class:

* :class:`PacketLink` — a lossy packet pipe over a
  :class:`~repro.netsim.link.SimulatedLink`: per-packet Bernoulli loss
  (deterministic per seed) plus the link's stochastic service rate;
* :class:`RateControlledTransport` — sends a block as fixed-size packets
  at a controlled rate, retransmits losses (selective repeat), and adapts
  the rate with AIMD: additive increase per loss-free round, halving on
  loss.  ``transfer`` returns the simulated completion time and statistics.

The adaptive compression pipeline can sit on top of either this or the
plain link model; the end-to-end bandwidth estimator neither knows nor
cares, which is exactly the paper's layering argument.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from .link import SimulatedLink

__all__ = ["PacketLink", "RateControlledTransport", "TransferReport"]

DEFAULT_PACKET_SIZE = 1400  # Ethernet-ish MTU payload


class PacketLink:
    """A lossy packet pipe with the service rate of a simulated link."""

    def __init__(
        self,
        link: SimulatedLink,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.link = link
        self.loss_rate = loss_rate
        self._rng = random.Random(seed)
        self.packets_sent = 0
        self.packets_lost = 0

    def send_packet(self, size: int, connections: float = 0.0) -> Optional[float]:
        """Service time for one packet, or None if it was lost."""
        self.packets_sent += 1
        service_time = self.link.transfer_time(size, connections)
        if self._rng.random() < self.loss_rate:
            self.packets_lost += 1
            return None
        return service_time

    @property
    def observed_loss_rate(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return self.packets_lost / self.packets_sent


@dataclass(frozen=True)
class TransferReport:
    """Outcome of one rate-controlled block transfer."""

    size: int
    elapsed: float
    packets: int
    retransmissions: int
    final_rate: float
    duplicate_acks: int = 0

    @property
    def goodput(self) -> float:
        """Application bytes per second achieved."""
        if self.elapsed <= 0:
            return float("inf")
        return self.size / self.elapsed


class RateControlledTransport:
    """Selective-repeat block transfer with AIMD rate control.

    The sender paces packets at ``rate`` bytes/second.  Each *round*
    transmits the outstanding window; NACKed (lost) packets are queued for
    the next round.  A loss-free round raises the rate additively
    (``increase`` bytes/s); any loss halves it (never below ``floor``).
    The rate persists across ``transfer`` calls, so consecutive blocks see
    warmed-up control state — matching how IQ-RUDP exports its current
    rate to the application as a quality attribute.
    """

    def __init__(
        self,
        packet_link: PacketLink,
        packet_size: int = DEFAULT_PACKET_SIZE,
        initial_rate: float = 1e6,
        increase: float = 5e4,
        floor: float = 1e4,
    ) -> None:
        if packet_size < 64:
            raise ValueError("packet_size must be at least 64 bytes")
        if initial_rate <= 0 or increase < 0 or floor <= 0:
            raise ValueError("rates must be positive")
        self.packet_link = packet_link
        self.packet_size = packet_size
        self.rate = initial_rate
        self.increase = increase
        self.floor = floor
        self.duplicate_acks = 0

    def transfer(self, size: int, connections: float = 0.0) -> TransferReport:
        """Deliver ``size`` bytes reliably; returns timing + statistics."""
        if size < 0:
            raise ValueError("size must be non-negative")
        if size == 0:
            return TransferReport(0, 0.0, 0, 0, self.rate)
        packet_count = (size + self.packet_size - 1) // self.packet_size
        outstanding = list(range(packet_count))
        elapsed = 0.0
        total_packets = 0
        retransmissions = 0
        duplicate_acks = 0
        first_round = True
        # A fault-injecting link (repro.netsim.faults.FaultyPacketLink) can
        # deliver the same packet twice; the receiver's extra ACK must be
        # counted without double-crediting delivery or perturbing AIMD.
        consume_duplicate = getattr(self.packet_link, "consume_duplicate", None)

        while outstanding:
            lost = []
            round_loss = False
            for index in outstanding:
                packet_bytes = (
                    size - index * self.packet_size
                    if index == packet_count - 1
                    else self.packet_size
                )
                # Pacing: the sender injects at `rate`; the link may be
                # slower, in which case its service time dominates.
                pacing_time = packet_bytes / self.rate
                service = self.packet_link.send_packet(packet_bytes, connections)
                total_packets += 1
                if service is None:
                    round_loss = True
                    lost.append(index)
                    elapsed += pacing_time
                else:
                    elapsed += max(pacing_time, service)
                    if consume_duplicate is not None and consume_duplicate():
                        duplicate_acks += 1
            if not first_round:
                retransmissions += len(outstanding)
            first_round = False
            if round_loss:
                self.rate = max(self.floor, self.rate / 2.0)
            else:
                self.rate += self.increase
            outstanding = lost
        self.duplicate_acks += duplicate_acks
        return TransferReport(
            size=size,
            elapsed=elapsed,
            packets=total_packets,
            retransmissions=retransmissions,
            final_rate=self.rate,
            duplicate_acks=duplicate_acks,
        )
