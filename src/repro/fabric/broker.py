"""The sharded event fabric: compress-once, fan-out-many delivery.

This is the delivery path that replaces thread-per-connection forwarding
in the middleware.  Channels are sharded across N loops by stable CRC32
of the channel id (:mod:`repro.fabric.sharding`): one shard owns each
channel, so per-channel event order is preserved with no per-event
locking, and shards progress independently — the broker scales with
shard count, not with connection count.

Per published event, the owning shard snapshots the channel's active
subscriptions, groups them by ``(method, canonical_params)``, and runs
the codec **once per group** through the shared
:class:`~repro.fabric.cache.BlockCache` — every other subscriber in the
group (and every later group on any channel that resolved to the same
configuration for the same payload) is served the same immutable bytes.
Wire-hungry sinks (sockets) additionally share one
:class:`~repro.middleware.transport.WireFormat` frame per group,
delivered as a zero-copy :class:`memoryview`.

Ownership rules for sinks: the event payload and the wire view are
**shared and immutable** — a sink must never mutate them and must copy
(``bytes(view)``) before retaining past the callback.  ``sendall`` on a
socket satisfies both.

Two execution modes:

* ``inline`` — ``publish`` processes synchronously on the caller's
  thread.  Deterministic, clock-free, and what the simulation/bench
  layers use: virtual time is charged by the caller from the returned
  engine accounting, never read here.
* ``threads`` — one worker thread per shard draining a FIFO queue; the
  deployment mode :class:`~repro.middleware.tcp.ChannelServer` runs on.
  The only wall-clock read is :func:`_loop_now` (flush/close deadlines),
  the fabric's single sanctioned loop-time site enforced by
  ``scripts/check.sh``.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..compression.base import canonical_params
from ..core.engine import CodecExecutor
from ..middleware.attributes import (
    ATTR_COMPRESSION_METHOD,
    ATTR_COMPRESSION_SECONDS,
    ATTR_ORIGINAL_SIZE,
)
from ..middleware.events import Event
from ..middleware.transport import WireFormat
from ..obs.fabric import (
    record_batch_flush,
    record_fabric_delivery,
    record_shard_queue_depth,
)
from ..obs.metrics import MetricsRegistry
from .batching import BatchConfig, FrameBatcher
from .cache import BlockCache
from .sharding import shard_index

__all__ = ["EventFabric", "FabricSubscription", "DeliveryCallback"]

#: ``callback(event, wire)`` — ``wire`` is a shared memoryview of the
#: event's framed wire bytes when the subscription asked for it, else None.
#: Batched subscriptions receive jumbo super-frame buffers instead, and
#: ``event`` is ``None`` when a deadline/drain flush fires without a
#: triggering event — batching sinks must not dereference it.
DeliveryCallback = Callable[[Optional[Event], Optional[memoryview]], None]

_STOP = object()


def _loop_now() -> float:
    """The fabric's single sanctioned clock read (threads-mode deadlines)."""
    return time.monotonic()


class FabricSubscription:
    """Handle for one fabric subscription; ``cancel`` is idempotent."""

    def __init__(
        self,
        fabric: "EventFabric",
        channel_id: str,
        callback: DeliveryCallback,
        method: str,
        params: Optional[Mapping[str, object]],
        wire: bool,
        batcher: Optional[FrameBatcher] = None,
    ) -> None:
        self.fabric = fabric
        self.channel_id = channel_id
        self.callback = callback
        self.method = method
        self.params = dict(params) if params else None
        self.wire = wire
        self.batcher = batcher
        self.active = True
        self.delivered = 0

    def cancel(self) -> None:
        if self.active:
            self.active = False
            self.fabric._remove(self)


class EventFabric:
    """N shard loops + one shared block cache = the delivery fabric."""

    def __init__(
        self,
        shards: int = 4,
        executor: Optional[CodecExecutor] = None,
        cache: Optional[BlockCache] = None,
        registry: Optional[MetricsRegistry] = None,
        mode: str = "inline",
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        if mode not in ("inline", "threads"):
            raise ValueError("mode must be 'inline' or 'threads'")
        self.shard_count = shards
        self.mode = mode
        self.registry = registry
        self.executor = (
            executor
            if executor is not None
            else CodecExecutor(expansion_fallback=True)
        )
        self.cache = cache if cache is not None else BlockCache(registry=registry)
        self._subscriptions: Dict[str, List[FabricSubscription]] = {}
        self._batched: List[FabricSubscription] = []
        self._lock = threading.Lock()
        self.events_published = 0
        self.deliveries_total = 0
        self.compressions_total = 0
        self.batches_emitted = 0
        self.batched_frames_total = 0
        #: Wire frames actually encoded — one per (event, delivery group),
        #: never one per subscriber.  The fanout bench holds the number of
        #: distinct wire views its sinks observe to exactly this count,
        #: which is what "zero per-subscriber copies" means in numbers.
        self.wire_frames_encoded = 0
        self.subscriber_errors = 0
        self.shard_events = [0] * shards
        self._closed = False
        if mode == "threads":
            self._queues: List["queue.Queue"] = [queue.Queue() for _ in range(shards)]
            self._pending = 0
            self._idle = threading.Condition()
            self._threads = [
                threading.Thread(
                    target=self._shard_loop, args=(i,), daemon=True,
                    name=f"fabric-shard-{i}",
                )
                for i in range(shards)
            ]
            for thread in self._threads:
                thread.start()

    # -- subscription ------------------------------------------------------------

    def subscribe(
        self,
        channel_id: str,
        callback: DeliveryCallback,
        method: str = "none",
        params: Optional[Mapping[str, object]] = None,
        wire: bool = False,
        batch: Optional[BatchConfig] = None,
    ) -> FabricSubscription:
        """Register ``callback`` for ``channel_id``.

        ``method``/``params`` name the compression configuration this
        subscriber wants applied to payloads (``none`` = passthrough);
        subscribers sharing a configuration share one codec run per
        event.  ``wire=True`` additionally hands the callback a shared
        memoryview of the framed wire bytes.  ``batch`` (requires
        ``wire=True``) coalesces this subscriber's frames into jumbo
        super-frames: the callback then fires per *batch* — on the
        config's thresholds, on linger deadlines (threads mode), and on
        :meth:`flush`/:meth:`close` drains.  Cancelling a batched
        subscription discards its pending frames (the sink is gone).
        """
        if batch is not None and not wire:
            raise ValueError("batch requires wire=True (batches coalesce wire frames)")
        batcher = FrameBatcher(batch) if batch is not None else None
        subscription = FabricSubscription(
            self, channel_id, callback, method, params, wire, batcher=batcher
        )
        with self._lock:
            self._subscriptions.setdefault(channel_id, []).append(subscription)
            if batcher is not None:
                self._batched.append(subscription)
        return subscription

    def _remove(self, subscription: FabricSubscription) -> None:
        with self._lock:
            members = self._subscriptions.get(subscription.channel_id)
            if members and subscription in members:
                members.remove(subscription)
                if not members:
                    del self._subscriptions[subscription.channel_id]
            if subscription.batcher is not None and subscription in self._batched:
                self._batched.remove(subscription)

    def subscriber_count(self, channel_id: Optional[str] = None) -> int:
        with self._lock:
            if channel_id is not None:
                return len(self._subscriptions.get(channel_id, []))
            return sum(len(members) for members in self._subscriptions.values())

    def channels(self) -> List[str]:
        with self._lock:
            return sorted(self._subscriptions)

    def shard_of(self, channel_id: str) -> int:
        """The shard that owns ``channel_id`` (stable under churn)."""
        return shard_index(channel_id, self.shard_count)

    # -- publication -------------------------------------------------------------

    def publish(self, channel_id: str, event: Event) -> None:
        """Deliver ``event`` to every subscriber of ``channel_id``.

        Inline mode processes now, on this thread; threads mode enqueues
        to the owning shard's FIFO (per-channel order preserved).
        """
        self._dispatch(self.shard_of(channel_id), ("event", channel_id, event))

    def submit_channel(self, channel, event: Event) -> None:
        """Deliver a bound :class:`~repro.middleware.channels.EventChannel`'s
        event on the shard that owns it (the ``bind_fabric`` back-half).

        The channel keeps its own subscriber/derivation bookkeeping; the
        fabric only supplies the ordering domain, so channel semantics
        are unchanged in inline mode and merely serialized per shard in
        threads mode.
        """
        self._dispatch(
            self.shard_of(channel.channel_id),
            ("call", lambda: channel._deliver_direct(event), None),
        )

    def defer(self, channel_id: str, thunk: Callable[[], None]) -> None:
        """Run ``thunk`` on the shard that owns ``channel_id``.

        The hook transport bridges use to route their deliveries through
        the fabric's ordering domain without the fabric knowing about
        bridges.
        """
        self._dispatch(self.shard_of(channel_id), ("call", thunk, None))

    def _dispatch(self, shard: int, item: Tuple[str, object, object]) -> None:
        if self._closed:
            raise RuntimeError("fabric is closed")
        if self.mode == "inline":
            self._execute_item(shard, item)
            return
        with self._idle:
            self._pending += 1
        self._queues[shard].put(item)
        if self.registry is not None:
            record_shard_queue_depth(self.registry, shard, self._queues[shard].qsize())

    def _execute_item(self, shard: int, item: Tuple[str, object, object]) -> None:
        kind, a, b = item
        if kind == "event":
            self._process_event(shard, a, b)  # type: ignore[arg-type]
        else:
            a()  # type: ignore[operator]

    # -- shard loops -------------------------------------------------------------

    def _shard_loop(self, shard: int) -> None:
        q = self._queues[shard]
        while True:
            try:
                item = q.get(timeout=0.05)
            except queue.Empty:
                if self._closed:
                    return
                # Idle tick: honor linger deadlines of batches whose
                # channels this shard owns (the sanctioned clock site).
                if self._batched:
                    self._flush_due_batches(shard)
                continue
            if item is _STOP:
                return
            try:
                self._execute_item(shard, item)
            except Exception:
                # A sink blew up on a shard thread: isolate, never kill
                # the loop (its other channels must keep flowing).
                self.subscriber_errors += 1
            finally:
                with self._idle:
                    self._pending -= 1
                    if self._pending == 0:
                        self._idle.notify_all()

    def flush(self, timeout: float = 5.0) -> bool:
        """Block until every queued item has been processed and every
        pending batch has drained.

        Inline mode drains batches synchronously; threads mode enqueues
        one drain item per shard (batchers are only ever touched on the
        shard that owns them, preserving per-channel ordering) and waits
        for the queues to empty.
        """
        if self.mode == "inline":
            self._drain_batches(None)
            return True
        if self._batched and not self._closed:
            for shard in range(self.shard_count):
                self._dispatch(
                    shard, ("call", lambda s=shard: self._drain_batches(s), None)
                )
        deadline = _loop_now() + timeout
        with self._idle:
            while self._pending > 0:
                remaining = deadline - _loop_now()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def close(self, timeout: float = 5.0) -> None:
        """Drain and stop the shard loops; idempotent."""
        if self._closed:
            return
        if self.mode == "threads":
            self.flush(timeout)
            self._closed = True
            for q in self._queues:
                q.put(_STOP)
            for thread in self._threads:
                thread.join(timeout=timeout)
        else:
            self._drain_batches(None)
            self._closed = True

    # -- delivery ----------------------------------------------------------------

    def _process_event(self, shard: int, channel_id: str, event: Event) -> None:
        with self._lock:
            members = [
                s for s in self._subscriptions.get(channel_id, ()) if s.active
            ]
        groups: "OrderedDict[Tuple[str, Tuple], List[FabricSubscription]]" = OrderedDict()
        for subscription in members:
            key = (subscription.method, canonical_params(subscription.params))
            groups.setdefault(key, []).append(subscription)
        deliveries = 0
        compressions = 0
        now: Optional[float] = None
        for (method, _), group in groups.items():
            delivered, hit = self._prepare(event, method, group[0].params)
            if method != "none" and not hit:
                compressions += 1
            wire: Optional[memoryview] = None
            for subscription in group:
                if not subscription.active:
                    continue
                if subscription.wire and wire is None:
                    # One frame per group, shared zero-copy by all sinks
                    # (encode returns an owned bytearray; no bytes copy).
                    wire = memoryview(WireFormat.encode(delivered)).toreadonly()
                    self.wire_frames_encoded += 1
                if subscription.batcher is not None:
                    if now is None and self.mode == "threads":
                        now = _loop_now()
                    flushed = subscription.batcher.add(wire, now)
                    if flushed is not None and not self._emit_batch(
                        subscription, delivered, flushed
                    ):
                        continue
                else:
                    try:
                        subscription.callback(
                            delivered, wire if subscription.wire else None
                        )
                    except Exception:
                        # Threads mode isolates a blown sink from its peers
                        # (its channel must keep flowing for everyone else);
                        # inline mode stays loud — test/bench callers want
                        # the stack trace, not a counter.
                        if self.mode == "inline":
                            raise
                        self.subscriber_errors += 1
                        continue
                subscription.delivered += 1
                deliveries += 1
        self.events_published += 1
        self.deliveries_total += deliveries
        self.compressions_total += compressions
        self.shard_events[shard] += 1
        if self.registry is not None:
            record_fabric_delivery(
                self.registry,
                shard=shard,
                deliveries=deliveries,
                compressions=compressions,
                events_total=self.events_published,
                deliveries_total=self.deliveries_total,
            )

    def _emit_batch(self, subscription: FabricSubscription, event, flushed) -> bool:
        """Deliver one flushed batch to its sink; returns success.

        ``event`` is the member that tripped the flush, or ``None`` for
        deadline/drain flushes — batching sinks only use the wire view.
        """
        self.batches_emitted += 1
        self.batched_frames_total += flushed.frames
        if self.registry is not None:
            record_batch_flush(
                self.registry,
                frames=flushed.frames,
                fill_ratio=flushed.fill_ratio(subscription.batcher.config),
                reason=flushed.reason,
            )
        try:
            subscription.callback(event, memoryview(flushed.wire).toreadonly())
        except Exception:
            if self.mode == "inline":
                raise
            self.subscriber_errors += 1
            return False
        return True

    def _batched_for_shard(self, shard: Optional[int]) -> List[FabricSubscription]:
        with self._lock:
            batched = list(self._batched)
        if shard is None:
            return batched
        return [s for s in batched if self.shard_of(s.channel_id) == shard]

    def _flush_due_batches(self, shard: int) -> None:
        """Deadline-expire batches on this shard's idle tick (threads mode)."""
        now = _loop_now()
        for subscription in self._batched_for_shard(shard):
            if subscription.active and subscription.batcher.due(now):
                flushed = subscription.batcher.flush("deadline")
                if flushed is not None:
                    self._emit_batch(subscription, None, flushed)

    def _drain_batches(self, shard: Optional[int]) -> None:
        """Force-flush every pending batch (``shard=None`` = all of them)."""
        for subscription in self._batched_for_shard(shard):
            if not subscription.active:
                continue
            flushed = subscription.batcher.flush("drain")
            if flushed is not None:
                self._emit_batch(subscription, None, flushed)

    def _prepare(
        self,
        event: Event,
        method: str,
        params: Optional[Mapping[str, object]],
    ) -> Tuple[Event, bool]:
        """The compressed (or passthrough) event for one delivery group.

        Attribute layout matches
        :class:`~repro.middleware.handlers.CompressionHandler` exactly,
        so a fabric delivery is byte-identical on the wire to the serial
        per-subscriber path (the fan-out bench's CRC gate).
        """
        if method == "none":
            return event, False
        execution, hit = self.cache.execute(self.executor, method, event.payload, params)
        attributes = {
            ATTR_COMPRESSION_METHOD: execution.method,
            ATTR_ORIGINAL_SIZE: event.size,
            ATTR_COMPRESSION_SECONDS: execution.seconds,
        }
        if execution.method == "none":
            # Expansion guard fell back: original bytes, truthful method.
            return event.with_attributes(**attributes), hit
        return event.with_payload(execution.payload, **attributes), hit

    @property
    def fanout_ratio(self) -> float:
        """Deliveries per published event (the compress-once multiplier)."""
        if not self.events_published:
            return 0.0
        return self.deliveries_total / self.events_published
