"""The async sharded event fabric (compress-once / fan-out-many).

Channels shard across N loops by stable CRC32 hash; each event is
compressed once per distinct ``(method, canonical params)`` through a
bounded LRU :class:`~repro.fabric.cache.BlockCache` and every subscriber
that resolved to the same configuration is served zero-copy from the
cached bytes.  See DESIGN.md's fabric section for the architecture and
ownership rules.
"""

from .broker import DeliveryCallback, EventFabric, FabricSubscription
from .cache import BlockCache, CachedBlock, CacheKey
from .loadgen import DEFAULT_SPECS, FanoutConfig, FanoutResult, run_fanout
from .sharding import shard_assignments, shard_index, shard_load

__all__ = [
    "BlockCache",
    "CacheKey",
    "CachedBlock",
    "DeliveryCallback",
    "DEFAULT_SPECS",
    "EventFabric",
    "FabricSubscription",
    "FanoutConfig",
    "FanoutResult",
    "run_fanout",
    "shard_assignments",
    "shard_index",
    "shard_load",
]
