"""Jumbo-frame batching: coalesce small event frames per subscriber.

At fan-out scale the dominant per-event cost on a real socket path is
not bytes but *boundaries*: one ``sendmsg`` and one delivery callback
per event.  A :class:`FrameBatcher` buffers encoded wire frames for one
(shard, connection) pair and flushes them as a single
:func:`~repro.compression.framing.encode_jumbo_frame` super-frame when
any of three triggers fires:

* ``max_frames`` members buffered;
* ``max_bytes`` of member bytes buffered;
* the ``linger_seconds`` deadline since the first buffered member — but
  **only when the caller supplies timestamps**.  The batcher itself
  never reads a clock: the fabric's shard loops pass
  :func:`repro.fabric.broker._loop_now` (the one sanctioned clock site),
  and clock-free callers (inline mode, benches) get deterministic
  threshold-only batching plus explicit drains.

Buffering is zero-copy: ``add`` retains the caller's frame views (the
shared per-group wire views the fabric already hands out) and the single
copy per member happens at flush time, into the jumbo buffer.  The
retained views pin their backing buffers until the flush — bounded by
``max_bytes``, which is the memory contract.

A batch of one is flushed as the bare member frame (no jumbo envelope):
receivers must handle both shapes anyway, and a lone frame gains nothing
from eight bytes of wrapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from ..compression.framing import encode_jumbo_frame

__all__ = ["BatchConfig", "FlushedBatch", "FrameBatcher"]

_Buffer = Union[bytes, bytearray, memoryview]


@dataclass(frozen=True)
class BatchConfig:
    """Thresholds for one :class:`FrameBatcher`.

    The defaults target the small-event regime batching exists for:
    jumbo frames near the 64 KB socket-buffer sweet spot, a frame cap
    that bounds per-flush latency spread, and a linger short enough to
    stay invisible next to WAN round-trip times.
    """

    max_frames: int = 32
    max_bytes: int = 60 * 1024
    linger_seconds: float = 0.005

    def __post_init__(self) -> None:
        if self.max_frames < 1:
            raise ValueError("max_frames must be positive")
        if self.max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if self.linger_seconds < 0:
            raise ValueError("linger_seconds must be non-negative")


@dataclass(frozen=True)
class FlushedBatch:
    """One emitted batch: the wire buffer plus flush bookkeeping."""

    wire: _Buffer
    frames: int
    member_bytes: int
    reason: str

    def fill_ratio(self, config: BatchConfig) -> float:
        """Member bytes over the byte budget — how full the batch ran."""
        return min(1.0, self.member_bytes / config.max_bytes)


class FrameBatcher:
    """Accumulates encoded frames for one subscriber; flushes jumbo frames.

    Not thread-safe by design: a batcher belongs to exactly one fabric
    subscription, and every touch happens on the shard loop that owns
    the subscription's channel (or the caller's thread in inline mode).
    """

    def __init__(self, config: Optional[BatchConfig] = None) -> None:
        self.config = config if config is not None else BatchConfig()
        self._frames: List[_Buffer] = []
        self._bytes = 0
        self._deadline: Optional[float] = None
        self.frames_batched = 0
        self.batches_emitted = 0
        self.bytes_batched = 0

    @property
    def pending_frames(self) -> int:
        return len(self._frames)

    @property
    def pending_bytes(self) -> int:
        return self._bytes

    def add(self, frame: _Buffer, now: Optional[float] = None) -> Optional[FlushedBatch]:
        """Buffer one encoded frame; returns a batch if a threshold tripped.

        ``now`` arms (and checks) the linger deadline; passing ``None``
        keeps the batcher clock-free — thresholds and explicit
        :meth:`flush` are then the only triggers.
        """
        if self._deadline is None and now is not None and not self._frames:
            self._deadline = now + self.config.linger_seconds
        self._frames.append(frame)
        self._bytes += len(frame)
        self.frames_batched += 1
        self.bytes_batched += len(frame)
        if len(self._frames) >= self.config.max_frames:
            return self.flush("frames")
        if self._bytes >= self.config.max_bytes:
            return self.flush("bytes")
        if now is not None and self._deadline is not None and now >= self._deadline:
            return self.flush("deadline")
        return None

    def due(self, now: float) -> bool:
        """Whether a deadline flush is owed at ``now`` (idle-tick probe)."""
        return bool(self._frames) and self._deadline is not None and now >= self._deadline

    def flush(self, reason: str = "drain") -> Optional[FlushedBatch]:
        """Emit everything buffered (or ``None`` when empty)."""
        if not self._frames:
            return None
        frames = self._frames
        member_bytes = self._bytes
        self._frames = []
        self._bytes = 0
        self._deadline = None
        if len(frames) == 1:
            wire: _Buffer = frames[0]
        else:
            wire = encode_jumbo_frame(frames)
        self.batches_emitted += 1
        return FlushedBatch(
            wire=wire, frames=len(frames), member_bytes=member_bytes, reason=reason
        )
