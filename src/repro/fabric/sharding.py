"""Stable channel-to-shard assignment for the event fabric.

The fabric runs N independent shard loops; every channel is owned by
exactly one shard so per-channel event order is preserved without locks.
The assignment must be *stable* — the same channel id maps to the same
shard on every call, in every process, across subscribe/unsubscribe
churn — so it is a pure function of the channel id bytes (CRC32, never
Python's salted ``hash``).
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List

__all__ = ["shard_index", "shard_assignments", "shard_load"]


def shard_index(channel_id: str, shard_count: int) -> int:
    """The shard that owns ``channel_id`` (stable CRC32 placement)."""
    if shard_count < 1:
        raise ValueError("shard_count must be positive")
    return zlib.crc32(channel_id.encode("utf-8")) % shard_count


def shard_assignments(
    channel_ids: Iterable[str], shard_count: int
) -> Dict[str, int]:
    """Map every channel id to its owning shard."""
    return {cid: shard_index(cid, shard_count) for cid in channel_ids}


def shard_load(channel_ids: Iterable[str], shard_count: int) -> List[int]:
    """Channels per shard — the balance view tests and metrics read."""
    load = [0] * shard_count
    for cid in channel_ids:
        load[shard_index(cid, shard_count)] += 1
    return load
