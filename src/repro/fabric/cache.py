"""The shared compressed-block cache behind compress-once/fan-out-many.

The paper's exchange model compresses per publish-subscribe channel;
at fan-out scale that repeats identical codec work every time several
derived channels resolve to the same method for the same payload.  This
module is the amortization point: a bounded LRU keyed by
``(payload_crc32, payload_length, method, canonical_params)`` whose
values are the compressed wire bytes plus the engine-accounted cost of
producing them.  The first subscriber group pays the codec; every other
group that resolved to the same configuration is served the *same*
``bytes`` object (zero-copy — consumers take :class:`memoryview` slices,
never mutate, and must copy before retaining past the delivery).

Keying discipline: the payload is identified by CRC32 **and length**
(length is free and removes the cheap collision class), the method by
its registry name, and the parameters by
:func:`repro.compression.base.canonical_params` — so ``{"level": 6}``
and every equivalent spelling share one entry.  Compression itself still
routes through a :class:`~repro.core.engine.CodecExecutor`: the cache
never runs a codec, it only remembers executions, so the one-timing-site
and expansion-guard invariants keep holding.

Bounds: both an entry count and a byte budget; eviction is strict LRU
from the cold end, and a block bigger than the byte budget is returned
uncached rather than evicting the whole cache for one giant payload.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property
from typing import Mapping, Optional, Tuple

from ..compression.base import canonical_params, params_label
from ..core.engine import BlockExecution, CodecExecutor
from ..obs.fabric import (
    record_cache_eviction,
    record_cache_hit,
    record_cache_miss,
    record_cache_size,
)
from ..obs.metrics import MetricsRegistry

__all__ = ["BlockCache", "CacheKey", "CachedBlock"]

#: ``(payload_crc32, payload_length, method, canonical_params)``.
CacheKey = Tuple[int, int, str, Tuple[Tuple[str, object], ...]]


@dataclass(frozen=True)
class CachedBlock:
    """One remembered compression: the wire bytes and what they cost.

    ``payload`` is shared by every consumer (bytes are immutable);
    ``view`` is **one** shared read-only :class:`memoryview` over it,
    created on first access and handed to every subsequent consumer —
    fan-out of a cached block allocates nothing per subscriber, and the
    fanout bench asserts the identity.  ``method`` is the method that
    actually produced the bytes — it differs from ``requested_method``
    when the expansion guard fell back to ``none``.
    """

    requested_method: str
    method: str
    original_size: int
    payload: bytes
    seconds: float
    fell_back: bool = False

    @cached_property
    def view(self) -> memoryview:
        # cached_property writes straight to __dict__, bypassing the
        # frozen dataclass guard: every caller shares this one view.
        return memoryview(self.payload).toreadonly()

    def as_execution(self) -> BlockExecution:
        """Re-materialize the engine's execution record for observers."""
        return BlockExecution(
            requested_method=self.requested_method,
            method=self.method,
            original_size=self.original_size,
            payload=self.payload,
            seconds=self.seconds,
            fell_back=self.fell_back,
        )


class BlockCache:
    """Bounded LRU of :class:`CachedBlock`, keyed by payload+configuration.

    Thread-safe: shards of the fabric share one instance, and the lock
    only guards the map bookkeeping — codec runs happen outside it (a
    racing duplicate compression is benign and byte-identical, losing
    only the amortization for that one event).
    """

    def __init__(
        self,
        max_entries: int = 1024,
        max_bytes: int = 64 * 1024 * 1024,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.registry = registry
        self._entries: "OrderedDict[CacheKey, CachedBlock]" = OrderedDict()
        self._lock = threading.Lock()
        self.bytes_held = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- keying ------------------------------------------------------------------

    @staticmethod
    def key_for(
        payload: bytes, method: str, params: Optional[Mapping[str, object]] = None
    ) -> CacheKey:
        """The canonical cache key for one (payload, configuration) pair."""
        return (zlib.crc32(payload), len(payload), method, canonical_params(params))

    # -- the compress-once entry point -------------------------------------------

    def execute(
        self,
        executor: CodecExecutor,
        method: str,
        payload: bytes,
        params: Optional[Mapping[str, object]] = None,
    ) -> Tuple[BlockExecution, bool]:
        """Compress once per configuration; returns ``(execution, hit)``.

        A hit replays the remembered execution (same bytes object, same
        accounted seconds — the cost that was actually paid, once); a
        miss runs the executor and caches the outcome.  Method ``none``
        is never cached: passthrough costs nothing to "recompute".
        """
        label = params_label(params)
        if method == "none":
            return executor.compress(method, payload), False
        key = self.key_for(payload, method, params)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if cached is not None:
            if self.registry is not None:
                record_cache_hit(self.registry, method, label)
            return cached.as_execution(), True
        execution = executor.compress(method, payload)
        with self._lock:
            self.misses += 1
        stored = execution.payload
        if not isinstance(stored, bytes):
            # copy-ok: a cached entry outlives the event; retaining a view
            # here would pin the producer's whole backing buffer in the LRU.
            stored = bytes(stored)
        block = CachedBlock(
            requested_method=execution.requested_method,
            method=execution.method,
            original_size=execution.original_size,
            payload=stored,
            seconds=execution.seconds,
            fell_back=execution.fell_back,
        )
        self._store(key, block, method, label)
        if self.registry is not None:
            record_cache_miss(self.registry, method, label)
            record_cache_size(self.registry, self.bytes_held, len(self._entries))
        return execution, False

    # -- bookkeeping -------------------------------------------------------------

    def _store(self, key: CacheKey, block: CachedBlock, method: str, label: str) -> None:
        size = len(block.payload)
        if size > self.max_bytes:
            return  # one oversized block must not flush the whole cache
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self.bytes_held -= len(previous.payload)
            self._entries[key] = block
            self.bytes_held += size
            evicted = []
            while (
                len(self._entries) > self.max_entries
                or self.bytes_held > self.max_bytes
            ):
                old_key, old_block = self._entries.popitem(last=False)
                self.bytes_held -= len(old_block.payload)
                self.evictions += 1
                evicted.append(old_key)
        if self.registry is not None:
            for old_key in evicted:
                record_cache_eviction(self.registry, old_key[2], params_label(old_key[3]))

    # -- views -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """A snapshot for CLI output and bench reports."""
        return {
            "entries": len(self._entries),
            "bytes": self.bytes_held,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
        }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.bytes_held = 0
