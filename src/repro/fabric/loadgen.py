"""Fan-out load generator: thousands of subscribers over netsim links.

The scenario behind the ``fanout_throughput`` bench gate and the
``repro fanout`` CLI: a population of simulated subscribers joins a set
of channels with heavy-tailed (Zipf) skew — a few hot channels carry
most of the audience, the long tail is sparse — and every subscriber
picks one of a small set of ``(method, params)`` compression choices,
also Zipf-skewed (most consumers want the popular configuration).  A
producer then publishes a commercial-data event stream to every
subscribed channel and the same delivery workload is costed two ways:

* **fabric** — through an inline :class:`~repro.fabric.broker.EventFabric`
  with a shared :class:`~repro.fabric.cache.BlockCache`: the codec runs
  once per distinct configuration per payload, everyone else is served
  from the cache;
* **baseline** — the pre-fabric middleware model: every subscriber's
  channel compresses independently, so the codec cost is charged once
  per *delivery*.

Both paths run on the calibrated cost model (modeled seconds, real
bytes) over a :class:`~repro.netsim.link.SimulatedLink`'s deterministic
mean transfer time, so the comparison is exact run-to-run.  Delivered
frames are CRC32-checked subscriber-by-subscriber against the baseline's
wire bytes: compress-once must be **byte-identical** to
compress-per-subscriber, merely cheaper.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..compression.framing import JUMBO_HEADER, parse_frame
from ..compression.varint import read_canonical_varint
from ..core.engine import CodecExecutor
from ..data.commercial import CommercialDataGenerator
from ..middleware.events import Event
from ..middleware.transport import WireFormat
from ..netsim.cpu import DEFAULT_COSTS, SUN_FIRE, CodecCostModel, CpuModel
from ..netsim.link import SimulatedLink, make_link
from ..obs.metrics import MetricsRegistry
from .batching import BatchConfig
from .broker import EventFabric
from .cache import BlockCache

__all__ = ["DEFAULT_SPECS", "FanoutConfig", "FanoutResult", "run_fanout"]

#: Eight distinct (method, params) choices — the "small number of open
#: channels" population of §3.2 at fan-out scale.  Params feed cache
#: keying and labels; registry codecs ignore them behaviorally, so two
#: param variants of one method really are two cache configurations.
DEFAULT_SPECS: Tuple[Tuple[str, Optional[Mapping[str, object]]], ...] = (
    ("burrows-wheeler", None),
    ("lempel-ziv", None),
    ("huffman", None),
    ("burrows-wheeler", {"chunk_kb": 16}),
    ("lempel-ziv", {"window": 32768}),
    ("huffman", {"table": "canonical"}),
    ("lempel-ziv", {"window": 65536}),
    ("burrows-wheeler", {"chunk_kb": 32}),
)


@dataclass(frozen=True)
class FanoutConfig:
    """One fan-out scenario (fully determined by its fields + seed)."""

    subscribers: int = 1024
    channels: int = 64
    events: int = 32
    event_size: int = 8 * 1024
    shards: int = 4
    specs: Tuple[Tuple[str, Optional[Mapping[str, object]]], ...] = DEFAULT_SPECS
    zipf_exponent: float = 1.1
    seed: int = 2004
    link: str = "1gbit"
    cache_entries: int = 1024
    cache_bytes: int = 64 * 1024 * 1024
    #: Coalesce each subscriber's frames into jumbo super-frames.  The
    #: CRC chains stay comparable to the unbatched baseline because the
    #: member frames ride the jumbo payload verbatim, in order.
    batch: bool = False
    batch_frames: int = 8
    batch_bytes: int = 60 * 1024

    def __post_init__(self) -> None:
        if self.subscribers < 1 or self.channels < 1 or self.events < 1:
            raise ValueError("subscribers, channels, and events must be positive")
        if not self.specs:
            raise ValueError("at least one (method, params) spec is required")


@dataclass
class FanoutResult:
    """Outcome of one scenario run (both cost paths + integrity checks)."""

    subscribers: int
    channels_used: int
    events_published: int
    deliveries: int
    fanout_ratio: float
    #: Virtual seconds: engine-accounted compression + link transfer.
    fabric_seconds: float
    baseline_seconds: float
    #: Codec runs each path actually charged for.
    fabric_compressions: int
    baseline_compressions: int
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    cache_hit_rate: float
    #: Per-subscriber running CRC32 chains matched between the paths.
    crc_ok: bool
    #: CRC32 over the per-subscriber chain — one number for the bench gate.
    wire_crc32: int
    shard_events: List[int] = field(default_factory=list)
    #: Jumbo batching telemetry (zero when the scenario ran unbatched).
    batches_emitted: int = 0
    batched_frames: int = 0

    @property
    def speedup(self) -> float:
        if self.fabric_seconds <= 0.0:
            return float("inf")
        return self.baseline_seconds / self.fabric_seconds

    @property
    def fabric_events_per_second(self) -> float:
        return self.deliveries / self.fabric_seconds if self.fabric_seconds else 0.0

    @property
    def baseline_events_per_second(self) -> float:
        return self.deliveries / self.baseline_seconds if self.baseline_seconds else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "subscribers": self.subscribers,
            "channels_used": self.channels_used,
            "events_published": self.events_published,
            "deliveries": self.deliveries,
            "fanout_ratio": self.fanout_ratio,
            "fabric_seconds": self.fabric_seconds,
            "baseline_seconds": self.baseline_seconds,
            "speedup": self.speedup,
            "fabric_events_per_second": self.fabric_events_per_second,
            "baseline_events_per_second": self.baseline_events_per_second,
            "cache_hit_rate": self.cache_hit_rate,
            "cache_evictions": self.cache_evictions,
        }


class _AccountingExecutor(CodecExecutor):
    """A CodecExecutor that totals the engine-accounted seconds it charged.

    The cache only consults the executor on a miss, so this total *is*
    the compression cost the fabric path actually paid — no second
    timing site, just a sum over the engine's own accounting.
    """

    def __init__(self, cost_model: CodecCostModel, cpu: CpuModel) -> None:
        super().__init__(cost_model=cost_model, cpu=cpu, expansion_fallback=True)
        self.seconds_charged = 0.0
        self.runs = 0

    def compress(self, method, block, codec=None):
        execution = super().compress(method, block, codec=codec)
        self.seconds_charged += execution.seconds
        self.runs += 1
        return execution


def _zipf_weights(count: int, exponent: float) -> List[float]:
    return [1.0 / (rank**exponent) for rank in range(1, count + 1)]


def run_fanout(
    config: FanoutConfig = FanoutConfig(),
    registry: Optional[MetricsRegistry] = None,
) -> FanoutResult:
    """Run one fan-out scenario; deterministic for a given config."""
    rng = random.Random(config.seed)
    channel_weights = _zipf_weights(config.channels, config.zipf_exponent)
    spec_weights = _zipf_weights(len(config.specs), config.zipf_exponent)
    channel_of = rng.choices(range(config.channels), channel_weights, k=config.subscribers)
    spec_of = rng.choices(range(len(config.specs)), spec_weights, k=config.subscribers)

    link: SimulatedLink = make_link(config.link, seed=config.seed)
    fabric_executor = _AccountingExecutor(DEFAULT_COSTS, SUN_FIRE)
    cache = BlockCache(
        max_entries=config.cache_entries,
        max_bytes=config.cache_bytes,
        registry=registry,
    )
    fabric = EventFabric(
        shards=config.shards,
        executor=fabric_executor,
        cache=cache,
        registry=registry,
        mode="inline",
    )

    # -- wire up the population --------------------------------------------------
    fabric_crcs = [0] * config.subscribers
    fabric_send_seconds = [0.0]
    # Zero-copy audit: every sink sees the one shared view its delivery
    # group encoded, so counting runs of distinct wire objects must land
    # exactly on the fabric's encode counter.  Group members are served
    # consecutively in inline mode, and holding the previous view alive
    # makes the ``is`` comparison immune to id reuse.
    wire_views = {"last": None, "distinct": 0}
    batch_config = (
        BatchConfig(max_frames=config.batch_frames, max_bytes=config.batch_bytes)
        if config.batch
        else None
    )

    def make_sink(subscriber: int):
        def sink(event: Optional[Event], wire: Optional[memoryview]) -> None:
            assert wire is not None
            if config.batch:
                fabric_crcs[subscriber] = _crc_member_frames(wire, fabric_crcs[subscriber])
            else:
                assert isinstance(wire, memoryview) and wire.readonly
                if wire is not wire_views["last"]:
                    wire_views["last"] = wire
                    wire_views["distinct"] += 1
                fabric_crcs[subscriber] = zlib.crc32(wire, fabric_crcs[subscriber])
            fabric_send_seconds[0] += link.mean_transfer_time(len(wire))

        return sink

    for subscriber in range(config.subscribers):
        method, params = config.specs[spec_of[subscriber]]
        fabric.subscribe(
            f"feed/{channel_of[subscriber]}",
            make_sink(subscriber),
            method=method,
            params=params,
            wire=True,
            batch=batch_config,
        )

    channels_used = len(fabric.channels())

    # -- publish the stream through the fabric -----------------------------------
    payloads = list(
        CommercialDataGenerator(seed=config.seed).stream(config.event_size, config.events)
    )
    subscribed_channels = fabric.channels()
    for index, payload in enumerate(payloads):
        for channel_id in subscribed_channels:
            fabric.publish(
                channel_id,
                Event(
                    payload=payload,
                    channel_id=channel_id,
                    sequence=index + 1,
                    timestamp=float(index),
                ),
            )

    fabric.flush()  # drain any partially filled batches
    if not config.batch and fabric.wire_frames_encoded != wire_views["distinct"]:
        raise AssertionError(
            f"zero-copy fan-out violated: {fabric.wire_frames_encoded} frames "
            f"encoded but sinks observed {wire_views['distinct']} distinct views"
        )

    fabric_seconds = fabric_executor.seconds_charged + fabric_send_seconds[0]

    # -- the per-subscriber-compression baseline ---------------------------------
    # Pre-fabric middleware: every subscriber's derived channel runs the
    # codec itself.  Identical bytes (codecs are deterministic), so the
    # wire is computed once per (payload, spec) and the *cost* charged
    # once per delivery — exactly what thread-per-connection forwarding
    # with per-channel CompressionHandlers paid.
    baseline_executor = _AccountingExecutor(DEFAULT_COSTS, SUN_FIRE)
    baseline_crcs = [0] * config.subscribers
    baseline_seconds = 0.0
    baseline_compressions = 0
    subscribers_by_channel: Dict[int, List[int]] = {}
    for subscriber in range(config.subscribers):
        subscribers_by_channel.setdefault(channel_of[subscriber], []).append(subscriber)

    for index, payload in enumerate(payloads):
        # Codecs are deterministic, so the baseline's bytes for one
        # (payload, spec) are computed once and only the *cost* is
        # charged per delivery; the wire frame is rebuilt per channel
        # because its header carries the channel id.
        execution_by_spec: Dict[int, object] = {}
        for channel, members in sorted(subscribers_by_channel.items()):
            event = Event(
                payload=payload,
                channel_id=f"feed/{channel}",
                sequence=index + 1,
                timestamp=float(index),
            )
            channel_wires: Dict[int, bytes] = {}
            for subscriber in members:
                spec_index = spec_of[subscriber]
                execution = execution_by_spec.get(spec_index)
                if execution is None:
                    method, _params = config.specs[spec_index]
                    execution = baseline_executor.compress(method, payload)
                    execution_by_spec[spec_index] = execution
                wire = channel_wires.get(spec_index)
                if wire is None:
                    attributes = _compression_attributes(execution, event)
                    delivered = (
                        event.with_attributes(**attributes)
                        if execution.method == "none"
                        else event.with_payload(execution.payload, **attributes)
                    )
                    wire = WireFormat.encode(delivered)
                    channel_wires[spec_index] = wire
                baseline_crcs[subscriber] = zlib.crc32(wire, baseline_crcs[subscriber])
                baseline_seconds += execution.seconds
                baseline_seconds += link.mean_transfer_time(len(wire))
                baseline_compressions += 1

    crc_ok = fabric_crcs == baseline_crcs
    combined = zlib.crc32(",".join(str(c) for c in fabric_crcs).encode())

    return FanoutResult(
        subscribers=config.subscribers,
        channels_used=channels_used,
        events_published=fabric.events_published,
        deliveries=fabric.deliveries_total,
        fanout_ratio=fabric.fanout_ratio,
        fabric_seconds=fabric_seconds,
        baseline_seconds=baseline_seconds,
        fabric_compressions=fabric_executor.runs,
        baseline_compressions=baseline_compressions,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        cache_evictions=cache.evictions,
        cache_hit_rate=cache.hit_rate,
        crc_ok=crc_ok,
        wire_crc32=combined,
        shard_events=list(fabric.shard_events),
        batches_emitted=fabric.batches_emitted,
        batched_frames=fabric.batched_frames_total,
    )


def _crc_member_frames(wire: memoryview, crc: int) -> int:
    """Chain ``crc`` over the member frames of ``wire``, jumbo or bare.

    Jumbo payloads carry the member frames verbatim and in order, so
    slicing them out by the offset table continues the exact CRC chain an
    unbatched delivery of the same frames would have produced — which is
    what lets a batched run share the bench baseline's integrity check.
    """
    parsed = parse_frame(wire)
    assert parsed is not None, "sink received a truncated frame"
    frame, _ = parsed
    if frame.header != JUMBO_HEADER:
        return zlib.crc32(wire, crc)
    payload = frame.payload
    count, offset = read_canonical_varint(payload, 0)
    lengths = []
    for _ in range(count):
        length, offset = read_canonical_varint(payload, offset)
        lengths.append(length)
    for length in lengths:
        crc = zlib.crc32(payload[offset : offset + length], crc)
        offset += length
    return crc


def _compression_attributes(execution, event: Event) -> Dict[str, object]:
    from ..middleware.attributes import (
        ATTR_COMPRESSION_METHOD,
        ATTR_COMPRESSION_SECONDS,
        ATTR_ORIGINAL_SIZE,
    )

    return {
        ATTR_COMPRESSION_METHOD: execution.method,
        ATTR_ORIGINAL_SIZE: event.size,
        ATTR_COMPRESSION_SECONDS: execution.seconds,
    }
