"""LEB128-style variable-length integers for codec headers.

Every codec in this package stores the original payload length (and the
Burrows-Wheeler pipeline stores chunk geometry) as varints so small blocks
do not pay a fixed 8-byte header tax.
"""

from __future__ import annotations

from typing import Tuple, Union

from .base import CorruptStreamError

__all__ = ["write_varint", "read_varint", "varint_size"]

_Buffer = Union[bytes, bytearray, memoryview]


def write_varint(buffer: bytearray, value: int) -> None:
    """Append ``value`` (non-negative) to ``buffer`` as a LEB128 varint."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buffer.append(byte | 0x80)
        else:
            buffer.append(byte)
            return


def read_varint(data: _Buffer, offset: int) -> Tuple[int, int]:
    """Read a varint at ``offset``; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise CorruptStreamError("truncated varint")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7
        if shift > 63:
            raise CorruptStreamError("varint too large")


def varint_size(value: int) -> int:
    """Number of bytes :func:`write_varint` will emit for ``value``."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size
