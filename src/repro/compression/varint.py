"""LEB128-style variable-length integers for codec headers.

Every codec in this package stores the original payload length (and the
Burrows-Wheeler pipeline stores chunk geometry) as varints so small blocks
do not pay a fixed 8-byte header tax.
"""

from __future__ import annotations

from typing import Tuple, Union

from .base import CorruptStreamError

__all__ = ["write_varint", "read_varint", "read_canonical_varint", "varint_size"]

_Buffer = Union[bytes, bytearray, memoryview]


def write_varint(buffer: bytearray, value: int) -> None:
    """Append ``value`` (non-negative) to ``buffer`` as a LEB128 varint."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buffer.append(byte | 0x80)
        else:
            buffer.append(byte)
            return


def read_varint(data: _Buffer, offset: int) -> Tuple[int, int]:
    """Read a varint at ``offset``; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise CorruptStreamError("truncated varint")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7
        if shift > 63:
            raise CorruptStreamError("varint too large")


def read_canonical_varint(data: _Buffer, offset: int) -> Tuple[int, int]:
    """Like :func:`read_varint`, but reject over-long (non-canonical) encodings.

    LEB128 admits infinitely many encodings of every value by padding with
    ``0x80 ... 0x00`` continuation groups; :func:`write_varint` only ever
    emits the shortest one.  A parser that accepts the padded forms lets a
    single corrupted length byte alias to a valid shorter frame, so wire
    parsers must call this variant: a multi-byte encoding whose final
    (terminating) byte is ``0x00`` contributes no value bits and raises
    :class:`~repro.compression.base.CorruptStreamError`.
    """
    value, end = read_varint(data, offset)
    if end - offset > 1 and data[end - 1] == 0x00:
        raise CorruptStreamError("non-canonical (over-long) varint")
    return value, end


def varint_size(value: int) -> int:
    """Number of bytes :func:`write_varint` will emit for ``value``."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size
