"""Bit-level input/output used by the entropy coders.

The coders in this package (Huffman, arithmetic, LZ77 pointer encoding)
produce and consume streams of individual bits.  ``BitWriter`` accumulates
bits most-significant-first into a ``bytearray``; ``BitReader`` replays such
a stream.  Both keep the bit order compatible so that
``BitReader(BitWriter-out)`` round-trips exactly.

The classes are deliberately simple and allocation-light: the adaptive
selection loop may compress many 128 KB blocks per run, so the hot paths
(``write_bits``/``read_bits``) avoid per-bit Python objects where possible.
"""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulate bits (MSB-first within each byte) into a byte buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._bit_count = 0

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._accumulator = (self._accumulator << 1) | (bit & 1)
        self._bit_count += 1
        if self._bit_count == 8:
            self._buffer.append(self._accumulator)
            self._accumulator = 0
            self._bit_count = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, most significant first."""
        if width < 0:
            raise ValueError("bit width must be non-negative")
        acc = (self._accumulator << width) | (value & ((1 << width) - 1))
        count = self._bit_count + width
        buffer = self._buffer
        while count >= 8:
            count -= 8
            buffer.append((acc >> count) & 0xFF)
        self._accumulator = acc & ((1 << count) - 1)
        self._bit_count = count

    def write_unary(self, value: int) -> None:
        """Append ``value`` one-bits followed by a terminating zero."""
        if value < 0:
            raise ValueError("unary values must be non-negative")
        # value ones then a zero, emitted as one (value+1)-bit pattern.
        self.write_bits(((1 << value) - 1) << 1, value + 1)

    def write_gamma(self, value: int) -> None:
        """Append Elias-gamma code for ``value`` (value >= 1)."""
        if value < 1:
            raise ValueError("gamma codes require value >= 1")
        width = value.bit_length()
        self.write_bits(0, width - 1)
        self.write_bits(value, width)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self._buffer) * 8 + self._bit_count

    def getvalue(self) -> bytes:
        """Return the stream padded with zero bits to a byte boundary."""
        if self._bit_count == 0:
            return bytes(self._buffer)
        tail = self._accumulator << (8 - self._bit_count)
        return bytes(self._buffer) + bytes([tail & 0xFF])


class BitReader:
    """Replay a bit stream produced by :class:`BitWriter`."""

    def __init__(self, data: bytes, start_bit: int = 0) -> None:
        self._data = data
        self._position = start_bit

    @property
    def position(self) -> int:
        """Current bit offset from the start of the stream."""
        return self._position

    @property
    def remaining(self) -> int:
        """Number of unread bits (including any final padding bits)."""
        return len(self._data) * 8 - self._position

    def seek(self, bit_position: int) -> None:
        """Jump to an absolute bit offset (used for synchronized decode)."""
        if bit_position < 0 or bit_position > len(self._data) * 8:
            raise ValueError("seek outside of stream")
        self._position = bit_position

    def read_bit(self) -> int:
        """Read one bit; raises ``EOFError`` past the end of the stream."""
        pos = self._position
        byte_index = pos >> 3
        if byte_index >= len(self._data):
            raise EOFError("bit stream exhausted")
        self._position = pos + 1
        return (self._data[byte_index] >> (7 - (pos & 7))) & 1

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer (MSB first)."""
        if width < 0:
            raise ValueError("bit width must be non-negative")
        pos = self._position
        end = pos + width
        data = self._data
        if end > len(data) * 8:
            raise EOFError("bit stream exhausted")
        first_byte = pos >> 3
        last_byte = (end + 7) >> 3
        chunk = int.from_bytes(data[first_byte:last_byte], "big")
        total_bits = (last_byte - first_byte) * 8
        chunk >>= total_bits - (end - first_byte * 8)
        self._position = end
        return chunk & ((1 << width) - 1)

    def read_unary(self) -> int:
        """Read a unary code written by :meth:`BitWriter.write_unary`."""
        count = 0
        while self.read_bit():
            count += 1
        return count

    def read_gamma(self) -> int:
        """Read an Elias-gamma code written by :meth:`BitWriter.write_gamma`."""
        zeros = 0
        while not self.read_bit():
            zeros += 1
        value = 1
        for _ in range(zeros):
            value = (value << 1) | self.read_bit()
        return value
