"""The one self-describing wire format shared by every transport layer.

Before this module existed the tree carried three incompatible frame
formats (block streaming, event transport, raw TCP length prefixes).
Now there is exactly one frame layout and exactly one frame parser.

Two frame versions coexist on the wire:

* **v1 (legacy)** — ``varint header_length | header | varint
  payload_length | payload``.  Still parsed so fixtures and streams
  recorded before checksums existed keep working.
* **v2 (checked)** — the same body wrapped in an integrity envelope::

      0x80 0x00 | varint flags | varint header_length | header
                | varint payload_length | payload | crc32 (4 bytes LE)

  The two-byte marker is an *over-long varint encoding of zero*, which
  the parser rejects as non-canonical — so no valid v1 frame can start
  with it, and the versions need no out-of-band negotiation.  ``flags``
  bit 0 (:data:`FLAG_CRC32`) says a little-endian CRC32 of
  ``header + payload`` trails the frame; unknown flag bits are a parse
  error, which is how future versions stay detectable.  A checksum
  mismatch raises :class:`~repro.compression.base.CorruptStreamError`
  instead of handing corrupt bytes to a codec.

:func:`encode_frame` emits v2 by default; pass ``check=False`` for the
legacy layout.

Only the *interpretation* of the header belongs to the producing layer:

* block streams (:mod:`repro.compression.streaming`) put the codec
  method name there (ASCII, at most :data:`MAX_METHOD_NAME` bytes) —
  read it back through :attr:`Frame.method`;
* the event transports (:mod:`repro.middleware.transport`,
  :mod:`repro.middleware.tcp`) put a JSON metadata document there;
* control messages (TCP subscription handshake) use an empty header.

Because the layout is shared, a frame produced by any layer is
recoverable by any other layer's parser.

Hostile input is bounded: a frame whose declared header or payload
length exceeds the decoder's limits raises
:class:`~repro.compression.base.CorruptStreamError` immediately instead
of buffering indefinitely (``max_frame_size`` defaults to 16 MiB), and
over-long (non-canonical) varints are rejected so a corrupted length
byte cannot alias to a valid shorter frame.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from .base import CorruptStreamError
from .varint import varint_size, write_varint

__all__ = [
    "DEFAULT_MAX_FRAME_SIZE",
    "DEFAULT_MAX_HEADER_SIZE",
    "FLAG_CRC32",
    "FRAME_V2_MAGIC",
    "MAX_METHOD_NAME",
    "Frame",
    "FrameDecoder",
    "decode_frame",
    "encode_block_frame",
    "encode_frame",
    "parse_frame",
]

#: Upper bound on a declared payload length (satellite: a corrupt or
#: hostile header must not make a decoder buffer without bound).
DEFAULT_MAX_FRAME_SIZE = 16 * 1024 * 1024

#: Upper bound on a declared header length (JSON event headers are small;
#: method names are tiny).
DEFAULT_MAX_HEADER_SIZE = 1024 * 1024

#: Longest plausible codec method name carried in a block-stream header.
MAX_METHOD_NAME = 64

#: Version marker opening a v2 frame: an over-long varint encoding of
#: zero, invalid under canonical parsing, hence unambiguous.
FRAME_V2_MAGIC = b"\x80\x00"

#: v2 flags bit: a little-endian CRC32 of header+payload trails the frame.
FLAG_CRC32 = 0x01

_KNOWN_FLAGS = FLAG_CRC32
_CRC_SIZE = 4

_Buffer = Union[bytes, bytearray, memoryview]


@dataclass(frozen=True)
class Frame:
    """One parsed frame: opaque header bytes plus the payload.

    ``checked`` records whether the frame carried (and passed) a CRC32 —
    wire-format bookkeeping, deliberately excluded from equality.
    """

    header: bytes
    payload: bytes
    checked: bool = field(default=False, compare=False)

    @property
    def method(self) -> str:
        """Interpret the header as a codec method name (block streams)."""
        if not self.header or len(self.header) > MAX_METHOD_NAME:
            raise CorruptStreamError("implausible method-name length in frame")
        try:
            return self.header.decode("ascii")
        except UnicodeDecodeError as exc:
            raise CorruptStreamError("non-ASCII method name in frame") from exc

    @property
    def wire_size(self) -> int:
        """Encoded size of this frame including prefixes (and CRC if checked)."""
        body = (
            varint_size(len(self.header))
            + len(self.header)
            + varint_size(len(self.payload))
            + len(self.payload)
        )
        if self.checked:
            return len(FRAME_V2_MAGIC) + varint_size(FLAG_CRC32) + body + _CRC_SIZE
        return body


def encode_frame(header: bytes, payload: bytes, check: bool = True) -> bytes:
    """Encode one frame; ``check=True`` (default) adds the v2 CRC32 envelope."""
    out = bytearray()
    if check:
        out += FRAME_V2_MAGIC
        write_varint(out, FLAG_CRC32)
    write_varint(out, len(header))
    out += header
    write_varint(out, len(payload))
    out += payload
    if check:
        crc = zlib.crc32(header)
        crc = zlib.crc32(payload, crc)
        out += crc.to_bytes(_CRC_SIZE, "little")
    return bytes(out)


def encode_block_frame(method: str, payload: bytes, check: bool = True) -> bytes:
    """Encode a block-stream frame whose header is the codec method name."""
    name = method.encode("ascii")
    if not name or len(name) > MAX_METHOD_NAME:
        raise ValueError(f"method name {method!r} is not frameable")
    return encode_frame(name, payload, check=check)


def _read_varint_partial(data: _Buffer, position: int) -> Optional[Tuple[int, int]]:
    """Canonical varint read distinguishing *incomplete* (None) from *malformed*."""
    result = 0
    shift = 0
    while True:
        if position >= len(data):
            return None
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if shift > 0 and byte == 0x00:
                raise CorruptStreamError("non-canonical (over-long) varint in frame")
            return result, position
        shift += 7
        if shift > 63:
            raise CorruptStreamError("oversized varint in frame header")


def parse_frame(
    data: _Buffer,
    offset: int = 0,
    max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
    max_header_size: int = DEFAULT_MAX_HEADER_SIZE,
) -> Optional[Tuple[Frame, int]]:
    """THE frame parser (the only one in the tree); accepts v1 and v2.

    Returns ``(frame, next_offset)``, or ``None`` when ``data`` holds
    only a prefix of a frame.  Raises
    :class:`~repro.compression.base.CorruptStreamError` when the input
    cannot be a valid frame — malformed or non-canonical varints,
    declared lengths beyond ``max_header_size`` / ``max_frame_size``,
    unknown v2 flags, or a CRC32 mismatch.
    """
    flags = 0
    position = offset
    if position < len(data) and data[position] == FRAME_V2_MAGIC[0]:
        if position + 1 >= len(data):
            return None  # could be the v2 magic or a multi-byte varint
        if data[position + 1] == FRAME_V2_MAGIC[1]:
            position += len(FRAME_V2_MAGIC)
            parsed = _read_varint_partial(data, position)
            if parsed is None:
                return None
            flags, position = parsed
            if flags & ~_KNOWN_FLAGS:
                raise CorruptStreamError(
                    f"unknown frame flags {flags:#x} (decoder too old?)"
                )
    parsed = _read_varint_partial(data, position)
    if parsed is None:
        return None
    header_length, position = parsed
    if header_length > max_header_size:
        raise CorruptStreamError(
            f"frame header of {header_length} bytes exceeds limit of {max_header_size}"
        )
    if len(data) - position < header_length:
        return None
    header_end = position + header_length
    parsed = _read_varint_partial(data, header_end)
    if parsed is None:
        return None
    payload_length, position = parsed
    if payload_length > max_frame_size:
        raise CorruptStreamError(
            f"frame payload of {payload_length} bytes exceeds max_frame_size "
            f"of {max_frame_size}"
        )
    if len(data) - position < payload_length:
        return None
    payload_end = position + payload_length
    header = bytes(data[header_end - header_length : header_end])
    payload = bytes(data[position:payload_end])
    checked = bool(flags & FLAG_CRC32)
    if checked:
        if len(data) - payload_end < _CRC_SIZE:
            return None
        declared = int.from_bytes(data[payload_end : payload_end + _CRC_SIZE], "little")
        computed = zlib.crc32(payload, zlib.crc32(header))
        if declared != computed:
            raise CorruptStreamError(
                f"frame checksum mismatch (declared {declared:#010x}, "
                f"computed {computed:#010x})"
            )
        payload_end += _CRC_SIZE
    return Frame(header=header, payload=payload, checked=checked), payload_end


def decode_frame(
    data: _Buffer,
    offset: int = 0,
    max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
    max_header_size: int = DEFAULT_MAX_HEADER_SIZE,
) -> Tuple[Frame, int]:
    """Parse one complete frame; truncation raises ``CorruptStreamError``."""
    parsed = parse_frame(
        data, offset, max_frame_size=max_frame_size, max_header_size=max_header_size
    )
    if parsed is None:
        raise CorruptStreamError("truncated frame")
    return parsed


class FrameDecoder:
    """Incremental decoder: feed arbitrary byte chunks, get complete frames.

    Buffering is bounded by the limits: a frame whose declared lengths
    exceed them raises immediately, so a corrupt or hostile stream can
    never make the decoder hold more than roughly
    ``max_header_size + max_frame_size`` bytes.  Checked (v2) and legacy
    (v1) frames may be interleaved; ``frames_rejected`` counts feeds
    that raised on corrupt input.
    """

    def __init__(
        self,
        max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
        max_header_size: int = DEFAULT_MAX_HEADER_SIZE,
    ) -> None:
        if max_frame_size < 0 or max_header_size < 0:
            raise ValueError("frame limits must be non-negative")
        self.max_frame_size = max_frame_size
        self.max_header_size = max_header_size
        self._buffer = bytearray()
        self.frames_decoded = 0
        self.frames_rejected = 0

    def feed(self, data: bytes) -> List[Frame]:
        """Accept bytes; returns every frame completed by them."""
        self._buffer += data
        frames: List[Frame] = []
        offset = 0
        try:
            while True:
                parsed = parse_frame(
                    self._buffer,
                    offset,
                    max_frame_size=self.max_frame_size,
                    max_header_size=self.max_header_size,
                )
                if parsed is None:
                    break
                frame, offset = parsed
                frames.append(frame)
                self.frames_decoded += 1
        except CorruptStreamError:
            self.frames_rejected += 1
            raise
        finally:
            if offset:
                del self._buffer[:offset]
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a complete frame."""
        return len(self._buffer)

    def close(self) -> None:
        """Assert the stream ended cleanly at a frame boundary."""
        if self._buffer:
            raise CorruptStreamError(
                f"{len(self._buffer)} trailing bytes mid-frame at stream end"
            )
