"""The one self-describing wire format shared by every transport layer.

Before this module existed the tree carried three incompatible frame
formats (block streaming, event transport, raw TCP length prefixes).
Now there is exactly one frame layout and exactly one frame parser.

Two frame versions coexist on the wire:

* **v1 (legacy)** — ``varint header_length | header | varint
  payload_length | payload``.  Still parsed so fixtures and streams
  recorded before checksums existed keep working.
* **v2 (checked)** — the same body wrapped in an integrity envelope::

      0x80 0x00 | varint flags | varint header_length | header
                | varint payload_length | payload | crc32 (4 bytes LE)

  The two-byte marker is an *over-long varint encoding of zero*, which
  the parser rejects as non-canonical — so no valid v1 frame can start
  with it, and the versions need no out-of-band negotiation.  ``flags``
  bit 0 (:data:`FLAG_CRC32`) says a little-endian CRC32 of
  ``header + payload`` trails the frame; unknown flag bits are a parse
  error, which is how future versions stay detectable.  A checksum
  mismatch raises :class:`~repro.compression.base.CorruptStreamError`
  instead of handing corrupt bytes to a codec.

:func:`encode_frame` emits v2 by default; pass ``check=False`` for the
legacy layout.

Only the *interpretation* of the header belongs to the producing layer:

* block streams (:mod:`repro.compression.streaming`) put the codec
  method name there (ASCII, at most :data:`MAX_METHOD_NAME` bytes) —
  read it back through :attr:`Frame.method`;
* the event transports (:mod:`repro.middleware.transport`,
  :mod:`repro.middleware.tcp`) put a JSON metadata document there;
* control messages (TCP subscription handshake) use an empty header.

Because the layout is shared, a frame produced by any layer is
recoverable by any other layer's parser.

Zero-copy discipline (the raw-speed floor):

* :func:`encode_frame` builds one ``bytearray`` and returns it without a
  final ``bytes`` copy; :func:`encode_frame_into` appends into a
  caller-owned buffer (batch assembly), and :func:`encode_frame_parts`
  returns the frame as a gather list whose header/payload elements are
  the caller's own objects — for ``sendmsg``-style vectored writes with
  no concatenation at all.
* :func:`parse_frame` / :func:`decode_frame` / :class:`FrameDecoder`
  return **lazy read-only memoryview slices** into the input buffer by
  default; pass ``copy=True`` to own the bytes (required when the
  caller retains frames past the lifetime of a reused input buffer).
  View-backed frames keep the whole input chunk alive — long-retained
  frames should be materialized via :attr:`Frame.header_bytes` /
  :attr:`Frame.payload_bytes`.

Hostile input is bounded: a frame whose declared header or payload
length exceeds the decoder's limits raises
:class:`~repro.compression.base.CorruptStreamError` immediately instead
of buffering indefinitely (``max_frame_size`` defaults to 16 MiB), and
over-long (non-canonical) varints are rejected so a corrupted length
byte cannot alias to a valid shorter frame.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from .base import CorruptStreamError
from .varint import read_canonical_varint, varint_size, write_varint

__all__ = [
    "DEFAULT_MAX_FRAME_SIZE",
    "DEFAULT_MAX_HEADER_SIZE",
    "FLAG_CRC32",
    "FRAME_V2_MAGIC",
    "JUMBO_HEADER",
    "MAX_METHOD_NAME",
    "Frame",
    "FrameDecoder",
    "decode_frame",
    "encode_block_frame",
    "encode_frame",
    "encode_frame_into",
    "encode_frame_parts",
    "encode_jumbo_frame",
    "is_jumbo_frame",
    "parse_frame",
    "unpack_jumbo_frame",
]

#: Upper bound on a declared payload length (satellite: a corrupt or
#: hostile header must not make a decoder buffer without bound).
DEFAULT_MAX_FRAME_SIZE = 16 * 1024 * 1024

#: Upper bound on a declared header length (JSON event headers are small;
#: method names are tiny).
DEFAULT_MAX_HEADER_SIZE = 1024 * 1024

#: Longest plausible codec method name carried in a block-stream header.
MAX_METHOD_NAME = 64

#: Version marker opening a v2 frame: an over-long varint encoding of
#: zero, invalid under canonical parsing, hence unambiguous.
FRAME_V2_MAGIC = b"\x80\x00"

#: v2 flags bit: a little-endian CRC32 of header+payload trails the frame.
FLAG_CRC32 = 0x01

_KNOWN_FLAGS = FLAG_CRC32
_CRC_SIZE = 4

#: Header of a jumbo (batch) super-frame.  Cannot collide with the other
#: header dialects: JSON event headers open with ``{``, codec method
#: names never contain ``/``, and control frames use an empty header.
JUMBO_HEADER = b"jumbo/1"

_Buffer = Union[bytes, bytearray, memoryview]


@dataclass(frozen=True)
class Frame:
    """One parsed frame: opaque header bytes plus the payload.

    ``header`` and ``payload`` are ``bytes`` when parsed with
    ``copy=True`` and read-only :class:`memoryview` slices of the input
    buffer otherwise (equality compares contents either way).  A view
    keeps its backing buffer alive; callers that retain a frame past the
    input's lifetime should take :attr:`header_bytes` /
    :attr:`payload_bytes`.  ``checked`` records whether the frame
    carried (and passed) a CRC32 — wire-format bookkeeping, deliberately
    excluded from equality.
    """

    header: Union[bytes, memoryview]
    payload: Union[bytes, memoryview]
    checked: bool = field(default=False, compare=False)

    @property
    def header_bytes(self) -> bytes:
        """The header as owned ``bytes`` (materializes a view)."""
        if isinstance(self.header, bytes):
            return self.header
        return bytes(self.header)  # copy-ok: explicit materialization point

    @property
    def payload_bytes(self) -> bytes:
        """The payload as owned ``bytes`` (materializes a view)."""
        if isinstance(self.payload, bytes):
            return self.payload
        return bytes(self.payload)  # copy-ok: explicit materialization point

    @property
    def method(self) -> str:
        """Interpret the header as a codec method name (block streams)."""
        if not self.header or len(self.header) > MAX_METHOD_NAME:
            raise CorruptStreamError("implausible method-name length in frame")
        try:
            return str(self.header, "ascii")
        except UnicodeDecodeError as exc:
            raise CorruptStreamError("non-ASCII method name in frame") from exc

    @property
    def wire_size(self) -> int:
        """Encoded size of this frame including prefixes (and CRC if checked)."""
        body = (
            varint_size(len(self.header))
            + len(self.header)
            + varint_size(len(self.payload))
            + len(self.payload)
        )
        if self.checked:
            return len(FRAME_V2_MAGIC) + varint_size(FLAG_CRC32) + body + _CRC_SIZE
        return body


def encode_frame_into(
    out: bytearray, header: _Buffer, payload: _Buffer, check: bool = True
) -> int:
    """Append one encoded frame to ``out``; returns the bytes written.

    The zero-copy assembly primitive: batchers and scratch-buffer reuse
    paths append many frames into one preallocated ``bytearray`` and
    take views afterwards (never while still appending — a resize with
    live exports raises ``BufferError``).
    """
    start = len(out)
    if check:
        out += FRAME_V2_MAGIC
        write_varint(out, FLAG_CRC32)
    write_varint(out, len(header))
    out += header
    write_varint(out, len(payload))
    out += payload
    if check:
        crc = zlib.crc32(payload, zlib.crc32(header))
        out += crc.to_bytes(_CRC_SIZE, "little")
    return len(out) - start


def encode_frame(header: _Buffer, payload: _Buffer, check: bool = True) -> bytearray:
    """Encode one frame; ``check=True`` (default) adds the v2 CRC32 envelope.

    Returns the assembled ``bytearray`` itself — no trailing ``bytes``
    copy.  The caller owns the buffer exclusively.
    """
    out = bytearray()
    encode_frame_into(out, header, payload, check=check)
    return out


def encode_frame_parts(
    header: _Buffer, payload: _Buffer, check: bool = True
) -> List[_Buffer]:
    """Encode one frame as a gather list for vectored (``sendmsg``) writes.

    The returned list interleaves small owned prefix buffers with the
    caller's ``header``/``payload`` objects **unchanged** — a large
    payload is never copied into a contiguous frame.  Joining the parts
    yields exactly :func:`encode_frame`'s output.
    """
    prefix = bytearray()
    if check:
        prefix += FRAME_V2_MAGIC
        write_varint(prefix, FLAG_CRC32)
    write_varint(prefix, len(header))
    middle = bytearray()
    write_varint(middle, len(payload))
    parts: List[_Buffer] = [prefix, header, middle, payload]
    if check:
        crc = zlib.crc32(payload, zlib.crc32(header))
        parts.append(crc.to_bytes(_CRC_SIZE, "little"))
    return parts


def encode_block_frame(method: str, payload: _Buffer, check: bool = True) -> bytearray:
    """Encode a block-stream frame whose header is the codec method name."""
    name = method.encode("ascii")
    if not name or len(name) > MAX_METHOD_NAME:
        raise ValueError(f"method name {method!r} is not frameable")
    return encode_frame(name, payload, check=check)


def _read_varint_partial(data: _Buffer, position: int) -> Optional[Tuple[int, int]]:
    """Canonical varint read distinguishing *incomplete* (None) from *malformed*."""
    result = 0
    shift = 0
    while True:
        if position >= len(data):
            return None
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if shift > 0 and byte == 0x00:
                raise CorruptStreamError("non-canonical (over-long) varint in frame")
            return result, position
        shift += 7
        if shift > 63:
            raise CorruptStreamError("oversized varint in frame header")


def parse_frame(
    data: _Buffer,
    offset: int = 0,
    max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
    max_header_size: int = DEFAULT_MAX_HEADER_SIZE,
    copy: bool = False,
) -> Optional[Tuple[Frame, int]]:
    """THE frame parser (the only one in the tree); accepts v1 and v2.

    Returns ``(frame, next_offset)``, or ``None`` when ``data`` holds
    only a prefix of a frame.  The frame's header/payload are lazy
    read-only :class:`memoryview` slices of ``data`` (zero-copy); pass
    ``copy=True`` when the caller must own the bytes — e.g. when
    ``data`` is a reused receive buffer that will be overwritten.
    Raises :class:`~repro.compression.base.CorruptStreamError` when the
    input cannot be a valid frame — malformed or non-canonical varints,
    declared lengths beyond ``max_header_size`` / ``max_frame_size``,
    unknown v2 flags, or a CRC32 mismatch.
    """
    flags = 0
    position = offset
    if position < len(data) and data[position] == FRAME_V2_MAGIC[0]:
        if position + 1 >= len(data):
            return None  # could be the v2 magic or a multi-byte varint
        if data[position + 1] == FRAME_V2_MAGIC[1]:
            position += len(FRAME_V2_MAGIC)
            parsed = _read_varint_partial(data, position)
            if parsed is None:
                return None
            flags, position = parsed
            if flags & ~_KNOWN_FLAGS:
                raise CorruptStreamError(
                    f"unknown frame flags {flags:#x} (decoder too old?)"
                )
    parsed = _read_varint_partial(data, position)
    if parsed is None:
        return None
    header_length, position = parsed
    if header_length > max_header_size:
        raise CorruptStreamError(
            f"frame header of {header_length} bytes exceeds limit of {max_header_size}"
        )
    if len(data) - position < header_length:
        return None
    header_end = position + header_length
    parsed = _read_varint_partial(data, header_end)
    if parsed is None:
        return None
    payload_length, position = parsed
    if payload_length > max_frame_size:
        raise CorruptStreamError(
            f"frame payload of {payload_length} bytes exceeds max_frame_size "
            f"of {max_frame_size}"
        )
    if len(data) - position < payload_length:
        return None
    payload_end = position + payload_length
    # One view over the input; header/payload are lazy slices of it.
    view = memoryview(data).toreadonly()
    header: _Buffer = view[header_end - header_length : header_end]
    payload: _Buffer = view[position:payload_end]
    checked = bool(flags & FLAG_CRC32)
    if checked:
        if len(data) - payload_end < _CRC_SIZE:
            return None
        declared = int.from_bytes(view[payload_end : payload_end + _CRC_SIZE], "little")
        computed = zlib.crc32(payload, zlib.crc32(header))
        if declared != computed:
            raise CorruptStreamError(
                f"frame checksum mismatch (declared {declared:#010x}, "
                f"computed {computed:#010x})"
            )
        payload_end += _CRC_SIZE
    if copy:
        header = bytes(header)  # copy-ok: the copy= escape hatch
        payload = bytes(payload)  # copy-ok: the copy= escape hatch
    return Frame(header=header, payload=payload, checked=checked), payload_end


def decode_frame(
    data: _Buffer,
    offset: int = 0,
    max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
    max_header_size: int = DEFAULT_MAX_HEADER_SIZE,
    copy: bool = False,
) -> Tuple[Frame, int]:
    """Parse one complete frame; truncation raises ``CorruptStreamError``."""
    parsed = parse_frame(
        data,
        offset,
        max_frame_size=max_frame_size,
        max_header_size=max_header_size,
        copy=copy,
    )
    if parsed is None:
        raise CorruptStreamError("truncated frame")
    return parsed


class FrameDecoder:
    """Incremental decoder: feed arbitrary byte chunks, get complete frames.

    Zero-copy: frames completed by a feed are view-backed slices of an
    immutable ``bytes`` buffer (the fed chunk, prefixed by any held-over
    tail), so a chunk containing whole frames is parsed without copying
    a single payload byte.  Only the *unconsumed* tail is carried into
    the next feed — the decoder never compacts a buffer other frames
    still view (which would raise ``BufferError`` on a ``bytearray``).
    Construct with ``copy=True`` when frames are retained long past each
    feed and pinning whole receive chunks is unacceptable.

    Buffering is bounded by the limits: a frame whose declared lengths
    exceed them raises immediately, so a corrupt or hostile stream can
    never make the decoder hold more than roughly
    ``max_header_size + max_frame_size`` bytes.  Checked (v2) and legacy
    (v1) frames may be interleaved; ``frames_rejected`` counts feeds
    that raised on corrupt input.
    """

    def __init__(
        self,
        max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
        max_header_size: int = DEFAULT_MAX_HEADER_SIZE,
        copy: bool = False,
    ) -> None:
        if max_frame_size < 0 or max_header_size < 0:
            raise ValueError("frame limits must be non-negative")
        self.max_frame_size = max_frame_size
        self.max_header_size = max_header_size
        self.copy = copy
        self._tail = b""
        self.frames_decoded = 0
        self.frames_rejected = 0

    def feed(self, data: _Buffer) -> List[Frame]:
        """Accept bytes; returns every frame completed by them."""
        if not isinstance(data, bytes):
            # copy-ok: snapshot mutable input once so parsed views stay
            # immutable; the hot path (socket recv) already feeds bytes.
            data = bytes(data)
        buffer = self._tail + data if self._tail else data
        frames: List[Frame] = []
        offset = 0
        try:
            while True:
                parsed = parse_frame(
                    buffer,
                    offset,
                    max_frame_size=self.max_frame_size,
                    max_header_size=self.max_header_size,
                    copy=self.copy,
                )
                if parsed is None:
                    break
                frame, offset = parsed
                frames.append(frame)
                self.frames_decoded += 1
        except CorruptStreamError:
            self.frames_rejected += 1
            raise
        finally:
            # bytes slicing: a full-buffer slice is the same object, so
            # the no-progress case costs nothing.
            self._tail = buffer[offset:]
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a complete frame."""
        return len(self._tail)

    def close(self) -> None:
        """Assert the stream ended cleanly at a frame boundary."""
        if self._tail:
            raise CorruptStreamError(
                f"{len(self._tail)} trailing bytes mid-frame at stream end"
            )


# -- jumbo (batch) super-frames ---------------------------------------------------
#
# A jumbo frame coalesces many small event frames into one v2 frame so
# per-frame syscall and delivery costs amortize across a batch.  It is an
# ordinary checked frame (any framing-aware peer parses the envelope)
# whose header is :data:`JUMBO_HEADER` and whose payload is an inner
# offset table followed by the member frames verbatim::
#
#     varint count | count x varint frame_length | frames...
#
# The up-front length table lets a receiver slice every member without
# scanning, and :func:`unpack_jumbo_frame` re-parses each member through
# the one frame parser — members keep their own CRCs, so corruption is
# attributed to a single inner frame, not the whole batch.


def encode_jumbo_frame(frames: List[_Buffer]) -> bytearray:
    """Coalesce encoded frames into one jumbo super-frame (single buffer).

    Each element of ``frames`` must be one complete encoded frame (the
    output of :func:`encode_frame` or a view of it).  Assembly writes the
    envelope, the offset table, and the members into one ``bytearray`` —
    each member is copied exactly once (the price of coalescing) and the
    envelope is never reassembled.
    """
    if not frames:
        raise ValueError("a jumbo frame needs at least one member frame")
    table = bytearray()
    write_varint(table, len(frames))
    for frame in frames:
        write_varint(table, len(frame))
    payload_length = len(table) + sum(len(frame) for frame in frames)
    out = bytearray()
    out += FRAME_V2_MAGIC
    write_varint(out, FLAG_CRC32)
    write_varint(out, len(JUMBO_HEADER))
    out += JUMBO_HEADER
    write_varint(out, payload_length)
    payload_start = len(out)
    out += table
    for frame in frames:
        out += frame
    # The temporary view is released as soon as crc32 returns, so the
    # trailing append below may still resize the buffer.
    crc = zlib.crc32(memoryview(out)[payload_start:], zlib.crc32(JUMBO_HEADER))
    out += crc.to_bytes(_CRC_SIZE, "little")
    return out


def is_jumbo_frame(frame: Frame) -> bool:
    """Whether ``frame`` is a jumbo super-frame (by header dialect)."""
    return len(frame.header) == len(JUMBO_HEADER) and frame.header == JUMBO_HEADER


def unpack_jumbo_frame(
    frame: Frame,
    max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
    max_header_size: int = DEFAULT_MAX_HEADER_SIZE,
) -> Optional[List[Frame]]:
    """Recover the member frames of a jumbo super-frame, zero-copy.

    Returns ``None`` when ``frame`` is not a jumbo frame (callers treat
    it as an ordinary event frame).  Members are parsed as lazy views
    into the jumbo payload; a member whose parsed extent disagrees with
    the offset table, or trailing garbage after the last member, raises
    :class:`~repro.compression.base.CorruptStreamError`.
    """
    if not is_jumbo_frame(frame):
        return None
    payload = frame.payload
    count, position = read_canonical_varint(payload, 0)
    if count < 1 or count > len(payload):
        raise CorruptStreamError(f"implausible jumbo member count {count}")
    lengths: List[int] = []
    for _ in range(count):
        length, position = read_canonical_varint(payload, position)
        lengths.append(length)
    members: List[Frame] = []
    for length in lengths:
        if length > len(payload) - position:
            raise CorruptStreamError("jumbo offset table overruns the payload")
        member, end = decode_frame(
            payload,
            position,
            max_frame_size=max_frame_size,
            max_header_size=max_header_size,
        )
        if end - position != length:
            raise CorruptStreamError(
                f"jumbo member extent {end - position} disagrees with "
                f"offset table entry {length}"
            )
        members.append(member)
        position = end
    if position != len(payload):
        raise CorruptStreamError(
            f"{len(payload) - position} trailing bytes after the last jumbo member"
        )
    return members
