"""The Burrows-Wheeler transform (paper §2.4, refs [28, 29, 30]).

The forward transform computes a suffix array by prefix doubling over
numpy arrays (O(n log n), fully vectorized except the final LF walk of the
inverse), appends a unique smallest sentinel so every suffix is distinct,
and returns the last column together with the *primary index* (the row at
which the sentinel would appear).  The inverse rebuilds the text with the
classic LF-mapping backward walk.

The paper's step 1 — "creates pointers to all characters of the file …
sorted according to the characters to which they are pointing; the
preceding characters … are sent to the next step" — is exactly the
last-column-of-sorted-suffixes construction implemented here.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import CorruptStreamError

__all__ = ["suffix_array", "bwt_transform", "bwt_inverse"]


def suffix_array(values: np.ndarray) -> np.ndarray:
    """Suffix array of an integer sequence via prefix doubling.

    ``values`` must be non-negative.  Returns the permutation ``sa`` such
    that the suffixes ``values[sa[0]:], values[sa[1]:], ...`` are in
    ascending lexicographic order.  Guaranteed to terminate with all ranks
    distinct when the sequence ends in a unique minimal sentinel.
    """
    n = len(values)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    rank = np.asarray(values, dtype=np.int64)
    k = 1
    while True:
        second = np.full(n, -1, dtype=np.int64)
        second[: n - k] = rank[k:]
        order = np.lexsort((second, rank))
        rank_sorted = rank[order]
        second_sorted = second[order]
        boundary = np.ones(n, dtype=bool)
        boundary[1:] = (rank_sorted[1:] != rank_sorted[:-1]) | (
            second_sorted[1:] != second_sorted[:-1]
        )
        new_rank = np.empty(n, dtype=np.int64)
        new_rank[order] = np.cumsum(boundary) - 1
        rank = new_rank
        if rank[order[-1]] == n - 1:
            return order
        k *= 2
        if k > 2 * n:  # pragma: no cover - defensive; cannot trigger with sentinel
            raise RuntimeError("prefix doubling failed to separate suffixes")


def bwt_transform(data: bytes) -> Tuple[bytes, int]:
    """Forward BWT.  Returns ``(last_column, primary_index)``.

    The sentinel itself is not part of ``last_column``; ``primary_index``
    records the row where it sat, which is all the inverse needs.
    """
    if not data:
        return b"", 0
    symbols = np.frombuffer(data, dtype=np.uint8).astype(np.int64) + 1
    terminated = np.append(symbols, 0)
    sa = suffix_array(terminated)
    m = len(terminated)
    preceding = terminated[(sa - 1) % m]
    primary = int(np.nonzero(sa == 0)[0][0])
    keep = np.ones(m, dtype=bool)
    keep[primary] = False
    last_column = (preceding[keep] - 1).astype(np.uint8)
    return last_column.tobytes(), primary


def bwt_inverse(last_column: bytes, primary: int) -> bytes:
    """Invert :func:`bwt_transform` via the LF mapping."""
    n = len(last_column)
    if n == 0:
        if primary != 0:
            raise CorruptStreamError("primary index out of range for empty block")
        return b""
    if not 0 <= primary <= n:
        raise CorruptStreamError("primary index out of range")
    m = n + 1
    column = np.empty(m, dtype=np.int64)
    values = np.frombuffer(last_column, dtype=np.uint8).astype(np.int64) + 1
    column[:primary] = values[:primary]
    column[primary] = 0
    column[primary + 1 :] = values[primary:]

    # Stable sort positions by symbol: position j lands at sorted slot
    # C[symbol] + rank(j), which *is* the LF mapping.
    order = np.argsort(column, kind="stable")
    lf = np.empty(m, dtype=np.int64)
    lf[order] = np.arange(m)

    # The classic walk iterates row = lf[row] one step per output byte.
    # Because lf is a permutation, the whole orbit can instead be batched
    # by pointer doubling: after k rounds the first 2**k positions are
    # known and ``jump`` holds lf**(2**k), so each round doubles the
    # recovered prefix with two vectorized gathers — O(m log m) numpy work
    # replacing m Python-level iterations.
    positions = np.empty(m, dtype=np.int64)
    positions[0] = primary
    filled = 1
    jump = lf
    while filled < m:
        count = min(filled, m - filled)
        positions[filled : filled + count] = jump[positions[:count]]
        filled += count
        if filled < m:
            jump = jump[jump]

    out = column[positions[::-1]]
    if out[m - 1] != 0:
        raise CorruptStreamError("sentinel did not surface at end of inverse BWT")
    body = out[:-1]
    if body.size and not body.all():
        raise CorruptStreamError("sentinel surfaced inside inverse BWT output")
    return (body - 1).astype(np.uint8).tobytes()
