"""The modified Burrows-Wheeler codec of paper §2.4.

Pipeline (per chunk, default 32 KB):

    chunk -> BWT -> move-to-front -> RLE (runs <= 254, alphabet 0..254)

then all chunks are **jointly Huffman coded** as a single symbol stream in
which byte 255 terminates each chunk.  Because canonical Huffman codes are
self-synchronizing (ref [31]), a receiver that starts decoding at an
arbitrary position inside the bitstream produces a few erroneous symbols,
locks on, and can then recover every chunk that begins after the next 255
marker — this is the paper's adaptation for out-of-order block delivery,
exposed here as :meth:`BurrowsWheelerCodec.decode_from`.

Chunk layout inside the joint symbol stream::

    [p0 p1 p2]   primary index, three base-254 digits (most significant first)
    [rle bytes]  alphabet 0..254
    [255]        chunk terminator

Wire format::

    varint  original_length
    varint  total_symbol_count          (only if original_length > 0)
    256 x 4-bit Huffman code lengths
    padded  Huffman bitstream
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .base import Codec, CorruptStreamError
from .bitio import BitReader, BitWriter
from .bwt import bwt_inverse, bwt_transform
from .huffman import HuffmanCode
from .mtf import mtf_decode, mtf_encode
from .rle import rle_decode, rle_encode
from .varint import read_varint, write_varint

__all__ = ["BurrowsWheelerCodec", "CHUNK_TERMINATOR", "DEFAULT_CHUNK_SIZE"]

CHUNK_TERMINATOR = 255
DEFAULT_CHUNK_SIZE = 32768
_PRIMARY_DIGITS = 3
_PRIMARY_BASE = 254


def _encode_primary(primary: int) -> bytes:
    """Primary index as three base-254 digits (values 0..253)."""
    if not 0 <= primary < _PRIMARY_BASE**_PRIMARY_DIGITS:
        raise ValueError("primary index too large for chunk header")
    digits = bytearray(_PRIMARY_DIGITS)
    for slot in range(_PRIMARY_DIGITS - 1, -1, -1):
        digits[slot] = primary % _PRIMARY_BASE
        primary //= _PRIMARY_BASE
    return bytes(digits)


def _decode_primary(digits: bytes) -> int:
    value = 0
    for digit in digits:
        if digit >= _PRIMARY_BASE:
            raise CorruptStreamError("invalid primary-index digit")
        value = value * _PRIMARY_BASE + digit
    return value


def _encode_chunk(chunk: bytes) -> bytes:
    """One chunk's contribution to the joint symbol stream."""
    last_column, primary = bwt_transform(chunk)
    coded = rle_encode(mtf_encode(last_column))
    return _encode_primary(primary) + coded + bytes([CHUNK_TERMINATOR])


def _decode_chunk(symbols: bytes) -> bytes:
    """Invert :func:`_encode_chunk` given the stream *without* terminator."""
    if len(symbols) < _PRIMARY_DIGITS:
        raise CorruptStreamError("chunk too short for its header")
    primary = _decode_primary(symbols[:_PRIMARY_DIGITS])
    last_column = mtf_decode(rle_decode(symbols[_PRIMARY_DIGITS:]))
    return bwt_inverse(last_column, primary)


class BurrowsWheelerCodec(Codec):
    """Chunked BWT + MTF + RLE-254 + joint Huffman (paper §2.4)."""

    name = "burrows-wheeler"
    family = "block-sorting"

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size < 64:
            raise ValueError("chunk_size must be at least 64 bytes")
        if chunk_size >= _PRIMARY_BASE**_PRIMARY_DIGITS:
            raise ValueError("chunk_size exceeds primary-index header capacity")
        self.chunk_size = chunk_size

    def compress(self, data: bytes) -> bytes:
        header = bytearray()
        write_varint(header, len(data))
        if not data:
            return bytes(header)
        stream = bytearray()
        for start in range(0, len(data), self.chunk_size):
            stream += _encode_chunk(data[start : start + self.chunk_size])
        write_varint(header, len(stream))
        frequencies = np.bincount(
            np.frombuffer(bytes(stream), dtype=np.uint8), minlength=256
        )
        code = HuffmanCode.from_frequencies(frequencies.tolist())
        table_writer = BitWriter()
        code.write_table(table_writer)
        bits = code.encode_bitstring(stream)
        padding = (-len(bits)) % 8
        bits += "0" * padding
        payload = int(bits, 2).to_bytes(len(bits) // 8, "big") if bits else b""
        return bytes(header) + table_writer.getvalue() + payload

    def decompress(self, payload: bytes) -> bytes:
        view = memoryview(payload)
        original_length, offset = read_varint(view, 0)
        if original_length == 0:
            if offset != len(payload):
                raise CorruptStreamError("trailing bytes after empty stream")
            return b""
        symbol_count, offset = read_varint(view, offset)
        reader = BitReader(payload, start_bit=offset * 8)
        code = HuffmanCode.read_table(reader, 256)
        symbols, _ = code.decode_symbols(payload, reader.position, symbol_count)
        chunks = _split_chunks(bytes(symbols))
        out = b"".join(_decode_chunk(chunk) for chunk in chunks)
        if len(out) != original_length:
            raise CorruptStreamError("decoded size does not match header length")
        return out

    def decode_from(self, payload: bytes, start_bit: int) -> Tuple[bytes, int]:
        """Resynchronizing decode from an arbitrary bit offset (paper §2.4).

        Decodes Huffman symbols starting at ``start_bit`` (which need not be
        a codeword boundary), discards everything before the first chunk
        terminator, and returns ``(recovered_bytes, chunks_recovered)`` for
        every complete chunk found after it.  The initial symbols may be
        garbage — that is the expected self-synchronization behaviour.
        """
        view = memoryview(payload)
        original_length, offset = read_varint(view, 0)
        if original_length == 0:
            return b"", 0
        symbol_count, offset = read_varint(view, offset)
        reader = BitReader(payload, start_bit=offset * 8)
        code = HuffmanCode.read_table(reader, 256)
        table_end = reader.position
        aligned_start = start_bit <= table_end
        if start_bit < table_end:
            start_bit = table_end
        symbols: List[int] = []
        position = start_bit
        # Decode until the bitstream runs out; the final padding may decode
        # to a few junk symbols, which _split_chunks discards after the last
        # terminator.
        while True:
            try:
                batch, position = code.decode_symbols(payload, position, 1)
            except (CorruptStreamError, EOFError):
                break
            symbols.extend(batch)
            if len(symbols) > symbol_count:
                break
        parts = bytes(symbols).split(bytes([CHUNK_TERMINATOR]))
        # parts[-1] is padding garbage (or empty); parts[0] is a partial
        # chunk unless decoding started at the true stream beginning.
        chunks = parts[:-1] if aligned_start else parts[1:-1]
        recovered = []
        for chunk in chunks:
            try:
                recovered.append(_decode_chunk(chunk))
            except CorruptStreamError:
                continue
        return b"".join(recovered), len(recovered)


def _split_chunks(stream: bytes) -> List[bytes]:
    """Strictly split the joint symbol stream at 255 terminators.

    The stream must end exactly at a terminator and contain at least one
    chunk — anything else is corruption.
    """
    parts = stream.split(bytes([CHUNK_TERMINATOR]))
    if parts[-1] != b"":
        raise CorruptStreamError("joint stream does not end at a chunk terminator")
    chunks = parts[:-1]
    if not chunks:
        raise CorruptStreamError("no chunks in joint stream")
    return chunks
