"""Parallel compression and parallel Huffman decoding (paper refs [31-33]).

The paper builds on the authors' earlier work on parallel compression:
block sizes were "chosen according to the efficiency of compression
methods based on [32, 33]" (Wiseman, *Parallel Compression*; Klein &
Wiseman, *Parallel Lempel Ziv Coding*), and the §2.4 chunk-synchronizable
Huffman stream exists precisely because "Huffman can be synchronized
easily, as shown in [31]" (Klein & Wiseman, *Parallel Huffman Decoding*).
This module supplies both systems:

* :class:`ParallelCodec` — a container that splits data into independent
  chunks and runs any base codec over them through a thread pool.  Each
  chunk is self-contained, so decompression parallelizes trivially and a
  lost/reordered chunk does not poison the rest.
* :func:`parallel_huffman_decode` — the Klein-Wiseman segment-decoding
  algorithm: split the bitstream into S segments at byte boundaries,
  decode each speculatively from its (guessed) start, then stitch by
  exploiting Huffman self-synchronization — a speculative decode that has
  locked onto the true codeword boundaries by the time the previous
  segment's decode reaches it can be accepted wholesale; otherwise the
  gap is re-decoded sequentially (rare).

The pool strategy is configurable because CPython's GIL splits the codec
population in two: ``threads`` yields wall-clock speedups only for codecs
that release the GIL (the zlib/bz2-backed natives), ``processes`` is what
the pure-Python codecs need (chunks and payloads pickle cheaply; the
codec instance rides along once per task), and ``serial`` is the
in-process fallback every broken pool degrades to.  The wire format is
identical under every strategy — chunk geometry depends only on
``chunk_size`` and payload bytes only on the base codec — so the choice
is purely an execution detail.
"""

from __future__ import annotations

from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Dict, List, Optional, Sequence, Tuple

from .base import Codec, CorruptStreamError
from .huffman import HuffmanCode
from .varint import read_varint, write_varint

__all__ = [
    "ParallelCodec",
    "POOL_STRATEGIES",
    "parallel_huffman_decode",
    "huffman_segment_table",
]

_MAGIC = b"PAR1"
DEFAULT_CHUNK_SIZE = 64 * 1024

POOL_STRATEGIES = ("threads", "processes", "serial")


def _apply_codec(codec: Codec, operation: str, chunk: bytes) -> bytes:
    """Process-pool task: run ``codec.compress``/``codec.decompress`` on a chunk.

    Module-level so it pickles; the codec instance travels with each task,
    which keeps workers stateless (no initializer handshake to get wrong).
    """
    if operation == "compress":
        return codec.compress(chunk)
    return codec.decompress(chunk)


class ParallelCodec(Codec):
    """Chunked parallel wrapper around any base codec.

    Wire format::

        PAR1
        varint chunk_count
        chunk_count x (varint original_len, varint compressed_len)
        concatenated chunk payloads

    ``strategy`` picks the pool: ``threads`` for GIL-releasing natives,
    ``processes`` for pure-Python codecs, ``serial`` for in-process
    execution.  A pool that breaks mid-map (killed worker, failed fork)
    degrades this codec to ``serial`` permanently and the map re-runs
    in-process, so callers never see the breakage — only identical bytes.
    """

    family = "parallel"

    def __init__(
        self,
        base: Codec,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        workers: int = 4,
        strategy: str = "threads",
    ) -> None:
        if chunk_size < 1024:
            raise ValueError("chunk_size must be at least 1 KB")
        if workers < 1:
            raise ValueError("workers must be positive")
        if strategy not in POOL_STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r} (want one of {POOL_STRATEGIES})"
            )
        self.base = base
        self.chunk_size = chunk_size
        self.workers = workers
        self.strategy = strategy
        self.degradations = 0
        self.name = f"parallel:{base.name}"

    def _make_executor(self) -> Optional[Executor]:
        if self.strategy == "threads":
            return ThreadPoolExecutor(max_workers=self.workers)
        if self.strategy == "processes":
            return ProcessPoolExecutor(max_workers=self.workers)
        return None

    def _map(self, operation: str, chunks: Sequence[bytes]) -> List[bytes]:
        """Apply the base codec over ``chunks`` under the current strategy."""
        if not chunks:
            return []
        if self.strategy != "serial":
            try:
                executor = self._make_executor()
            except (OSError, BrokenExecutor):
                executor = None  # fork/spawn failed: degrade below
            if executor is not None:
                try:
                    with executor:
                        if self.strategy == "processes":
                            tasks = [
                                executor.submit(_apply_codec, self.base, operation, chunk)
                                for chunk in chunks
                            ]
                            return [task.result() for task in tasks]
                        apply = getattr(self.base, operation)
                        return list(executor.map(apply, chunks))
                except BrokenExecutor:
                    pass  # degrade below
            self.degradations += 1
            self.strategy = "serial"
        apply = getattr(self.base, operation)
        return [apply(chunk) for chunk in chunks]

    def compress(self, data: bytes) -> bytes:
        chunks = [
            data[start : start + self.chunk_size]
            for start in range(0, len(data), self.chunk_size)
        ]
        payloads = self._map("compress", chunks)
        out = bytearray(_MAGIC)
        write_varint(out, len(chunks))
        for chunk, payload in zip(chunks, payloads):
            write_varint(out, len(chunk))
            write_varint(out, len(payload))
        for payload in payloads:
            out += payload
        return bytes(out)

    def decompress(self, payload: bytes) -> bytes:
        if payload[: len(_MAGIC)] != _MAGIC:
            raise CorruptStreamError("not a parallel container (bad magic)")
        offset = len(_MAGIC)
        chunk_count, offset = read_varint(payload, offset)
        geometry: List[Tuple[int, int]] = []
        for _ in range(chunk_count):
            original_length, offset = read_varint(payload, offset)
            compressed_length, offset = read_varint(payload, offset)
            geometry.append((original_length, compressed_length))
        pieces: List[bytes] = []
        for _, compressed_length in geometry:
            piece = payload[offset : offset + compressed_length]
            if len(piece) != compressed_length:
                raise CorruptStreamError("truncated parallel container")
            pieces.append(piece)
            offset += compressed_length
        if offset != len(payload):
            raise CorruptStreamError("trailing bytes after last chunk")
        chunks = self._map("decompress", pieces)
        for (original_length, _), chunk in zip(geometry, chunks):
            if len(chunk) != original_length:
                raise CorruptStreamError("chunk decoded to unexpected length")
        return b"".join(chunks)

    def decompress_chunk(self, payload: bytes, index: int) -> bytes:
        """Random access: decompress only chunk ``index``.

        The per-chunk independence that enables parallel decode also gives
        random access — a property the original paper's out-of-order block
        delivery relies on.
        """
        if payload[: len(_MAGIC)] != _MAGIC:
            raise CorruptStreamError("not a parallel container (bad magic)")
        offset = len(_MAGIC)
        chunk_count, offset = read_varint(payload, offset)
        if not 0 <= index < chunk_count:
            raise IndexError(f"chunk {index} out of range [0, {chunk_count})")
        geometry: List[Tuple[int, int]] = []
        for _ in range(chunk_count):
            original_length, offset = read_varint(payload, offset)
            compressed_length, offset = read_varint(payload, offset)
            geometry.append((original_length, compressed_length))
        start = offset + sum(length for _, length in geometry[:index])
        original_length, compressed_length = geometry[index]
        chunk = self.base.decompress(payload[start : start + compressed_length])
        if len(chunk) != original_length:
            raise CorruptStreamError("chunk decoded to unexpected length")
        return chunk


# --------------------------------------------------------------------------
# Parallel Huffman decoding (Klein & Wiseman, ref [31])
# --------------------------------------------------------------------------


def huffman_segment_table(
    code: HuffmanCode, data: bytes, start_bit: int, end_bit: int
) -> Tuple[List[int], List[int], int]:
    """Speculatively decode ``[start_bit, ...)`` until at/past ``end_bit``.

    Returns ``(boundary_bits, symbols, final_bit)`` where
    ``boundary_bits[i]`` is the bit position at which ``symbols[i]`` was
    decoded.  Decoding continues past ``end_bit`` just far enough to land
    exactly on a codeword boundary, so consecutive segments can be
    stitched.  Raises :class:`CorruptStreamError` only when the stream
    ends mid-codeword.
    """
    boundaries: List[int] = []
    symbols: List[int] = []
    position = start_bit
    total_bits = len(data) * 8
    while position < end_bit and position < total_bits:
        boundaries.append(position)
        try:
            decoded, position = code.decode_symbols(data, position, 1)
        except CorruptStreamError:
            # Mis-synchronized speculation can run into an invalid window
            # near the end; report what we have.
            boundaries.pop()
            break
        symbols.extend(decoded)
    return boundaries, symbols, position


def parallel_huffman_decode(
    code: HuffmanCode,
    data: bytes,
    symbol_count: int,
    start_bit: int = 0,
    segments: int = 4,
    workers: Optional[int] = None,
) -> List[int]:
    """Decode ``symbol_count`` symbols with speculative parallel segments.

    The Klein-Wiseman scheme: the payload's bit range is cut into
    ``segments`` equal parts at byte boundaries.  Segment 0 starts at the
    true stream start; every other segment starts decoding at its first
    byte boundary, which is generally *not* a codeword boundary — but
    Huffman codes self-synchronize, so after a few garbage symbols the
    speculative decode locks onto the true boundary sequence.  Stitching
    walks segment by segment: the true entry position into segment ``s+1``
    (known once segment ``s`` is resolved) is looked up in ``s+1``'s
    speculative boundary list; on a hit, the speculative suffix is
    accepted; on a miss (the speculation never synchronized) the segment
    is re-decoded sequentially from the true position.
    """
    if segments < 1:
        raise ValueError("segments must be positive")
    total_bits = len(data) * 8
    if symbol_count == 0:
        return []
    segment_span = max(8, ((total_bits - start_bit) // segments + 7) & ~7)
    starts = [start_bit]
    for index in range(1, segments):
        candidate = start_bit + index * segment_span
        candidate -= candidate % 8  # byte alignment, as in the original
        if candidate >= total_bits:
            break
        starts.append(candidate)
    ends = starts[1:] + [total_bits]

    def speculate(bounds: Tuple[int, int]) -> Tuple[List[int], List[int], int]:
        return huffman_segment_table(code, data, bounds[0], bounds[1])

    with ThreadPoolExecutor(max_workers=workers or len(starts)) as pool:
        tables = list(pool.map(speculate, zip(starts, ends)))

    symbols: List[int] = []
    position = start_bit
    for index, (boundaries, segment_symbols, final_bit) in enumerate(tables):
        if len(symbols) >= symbol_count:
            break
        if position == starts[index]:
            # The true boundary coincides with the speculation start
            # (always true for segment 0).
            symbols.extend(segment_symbols)
            position = final_bit
            continue
        # Find the true entry position in the speculative boundary list.
        lookup: Dict[int, int] = {bit: i for i, bit in enumerate(boundaries)}
        while position < ends[index] and position not in lookup:
            # Speculation had not synchronized yet at `position`: decode
            # sequentially until we join its chain (or leave the segment).
            decoded, position = code.decode_symbols(data, position, 1)
            symbols.extend(decoded)
            if len(symbols) >= symbol_count:
                break
        if len(symbols) >= symbol_count:
            break
        if position in lookup:
            join = lookup[position]
            symbols.extend(segment_symbols[join:])
            position = final_bit
        # else: we walked past the segment end sequentially; continue.
    if len(symbols) < symbol_count:
        raise CorruptStreamError(
            f"stream exhausted after {len(symbols)} of {symbol_count} symbols"
        )
    return symbols[:symbol_count]
