"""Codec registry — the extensibility point the middleware relies on.

Paper §3.2: "a new compression method can be introduced at any time during
a system's operation".  In our implementation that means registering a
:class:`~repro.compression.base.Codec` factory here; the method id (the
codec ``name``) is what travels in middleware quality attributes, and both
endpoints resolve it through this registry.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .arithmetic import ArithmeticCodec, ContextArithmeticCodec
from .base import Codec, CodecError
from .bwhuff import BurrowsWheelerCodec
from .huffman import HuffmanCodec
from .identity import IdentityCodec
from .lossy import QuantizedFloatCodec, TruncatedFloatCodec
from .lz77 import Lz77Codec
from .lzw import LzwCodec
from .native import (
    HAVE_LZ4,
    HAVE_ZSTD,
    NativeBwCodec,
    NativeLz4Codec,
    NativeLzCodec,
    NativeZstdCodec,
)
from .parallel import ParallelCodec
from .structured import ColumnarCodec, TemplateCodec

__all__ = [
    "register_codec",
    "unregister_codec",
    "get_codec",
    "available_codecs",
    "PAPER_METHODS",
]

#: The four methods the paper's selector chooses among, plus "none",
#: in the order used by Figures 8 and 11 (1 = none, 2 = LZ, 3 = BW,
#: 4 = Huffman for the molecular run).
PAPER_METHODS = ("none", "huffman", "lempel-ziv", "burrows-wheeler")

_FACTORIES: Dict[str, Callable[[], Codec]] = {}
_INSTANCES: Dict[str, Codec] = {}


def register_codec(name: str, factory: Callable[[], Codec]) -> None:
    """Register a codec factory under ``name`` (replacing any previous one)."""
    if not name:
        raise ValueError("codec name must be non-empty")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def unregister_codec(name: str) -> None:
    """Remove a codec from the registry; unknown names raise ``CodecError``."""
    if name not in _FACTORIES:
        raise CodecError(f"unknown codec: {name!r}")
    del _FACTORIES[name]
    _INSTANCES.pop(name, None)


def get_codec(name: str) -> Codec:
    """Return the shared instance for ``name`` (codecs are stateless)."""
    try:
        instance = _INSTANCES.get(name)
        if instance is None:
            instance = _FACTORIES[name]()
            _INSTANCES[name] = instance
        return instance
    except KeyError:
        raise CodecError(f"unknown codec: {name!r}") from None


def available_codecs() -> List[str]:
    """Names of all registered codecs, sorted."""
    return sorted(_FACTORIES)


def _register_builtins() -> None:
    register_codec("none", IdentityCodec)
    register_codec("huffman", HuffmanCodec)
    register_codec("arithmetic", ArithmeticCodec)
    register_codec("arithmetic-o1", ContextArithmeticCodec)
    register_codec("lempel-ziv", Lz77Codec)
    register_codec("lzw", LzwCodec)
    register_codec("burrows-wheeler", BurrowsWheelerCodec)
    register_codec("lempel-ziv-native", NativeLzCodec)
    register_codec("burrows-wheeler-native", NativeBwCodec)
    # Optional fast-compressor tier: registered only when a binding
    # imports, so environments without zstd/lz4 lose the operating
    # points but keep a working registry (paper §3.2's "introduced at
    # any time" — availability is a per-endpoint fact).
    if HAVE_ZSTD:
        register_codec("zstd-native", NativeZstdCodec)
    if HAVE_LZ4:
        register_codec("lz4-native", NativeLz4Codec)
    # The registered parallel codecs stay on the thread strategy: they run
    # inside WorkerPool processes too, and nesting process pools would
    # fork from forks.  Callers wanting processes construct ParallelCodec
    # directly with strategy="processes".
    register_codec(
        "parallel:lempel-ziv",
        lambda: ParallelCodec(Lz77Codec(), strategy="threads"),
    )
    register_codec(
        "parallel:burrows-wheeler",
        lambda: ParallelCodec(BurrowsWheelerCodec(), strategy="threads"),
    )
    # Structure-aware family: template-mined logs and columnar records.
    # Data-dependent by design — the selector only routes here when
    # data.analysis sniffing says the block looks structured.
    register_codec("template", TemplateCodec)
    register_codec("columnar", ColumnarCodec)
    # Application-specific lossy methods (§5) with default parameters;
    # users register tighter-tolerance instances under their own names.
    register_codec("quantized-float", QuantizedFloatCodec)
    register_codec("truncated-float", TruncatedFloatCodec)


_register_builtins()
