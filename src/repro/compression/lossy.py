"""Application-specific lossy compression (paper §5).

"Cases like these indicate the importance of permitting end users to
integrate their own, application-specific, lossy compression techniques
into data streaming middleware.  This is a topic of our current work."

The paper's problem case is the molecular coordinate field: random
mantissas defeat every lossless method.  Scientific workflows, however,
rarely need all 52 mantissa bits — instruments and integrators carry far
less precision.  This module supplies the two lossy codecs that work for
that data class, both with *guaranteed absolute error bounds*:

* :class:`QuantizedFloatCodec` — uniform scalar quantization of float64
  arrays to a caller-chosen tolerance, with the integer quanta
  delta-encoded and entropy coded (zig-zag + Elias gamma + Huffman-coded
  residuals via the lossless Lempel-Ziv codec).
* :class:`TruncatedFloatCodec` — mantissa truncation (keep the top
  ``mantissa_bits``), byte-plane shuffled and losslessly compressed; the
  relative error is bounded by ``2**-mantissa_bits``.

Both are normal :class:`~repro.compression.base.Codec` subclasses, so
they register, travel through middleware handlers, and participate in the
selector like any lossless method — except ``decompress(compress(x))``
returns an *approximation* whose error bound is checkable via
:meth:`max_error` / :meth:`max_relative_error`.
"""

from __future__ import annotations

import struct

import numpy as np

from .base import Codec, CorruptStreamError
from .lz77 import Lz77Codec
from .varint import read_varint, write_varint

__all__ = ["QuantizedFloatCodec", "TruncatedFloatCodec"]

_QUANT_MAGIC = b"LQF1"
_TRUNC_MAGIC = b"LTF1"


class QuantizedFloatCodec(Codec):
    """Uniform quantization of little-endian float64 payloads.

    ``tolerance`` is the guaranteed absolute reconstruction error bound:
    every decoded value differs from its original by at most
    ``tolerance`` (half a quantization step).  Inputs whose length is not
    a multiple of 8 raise — this codec is explicitly application-specific.
    """

    family = "lossy"

    def __init__(self, tolerance: float = 1e-3) -> None:
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.tolerance = tolerance
        self.name = f"quantized-float:{tolerance:g}"
        self._entropy = Lz77Codec()

    def max_error(self) -> float:
        """Guaranteed absolute error bound of a round trip."""
        return self.tolerance

    def compress(self, data: bytes) -> bytes:
        if len(data) % 8:
            raise CorruptStreamError("payload is not a float64 array")
        values = np.frombuffer(data, dtype="<f8")
        if not np.all(np.isfinite(values)):
            raise CorruptStreamError("lossy float codec requires finite values")
        step = 2.0 * self.tolerance
        quanta = np.round(values / step).astype(np.int64)
        deltas = np.diff(quanta, prepend=np.int64(0))
        zigzag = ((deltas << 1) ^ (deltas >> 63)).astype(np.uint64)
        # Values above 32 bits would overflow the packing; fall back to raw
        # 64-bit storage for those rare spikes via an escape plane.
        small = zigzag < np.uint64(0xFFFFFFFF)  # marker value itself escapes
        packed = np.where(small, zigzag, np.uint64(0xFFFFFFFF)).astype("<u4")
        escapes = zigzag[~small].astype("<u8").tobytes()
        body = self._entropy.compress(packed.tobytes())
        out = bytearray(_QUANT_MAGIC)
        out += struct.pack("<d", self.tolerance)
        write_varint(out, len(values))
        write_varint(out, len(escapes))
        out += escapes
        out += body
        return bytes(out)

    def decompress(self, payload: bytes) -> bytes:
        if payload[: len(_QUANT_MAGIC)] != _QUANT_MAGIC:
            raise CorruptStreamError("not a quantized-float stream")
        offset = len(_QUANT_MAGIC)
        if len(payload) < offset + 8:
            raise CorruptStreamError("truncated quantized-float header")
        (tolerance,) = struct.unpack_from("<d", payload, offset)
        offset += 8
        count, offset = read_varint(payload, offset)
        escape_bytes, offset = read_varint(payload, offset)
        if escape_bytes % 8 or offset + escape_bytes > len(payload):
            raise CorruptStreamError("corrupt escape plane")
        escapes = np.frombuffer(
            payload[offset : offset + escape_bytes], dtype="<u8"
        )
        offset += escape_bytes
        body = self._entropy.decompress(payload[offset:])
        if len(body) % 4:
            raise CorruptStreamError("quantized body is not a u32 plane")
        packed = np.frombuffer(body, dtype="<u4").astype(np.uint64)
        if len(packed) != count:
            raise CorruptStreamError("quantized stream length mismatch")
        zigzag = packed.copy()
        escape_slots = zigzag == 0xFFFFFFFF
        if int(escape_slots.sum()) != len(escapes):
            raise CorruptStreamError("escape-plane count mismatch")
        zigzag[escape_slots] = escapes
        signed = zigzag.astype(np.int64)
        deltas = (signed >> 1) ^ -(signed & 1)
        quanta = np.cumsum(deltas)
        step = 2.0 * tolerance
        return (quanta.astype(np.float64) * step).astype("<f8").tobytes()


class TruncatedFloatCodec(Codec):
    """Mantissa truncation for float64 payloads.

    Keeps the top ``mantissa_bits`` of each value's 52-bit mantissa and
    losslessly compresses the byte-plane-shuffled result.  The relative
    reconstruction error is below ``2**-mantissa_bits``.
    """

    family = "lossy"

    def __init__(self, mantissa_bits: int = 20) -> None:
        if not 0 <= mantissa_bits <= 52:
            raise ValueError("mantissa_bits must be in [0, 52]")
        self.mantissa_bits = mantissa_bits
        self.name = f"truncated-float:{mantissa_bits}"
        self._entropy = Lz77Codec()

    def max_relative_error(self) -> float:
        """Guaranteed relative error bound of a round trip."""
        return 2.0 ** (-self.mantissa_bits)

    def compress(self, data: bytes) -> bytes:
        if len(data) % 8:
            raise CorruptStreamError("payload is not a float64 array")
        bits = np.frombuffer(data, dtype="<u8")
        drop = 52 - self.mantissa_bits
        mask = np.uint64(~((1 << drop) - 1) & 0xFFFFFFFFFFFFFFFF)
        truncated = (bits & mask).astype("<u8")
        planes = truncated.view(np.uint8).reshape(-1, 8).T.copy().tobytes()
        out = bytearray(_TRUNC_MAGIC)
        out.append(self.mantissa_bits)
        write_varint(out, len(bits))
        out += self._entropy.compress(planes)
        return bytes(out)

    def decompress(self, payload: bytes) -> bytes:
        if payload[: len(_TRUNC_MAGIC)] != _TRUNC_MAGIC:
            raise CorruptStreamError("not a truncated-float stream")
        offset = len(_TRUNC_MAGIC)
        if len(payload) <= offset:
            raise CorruptStreamError("truncated-float stream missing width byte")
        mantissa_bits = payload[offset]
        if mantissa_bits > 52:
            raise CorruptStreamError("invalid mantissa width")
        offset += 1
        count, offset = read_varint(payload, offset)
        planes = np.frombuffer(
            self._entropy.decompress(payload[offset:]), dtype=np.uint8
        )
        if len(planes) != count * 8:
            raise CorruptStreamError("truncated-float stream length mismatch")
        recombined = planes.reshape(8, -1).T.copy().view("<u8").reshape(-1)
        return recombined.astype("<u8").tobytes()
