"""Lempel-Ziv coding with Huffman-compressed pointers (paper §2.3).

The paper uses an LZ77 variant in which back-pointers ``(distance, length)``
are themselves entropy coded: "These numbers are represented by Huffman
codes, which give shorter representation for small numbers" (ref [27]).
This module implements that design with the well-understood DEFLATE symbol
layout:

* a literal/length alphabet (0-255 literals, 256 end-of-block, 257-285
  length codes with extra bits), and
* a distance alphabet (30 codes with extra bits, distances 1-32768),

with both Huffman tables built from the block's actual symbol frequencies
and shipped in the header as 4-bit code lengths.

Matching uses hash chains over 4-byte prefixes with a bounded chain depth —
the classic speed/ratio compromise; the paper rates Lempel-Ziv
"Satisfactory" for compression time and "Excellent" for decompression time
(Figure 1), which this implementation preserves.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

import numpy as np

from .base import Codec, CorruptStreamError
from .huffman import HuffmanCode, StreamDecoder
from .varint import read_varint, write_varint

__all__ = ["Lz77Codec", "tokenize", "MIN_MATCH", "MAX_MATCH", "WINDOW_SIZE"]

MIN_MATCH = 4
MAX_MATCH = 258
WINDOW_SIZE = 32768

_END_OF_BLOCK = 256
_LITLEN_ALPHABET = 286
_DIST_ALPHABET = 30

# DEFLATE length codes: (symbol, extra_bits, base_length).
_LENGTH_CODES: List[Tuple[int, int, int]] = [
    (257, 0, 3), (258, 0, 4), (259, 0, 5), (260, 0, 6),
    (261, 0, 7), (262, 0, 8), (263, 0, 9), (264, 0, 10),
    (265, 1, 11), (266, 1, 13), (267, 1, 15), (268, 1, 17),
    (269, 2, 19), (270, 2, 23), (271, 2, 27), (272, 2, 31),
    (273, 3, 35), (274, 3, 43), (275, 3, 51), (276, 3, 59),
    (277, 4, 67), (278, 4, 83), (279, 4, 99), (280, 4, 115),
    (281, 5, 131), (282, 5, 163), (283, 5, 195), (284, 5, 227),
    (285, 0, 258),
]

# DEFLATE distance codes: (symbol, extra_bits, base_distance).
_DISTANCE_CODES: List[Tuple[int, int, int]] = [
    (0, 0, 1), (1, 0, 2), (2, 0, 3), (3, 0, 4),
    (4, 1, 5), (5, 1, 7), (6, 2, 9), (7, 2, 13),
    (8, 3, 17), (9, 3, 25), (10, 4, 33), (11, 4, 49),
    (12, 5, 65), (13, 5, 97), (14, 6, 129), (15, 6, 193),
    (16, 7, 257), (17, 7, 385), (18, 8, 513), (19, 8, 769),
    (20, 9, 1025), (21, 9, 1537), (22, 10, 2049), (23, 10, 3073),
    (24, 11, 4097), (25, 11, 6145), (26, 12, 8193), (27, 12, 12289),
    (28, 13, 16385), (29, 13, 24577),
]


def _build_length_lookup() -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    symbols = np.zeros(MAX_MATCH + 1, dtype=np.int32)
    extra_bits = np.zeros(MAX_MATCH + 1, dtype=np.int32)
    bases = np.zeros(MAX_MATCH + 1, dtype=np.int32)
    for symbol, extra, base in _LENGTH_CODES:
        top = MAX_MATCH if symbol == 285 else base + (1 << extra) - 1
        for length in range(base, min(top, MAX_MATCH) + 1):
            symbols[length] = symbol
            extra_bits[length] = extra
            bases[length] = base
    # length 258 has its own dedicated zero-extra code
    symbols[MAX_MATCH] = 285
    extra_bits[MAX_MATCH] = 0
    bases[MAX_MATCH] = 258
    return symbols, extra_bits, bases


def _build_distance_lookup() -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    symbols = np.zeros(WINDOW_SIZE + 1, dtype=np.int32)
    extra_bits = np.zeros(WINDOW_SIZE + 1, dtype=np.int32)
    bases = np.zeros(WINDOW_SIZE + 1, dtype=np.int32)
    for symbol, extra, base in _DISTANCE_CODES:
        top = min(WINDOW_SIZE, base + (1 << extra) - 1)
        symbols[base : top + 1] = symbol
        extra_bits[base : top + 1] = extra
        bases[base : top + 1] = base
    return symbols, extra_bits, bases


_LEN_SYMBOL, _LEN_EXTRA, _LEN_BASE = _build_length_lookup()
_DIST_SYMBOL, _DIST_EXTRA, _DIST_BASE = _build_distance_lookup()

# Decoder-side tables indexed by symbol.
_LEN_DECODE: Dict[int, Tuple[int, int]] = {s: (e, b) for s, e, b in _LENGTH_CODES}
_DIST_DECODE: Dict[int, Tuple[int, int]] = {s: (e, b) for s, e, b in _DISTANCE_CODES}

Token = Union[int, Tuple[int, int]]


def tokenize(
    data: bytes,
    window: int = WINDOW_SIZE,
    max_chain: int = 8,
) -> List[Token]:
    """Greedy LZ77 tokenization.

    Returns a list whose elements are either a literal byte value (``int``)
    or a ``(length, distance)`` match tuple.  Matching keeps, per 4-byte
    prefix, the ``max_chain`` most recent positions and picks the longest
    match among them (preferring recent = short distances on ties, which is
    exactly what makes Huffman-coded pointers effective).
    """
    if not isinstance(data, bytes):
        # Snapshot buffer-protocol inputs once: the 4-byte prefixes below
        # become dict keys, and bytes slices are both hashable and the
        # fastest thing to hash.
        data = bytes(data)
    n = len(data)
    tokens: List[Token] = []
    append = tokens.append
    table: Dict[bytes, List[int]] = {}
    pos = 0
    while pos < n:
        best_len = 0
        best_dist = 0
        if pos + MIN_MATCH <= n:
            quad = data[pos : pos + MIN_MATCH]
            chain = table.get(quad)
            if chain is not None:
                limit = pos - window
                max_len = min(MAX_MATCH, n - pos)
                for cand in reversed(chain):
                    if cand < limit:
                        break
                    length = _extend_match(data, cand, pos, max_len)
                    if length > best_len:
                        best_len = length
                        best_dist = pos - cand
                        if length >= 64:
                            break
                chain.append(pos)
                if len(chain) > max_chain:
                    del chain[0]
            else:
                table[quad] = [pos]
        if best_len >= MIN_MATCH:
            append((best_len, best_dist))
            end = pos + best_len
            step = 1 if best_len <= 16 else 3
            j = pos + 1
            while j < end and j + MIN_MATCH <= n:
                q = data[j : j + MIN_MATCH]
                chain = table.get(q)
                if chain is None:
                    table[q] = [j]
                else:
                    chain.append(j)
                    if len(chain) > max_chain:
                        del chain[0]
                j += step
            pos = end
        else:
            append(data[pos])
            pos += 1
    return tokens


def _extend_match(data: bytes, cand: int, pos: int, max_len: int) -> int:
    """Length of the match between ``cand`` and ``pos`` (chunked compare)."""
    length = MIN_MATCH
    while length < max_len:
        step = min(32, max_len - length)
        if (
            data[cand + length : cand + length + step]
            == data[pos + length : pos + length + step]
        ):
            length += step
        else:
            a = data[cand + length : cand + length + step]
            b = data[pos + length : pos + length + step]
            for i in range(step):
                if a[i] != b[i]:
                    return length + i
            return length + step  # pragma: no cover - unequal slices differ
    return length


class Lz77Codec(Codec):
    """LZ77 with Huffman-coded literal/length and distance symbols.

    Wire format::

        varint  original_length
        286 x 4-bit litlen code lengths   (only if original_length > 0)
        30  x 4-bit distance code lengths
        padded bitstream of codewords and extra bits, ending in EOB
    """

    name = "lempel-ziv"
    family = "dictionary"

    def __init__(self, window: int = WINDOW_SIZE, max_chain: int = 8) -> None:
        if not 256 <= window <= WINDOW_SIZE:
            raise ValueError(f"window must be in [256, {WINDOW_SIZE}]")
        self.window = window
        self.max_chain = max_chain

    def compress(self, data: bytes) -> bytes:
        header = bytearray()
        write_varint(header, len(data))
        if not data:
            return bytes(header)
        tokens = tokenize(data, window=self.window, max_chain=self.max_chain)

        litlen_freq = [0] * _LITLEN_ALPHABET
        dist_freq = [0] * _DIST_ALPHABET
        for token in tokens:
            if isinstance(token, int):
                litlen_freq[token] += 1
            else:
                length, dist = token
                litlen_freq[_LEN_SYMBOL[length]] += 1
                dist_freq[_DIST_SYMBOL[dist]] += 1
        litlen_freq[_END_OF_BLOCK] = 1
        litlen_code = HuffmanCode.from_frequencies(litlen_freq)
        dist_code = HuffmanCode.from_frequencies(dist_freq)

        pieces: List[str] = [
            "".join(format(l, "04b") for l in litlen_code.lengths),
            "".join(format(l, "04b") for l in dist_code.lengths),
        ]
        lit_strings = litlen_code.code_strings
        dist_strings = dist_code.code_strings
        for token in tokens:
            if isinstance(token, int):
                pieces.append(lit_strings[token])
            else:
                length, dist = token
                pieces.append(lit_strings[_LEN_SYMBOL[length]])
                extra = int(_LEN_EXTRA[length])
                if extra:
                    pieces.append(format(length - int(_LEN_BASE[length]), f"0{extra}b"))
                pieces.append(dist_strings[_DIST_SYMBOL[dist]])
                extra = int(_DIST_EXTRA[dist])
                if extra:
                    pieces.append(format(dist - int(_DIST_BASE[dist]), f"0{extra}b"))
        pieces.append(lit_strings[_END_OF_BLOCK])
        bits = "".join(pieces)
        padding = (-len(bits)) % 8
        bits += "0" * padding
        return bytes(header) + int(bits, 2).to_bytes(len(bits) // 8, "big")

    def decompress(self, payload: bytes) -> bytes:
        view = memoryview(payload)
        original_length, offset = read_varint(view, 0)
        if original_length == 0:
            if offset != len(payload):
                raise CorruptStreamError("trailing bytes after empty stream")
            return b""
        decoder = StreamDecoder(payload, start_bit=offset * 8)
        litlen_code = HuffmanCode([decoder.read_bits(4) for _ in range(_LITLEN_ALPHABET)])
        dist_code = HuffmanCode([decoder.read_bits(4) for _ in range(_DIST_ALPHABET)])

        out = bytearray()
        while True:
            symbol = decoder.read_code(litlen_code)
            if symbol < 256:
                out.append(symbol)
            elif symbol == _END_OF_BLOCK:
                break
            else:
                if symbol not in _LEN_DECODE:
                    raise CorruptStreamError(f"invalid length symbol {symbol}")
                extra, base = _LEN_DECODE[symbol]
                length = base + (decoder.read_bits(extra) if extra else 0)
                dist_symbol = decoder.read_code(dist_code)
                if dist_symbol not in _DIST_DECODE:
                    raise CorruptStreamError(f"invalid distance symbol {dist_symbol}")
                extra, base = _DIST_DECODE[dist_symbol]
                distance = base + (decoder.read_bits(extra) if extra else 0)
                start = len(out) - distance
                if start < 0:
                    raise CorruptStreamError("distance reaches before stream start")
                if distance >= length:
                    out += out[start : start + length]
                else:
                    for i in range(length):
                        out.append(out[start + i])
            if len(out) > original_length:
                raise CorruptStreamError("decoded size exceeds header length")
        if len(out) != original_length:
            raise CorruptStreamError("decoded size does not match header length")
        return bytes(out)
