"""Move-to-front coding (paper §2.4, step 2).

"This algorithm keeps all 256 possible characters in a list.  When a
character is to be sent …, its position in the list will be sent.  After
the character is 'sent', it is moved … to the front of the list."

After a Burrows-Wheeler transform the input is dominated by runs, so the
emitted indices are mostly zeros and small values — which is what makes the
subsequent run-length + Huffman stages effective.
"""

from __future__ import annotations

__all__ = ["mtf_encode", "mtf_decode"]


def mtf_encode(data: bytes) -> bytes:
    """Replace each byte with its current position in the recency list."""
    table = list(range(256))
    out = bytearray(len(data))
    index_of = table.index
    for position, byte in enumerate(data):
        rank = index_of(byte)
        out[position] = rank
        if rank:
            del table[rank]
            table.insert(0, byte)
    return bytes(out)


def mtf_decode(indices: bytes) -> bytes:
    """Invert :func:`mtf_encode`."""
    table = list(range(256))
    out = bytearray(len(indices))
    for position, rank in enumerate(indices):
        byte = table[rank]
        out[position] = byte
        if rank:
            del table[rank]
            table.insert(0, byte)
    return bytes(out)
