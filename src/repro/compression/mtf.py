"""Move-to-front coding (paper §2.4, step 2).

"This algorithm keeps all 256 possible characters in a list.  When a
character is to be sent …, its position in the list will be sent.  After
the character is 'sent', it is moved … to the front of the list."

After a Burrows-Wheeler transform the input is dominated by runs, so the
emitted indices are mostly zeros and small values — which is what makes the
subsequent run-length + Huffman stages effective.

That same run structure is what the implementation exploits: the recency
list only changes at the *first* byte of each run (every later byte of the
run is already at the front and encodes as rank 0), so the Python-level
list update runs once per run boundary while numpy handles the per-byte
work — locating boundaries on encode, broadcasting the front byte on
decode.  Output is byte-identical to the classic per-byte formulation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mtf_encode", "mtf_decode"]


def mtf_encode(data: bytes) -> bytes:
    """Replace each byte with its current position in the recency list."""
    n = len(data)
    if n == 0:
        return b""
    values = np.frombuffer(data, dtype=np.uint8)
    # Positions where a new run begins; inside a run every byte after the
    # first has rank 0, which is what the zero-initialised output encodes.
    starts = np.empty(0, dtype=np.int64)
    if n > 1:
        starts = np.flatnonzero(values[1:] != values[:-1]) + 1
    out = np.zeros(n, dtype=np.uint8)
    table = list(range(256))
    index_of = table.index
    for position in (0, *starts.tolist()):
        byte = data[position]
        rank = index_of(byte)
        if rank:
            out[position] = rank
            del table[rank]
            table.insert(0, byte)
    return out.tobytes()


def mtf_decode(indices: bytes) -> bytes:
    """Invert :func:`mtf_encode`."""
    n = len(indices)
    if n == 0:
        return b""
    ranks = np.frombuffer(indices, dtype=np.uint8)
    out = np.empty(n, dtype=np.uint8)
    table = list(range(256))
    front = table[0]
    previous = 0
    # Rank 0 repeats whatever is at the front of the list, so only the
    # nonzero ranks touch the recency list; the zero gaps between them are
    # filled with the current front byte in one numpy store.
    for position in np.flatnonzero(ranks).tolist():
        if position > previous:
            out[previous:position] = front
        rank = indices[position]
        byte = table[rank]
        out[position] = byte
        del table[rank]
        table.insert(0, byte)
        front = byte
        previous = position + 1
    out[previous:] = front
    return out.tobytes()
