"""C-backed codecs for speed-faithful end-to-end runs.

The paper's testbed ran C implementations (gzip-family Lempel-Ziv, the SGI
Burrows-Wheeler utility).  Our from-scratch codecs reproduce the algorithms
but, being pure Python, run slower in absolute terms.  For experiments
where the *wall-clock* relationship between compression speed and link
speed matters (rather than the adaptive logic, which only consumes
measured speeds), these thin wrappers over the standard library's zlib and
bz2 provide the paper's actual operating points:

* ``NativeLzCodec``   — DEFLATE, i.e. LZ77 + Huffman-coded pointers, the
  same algorithm family as :class:`repro.compression.lz77.Lz77Codec`.
* ``NativeBwCodec``   — bzip2, i.e. chunked BWT + MTF + RLE + entropy
  coding, the same family as :class:`repro.compression.bwhuff.BurrowsWheelerCodec`.

They are registered under distinct names and never silently substituted
for the from-scratch implementations.

Two further codecs cover the modern fast-compressor operating points the
pure-Python tier cannot reach (the PAPERS.md file-format comparison
places zstd/lz4-class codecs at reducing speeds 10-100x beyond zlib's):

* ``NativeZstdCodec`` — Zstandard, via the stdlib :mod:`compression.zstd`
  (Python 3.14+) or the ``zstandard`` binding, whichever imports.
* ``NativeLz4Codec``  — LZ4 frame format via the ``lz4`` binding.

Both are **optional**: when no binding is importable the class stays
defined but raises on construction, :data:`HAVE_ZSTD`/:data:`HAVE_LZ4`
are False, and the registry simply skips them — so environments without
the bindings lose the operating points, never the import.
"""

from __future__ import annotations

import bz2
import zlib

from .base import Codec, CorruptStreamError

__all__ = [
    "HAVE_LZ4",
    "HAVE_ZSTD",
    "NativeBwCodec",
    "NativeLz4Codec",
    "NativeLzCodec",
    "NativeZstdCodec",
]

# Resolution order for zstd: the stdlib module (3.14+) first, then the
# third-party binding.  Both expose compress/decompress at module level
# with compatible signatures for our use.
try:
    from compression import zstd as _zstd_impl  # type: ignore[import-not-found]

    _ZSTD_KIND = "stdlib"
except ImportError:  # pragma: no cover - depends on environment
    try:
        import zstandard as _zstd_impl  # type: ignore[no-redef]

        _ZSTD_KIND = "zstandard"
    except ImportError:
        _zstd_impl = None
        _ZSTD_KIND = ""

try:
    import lz4.frame as _lz4_frame  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - depends on environment
    _lz4_frame = None

#: Whether a zstd binding is importable here (stdlib or ``zstandard``).
HAVE_ZSTD = _zstd_impl is not None

#: Whether the ``lz4`` binding is importable here.
HAVE_LZ4 = _lz4_frame is not None


class NativeLzCodec(Codec):
    """zlib-backed Lempel-Ziv (DEFLATE) codec."""

    name = "lempel-ziv-native"
    family = "dictionary"

    def __init__(self, level: int = 6) -> None:
        if not 1 <= level <= 9:
            raise ValueError("zlib level must be in [1, 9]")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, payload: bytes) -> bytes:
        try:
            return zlib.decompress(payload)
        except zlib.error as exc:
            raise CorruptStreamError(str(exc)) from exc


class NativeBwCodec(Codec):
    """bz2-backed Burrows-Wheeler codec."""

    name = "burrows-wheeler-native"
    family = "block-sorting"

    def __init__(self, compresslevel: int = 9) -> None:
        if not 1 <= compresslevel <= 9:
            raise ValueError("bz2 compresslevel must be in [1, 9]")
        self.compresslevel = compresslevel

    def compress(self, data: bytes) -> bytes:
        return bz2.compress(data, self.compresslevel)

    def decompress(self, payload: bytes) -> bytes:
        try:
            return bz2.decompress(payload)
        except (OSError, ValueError) as exc:
            raise CorruptStreamError(str(exc)) from exc


def _zstd_error_types() -> tuple:
    errors: list = [ValueError]
    error = getattr(_zstd_impl, "ZstdError", None)
    if isinstance(error, type) and issubclass(error, BaseException):
        errors.append(error)
    return tuple(errors)


class NativeZstdCodec(Codec):
    """Zstandard codec (stdlib ``compression.zstd`` or ``zstandard``).

    Constructing without an importable binding raises ``RuntimeError`` —
    check :data:`HAVE_ZSTD` (the registry does) instead of catching.
    """

    name = "zstd-native"
    family = "dictionary"

    def __init__(self, level: int = 3) -> None:
        if _zstd_impl is None:
            raise RuntimeError(
                "no zstd binding available (stdlib compression.zstd or zstandard)"
            )
        if not 1 <= level <= 19:
            raise ValueError("zstd level must be in [1, 19]")
        self.level = level
        if _ZSTD_KIND == "zstandard":
            self._compressor = _zstd_impl.ZstdCompressor(level=level)
            self._decompressor = _zstd_impl.ZstdDecompressor()
        else:
            self._compressor = None
            self._decompressor = None

    def compress(self, data: bytes) -> bytes:
        if not isinstance(data, bytes):
            data = bytes(data)  # bindings vary in buffer-protocol support
        if self._compressor is not None:
            return self._compressor.compress(data)
        return _zstd_impl.compress(data, self.level)

    def decompress(self, payload: bytes) -> bytes:
        if not isinstance(payload, bytes):
            payload = bytes(payload)
        try:
            if self._decompressor is not None:
                return self._decompressor.decompress(payload)
            return _zstd_impl.decompress(payload)
        except _zstd_error_types() as exc:
            raise CorruptStreamError(str(exc)) from exc


class NativeLz4Codec(Codec):
    """LZ4 frame-format codec via the ``lz4`` binding.

    Constructing without the binding raises ``RuntimeError`` — check
    :data:`HAVE_LZ4` (the registry does) instead of catching.
    """

    name = "lz4-native"
    family = "dictionary"

    def __init__(self, compression_level: int = 0) -> None:
        if _lz4_frame is None:
            raise RuntimeError("lz4 binding not available")
        if not 0 <= compression_level <= 16:
            raise ValueError("lz4 compression_level must be in [0, 16]")
        self.compression_level = compression_level

    def compress(self, data: bytes) -> bytes:
        if not isinstance(data, bytes):
            data = bytes(data)  # bindings vary in buffer-protocol support
        return _lz4_frame.compress(data, compression_level=self.compression_level)

    def decompress(self, payload: bytes) -> bytes:
        if not isinstance(payload, bytes):
            payload = bytes(payload)
        try:
            return _lz4_frame.decompress(payload)
        except (RuntimeError, ValueError, OSError) as exc:
            raise CorruptStreamError(str(exc)) from exc
