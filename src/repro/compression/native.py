"""C-backed codecs for speed-faithful end-to-end runs.

The paper's testbed ran C implementations (gzip-family Lempel-Ziv, the SGI
Burrows-Wheeler utility).  Our from-scratch codecs reproduce the algorithms
but, being pure Python, run slower in absolute terms.  For experiments
where the *wall-clock* relationship between compression speed and link
speed matters (rather than the adaptive logic, which only consumes
measured speeds), these thin wrappers over the standard library's zlib and
bz2 provide the paper's actual operating points:

* ``NativeLzCodec``   — DEFLATE, i.e. LZ77 + Huffman-coded pointers, the
  same algorithm family as :class:`repro.compression.lz77.Lz77Codec`.
* ``NativeBwCodec``   — bzip2, i.e. chunked BWT + MTF + RLE + entropy
  coding, the same family as :class:`repro.compression.bwhuff.BurrowsWheelerCodec`.

They are registered under distinct names and never silently substituted
for the from-scratch implementations.
"""

from __future__ import annotations

import bz2
import zlib

from .base import Codec, CorruptStreamError

__all__ = ["NativeLzCodec", "NativeBwCodec"]


class NativeLzCodec(Codec):
    """zlib-backed Lempel-Ziv (DEFLATE) codec."""

    name = "lempel-ziv-native"
    family = "dictionary"

    def __init__(self, level: int = 6) -> None:
        if not 1 <= level <= 9:
            raise ValueError("zlib level must be in [1, 9]")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, payload: bytes) -> bytes:
        try:
            return zlib.decompress(payload)
        except zlib.error as exc:
            raise CorruptStreamError(str(exc)) from exc


class NativeBwCodec(Codec):
    """bz2-backed Burrows-Wheeler codec."""

    name = "burrows-wheeler-native"
    family = "block-sorting"

    def __init__(self, compresslevel: int = 9) -> None:
        if not 1 <= compresslevel <= 9:
            raise ValueError("bz2 compresslevel must be in [1, 9]")
        self.compresslevel = compresslevel

    def compress(self, data: bytes) -> bytes:
        return bz2.compress(data, self.compresslevel)

    def decompress(self, payload: bytes) -> bytes:
        try:
            return bz2.decompress(payload)
        except (OSError, ValueError) as exc:
            raise CorruptStreamError(str(exc)) from exc
