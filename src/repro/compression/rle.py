"""Run-length coding with runs capped at 254 (paper §2.4, step 3).

The paper modifies classic RLE so that "the 255th character never appears"
in the coded output: byte value 255 is reserved as the chunk terminator
that makes the joint Huffman stream resynchronizable.  This module encodes
move-to-front output into the alphabet ``0..254``:

* value 254 is an escape; ``(254, 0)`` encodes a literal 254 and
  ``(254, 1)`` a literal 255 (both are rare after MTF),
* ``(254, c)`` with ``2 <= c <= 254`` encodes a run of ``c`` zeros —
  runs of at most 254, exactly as the paper prescribes; longer runs split,
* every other byte stands for itself.

Zero-runs shorter than :data:`MIN_RUN` are cheaper raw, so they stay raw.
"""

from __future__ import annotations

import numpy as np

from .base import CorruptStreamError

__all__ = ["rle_encode", "rle_decode", "ESCAPE", "MAX_RUN", "MIN_RUN"]

ESCAPE = 254
MAX_RUN = 254
MIN_RUN = 3


def rle_encode(data: bytes) -> bytes:
    """Encode ``data`` (any bytes) into the 0..254 alphabet.

    Run boundaries are found in one vectorized pass (``np.diff`` over the
    byte array); the Python loop then walks *runs*, not bytes — on
    post-MTF input (long zero runs) that is orders of magnitude fewer
    iterations.  Output is byte-identical to the classic per-byte greedy
    encoder: a zero run longer than :data:`MAX_RUN` splits greedily, and
    each split piece independently chooses escape vs. raw form.
    """
    n = len(data)
    if n == 0:
        return b""
    values = np.frombuffer(data, dtype=np.uint8)
    boundaries = np.flatnonzero(values[1:] != values[:-1]) + 1
    starts = (0, *boundaries.tolist())
    ends = (*boundaries.tolist(), n)
    out = bytearray()
    for start, end in zip(starts, ends):
        byte = data[start]
        length = end - start
        if byte == 0:
            while length > 0:
                run = min(length, MAX_RUN)
                if run >= MIN_RUN:
                    out.append(ESCAPE)
                    out.append(run)
                else:
                    out += b"\x00" * run
                length -= run
        elif byte >= ESCAPE:
            # 0 -> literal 254, 1 -> literal 255; escapes never form runs.
            out += bytes((ESCAPE, byte - ESCAPE)) * length
        else:
            out += bytes((byte,)) * length
    return bytes(out)


def rle_decode(data: bytes) -> bytes:
    """Invert :func:`rle_encode`; raises on 255 or truncated escapes."""
    out = bytearray()
    n = len(data)
    position = 0
    while position < n:
        byte = data[position]
        if byte == 255:
            raise CorruptStreamError("reserved byte 255 inside RLE payload")
        if byte == ESCAPE:
            if position + 1 >= n:
                raise CorruptStreamError("truncated escape sequence")
            argument = data[position + 1]
            if argument == 0:
                out.append(254)
            elif argument == 1:
                out.append(255)
            elif argument == 255:
                raise CorruptStreamError("reserved byte 255 inside RLE payload")
            else:
                out += b"\x00" * argument
            position += 2
        else:
            out.append(byte)
            position += 1
    return bytes(out)
