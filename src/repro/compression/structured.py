"""Structure-aware codecs: template-mined logs and columnar records.

The paper's selector (§3) chooses among *generic* byte-stream codecs;
this module adds the two structure-exploiting family members the ROADMAP
calls for:

``template``
    Mines recurring line templates from newline-delimited logs.  Each
    line is tokenized into literal fragments and typed value slots
    (decimal integers, dotted-quad IPv4 addresses, long lowercase hex
    runs); lines sharing the same fragment/slot skeleton share one
    template.  The wire carries the template dictionary once, a
    template-id stream, and one *channel* per (template, slot) holding
    that slot's values across all matching lines — zigzag-varint deltas
    for integers, 4 packed bytes per IPv4, nibble-packed hex, and a
    length-prefixed raw escape for anything non-canonical.

``columnar``
    Fixed-width record arrays (multi-channel telemetry) are transposed
    to per-field columns; each column independently picks raw /
    delta+bitpack / delta-of-delta+bitpack, whichever is smallest.  The
    record width and field width are detected by scoring candidate
    layouts and are carried in the header, so the wire is fully
    self-describing.

Both codecs share a strict contract:

* **Whole-block fallback.**  When structure detection fails (binary
  noise, empty input, too few lines, or the structured encoding would
  not actually win) the codec emits a 4-byte header plus the original
  bytes verbatim.  That payload is always >= the input, so the engine's
  expansion guard (``CodecExecutor(expansion_fallback=True)``) ships
  method ``none`` instead — the fallback is a correctness device, not a
  wire format anyone should pay for.
* **Corruption discipline.**  ``decompress`` raises only
  :data:`~repro.compression.base.ACCEPTABLE_DECODE_ERRORS` on hostile
  bytes; every count read from the wire is bounds-checked against the
  remaining payload *before* allocation, and the declared output size is
  capped at :data:`MAX_STRUCTURED_OUTPUT`.
* **Deterministic wire.**  Same input bytes -> same payload, regardless
  of the input container (bytes/bytearray/memoryview).

The numpy delta/zigzag/bitpack primitives are exported so
``repro.verify.references`` can hold scalar oracles against them
bit-for-bit (the differential gate in ``scripts/fuzz.py``).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .base import Codec, CorruptStreamError
from .varint import read_varint, varint_size, write_varint

__all__ = [
    "MAX_STRUCTURED_OUTPUT",
    "ColumnarCodec",
    "TemplateCodec",
    "bitpack",
    "bitunpack",
    "delta_zigzag",
    "undelta_zigzag",
    "zigzag_encode",
    "zigzag_decode",
]

# Decode-side cap on the declared original length.  Engine blocks top out
# well below 1 MiB; anything claiming more than 16 MiB is a corrupted or
# hostile header, and refusing it bounds decoder memory.
MAX_STRUCTURED_OUTPUT = 1 << 24

_U64_MASK = (1 << 64) - 1
_ONE = np.uint64(1)


# ---------------------------------------------------------------------------
# Vectorized primitives (scalar oracles live in repro.verify.references)
# ---------------------------------------------------------------------------


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map int64 values to uint64 so small magnitudes stay small."""
    signed = np.ascontiguousarray(values, dtype="<i8")
    doubled = signed.view("<u8") << _ONE
    sign_fill = (signed >> np.int64(63)).view("<u8")
    return doubled ^ sign_fill


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode` (uint64 -> int64)."""
    unsigned = np.ascontiguousarray(values, dtype="<u8")
    half = unsigned >> _ONE
    sign_fill = (unsigned & _ONE) * np.uint64(_U64_MASK)
    return (half ^ sign_fill).view("<i8")


def bitpack(values: np.ndarray, width: int) -> bytes:
    """Pack uint64 values into ``width`` bits each, MSB first."""
    if not 0 <= width <= 64:
        raise ValueError(f"bit width out of range: {width}")
    values = np.ascontiguousarray(values, dtype="<u8")
    if width == 0 or values.size == 0:
        return b""
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((values[:, None] >> shifts) & _ONE).astype(np.uint8)
    return np.packbits(bits.ravel()).tobytes()


def bitunpack(packed: bytes, count: int, width: int) -> np.ndarray:
    """Inverse of :func:`bitpack`; returns ``count`` uint64 values."""
    if not 0 <= width <= 64:
        raise ValueError(f"bit width out of range: {width}")
    if width == 0 or count == 0:
        return np.zeros(count, dtype="<u8")
    needed = (count * width + 7) // 8
    raw = np.frombuffer(packed, dtype=np.uint8, count=needed)
    bits = np.unpackbits(raw, count=count * width).reshape(count, width)
    out = np.zeros(count, dtype="<u8")
    for column in range(width):
        out = (out << _ONE) | bits[:, column].astype("<u8")
    return out


def delta_zigzag(column: np.ndarray) -> np.ndarray:
    """Wrapping first differences of a uint64 column, zigzag-mapped."""
    column = np.ascontiguousarray(column, dtype="<u8")
    deltas = (column[1:] - column[:-1]).view("<i8")
    return zigzag_encode(deltas)


def undelta_zigzag(first: int, encoded: np.ndarray) -> np.ndarray:
    """Inverse of :func:`delta_zigzag` given the first raw value."""
    deltas = zigzag_decode(encoded).view("<u8")
    out = np.empty(len(deltas) + 1, dtype="<u8")
    out[0] = np.uint64(first & _U64_MASK)
    if len(deltas):
        out[1:] = out[0] + np.cumsum(deltas, dtype="<u8")
    return out


# ---------------------------------------------------------------------------
# Scalar helpers shared by the template channel coder
# ---------------------------------------------------------------------------


def _zigzag_int(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag_int(value: int) -> int:
    return (value >> 1) if not (value & 1) else -((value + 1) >> 1)


def _record_structured_block(codec: str, *, fallback: bool, templates: int = 0,
                             channel_bytes: Optional[Dict[str, int]] = None) -> None:
    # Lazy import: repro.obs imports compression.base at module level, so a
    # module-level import here would be circular.
    from ..obs import get_registry
    from ..obs.structured import record_structured_block

    record_structured_block(
        get_registry(),
        codec=codec,
        fallback=fallback,
        templates=templates,
        channel_bytes=channel_bytes or {},
    )


# ---------------------------------------------------------------------------
# Template codec
# ---------------------------------------------------------------------------

# IPv4 first (so dotted quads don't shatter into four int slots), then
# long lowercase hex runs (>= 8 chars, at least one letter so pure digit
# runs stay integers), then bare digit runs.
_VALUE_RE = re.compile(
    rb"(?:\d{1,3}\.){3}\d{1,3}"
    rb"|(?=[0-9a-f]*[a-f])[0-9a-f]{8,}"
    rb"|\d+"
)

_SLOT_INT = 1
_SLOT_IP = 2
_SLOT_HEX = 3

_CH_INT_DELTA = 1  # canonical decimal ints as zigzag-varint deltas
_CH_INT_FIXED = 2  # zero-padded fixed-width ints: width byte + deltas
_CH_IP_PACKED = 3  # 4 bytes per value
_CH_HEX_NIBBLES = 4  # varint nibble count + packed nibbles per value
_CH_RAW = 5  # varint length + bytes per value

# Channels switch from varint deltas to the raw escape above this bound:
# the varint reader rejects shift > 63, and deltas of two values < 2**60
# always zigzag below 2**62, comfortably inside that budget.
_MAX_CHANNEL_INT = 1 << 60

_TEMPLATE_MAGIC = b"TL"
_COLUMNAR_MAGIC = b"CO"
_VERSION = 1
_MODE_RAW = 0
_MODE_STRUCTURED = 1

_MIN_LINES = 4


def _classify_token(token: bytes) -> int:
    if b"." in token:
        return _SLOT_IP
    if token.isdigit():
        return _SLOT_INT
    return _SLOT_HEX


def _tokenize_line(line: bytes) -> Tuple[Tuple, List[bytes]]:
    """Split one line into a template key and its slot values."""
    parts: List[Tuple] = []
    values: List[bytes] = []
    position = 0
    for match in _VALUE_RE.finditer(line):
        if match.start() > position:
            parts.append((0, line[position:match.start()]))
        token = match.group()
        parts.append((_classify_token(token),))
        values.append(token)
        position = match.end()
    if position < len(line):
        parts.append((0, line[position:]))
    return tuple(parts), values


class TemplateCodec(Codec):
    """Template-mined log compression with typed slot channels."""

    name = "template"
    family = "structured"

    def is_fallback(self, payload: bytes) -> bool:
        """True when ``payload`` took the whole-block raw escape."""
        head = bytes(payload[:4])
        return len(head) == 4 and head[:2] == _TEMPLATE_MAGIC and head[3] == _MODE_RAW

    # -- encode -------------------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        data = bytes(data)
        structured = self._encode_structured(data)
        if structured is not None and len(structured[0]) < len(data):
            payload, templates, channel_bytes = structured
            _record_structured_block(
                self.name, fallback=False, templates=templates,
                channel_bytes=channel_bytes,
            )
            return payload
        _record_structured_block(self.name, fallback=True)
        return _TEMPLATE_MAGIC + bytes((_VERSION, _MODE_RAW)) + data

    def _encode_structured(
        self, data: bytes
    ) -> Optional[Tuple[bytes, int, Dict[str, int]]]:
        if not data or len(data) > MAX_STRUCTURED_OUTPUT or b"\x00" in data:
            return None
        pieces = data.split(b"\n")
        if len(pieces) < _MIN_LINES:
            return None

        template_ids: Dict[Tuple, int] = {}
        templates: List[Tuple] = []
        line_ids: List[int] = []
        line_values: List[List[bytes]] = []
        for piece in pieces:
            key, values = _tokenize_line(piece)
            template_id = template_ids.get(key)
            if template_id is None:
                template_id = len(templates)
                template_ids[key] = template_id
                templates.append(key)
            line_ids.append(template_id)
            line_values.append(values)
        if len(templates) > max(2, len(pieces) // 2):
            return None  # too little repetition to be a templated log

        channels: Dict[Tuple[int, int], List[bytes]] = {}
        for template_id, values in zip(line_ids, line_values):
            for slot, value in enumerate(values):
                channels.setdefault((template_id, slot), []).append(value)

        out = bytearray(_TEMPLATE_MAGIC)
        out.append(_VERSION)
        out.append(_MODE_STRUCTURED)
        write_varint(out, len(data))
        write_varint(out, len(templates))
        for parts in templates:
            write_varint(out, len(parts))
            for part in parts:
                out.append(part[0] if part[0] else 0)
                if part[0] == 0:
                    write_varint(out, len(part[1]))
                    out += part[1]
        write_varint(out, len(pieces))
        for template_id in line_ids:
            write_varint(out, template_id)

        channel_bytes = {"int": 0, "ip": 0, "hex": 0, "raw": 0}
        for template_id, parts in enumerate(templates):
            slot = 0
            for part in parts:
                if part[0] == 0:
                    continue
                values = channels.get((template_id, slot), [])
                before = len(out)
                kind = self._encode_channel(out, part[0], values)
                channel_bytes[kind] += len(out) - before
                slot += 1

        return bytes(out), len(templates), channel_bytes

    @staticmethod
    def _encode_channel(out: bytearray, slot_kind: int, values: Sequence[bytes]) -> str:
        """Append one slot channel; returns the byte-accounting label."""
        if slot_kind == _SLOT_INT:
            canonical = all(
                (value == b"0" or not value.startswith(b"0")) for value in values
            )
            ints = [int(value) for value in values]
            small = all(value < _MAX_CHANNEL_INT for value in ints)
            widths = {len(value) for value in values}
            if canonical and small:
                out.append(_CH_INT_DELTA)
                previous = 0
                for value in ints:
                    write_varint(out, _zigzag_int(value - previous))
                    previous = value
                return "int"
            if small and len(widths) == 1 and next(iter(widths)) <= 255:
                out.append(_CH_INT_FIXED)
                out.append(next(iter(widths)))
                previous = 0
                for value in ints:
                    write_varint(out, _zigzag_int(value - previous))
                    previous = value
                return "int"
        elif slot_kind == _SLOT_IP:
            octet_rows = [value.split(b".") for value in values]
            if all(
                len(octets) == 4
                and all(
                    (octet == b"0" or not octet.startswith(b"0"))
                    and int(octet) <= 255
                    for octet in octets
                )
                for octets in octet_rows
            ):
                out.append(_CH_IP_PACKED)
                for octets in octet_rows:
                    out += bytes(int(octet) for octet in octets)
                return "ip"
        elif slot_kind == _SLOT_HEX:
            out.append(_CH_HEX_NIBBLES)
            for value in values:
                write_varint(out, len(value))
                padded = value if len(value) % 2 == 0 else value + b"0"
                out += bytes.fromhex(padded.decode("ascii"))
            return "hex"
        # Non-canonical values (leading zeros on a huge int, octets > 255
        # the regex let through, ...) take the per-value raw escape.
        out.append(_CH_RAW)
        for value in values:
            write_varint(out, len(value))
            out += value
        return "raw"

    # -- decode -------------------------------------------------------------

    def decompress(self, payload: bytes) -> bytes:
        payload = bytes(payload)
        if len(payload) < 4 or payload[:2] != _TEMPLATE_MAGIC:
            raise CorruptStreamError("template: bad magic")
        if payload[2] != _VERSION:
            raise CorruptStreamError(f"template: unknown version {payload[2]}")
        mode = payload[3]
        if mode == _MODE_RAW:
            return payload[4:]
        if mode != _MODE_STRUCTURED:
            raise CorruptStreamError(f"template: unknown mode {mode}")
        limit = len(payload)
        offset = 4
        original_length, offset = read_varint(payload, offset)
        if original_length > MAX_STRUCTURED_OUTPUT:
            raise CorruptStreamError("template: implausible output length")
        template_count, offset = read_varint(payload, offset)
        if template_count == 0 or template_count > limit - offset:
            raise CorruptStreamError("template: bad template count")
        templates: List[List[Tuple]] = []
        for _ in range(template_count):
            part_count, offset = read_varint(payload, offset)
            if part_count > limit - offset:
                raise CorruptStreamError("template: bad part count")
            parts: List[Tuple] = []
            for _ in range(part_count):
                if offset >= limit:
                    raise CorruptStreamError("template: truncated template")
                tag = payload[offset]
                offset += 1
                if tag == 0:
                    length, offset = read_varint(payload, offset)
                    if length > limit - offset:
                        raise CorruptStreamError("template: truncated literal")
                    parts.append((0, payload[offset:offset + length]))
                    offset += length
                elif tag in (_SLOT_INT, _SLOT_IP, _SLOT_HEX):
                    parts.append((tag,))
                else:
                    raise CorruptStreamError(f"template: unknown part tag {tag}")
            templates.append(parts)
        line_count, offset = read_varint(payload, offset)
        if line_count == 0 or line_count > limit - offset:
            raise CorruptStreamError("template: bad line count")
        line_ids: List[int] = []
        for _ in range(line_count):
            template_id, offset = read_varint(payload, offset)
            if template_id >= template_count:
                raise CorruptStreamError("template: template id out of range")
            line_ids.append(template_id)

        per_template = [0] * template_count
        for template_id in line_ids:
            per_template[template_id] += 1
        channels: Dict[Tuple[int, int], List[bytes]] = {}
        for template_id, parts in enumerate(templates):
            slot = 0
            for part in parts:
                if part[0] == 0:
                    continue
                values, offset = self._decode_channel(
                    payload, offset, per_template[template_id]
                )
                channels[(template_id, slot)] = values
                slot += 1

        cursor = [0] * template_count
        lines: List[bytes] = []
        total = 0
        for template_id in line_ids:
            index = cursor[template_id]
            cursor[template_id] = index + 1
            chunks: List[bytes] = []
            slot = 0
            for part in templates[template_id]:
                if part[0] == 0:
                    chunks.append(part[1])
                else:
                    chunks.append(channels[(template_id, slot)][index])
                    slot += 1
            line = b"".join(chunks)
            total += len(line)
            # + len(lines) accounts for the newline separators so a
            # hostile id stream cannot balloon the output mid-loop.
            if total + len(lines) > original_length:
                raise CorruptStreamError("template: output exceeds declared length")
            lines.append(line)
        out = b"\n".join(lines)
        if len(out) != original_length:
            raise CorruptStreamError("template: output length mismatch")
        return out

    @staticmethod
    def _decode_channel(
        payload: bytes, offset: int, count: int
    ) -> Tuple[List[bytes], int]:
        limit = len(payload)
        if offset >= limit:
            raise CorruptStreamError("template: truncated channel")
        mode = payload[offset]
        offset += 1
        values: List[bytes] = []
        if mode in (_CH_INT_DELTA, _CH_INT_FIXED):
            width = 0
            if mode == _CH_INT_FIXED:
                if offset >= limit:
                    raise CorruptStreamError("template: truncated channel width")
                width = payload[offset]
                offset += 1
                if width == 0:
                    raise CorruptStreamError("template: zero channel width")
            previous = 0
            for _ in range(count):
                encoded, offset = read_varint(payload, offset)
                previous += _unzigzag_int(encoded)
                token = b"%d" % previous
                if mode == _CH_INT_FIXED:
                    token = token.zfill(width)
                values.append(token)
        elif mode == _CH_IP_PACKED:
            if 4 * count > limit - offset:
                raise CorruptStreamError("template: truncated ip channel")
            for _ in range(count):
                quad = payload[offset:offset + 4]
                offset += 4
                values.append(b"%d.%d.%d.%d" % tuple(quad))
        elif mode == _CH_HEX_NIBBLES:
            for _ in range(count):
                nibbles, offset = read_varint(payload, offset)
                packed_len = (nibbles + 1) // 2
                if packed_len > limit - offset:
                    raise CorruptStreamError("template: truncated hex channel")
                text = payload[offset:offset + packed_len].hex().encode("ascii")
                offset += packed_len
                values.append(text[:nibbles])
        elif mode == _CH_RAW:
            for _ in range(count):
                length, offset = read_varint(payload, offset)
                if length > limit - offset:
                    raise CorruptStreamError("template: truncated raw channel")
                values.append(payload[offset:offset + length])
                offset += length
        else:
            raise CorruptStreamError(f"template: unknown channel mode {mode}")
        return values, offset


# ---------------------------------------------------------------------------
# Columnar codec
# ---------------------------------------------------------------------------

_COL_RAW = 0
_COL_DELTA = 1
_COL_DOD = 2

_MIN_RECORDS = 4
_MAX_RECORD_WIDTH = 4096

# Candidate record widths, most common telemetry layouts first; the
# scored detection below breaks ties toward earlier entries.
_CANDIDATE_WIDTHS = (64, 56, 48, 40, 32, 24, 16, 8, 12, 20, 28, 4)


class ColumnarCodec(Codec):
    """Columnar delta/bitpack compression for fixed-width record streams."""

    name = "columnar"
    family = "structured"

    def is_fallback(self, payload: bytes) -> bool:
        """True when ``payload`` took the whole-block raw escape."""
        head = bytes(payload[:4])
        return len(head) == 4 and head[:2] == _COLUMNAR_MAGIC and head[3] == _MODE_RAW

    # -- encode -------------------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        data = bytes(data)
        structured = self._encode_structured(data)
        if structured is not None and len(structured[0]) < len(data):
            payload, fields, channel_bytes = structured
            _record_structured_block(
                self.name, fallback=False, templates=fields,
                channel_bytes=channel_bytes,
            )
            return payload
        _record_structured_block(self.name, fallback=True)
        return _COLUMNAR_MAGIC + bytes((_VERSION, _MODE_RAW)) + data

    def _encode_structured(
        self, data: bytes
    ) -> Optional[Tuple[bytes, int, Dict[str, int]]]:
        size = len(data)
        if size < _MIN_RECORDS * 4 or size > MAX_STRUCTURED_OUTPUT:
            return None
        layout = self._detect_layout(data)
        if layout is None:
            return None
        record_width, field_width = layout
        columns = self._columns(data, record_width, field_width)

        out = bytearray(_COLUMNAR_MAGIC)
        out.append(_VERSION)
        out.append(_MODE_STRUCTURED)
        write_varint(out, size)
        write_varint(out, record_width)
        out.append(field_width)
        write_varint(out, size // record_width)
        channel_bytes = {"raw": 0, "delta": 0, "dod": 0}
        for column in columns:
            before = len(out)
            label = self._encode_column(out, column, field_width)
            channel_bytes[label] += len(out) - before
        return bytes(out), record_width // field_width, channel_bytes

    @staticmethod
    def _columns(data: bytes, record_width: int, field_width: int) -> List[np.ndarray]:
        dtype = "<u8" if field_width == 8 else "<u4"
        table = np.frombuffer(data, dtype=dtype).reshape(-1, record_width // field_width)
        return [np.ascontiguousarray(table[:, index]) for index in range(table.shape[1])]

    @classmethod
    def _detect_layout(cls, data: bytes) -> Optional[Tuple[int, int]]:
        """Score candidate (record_width, field_width) layouts cheaply."""
        size = len(data)
        best: Optional[Tuple[int, int, int]] = None
        for record_width in _CANDIDATE_WIDTHS:
            if size % record_width or size // record_width < _MIN_RECORDS:
                continue
            field_widths = (8, 4) if record_width % 8 == 0 else (4,)
            for field_width in field_widths:
                cost = 0
                for column in cls._columns(data, record_width, field_width):
                    cost += cls._plan_column(column, field_width)[1]
                if best is None or cost < best[0]:
                    best = (cost, record_width, field_width)
        if best is None:
            return None
        return best[1], best[2]

    @staticmethod
    def _plan_column(column: np.ndarray, field_width: int) -> Tuple[int, int]:
        """Choose the cheapest column mode; returns (mode, size_bytes)."""
        count = len(column)
        raw_size = 1 + count * field_width
        best_mode, best_size = _COL_RAW, raw_size
        signed_view = "<i8" if field_width == 8 else "<i4"
        deltas = (column[1:] - column[:-1]).view(signed_view).astype("<i8")
        encoded = zigzag_encode(deltas)
        first_cost = varint_size(int(column[0]))
        if count >= 2:
            width = int(encoded.max()).bit_length() if encoded.size else 0
            delta_size = 1 + first_cost + 1 + ((count - 1) * width + 7) // 8
            if delta_size < best_size:
                best_mode, best_size = _COL_DELTA, delta_size
        if count >= 3:
            second = zigzag_encode(deltas[1:] - deltas[:-1])
            width = int(second.max()).bit_length() if second.size else 0
            dod_size = (
                1
                + first_cost
                + varint_size(int(encoded[0]))
                + 1
                + ((count - 2) * width + 7) // 8
            )
            if dod_size < best_size:
                best_mode, best_size = _COL_DOD, dod_size
        return best_mode, best_size

    @classmethod
    def _encode_column(cls, out: bytearray, column: np.ndarray, field_width: int) -> str:
        mode, _ = cls._plan_column(column, field_width)
        count = len(column)
        signed_view = "<i8" if field_width == 8 else "<i4"
        if mode == _COL_RAW:
            out.append(_COL_RAW)
            out += column.tobytes()
            return "raw"
        deltas = (column[1:] - column[:-1]).view(signed_view).astype("<i8")
        encoded = zigzag_encode(deltas)
        if mode == _COL_DELTA:
            out.append(_COL_DELTA)
            write_varint(out, int(column[0]))
            width = int(encoded.max()).bit_length() if encoded.size else 0
            out.append(width)
            out += bitpack(encoded, width)
            return "delta"
        out.append(_COL_DOD)
        write_varint(out, int(column[0]))
        write_varint(out, int(encoded[0]))
        second = zigzag_encode(deltas[1:] - deltas[:-1])
        width = int(second.max()).bit_length() if second.size else 0
        out.append(width)
        out += bitpack(second, width)
        return "dod"

    # -- decode -------------------------------------------------------------

    def decompress(self, payload: bytes) -> bytes:
        payload = bytes(payload)
        if len(payload) < 4 or payload[:2] != _COLUMNAR_MAGIC:
            raise CorruptStreamError("columnar: bad magic")
        if payload[2] != _VERSION:
            raise CorruptStreamError(f"columnar: unknown version {payload[2]}")
        mode = payload[3]
        if mode == _MODE_RAW:
            return payload[4:]
        if mode != _MODE_STRUCTURED:
            raise CorruptStreamError(f"columnar: unknown mode {mode}")
        limit = len(payload)
        offset = 4
        original_length, offset = read_varint(payload, offset)
        if original_length == 0 or original_length > MAX_STRUCTURED_OUTPUT:
            raise CorruptStreamError("columnar: implausible output length")
        record_width, offset = read_varint(payload, offset)
        if record_width == 0 or record_width > _MAX_RECORD_WIDTH:
            raise CorruptStreamError("columnar: bad record width")
        if offset >= limit:
            raise CorruptStreamError("columnar: truncated header")
        field_width = payload[offset]
        offset += 1
        if field_width not in (4, 8) or record_width % field_width:
            raise CorruptStreamError("columnar: bad field width")
        record_count, offset = read_varint(payload, offset)
        if record_count * record_width != original_length:
            raise CorruptStreamError("columnar: record count/length mismatch")
        fields = record_width // field_width
        columns = []
        for _ in range(fields):
            column, offset = self._decode_column(payload, offset, record_count, field_width)
            columns.append(column)
        dtype = "<u8" if field_width == 8 else "<u4"
        table = np.empty((record_count, fields), dtype=dtype)
        for index, column in enumerate(columns):
            table[:, index] = column.astype(dtype)
        out = table.tobytes()
        if len(out) != original_length:
            raise CorruptStreamError("columnar: output length mismatch")
        return out

    @staticmethod
    def _decode_column(
        payload: bytes, offset: int, count: int, field_width: int
    ) -> Tuple[np.ndarray, int]:
        limit = len(payload)
        if offset >= limit:
            raise CorruptStreamError("columnar: truncated column")
        mode = payload[offset]
        offset += 1
        if mode == _COL_RAW:
            need = count * field_width
            if need > limit - offset:
                raise CorruptStreamError("columnar: truncated raw column")
            dtype = "<u8" if field_width == 8 else "<u4"
            column = np.frombuffer(payload, dtype=dtype, count=count, offset=offset)
            return column.astype("<u8"), offset + need
        if mode not in (_COL_DELTA, _COL_DOD):
            raise CorruptStreamError(f"columnar: unknown column mode {mode}")
        first, offset = read_varint(payload, offset)
        if first > _U64_MASK:
            raise CorruptStreamError("columnar: first value out of range")
        first_delta = 0
        if mode == _COL_DOD:
            if count < 2:
                raise CorruptStreamError("columnar: dod column needs >= 2 records")
            first_delta, offset = read_varint(payload, offset)
            if first_delta > _U64_MASK:
                raise CorruptStreamError("columnar: first delta out of range")
        if offset >= limit:
            raise CorruptStreamError("columnar: truncated bit width")
        width = payload[offset]
        offset += 1
        if width > 64:
            raise CorruptStreamError("columnar: bit width out of range")
        packed_count = count - 1 if mode == _COL_DELTA else count - 2
        packed_count = max(packed_count, 0)
        need = (packed_count * width + 7) // 8
        if need > limit - offset:
            raise CorruptStreamError("columnar: truncated packed column")
        unpacked = bitunpack(payload[offset:offset + need], packed_count, width)
        offset += need
        if mode == _COL_DELTA:
            return undelta_zigzag(first, unpacked), offset
        second = zigzag_decode(unpacked).view("<u8")
        deltas = np.empty(packed_count + 1, dtype="<u8")
        delta0 = np.uint64(_unzigzag_int(first_delta) & _U64_MASK)
        deltas[0] = delta0
        if packed_count:
            deltas[1:] = delta0 + np.cumsum(second, dtype="<u8")
        column = np.empty(count, dtype="<u8")
        column[0] = np.uint64(first)
        column[1:] = np.uint64(first) + np.cumsum(deltas, dtype="<u8")
        return column, offset
