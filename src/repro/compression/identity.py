"""The "don't compress" method of the selection algorithm (§2.5).

When the link is fast relative to the CPU's reducing speed, the paper's
algorithm sends blocks uncompressed.  Modelling that as a codec keeps the
pipeline, middleware handlers, and statistics uniform.
"""

from __future__ import annotations

from .base import Codec

__all__ = ["IdentityCodec"]


class IdentityCodec(Codec):
    """Pass-through codec; compress and decompress are the identity."""

    name = "none"
    family = "identity"

    def compress(self, data: bytes) -> bytes:
        return bytes(data)

    def decompress(self, payload: bytes) -> bytes:
        return bytes(payload)
