"""Adaptive arithmetic coding (paper §2.2, refs [21, 22]).

This is the classic Witten-Neal-Cleary integer implementation: the coder
keeps a ``[low, high)`` interval in 32-bit fixed point, narrows it by the
model's cumulative frequencies for each symbol, and emits bits (plus
pending underflow bits) as the interval's leading bits settle.

The model is adaptive order-0: both sides start from uniform counts and
increment the count of each symbol after coding it, so no frequency table
travels with the payload.  A dedicated end-of-stream symbol (index 256)
terminates decoding.

The paper finds arithmetic coding unattractive for its application class
(good ratios only on low-entropy data, poor speed — Figure 1's column), and
this per-symbol Python loop is faithfully the slowest codec here as well.
"""

from __future__ import annotations

from typing import List

from .base import Codec, CorruptStreamError
from .bitio import BitReader, BitWriter

__all__ = ["ArithmeticCodec", "ContextArithmeticCodec", "AdaptiveByteModel"]

_CODE_BITS = 32
_TOP = (1 << _CODE_BITS) - 1
_HALF = 1 << (_CODE_BITS - 1)
_QUARTER = 1 << (_CODE_BITS - 2)
_THREE_QUARTERS = _HALF + _QUARTER
#: Rescale threshold; keeping totals below 2**16 preserves precision with
#: 32-bit interval arithmetic.
_MAX_TOTAL = 1 << 16

_EOF_SYMBOL = 256
_ALPHABET = 257


class AdaptiveByteModel:
    """Order-0 adaptive frequency model over bytes plus an EOF symbol.

    Cumulative totals are maintained in a Fenwick (binary indexed) tree so
    both update and cumulative lookup are O(log alphabet).
    """

    def __init__(self) -> None:
        self._tree = [0] * (_ALPHABET + 1)
        self._total = 0
        for symbol in range(_ALPHABET):
            self._add(symbol, 1)

    def _add(self, symbol: int, delta: int) -> None:
        index = symbol + 1
        while index <= _ALPHABET:
            self._tree[index] += delta
            index += index & (-index)
        self._total += delta

    def cumulative(self, symbol: int) -> int:
        """Sum of frequencies of symbols strictly below ``symbol``."""
        index = symbol
        total = 0
        tree = self._tree
        while index > 0:
            total += tree[index]
            index -= index & (-index)
        return total

    def frequency(self, symbol: int) -> int:
        return self.cumulative(symbol + 1) - self.cumulative(symbol)

    @property
    def total(self) -> int:
        return self._total

    def update(self, symbol: int) -> None:
        """Record one occurrence of ``symbol``, rescaling when saturated."""
        self._add(symbol, 32)
        if self._total >= _MAX_TOTAL:
            self._rescale()

    def _rescale(self) -> None:
        frequencies = [
            max(1, self.frequency(symbol) // 2) for symbol in range(_ALPHABET)
        ]
        self._tree = [0] * (_ALPHABET + 1)
        self._total = 0
        for symbol, freq in enumerate(frequencies):
            self._add(symbol, freq)

    def find(self, cumulative_value: int) -> int:
        """Return the symbol whose interval contains ``cumulative_value``."""
        index = 0
        mask = 1
        while mask * 2 <= _ALPHABET:
            mask *= 2
        tree = self._tree
        remaining = cumulative_value
        while mask:
            probe = index + mask
            if probe <= _ALPHABET and tree[probe] <= remaining:
                index = probe
                remaining -= tree[probe]
            mask >>= 1
        return index


class ArithmeticCodec(Codec):
    """Adaptive order-0 arithmetic codec over bytes."""

    name = "arithmetic"
    family = "entropy"

    def compress(self, data: bytes) -> bytes:
        model = AdaptiveByteModel()
        writer = BitWriter()
        low = 0
        high = _TOP
        pending = 0

        def emit(bit: int) -> None:
            nonlocal pending
            writer.write_bit(bit)
            if pending:
                writer.write_bits((bit ^ 1) * ((1 << pending) - 1), pending)
                pending = 0

        for symbol in list(data) + [_EOF_SYMBOL]:
            span = high - low + 1
            total = model.total
            cum_low = model.cumulative(symbol)
            cum_high = cum_low + model.frequency(symbol)
            high = low + span * cum_high // total - 1
            low = low + span * cum_low // total
            while True:
                if high < _HALF:
                    emit(0)
                elif low >= _HALF:
                    emit(1)
                    low -= _HALF
                    high -= _HALF
                elif low >= _QUARTER and high < _THREE_QUARTERS:
                    pending += 1
                    low -= _QUARTER
                    high -= _QUARTER
                else:
                    break
                low *= 2
                high = high * 2 + 1
            model.update(symbol)
        pending += 1
        if low < _QUARTER:
            emit(0)
        else:
            emit(1)
        return writer.getvalue()

    def decompress(self, payload: bytes) -> bytes:
        model = AdaptiveByteModel()
        reader = BitReader(payload)
        low = 0
        high = _TOP
        value = 0
        for _ in range(_CODE_BITS):
            value = (value << 1) | _next_bit(reader)
        out: List[int] = []
        while True:
            span = high - low + 1
            total = model.total
            scaled = ((value - low + 1) * total - 1) // span
            symbol = model.find(scaled)
            cum_low = model.cumulative(symbol)
            cum_high = cum_low + model.frequency(symbol)
            high = low + span * cum_high // total - 1
            low = low + span * cum_low // total
            while True:
                if high < _HALF:
                    pass
                elif low >= _HALF:
                    low -= _HALF
                    high -= _HALF
                    value -= _HALF
                elif low >= _QUARTER and high < _THREE_QUARTERS:
                    low -= _QUARTER
                    high -= _QUARTER
                    value -= _QUARTER
                else:
                    break
                low *= 2
                high = high * 2 + 1
                value = (value << 1) | _next_bit(reader)
            model.update(symbol)
            if symbol == _EOF_SYMBOL:
                return bytes(out)
            out.append(symbol)
            # With a rescaled adaptive model a symbol can cost well under a
            # hundredth of a bit, so the corruption guard must be generous.
            if len(out) > len(payload) * 8 * 4096 + 4096:
                raise CorruptStreamError("runaway arithmetic decode")


def _next_bit(reader: BitReader) -> int:
    """Read a bit, treating exhaustion as zero padding (standard WNC)."""
    try:
        return reader.read_bit()
    except EOFError:
        return 0


class ContextArithmeticCodec(Codec):
    """Order-1 context-modelling arithmetic codec.

    The order-0 coder ignores "an item's environment" (§2.3's critique);
    conditioning the model on the previous byte captures first-order
    structure (digraphs in text, stride patterns in binary records) while
    remaining a pure entropy coder.  One adaptive model is kept per
    context, created lazily — text typically touches a few dozen.

    Shares all interval mechanics with :class:`ArithmeticCodec`; only the
    model lookup differs.  Same wire discipline: adaptive models on both
    ends, EOF symbol terminates.
    """

    name = "arithmetic-o1"
    family = "entropy"

    def compress(self, data: bytes) -> bytes:
        models: dict = {}
        writer = BitWriter()
        low = 0
        high = _TOP
        pending = 0

        def emit(bit: int) -> None:
            nonlocal pending
            writer.write_bit(bit)
            if pending:
                writer.write_bits((bit ^ 1) * ((1 << pending) - 1), pending)
                pending = 0

        context = 0
        for symbol in list(data) + [_EOF_SYMBOL]:
            model = models.get(context)
            if model is None:
                model = AdaptiveByteModel()
                models[context] = model
            span = high - low + 1
            total = model.total
            cum_low = model.cumulative(symbol)
            cum_high = cum_low + model.frequency(symbol)
            high = low + span * cum_high // total - 1
            low = low + span * cum_low // total
            while True:
                if high < _HALF:
                    emit(0)
                elif low >= _HALF:
                    emit(1)
                    low -= _HALF
                    high -= _HALF
                elif low >= _QUARTER and high < _THREE_QUARTERS:
                    pending += 1
                    low -= _QUARTER
                    high -= _QUARTER
                else:
                    break
                low *= 2
                high = high * 2 + 1
            model.update(symbol)
            context = symbol if symbol != _EOF_SYMBOL else 0
        pending += 1
        if low < _QUARTER:
            emit(0)
        else:
            emit(1)
        return writer.getvalue()

    def decompress(self, payload: bytes) -> bytes:
        models: dict = {}
        reader = BitReader(payload)
        low = 0
        high = _TOP
        value = 0
        for _ in range(_CODE_BITS):
            value = (value << 1) | _next_bit(reader)
        out: List[int] = []
        context = 0
        while True:
            model = models.get(context)
            if model is None:
                model = AdaptiveByteModel()
                models[context] = model
            span = high - low + 1
            total = model.total
            scaled = ((value - low + 1) * total - 1) // span
            symbol = model.find(scaled)
            cum_low = model.cumulative(symbol)
            cum_high = cum_low + model.frequency(symbol)
            high = low + span * cum_high // total - 1
            low = low + span * cum_low // total
            while True:
                if high < _HALF:
                    pass
                elif low >= _HALF:
                    low -= _HALF
                    high -= _HALF
                    value -= _HALF
                elif low >= _QUARTER and high < _THREE_QUARTERS:
                    low -= _QUARTER
                    high -= _QUARTER
                    value -= _QUARTER
                else:
                    break
                low *= 2
                high = high * 2 + 1
                value = (value << 1) | _next_bit(reader)
            model.update(symbol)
            if symbol == _EOF_SYMBOL:
                return bytes(out)
            out.append(symbol)
            context = symbol
            if len(out) > len(payload) * 8 * 4096 + 4096:
                raise CorruptStreamError("runaway arithmetic decode")
