"""LZW — the LZ78-family dictionary coder (paper ref [24]).

The paper's Lempel-Ziv discussion cites both the 1977 sliding-window
algorithm (our :mod:`~repro.compression.lz77`) and the 1978 explicit-
dictionary one; production systems of the era (UNIX ``compress``,
WINZIP's ancestors) shipped the LZW variant of the latter.  This is a
classic variable-width LZW:

* codes start at 9 bits and widen up to :data:`MAX_CODE_BITS`;
* code 256 resets the dictionary (emitted when it fills), 257 is EOF;
* decoding handles the KwKwK corner case.

Registered as ``"lzw"``; available to the selector as an alternative
dictionary method and used by tests as an independent reference when
validating the LZ77 implementation's ratios.
"""

from __future__ import annotations

from typing import Dict, List

from .base import Codec, CorruptStreamError
from .bitio import BitReader, BitWriter
from .varint import read_varint, write_varint

__all__ = ["LzwCodec", "MAX_CODE_BITS"]

MAX_CODE_BITS = 14
_RESET = 256
_EOF = 257
_FIRST_FREE = 258


class LzwCodec(Codec):
    """Variable-width LZW with dictionary reset.

    Wire format::

        varint original_length
        padded variable-width code stream ending in the EOF code
    """

    name = "lzw"
    family = "dictionary"

    def compress(self, data: bytes) -> bytes:
        header = bytearray()
        write_varint(header, len(data))
        if not data:
            return bytes(header)
        writer = BitWriter()
        table: Dict[bytes, int] = {bytes([i]): i for i in range(256)}
        next_code = _FIRST_FREE
        width = 9
        limit = 1 << MAX_CODE_BITS

        current = bytes([data[0]])
        for byte in data[1:]:
            extended = current + bytes([byte])
            code = table.get(extended)
            if code is not None:
                current = extended
                continue
            writer.write_bits(table[current], width)
            if next_code < limit:
                table[extended] = next_code
                next_code += 1
                if next_code > (1 << width) and width < MAX_CODE_BITS:
                    width += 1
            else:
                writer.write_bits(_RESET, width)
                table = {bytes([i]): i for i in range(256)}
                next_code = _FIRST_FREE
                width = 9
            current = bytes([byte])
        writer.write_bits(table[current], width)
        # The decoder grows its dictionary on this final code too (it
        # always lags one assignment behind), so mirror the phantom
        # assignment before choosing the EOF width — otherwise a stream
        # ending exactly at a widening boundary desynchronizes and the
        # decoder reads EOF one bit wide (found by the conformance kit
        # on 16257 bytes of period-2 input).
        if len(data) > 1 and next_code < limit:
            next_code += 1
            if next_code > (1 << width) and width < MAX_CODE_BITS:
                width += 1
        writer.write_bits(_EOF, width)
        return bytes(header) + writer.getvalue()

    def decompress(self, payload: bytes) -> bytes:
        view = memoryview(payload)
        original_length, offset = read_varint(view, 0)
        if original_length == 0:
            if offset != len(payload):
                raise CorruptStreamError("trailing bytes after empty stream")
            return b""
        reader = BitReader(payload, start_bit=offset * 8)
        out = bytearray()
        strings: List[bytes] = [bytes([i]) for i in range(256)] + [b"", b""]
        width = 9
        limit = 1 << MAX_CODE_BITS
        previous: bytes = b""

        while True:
            try:
                code = reader.read_bits(width)
            except EOFError:
                raise CorruptStreamError("LZW stream ended without EOF code") from None
            if code == _EOF:
                break
            if code == _RESET:
                strings = [bytes([i]) for i in range(256)] + [b"", b""]
                width = 9
                previous = b""
                continue
            if code < len(strings) and (code < 256 or strings[code]):
                entry = strings[code]
            elif code == len(strings) and previous:
                entry = previous + previous[:1]  # the KwKwK case
            else:
                raise CorruptStreamError(f"invalid LZW code {code}")
            out += entry
            if previous and len(strings) < limit:
                strings.append(previous + entry[:1])
                # Encoder widens *after* assigning next_code; mirror it.
                if len(strings) + 1 > (1 << width) and width < MAX_CODE_BITS:
                    width += 1
            previous = entry
            if len(out) > original_length:
                raise CorruptStreamError("decoded size exceeds header length")
        if len(out) != original_length:
            raise CorruptStreamError("decoded size does not match header length")
        return bytes(out)
