"""Framed streaming compression over any block codec.

The paper's pipeline consumes a *stream* cut into 128 KB blocks (§2.5).
This module packages that pattern as a reusable incremental API, so
applications can push bytes of any granularity and pull framed compressed
output — without holding the whole stream in memory:

* :class:`StreamingCompressor` — ``write(data)`` buffers until a full
  block is available, emits one self-delimiting frame per block;
  ``flush()`` frames the partial tail.  Each frame may even use a
  *different* method (the adaptive use case): pass a ``method_picker``
  callable and it is consulted per block.
* :class:`StreamingDecompressor` — feed arbitrary byte chunks of the
  framed stream; decoded data comes out as it completes.  Framing is
  self-describing, so the decompressor needs no out-of-band state.

Frame layout::

    varint  method_name_length | method_name | varint payload_length | payload
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .base import CorruptStreamError
from .registry import get_codec
from .varint import read_varint, write_varint

__all__ = ["StreamingCompressor", "StreamingDecompressor", "DEFAULT_STREAM_BLOCK"]

DEFAULT_STREAM_BLOCK = 128 * 1024
_MAX_METHOD_NAME = 64


class StreamingCompressor:
    """Incremental compressor emitting self-delimiting frames."""

    def __init__(
        self,
        method: str = "lempel-ziv",
        block_size: int = DEFAULT_STREAM_BLOCK,
        method_picker: Optional[Callable[[bytes], str]] = None,
    ) -> None:
        if block_size < 1024:
            raise ValueError("block_size must be at least 1 KB")
        get_codec(method)  # validate eagerly
        self.method = method
        self.block_size = block_size
        self.method_picker = method_picker
        self._pending = bytearray()
        self._finished = False
        self.frames_emitted = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def write(self, data: bytes) -> bytes:
        """Accept input; returns any complete frames produced."""
        if self._finished:
            raise ValueError("compressor already flushed")
        self._pending += data
        self.bytes_in += len(data)
        out = bytearray()
        while len(self._pending) >= self.block_size:
            block = bytes(self._pending[: self.block_size])
            del self._pending[: self.block_size]
            out += self._frame(block)
        self.bytes_out += len(out)
        return bytes(out)

    def flush(self) -> bytes:
        """Frame the partial tail and close the stream."""
        if self._finished:
            return b""
        self._finished = True
        if not self._pending:
            return b""
        block = bytes(self._pending)
        self._pending.clear()
        frame = self._frame(block)
        self.bytes_out += len(frame)
        return bytes(frame)

    def _frame(self, block: bytes) -> bytearray:
        method = self.method
        if self.method_picker is not None:
            method = self.method_picker(block)
        payload = get_codec(method).compress(block)
        frame = bytearray()
        name = method.encode()
        write_varint(frame, len(name))
        frame += name
        write_varint(frame, len(payload))
        frame += payload
        self.frames_emitted += 1
        return frame

    @property
    def ratio(self) -> float:
        """Compressed/original bytes so far (framing overhead included)."""
        if self.bytes_in == 0:
            return 1.0
        return self.bytes_out / self.bytes_in


class StreamingDecompressor:
    """Incremental decoder for :class:`StreamingCompressor` output."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.frames_decoded = 0

    def write(self, data: bytes) -> bytes:
        """Accept framed bytes; returns all newly completed plaintext."""
        self._buffer += data
        out = bytearray()
        while True:
            frame = self._try_frame()
            if frame is None:
                break
            out += frame
        return bytes(out)

    def _try_frame(self) -> Optional[bytes]:
        buffer = self._buffer
        try:
            name_length, offset = read_varint(buffer, 0)
        except CorruptStreamError:
            return None  # header not complete yet
        if name_length == 0 or name_length > _MAX_METHOD_NAME:
            raise CorruptStreamError("implausible method-name length in frame")
        if len(buffer) < offset + name_length:
            return None
        try:
            method = bytes(buffer[offset : offset + name_length]).decode("ascii")
        except UnicodeDecodeError as exc:
            raise CorruptStreamError("non-ASCII method name in frame") from exc
        offset += name_length
        try:
            payload_length, offset = read_varint(buffer, offset)
        except CorruptStreamError:
            return None
        if len(buffer) < offset + payload_length:
            return None
        payload = bytes(buffer[offset : offset + payload_length])
        del buffer[: offset + payload_length]
        self.frames_decoded += 1
        return get_codec(method).decompress(payload)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a complete frame."""
        return len(self._buffer)

    def close(self) -> None:
        """Assert the stream ended cleanly at a frame boundary."""
        if self._buffer:
            raise CorruptStreamError(
                f"{len(self._buffer)} trailing bytes mid-frame at stream end"
            )
