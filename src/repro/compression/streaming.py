"""Framed streaming compression over any block codec.

The paper's pipeline consumes a *stream* cut into 128 KB blocks (§2.5).
This module packages that pattern as a reusable incremental API, so
applications can push bytes of any granularity and pull framed compressed
output — without holding the whole stream in memory:

* :class:`StreamingCompressor` — ``write(data)`` buffers until a full
  block is available, emits one self-delimiting frame per block;
  ``flush()`` frames the partial tail.  Each frame may even use a
  *different* method (the adaptive use case): pass a ``method_picker``
  callable and it is consulted per block.
* :class:`StreamingDecompressor` — feed arbitrary byte chunks of the
  framed stream; decoded data comes out as it completes.  Framing is
  self-describing, so the decompressor needs no out-of-band state, and
  buffering is bounded by ``max_frame_size`` (a corrupt or hostile
  header cannot make the decoder buffer indefinitely).

Frames are the shared :mod:`repro.compression.framing` layout with the
codec method name as the header, so any framing-aware peer (including
the TCP transport's parser) can recover them.
"""

from __future__ import annotations

from typing import Callable, Optional

from .base import CodecError, CorruptStreamError
from .framing import (
    DEFAULT_MAX_FRAME_SIZE,
    MAX_METHOD_NAME,
    FrameDecoder,
    encode_block_frame,
)
from .registry import get_codec

__all__ = ["StreamingCompressor", "StreamingDecompressor", "DEFAULT_STREAM_BLOCK"]

DEFAULT_STREAM_BLOCK = 128 * 1024


class StreamingCompressor:
    """Incremental compressor emitting self-delimiting frames."""

    def __init__(
        self,
        method: str = "lempel-ziv",
        block_size: int = DEFAULT_STREAM_BLOCK,
        method_picker: Optional[Callable[[bytes], str]] = None,
    ) -> None:
        if block_size < 1024:
            raise ValueError("block_size must be at least 1 KB")
        get_codec(method)  # validate eagerly
        self.method = method
        self.block_size = block_size
        self.method_picker = method_picker
        self._pending = bytearray()
        self._finished = False
        self.frames_emitted = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def write(self, data: bytes) -> bytes:
        """Accept input; returns any complete frames produced."""
        if self._finished:
            raise ValueError("compressor already flushed")
        self._pending += data
        self.bytes_in += len(data)
        out = bytearray()
        while len(self._pending) >= self.block_size:
            block = bytes(self._pending[: self.block_size])
            del self._pending[: self.block_size]
            out += self._frame(block)
        self.bytes_out += len(out)
        return bytes(out)

    def flush(self) -> bytes:
        """Frame the partial tail and close the stream."""
        if self._finished:
            return b""
        self._finished = True
        if not self._pending:
            return b""
        block = bytes(self._pending)
        self._pending.clear()
        frame = self._frame(block)
        self.bytes_out += len(frame)
        return frame

    def _frame(self, block: bytes) -> bytes:
        method = self.method
        if self.method_picker is not None:
            method = self.method_picker(block)
        payload = get_codec(method).compress(block)
        self.frames_emitted += 1
        return encode_block_frame(method, payload)

    @property
    def ratio(self) -> float:
        """Compressed/original bytes so far (framing overhead included)."""
        if self.bytes_in == 0:
            return 1.0
        return self.bytes_out / self.bytes_in


class StreamingDecompressor:
    """Incremental decoder for :class:`StreamingCompressor` output."""

    def __init__(self, max_frame_size: int = DEFAULT_MAX_FRAME_SIZE) -> None:
        self._decoder = FrameDecoder(
            max_frame_size=max_frame_size, max_header_size=MAX_METHOD_NAME
        )
        self.frames_decoded = 0

    def write(self, data: bytes) -> bytes:
        """Accept framed bytes; returns all newly completed plaintext.

        Raises :class:`~repro.compression.base.CorruptStreamError` when
        the stream cannot be valid framing — including a declared frame
        size beyond ``max_frame_size``.
        """
        out = bytearray()
        for frame in self._decoder.feed(data):
            try:
                codec = get_codec(frame.method)
            except CodecError as exc:
                # A method name the registry has never heard of can only
                # come from a corrupted header, so report it as stream
                # corruption rather than a configuration error.
                raise CorruptStreamError(str(exc)) from exc
            out += codec.decompress(frame.payload)
            self.frames_decoded += 1
        return bytes(out)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a complete frame."""
        return self._decoder.pending_bytes

    def close(self) -> None:
        """Assert the stream ended cleanly at a frame boundary."""
        self._decoder.close()
