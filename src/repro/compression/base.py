"""Common codec interface for the configurable-compression library.

Every compression method in the paper (Huffman, arithmetic, Lempel-Ziv,
Burrows-Wheeler, and the "no compression" identity) is exposed through the
same two-method interface so the selection algorithm and the middleware
handlers can treat them uniformly.

A codec is *stateless* between calls: all state needed for decompression is
embedded in the compressed representation itself.  This mirrors the paper's
design in which any block can be handed to a receiver that only knows which
method id was used (transported as a quality attribute).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

__all__ = [
    "ACCEPTABLE_DECODE_ERRORS",
    "Codec",
    "CodecError",
    "CorruptStreamError",
    "CompressionResult",
    "canonical_params",
    "params_label",
]


class CodecError(Exception):
    """Base class for all compression-related failures."""


class CorruptStreamError(CodecError, ValueError):
    """The compressed representation cannot be decoded.

    Also a :class:`ValueError`: corrupt wire input is a bad value, and the
    shared framing module serves layers whose callers historically caught
    ``ValueError`` (the event wire format).
    """


#: The corruption contract: for *any* input bytes, ``decompress`` either
#: returns bytes (entropy coders cannot always detect damage — wrong
#: output is acceptable) or raises one of these.  ``EOFError`` covers bit
#: exhaustion in the bit-level readers.  Anything else (IndexError,
#: struct.error, a hang, ...) is a codec bug; the conformance kit and the
#: fuzz gate both assert against this exact tuple.
ACCEPTABLE_DECODE_ERRORS = (CorruptStreamError, EOFError)


def _canonical_value(value: object) -> object:
    """Normalize one parameter value for canonical comparison/hashing.

    Numeric values that denote the same quantity canonicalize identically
    (``6`` and ``6.0`` collapse to ``6``), mappings recurse into sorted
    key order, and sequences become tuples.  Booleans are *tagged*: a
    flag is not the number 1, but ``True == 1`` in Python, so a bare bool
    would collide with an int under dict hashing.  Anything else must
    already be hashable.
    """
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, Mapping):
        return tuple(
            (str(k), _canonical_value(v)) for k, v in sorted(value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_value(v) for v in value)
    return value


def canonical_params(
    params: Optional[Mapping[str, object]],
) -> Tuple[Tuple[str, object], ...]:
    """Canonicalize a codec-parameter mapping into one hashable key.

    Cache keys and metric labels must treat ``{"level": 6}`` and every
    equivalent spelling (different insertion order, ``6.0`` for ``6``)
    as the *same* configuration — otherwise a shared compressed-block
    cache fragments and label cardinality multiplies.  This is the one
    helper both sides use: keys are sorted, values normalized by
    :func:`_canonical_value`, and ``None``/empty maps canonicalize to
    the empty tuple.
    """
    if not params:
        return ()
    return tuple((str(k), _canonical_value(v)) for k, v in sorted(params.items()))


def _label_value(value: object) -> str:
    if isinstance(value, tuple) and len(value) == 2 and value[0] == "bool":
        return str(value[1])  # unwrap the canonical bool tag
    if isinstance(value, str):
        return repr(value)
    return str(value)


def params_label(params) -> str:
    """Render canonical params as a compact, stable metric-label value.

    ``{"level": 6}`` -> ``"level=6"``; empty/None -> ``"-"`` (labels must
    be non-empty strings).  Accepts either a raw mapping or an
    already-canonical tuple from :func:`canonical_params` (cache keys
    carry the latter); equivalent spellings always label identically.
    """
    canon = params if isinstance(params, tuple) else canonical_params(params)
    if not canon:
        return "-"
    return ",".join(f"{key}={_label_value(value)}" for key, value in canon)


class Codec(abc.ABC):
    """Abstract lossless codec.

    Subclasses define :attr:`name` (stable registry key, also used as the
    method id in middleware attributes) and implement :meth:`compress` /
    :meth:`decompress` such that ``decompress(compress(data)) == data`` for
    every ``bytes`` input.
    """

    #: Stable identifier used by the registry and the wire protocol.
    name: str = "abstract"

    #: Relative implementation complexity class used in documentation and
    #: the qualitative decision table; not consumed by the algorithm.
    family: str = "generic"

    @abc.abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Return a self-describing compressed representation of ``data``."""

    @abc.abstractmethod
    def decompress(self, payload: bytes) -> bytes:
        """Invert :meth:`compress`; raises :class:`CorruptStreamError`."""

    def ratio(self, data: bytes) -> float:
        """Compressed size as a fraction of the original size.

        Matches the paper's "percents of compression" axis (Figures 2 and 6)
        when multiplied by 100.  Empty inputs compress to ratio 1.0 by
        convention.
        """
        if not data:
            return 1.0
        return len(self.compress(data)) / len(data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


@dataclass
class CompressionResult:
    """Outcome of one timed compression call.

    ``reducing_speed`` is the paper's central metric: the number of bytes by
    which the CPU shrank the data per second of compression work.  It is
    ``0.0`` when the codec failed to shrink the data, and ``inf`` only for
    the sentinel "first block" case created by the selector itself.
    """

    codec_name: str
    original_size: int
    compressed_size: int
    elapsed_seconds: float
    payload: Optional[bytes] = field(default=None, repr=False)

    @property
    def ratio(self) -> float:
        """Compressed/original size; 1.0 for empty input."""
        if self.original_size == 0:
            return 1.0
        return self.compressed_size / self.original_size

    @property
    def bytes_saved(self) -> int:
        """How many bytes compression removed (never negative)."""
        return max(0, self.original_size - self.compressed_size)

    @property
    def reducing_speed(self) -> float:
        """Bytes removed per second of CPU time (paper §4.1, Figure 4)."""
        if self.elapsed_seconds <= 0.0:
            return float("inf") if self.bytes_saved else 0.0
        return self.bytes_saved / self.elapsed_seconds

    @property
    def throughput(self) -> float:
        """Input bytes consumed per second of CPU time."""
        if self.elapsed_seconds <= 0.0:
            return float("inf")
        return self.original_size / self.elapsed_seconds


# The timed ``measure`` primitive lives in :mod:`repro.core.engine` — the
# single sanctioned timing site (see DESIGN.md §5, one-timing-site
# invariant).  This module stays timing-free.
