"""Common codec interface for the configurable-compression library.

Every compression method in the paper (Huffman, arithmetic, Lempel-Ziv,
Burrows-Wheeler, and the "no compression" identity) is exposed through the
same two-method interface so the selection algorithm and the middleware
handlers can treat them uniformly.

A codec is *stateless* between calls: all state needed for decompression is
embedded in the compressed representation itself.  This mirrors the paper's
design in which any block can be handed to a receiver that only knows which
method id was used (transported as a quality attribute).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = [
    "Codec",
    "CodecError",
    "CorruptStreamError",
    "CompressionResult",
    "measure",
]


class CodecError(Exception):
    """Base class for all compression-related failures."""


class CorruptStreamError(CodecError):
    """The compressed representation cannot be decoded."""


class Codec(abc.ABC):
    """Abstract lossless codec.

    Subclasses define :attr:`name` (stable registry key, also used as the
    method id in middleware attributes) and implement :meth:`compress` /
    :meth:`decompress` such that ``decompress(compress(data)) == data`` for
    every ``bytes`` input.
    """

    #: Stable identifier used by the registry and the wire protocol.
    name: str = "abstract"

    #: Relative implementation complexity class used in documentation and
    #: the qualitative decision table; not consumed by the algorithm.
    family: str = "generic"

    @abc.abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Return a self-describing compressed representation of ``data``."""

    @abc.abstractmethod
    def decompress(self, payload: bytes) -> bytes:
        """Invert :meth:`compress`; raises :class:`CorruptStreamError`."""

    def ratio(self, data: bytes) -> float:
        """Compressed size as a fraction of the original size.

        Matches the paper's "percents of compression" axis (Figures 2 and 6)
        when multiplied by 100.  Empty inputs compress to ratio 1.0 by
        convention.
        """
        if not data:
            return 1.0
        return len(self.compress(data)) / len(data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


@dataclass
class CompressionResult:
    """Outcome of one timed compression call.

    ``reducing_speed`` is the paper's central metric: the number of bytes by
    which the CPU shrank the data per second of compression work.  It is
    ``0.0`` when the codec failed to shrink the data, and ``inf`` only for
    the sentinel "first block" case created by the selector itself.
    """

    codec_name: str
    original_size: int
    compressed_size: int
    elapsed_seconds: float
    payload: Optional[bytes] = field(default=None, repr=False)

    @property
    def ratio(self) -> float:
        """Compressed/original size; 1.0 for empty input."""
        if self.original_size == 0:
            return 1.0
        return self.compressed_size / self.original_size

    @property
    def bytes_saved(self) -> int:
        """How many bytes compression removed (never negative)."""
        return max(0, self.original_size - self.compressed_size)

    @property
    def reducing_speed(self) -> float:
        """Bytes removed per second of CPU time (paper §4.1, Figure 4)."""
        if self.elapsed_seconds <= 0.0:
            return float("inf") if self.bytes_saved else 0.0
        return self.bytes_saved / self.elapsed_seconds

    @property
    def throughput(self) -> float:
        """Input bytes consumed per second of CPU time."""
        if self.elapsed_seconds <= 0.0:
            return float("inf")
        return self.original_size / self.elapsed_seconds


def measure(codec: Codec, data: bytes, keep_payload: bool = True) -> CompressionResult:
    """Compress ``data`` with ``codec`` under a wall-clock timer.

    This is the measurement primitive behind the sampling process of §2.5:
    the selector periodically compresses a small sample and uses the
    resulting :class:`CompressionResult` to estimate both the reducing speed
    and the achievable ratio for the next block.
    """
    start = time.perf_counter()
    payload = codec.compress(data)
    elapsed = time.perf_counter() - start
    return CompressionResult(
        codec_name=codec.name,
        original_size=len(data),
        compressed_size=len(payload),
        elapsed_seconds=elapsed,
        payload=payload if keep_payload else None,
    )
