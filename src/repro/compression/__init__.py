"""Lossless compression methods (paper §2).

From-scratch implementations of every method the paper evaluates —
Huffman, arithmetic, Lempel-Ziv with Huffman-coded pointers, and the
modified chunk-synchronizable Burrows-Wheeler pipeline — behind a uniform
:class:`~repro.compression.base.Codec` interface and a runtime registry.
"""

from .arithmetic import AdaptiveByteModel, ArithmeticCodec, ContextArithmeticCodec
from .base import Codec, CodecError, CompressionResult, CorruptStreamError
from .bitio import BitReader, BitWriter
from .framing import (
    DEFAULT_MAX_FRAME_SIZE,
    JUMBO_HEADER,
    Frame,
    FrameDecoder,
    decode_frame,
    encode_block_frame,
    encode_frame,
    encode_frame_into,
    encode_frame_parts,
    encode_jumbo_frame,
    is_jumbo_frame,
    parse_frame,
    unpack_jumbo_frame,
)
from .bwhuff import BurrowsWheelerCodec
from .bwt import bwt_inverse, bwt_transform, suffix_array
from .huffman import HuffmanCode, HuffmanCodec, StreamDecoder, huffman_code_lengths
from .identity import IdentityCodec
from .lossy import QuantizedFloatCodec, TruncatedFloatCodec
from .lz77 import Lz77Codec, tokenize
from .lzw import LzwCodec
from .mtf import mtf_decode, mtf_encode
from .native import (
    HAVE_LZ4,
    HAVE_ZSTD,
    NativeBwCodec,
    NativeLz4Codec,
    NativeLzCodec,
    NativeZstdCodec,
)
from .parallel import ParallelCodec, parallel_huffman_decode
from .registry import (
    PAPER_METHODS,
    available_codecs,
    get_codec,
    register_codec,
    unregister_codec,
)
from .rle import rle_decode, rle_encode
from .streaming import StreamingCompressor, StreamingDecompressor
from .structured import (
    MAX_STRUCTURED_OUTPUT,
    ColumnarCodec,
    TemplateCodec,
    bitpack,
    bitunpack,
    delta_zigzag,
    undelta_zigzag,
    zigzag_decode,
    zigzag_encode,
)

__all__ = [
    "AdaptiveByteModel",
    "ArithmeticCodec",
    "BitReader",
    "BitWriter",
    "BurrowsWheelerCodec",
    "Codec",
    "CodecError",
    "CompressionResult",
    "ContextArithmeticCodec",
    "CorruptStreamError",
    "DEFAULT_MAX_FRAME_SIZE",
    "Frame",
    "FrameDecoder",
    "HAVE_LZ4",
    "HAVE_ZSTD",
    "HuffmanCode",
    "HuffmanCodec",
    "IdentityCodec",
    "JUMBO_HEADER",
    "Lz77Codec",
    "LzwCodec",
    "NativeBwCodec",
    "NativeLz4Codec",
    "NativeLzCodec",
    "NativeZstdCodec",
    "ColumnarCodec",
    "MAX_STRUCTURED_OUTPUT",
    "ParallelCodec",
    "PAPER_METHODS",
    "TemplateCodec",
    "QuantizedFloatCodec",
    "StreamDecoder",
    "StreamingCompressor",
    "StreamingDecompressor",
    "TruncatedFloatCodec",
    "available_codecs",
    "bitpack",
    "bitunpack",
    "bwt_inverse",
    "bwt_transform",
    "delta_zigzag",
    "decode_frame",
    "encode_block_frame",
    "encode_frame",
    "encode_frame_into",
    "encode_frame_parts",
    "encode_jumbo_frame",
    "get_codec",
    "is_jumbo_frame",
    "huffman_code_lengths",
    "mtf_decode",
    "parallel_huffman_decode",
    "mtf_encode",
    "parse_frame",
    "register_codec",
    "rle_decode",
    "rle_encode",
    "suffix_array",
    "tokenize",
    "undelta_zigzag",
    "unpack_jumbo_frame",
    "unregister_codec",
    "zigzag_decode",
    "zigzag_encode",
]
