"""Canonical, length-limited Huffman coding (paper §2.1).

This module provides two layers:

* :class:`HuffmanCode` — a reusable canonical Huffman code over an arbitrary
  integer alphabet.  It is shared by the standalone :class:`HuffmanCodec`,
  by the Lempel-Ziv pointer encoder (§2.3: "pointers … are represented by
  Huffman codes") and by the joint chunk coder of the modified
  Burrows-Wheeler pipeline (§2.4).
* :class:`HuffmanCodec` — the standalone byte-oriented codec evaluated in
  the paper's microbenchmarks (Figures 2, 3, 4, 6).

Code lengths are limited to :data:`MAX_CODE_LENGTH` bits so that decoding
can use a single flat lookup table, which keeps pure-Python decode speed
acceptable for 128 KB blocks.  The paper highlights Huffman's
self-synchronizing property (§2.4, ref [31]); :meth:`HuffmanCode.decode_symbols`
accepts an arbitrary start bit, which is what the chunk-resynchronizing
decoder in :mod:`repro.compression.bwhuff` builds on.
"""

from __future__ import annotations

import heapq
from functools import lru_cache
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .base import Codec, CorruptStreamError
from .bitio import BitReader, BitWriter
from .varint import read_varint, write_varint

__all__ = [
    "MAX_CODE_LENGTH",
    "HuffmanCode",
    "HuffmanCodec",
    "StreamDecoder",
    "huffman_code_lengths",
]

#: Longest permitted codeword, in bits.  15 bits keeps the flat decode
#: table at 32768 entries while being ample for 128 KB blocks.
MAX_CODE_LENGTH = 15

#: Distinct decode tables kept alive at once.  The 4 KB Lempel-Ziv
#: sampling probe and the per-chunk Burrows-Wheeler verify path rebuild
#: codes with recurring length profiles block after block; a handful of
#: cached tables absorbs nearly all of that reconstruction cost.
_DECODE_TABLE_CACHE = 64


def _canonical_codes(lengths: Sequence[int]) -> List[int]:
    """Canonical codeword values for ``lengths`` (0 for absent symbols).

    Shared by encode-side setup and the cached decode-table builder so
    both derive the identical code from a length profile.
    """
    codes = [0] * len(lengths)
    code = 0
    previous_length = 0
    for sym in sorted(
        (sym for sym, length in enumerate(lengths) if length > 0),
        key=lambda sym: (lengths[sym], sym),
    ):
        length = lengths[sym]
        code <<= length - previous_length
        codes[sym] = code
        code += 1
        previous_length = length
    return codes


@lru_cache(maxsize=_DECODE_TABLE_CACHE)
def _decode_tables(lengths: Tuple[int, ...]) -> Tuple[List[int], List[int]]:
    """Flat (symbols, lengths) decode tables for a code-length profile.

    Keyed by the length tuple: two :class:`HuffmanCode` instances with the
    same profile share one table.  Plain lists, not numpy: scalar indexing
    is faster and yields Python ints, which the bit-accumulator arithmetic
    requires.  Callers treat the lists as read-only.
    """
    codes = _canonical_codes(lengths)
    size = 1 << MAX_CODE_LENGTH
    syms = np.zeros(size, dtype=np.int32)
    lens = np.zeros(size, dtype=np.int8)
    for sym, length in enumerate(lengths):
        if length == 0:
            continue
        prefix = codes[sym] << (MAX_CODE_LENGTH - length)
        span = 1 << (MAX_CODE_LENGTH - length)
        syms[prefix : prefix + span] = sym
        lens[prefix : prefix + span] = length
    return syms.tolist(), lens.tolist()


def huffman_code_lengths(frequencies: Sequence[int], max_length: int = MAX_CODE_LENGTH) -> List[int]:
    """Compute length-limited Huffman code lengths for ``frequencies``.

    Zero-frequency symbols get length 0 (no codeword).  The classic
    heap-merge algorithm (the recursive procedure of §2.1) yields optimal
    lengths; if any exceeds ``max_length`` they are clamped and the Kraft
    inequality is repaired, trading a small amount of optimality for a
    bounded decode table.
    """
    present = [(f, s) for s, f in enumerate(frequencies) if f > 0]
    lengths = [0] * len(frequencies)
    if not present:
        return lengths
    if len(present) == 1:
        lengths[present[0][1]] = 1
        return lengths

    # Heap entries: (frequency, tiebreak, [symbols in this subtree]).
    heap: List[Tuple[int, int, List[int]]] = [
        (freq, sym, [sym]) for freq, sym in present
    ]
    heapq.heapify(heap)
    tiebreak = len(frequencies)
    while len(heap) > 1:
        f1, _, s1 = heapq.heappop(heap)
        f2, _, s2 = heapq.heappop(heap)
        for sym in s1:
            lengths[sym] += 1
        for sym in s2:
            lengths[sym] += 1
        heapq.heappush(heap, (f1 + f2, tiebreak, s1 + s2))
        tiebreak += 1

    if max(lengths) <= max_length:
        return lengths

    # Clamp and repair the Kraft sum, then (greedily) shorten codes again
    # while slack remains.  Symbols are treated in increasing-frequency
    # order so the cheapest codes absorb the damage.
    for sym in range(len(lengths)):
        if lengths[sym] > max_length:
            lengths[sym] = max_length
    budget = 1 << max_length
    kraft = sum(1 << (max_length - l) for l in lengths if l)
    order = sorted((sym for sym, l in enumerate(lengths) if l), key=lambda s: frequencies[s])
    while kraft > budget:
        for sym in order:
            if 0 < lengths[sym] < max_length:
                kraft -= 1 << (max_length - lengths[sym] - 1)
                lengths[sym] += 1
                break
        else:  # pragma: no cover - cannot happen while alphabet <= 2**max_length
            raise CorruptStreamError("unable to repair Kraft inequality")
    for sym in sorted(order, key=lambda s: -frequencies[s]):
        while lengths[sym] > 1 and kraft + (1 << (max_length - lengths[sym])) <= budget:
            kraft += 1 << (max_length - lengths[sym])
            lengths[sym] -= 1
    return lengths


class HuffmanCode:
    """A canonical Huffman code over the alphabet ``0 .. len(lengths)-1``."""

    def __init__(self, lengths: Sequence[int]) -> None:
        if any(l < 0 or l > MAX_CODE_LENGTH for l in lengths):
            raise CorruptStreamError("code length outside supported range")
        self.lengths = list(lengths)
        self.codes: List[int] = [0] * len(lengths)
        self.code_strings: List[str] = [""] * len(lengths)
        self._assign_canonical()
        self._decode_symbols = None  # type: list | None
        self._decode_lengths = None  # type: list | None

    def _assign_canonical(self) -> None:
        self.codes = _canonical_codes(self.lengths)
        kraft = 0
        for sym, length in enumerate(self.lengths):
            if length == 0:
                continue
            self.code_strings[sym] = format(self.codes[sym], f"0{length}b")
            kraft += 1 << (MAX_CODE_LENGTH - length)
        if kraft > (1 << MAX_CODE_LENGTH):
            raise CorruptStreamError("code lengths violate the Kraft inequality")

    @classmethod
    def from_frequencies(cls, frequencies: Sequence[int]) -> "HuffmanCode":
        """Build the code for observed symbol ``frequencies``."""
        return cls(huffman_code_lengths(frequencies))

    @classmethod
    def from_symbols(cls, symbols: Sequence[int], alphabet_size: int) -> "HuffmanCode":
        """Build the code from a symbol stream (convenience for tests)."""
        freqs = np.bincount(np.asarray(symbols, dtype=np.int64), minlength=alphabet_size)
        return cls.from_frequencies(freqs.tolist())

    # -- table serialization -------------------------------------------------

    def write_table(self, writer: BitWriter) -> None:
        """Serialize code lengths (4 bits each; canonical codes are implied)."""
        for length in self.lengths:
            writer.write_bits(length, 4)

    @classmethod
    def read_table(cls, reader: BitReader, alphabet_size: int) -> "HuffmanCode":
        """Inverse of :meth:`write_table`."""
        lengths = [reader.read_bits(4) for _ in range(alphabet_size)]
        return cls(lengths)

    # -- encoding -------------------------------------------------------------

    def encode_bitstring(self, symbols: Iterable[int]) -> str:
        """Return the concatenated codewords as a '0'/'1' string.

        The single whole-block encoding path: string concatenation followed
        by one ``int(s, 2)`` conversion is the fastest pure-Python encoder.
        Interleaved encoders (Huffman codewords mixed with raw extra bits,
        as in the Lempel-Ziv pointer stream) index :attr:`code_strings`
        directly; the matching read side is :class:`StreamDecoder`.
        """
        table = self.code_strings
        return "".join(map(table.__getitem__, symbols))

    # -- decoding -------------------------------------------------------------

    def _ensure_decode_table(self) -> None:
        if self._decode_symbols is not None:
            return
        self._decode_symbols, self._decode_lengths = _decode_tables(
            tuple(self.lengths)
        )

    def decode_symbols(
        self, data: bytes, start_bit: int, count: int
    ) -> Tuple[List[int], int]:
        """Decode ``count`` symbols starting at ``start_bit``.

        Returns ``(symbols, end_bit)``.  ``start_bit`` may point anywhere in
        the stream — the Huffman self-synchronization property (§2.4) means
        decoding from a wrong offset produces a few garbage symbols and then
        locks on; callers exploiting that simply pass a guessed offset.
        """
        self._ensure_decode_table()
        table_syms = self._decode_symbols
        table_lens = self._decode_lengths
        assert table_syms is not None and table_lens is not None
        width = MAX_CODE_LENGTH
        total_bits = len(data) * 8
        out: List[int] = []
        append = out.append
        byte_index = start_bit >> 3
        acc = 0
        nbits = 0
        if start_bit & 7:
            acc = data[byte_index] & ((1 << (8 - (start_bit & 7))) - 1)
            nbits = 8 - (start_bit & 7)
            byte_index += 1
        consumed = start_bit
        data_len = len(data)
        while len(out) < count:
            while nbits < width and byte_index < data_len:
                acc = (acc << 8) | data[byte_index]
                byte_index += 1
                nbits += 8
            if nbits >= width:
                window = (acc >> (nbits - width)) & ((1 << width) - 1)
            else:
                window = (acc << (width - nbits)) & ((1 << width) - 1)
            length = table_lens[window]
            if length == 0 or length > nbits:
                raise CorruptStreamError("invalid codeword or truncated stream")
            append(table_syms[window])
            nbits -= length
            acc &= (1 << nbits) - 1
            consumed += length
            if consumed > total_bits:
                raise CorruptStreamError("bit stream exhausted mid-symbol")
        return out, consumed

    def expected_bits(self, frequencies: Sequence[int]) -> int:
        """Encoded size in bits for a stream with the given frequencies."""
        return sum(f * l for f, l in zip(frequencies, self.lengths))


class StreamDecoder:
    """Sequential bit-stream decoder mixing Huffman codes and raw bits.

    The Lempel-Ziv decoder interleaves Huffman codewords (literal/length and
    distance symbols) with raw extra bits, so it cannot use the batch
    :meth:`HuffmanCode.decode_symbols`.  This decoder keeps an accumulator
    over the payload and serves both kinds of reads in input order.
    """

    def __init__(self, data: bytes, start_bit: int = 0) -> None:
        self._data = data
        self._byte_index = start_bit >> 3
        self._acc = 0
        self._nbits = 0
        if start_bit & 7:
            self._acc = data[self._byte_index] & ((1 << (8 - (start_bit & 7))) - 1)
            self._nbits = 8 - (start_bit & 7)
            self._byte_index += 1

    @property
    def bit_position(self) -> int:
        """Absolute bit offset of the next unread bit."""
        return self._byte_index * 8 - self._nbits

    def _fill(self, want: int) -> None:
        data = self._data
        length = len(data)
        while self._nbits < want and self._byte_index < length:
            self._acc = (self._acc << 8) | data[self._byte_index]
            self._byte_index += 1
            self._nbits += 8

    def read_bits(self, width: int) -> int:
        """Read ``width`` raw bits (MSB first)."""
        if width == 0:
            return 0
        self._fill(width)
        if self._nbits < width:
            raise CorruptStreamError("bit stream exhausted")
        self._nbits -= width
        value = (self._acc >> self._nbits) & ((1 << width) - 1)
        self._acc &= (1 << self._nbits) - 1
        return value

    def read_code(self, code: HuffmanCode) -> int:
        """Read one Huffman codeword of ``code``."""
        code._ensure_decode_table()
        table_syms = code._decode_symbols
        table_lens = code._decode_lengths
        assert table_syms is not None and table_lens is not None
        self._fill(MAX_CODE_LENGTH)
        if self._nbits >= MAX_CODE_LENGTH:
            window = (self._acc >> (self._nbits - MAX_CODE_LENGTH)) & (
                (1 << MAX_CODE_LENGTH) - 1
            )
        else:
            window = (self._acc << (MAX_CODE_LENGTH - self._nbits)) & (
                (1 << MAX_CODE_LENGTH) - 1
            )
        length = table_lens[window]
        if length == 0 or length > self._nbits:
            raise CorruptStreamError("invalid codeword or truncated stream")
        self._nbits -= length
        self._acc &= (1 << self._nbits) - 1
        return table_syms[window]


class HuffmanCodec(Codec):
    """Standalone byte-level Huffman codec (paper §2.1).

    Wire format::

        varint  original_length
        256 x 4-bit code lengths          (only if original_length > 0)
        padded  Huffman bitstream
    """

    name = "huffman"
    family = "entropy"

    def compress(self, data: bytes) -> bytes:
        header = bytearray()
        write_varint(header, len(data))
        if not data:
            return bytes(header)
        freqs = np.bincount(np.frombuffer(data, dtype=np.uint8), minlength=256)
        code = HuffmanCode.from_frequencies(freqs.tolist())
        writer = BitWriter()
        code.write_table(writer)
        bits = code.encode_bitstring(data)
        table_bytes = writer.getvalue()  # 256 * 4 bits = exactly 128 bytes
        payload = _bitstring_to_bytes(bits)
        return bytes(header) + table_bytes + payload

    def decompress(self, payload: bytes) -> bytes:
        view = memoryview(payload)
        original_length, offset = read_varint(view, 0)
        if original_length == 0:
            if offset != len(payload):
                raise CorruptStreamError("trailing bytes after empty stream")
            return b""
        reader = BitReader(payload, start_bit=offset * 8)
        code = HuffmanCode.read_table(reader, 256)
        symbols, _ = code.decode_symbols(payload, reader.position, original_length)
        return bytes(symbols)


def _bitstring_to_bytes(bits: str) -> bytes:
    """Pack a '0'/'1' string into bytes, padding with zeros."""
    if not bits:
        return b""
    padding = (-len(bits)) % 8
    bits += "0" * padding
    return int(bits, 2).to_bytes(len(bits) // 8, "big")
