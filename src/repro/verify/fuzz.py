"""Deterministic coverage-guided byte fuzzing of the decode surfaces.

The attack surface the middleware exposes to hostile bytes is exactly
three APIs: the frame parser, the streaming decoder, and every codec's
``decompress``.  This module mutates seeded inputs against all of them
and enforces the corruption contract
(:data:`~repro.compression.base.ACCEPTABLE_DECODE_ERRORS` or bytes out —
nothing else, ever).

Design constraints, in order:

* **Deterministic per seed.**  The mutation schedule is a pure function
  of ``(seed, iteration)``; two runs with the same seed and iteration
  count execute byte-identical inputs and reach the same verdict.  A
  wall-clock budget only *truncates* the schedule (the run reports
  ``budget_exhausted``), it never reorders it.
* **Coverage-guided, without instrumentation.**  Each execution is
  classified into a coarse outcome signature (target, outcome class,
  exception type, size bucket).  Inputs producing a signature never seen
  before join the mutation pool — the classic corpus-growth loop, with
  the outcome signature standing in for branch coverage (no tracer, so
  the loop stays fast and fully deterministic).
* **Failures shrink to minimal reproducers.**  A contract violation is
  greedily minimized (chunk deletion, then byte deletion) while it keeps
  raising the same exception type, then recorded as a
  :class:`CrashEntry` — a JSONL line small enough to commit, replayable
  via ``repro fuzz --replay``.

Timing goes through :class:`~repro.netsim.clock.WallClock` (the
sanctioned clock substrate); this module reads no clocks directly.
"""

from __future__ import annotations

import base64
import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..compression.base import ACCEPTABLE_DECODE_ERRORS
from ..compression.framing import FrameDecoder, encode_block_frame
from ..compression.registry import available_codecs, get_codec
from ..compression.streaming import StreamingDecompressor
from ..netsim.clock import Clock, WallClock
from .corpus import CorpusGenerator

__all__ = [
    "CrashEntry",
    "FuzzReport",
    "Fuzzer",
    "FuzzTarget",
    "build_default_targets",
    "load_corpus",
    "mutated_copies",
    "replay_corpus",
    "write_corpus",
]

#: Exceptions the event wire format may additionally raise: its header is
#: a JSON document, so damage surfaces through the JSON/unicode layers
#: before the framing contract can catch it.
_WIRE_ACCEPTABLE = ACCEPTABLE_DECODE_ERRORS + (
    ValueError,
    KeyError,
    TypeError,
    UnicodeDecodeError,
)

_SHRINK_ATTEMPTS = 1200


def mutated_copies(payload: bytes, rng: random.Random, count: int = 24) -> Iterator[bytes]:
    """The canonical systematic+random mutation set for one payload.

    Shared by the conformance kit, the corruption tests, and the fuzzer's
    seed rounds: truncations, trailing junk, total garbage, and ``count``
    seeded single-bit flips.
    """
    yield payload[: len(payload) // 2]
    yield payload[:-1]
    yield payload + b"\x00"
    yield b""
    yield b"\xff" * len(payload)
    if not payload:
        return
    for _ in range(count):
        mutated = bytearray(payload)
        position = rng.randrange(len(mutated))
        mutated[position] ^= 1 << rng.randrange(8)
        yield bytes(mutated)


def _mutate(payload: bytes, rng: random.Random) -> bytes:
    """One seeded mutation: flip, splice, duplicate, truncate, or inject."""
    if not payload:
        return bytes(rng.randrange(256) for _ in range(rng.randrange(1, 8)))
    mutated = bytearray(payload)
    operation = rng.randrange(6)
    if operation == 0:  # single bit flip
        position = rng.randrange(len(mutated))
        mutated[position] ^= 1 << rng.randrange(8)
    elif operation == 1:  # overwrite a short window with random bytes
        position = rng.randrange(len(mutated))
        for offset in range(min(rng.randrange(1, 9), len(mutated) - position)):
            mutated[position + offset] = rng.randrange(256)
    elif operation == 2:  # delete a slice
        start = rng.randrange(len(mutated))
        end = min(len(mutated), start + rng.randrange(1, 64))
        del mutated[start:end]
    elif operation == 3:  # duplicate a slice in place
        start = rng.randrange(len(mutated))
        end = min(len(mutated), start + rng.randrange(1, 64))
        mutated[start:start] = mutated[start:end]
    elif operation == 4:  # truncate
        mutated = mutated[: rng.randrange(len(mutated) + 1)]
    else:  # inject interesting bytes (varint continuation, escapes, markers)
        position = rng.randrange(len(mutated) + 1)
        token = rng.choice(
            (b"\x80\x00", b"\xff", b"\x00", b"\xfe\xff", b"\x80\x80\x80\x80\x80")
        )
        mutated[position:position] = token
    return bytes(mutated)


@dataclass(frozen=True)
class FuzzTarget:
    """One decode surface: a callable plus its contract exception set."""

    name: str
    execute: Callable[[bytes], object]
    acceptable: Tuple[type, ...] = ACCEPTABLE_DECODE_ERRORS
    seeds: Tuple[bytes, ...] = ()


@dataclass
class CrashEntry:
    """One minimal reproducer, serializable as a JSONL line."""

    id: str
    target: str
    seed: int
    iteration: int
    error_type: str
    error_message: str
    data: bytes

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "target": self.target,
            "seed": self.seed,
            "iteration": self.iteration,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "data_b64": base64.b64encode(self.data).decode("ascii"),
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "CrashEntry":
        return cls(
            id=str(raw["id"]),
            target=str(raw["target"]),
            seed=int(raw["seed"]),  # type: ignore[arg-type]
            iteration=int(raw["iteration"]),  # type: ignore[arg-type]
            error_type=str(raw["error_type"]),
            error_message=str(raw["error_message"]),
            data=base64.b64decode(str(raw["data_b64"])),
        )


@dataclass
class FuzzReport:
    """Outcome of one fuzzing run."""

    seed: int
    iterations_run: int
    signatures: int
    crashes: List[CrashEntry] = field(default_factory=list)
    budget_exhausted: bool = False
    pool_sizes: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.crashes


def _decode_framing(data: bytes) -> object:
    return FrameDecoder().feed(data)


def _decode_streaming(data: bytes) -> object:
    decompressor = StreamingDecompressor()
    out = decompressor.write(data)
    decompressor.close()
    return out


def _decode_wire(data: bytes) -> object:
    from ..middleware.transport import WireFormat

    return WireFormat.decode(data)


def _framed_seed_streams(corpus: Dict[str, bytes]) -> Tuple[bytes, ...]:
    """Small framed streams (v1 and v2 frames, mixed methods) to mutate."""
    block = (corpus.get("commercial") or b"framed seed corpus ")[:3072]
    streams = []
    for check in (True, False):
        stream = bytearray()
        for method in ("none", "lempel-ziv", "huffman"):
            payload = get_codec(method).compress(block[:1024])
            stream += encode_block_frame(method, payload, check=check)
        streams.append(bytes(stream))
    return tuple(streams)


def build_default_targets(
    corpus: Optional[Dict[str, bytes]] = None,
    codec_names: Optional[Sequence[str]] = None,
) -> List[FuzzTarget]:
    """The default attack surface: framing, streaming, wire, every codec."""
    if corpus is None:
        corpus = CorpusGenerator(size=4096).as_dict()
    framed = _framed_seed_streams(corpus)
    targets = [
        FuzzTarget(name="framing", execute=_decode_framing, seeds=framed),
        FuzzTarget(name="streaming", execute=_decode_streaming, seeds=framed),
    ]
    try:
        from ..middleware.events import Event
        from ..middleware.transport import WireFormat

        wire_seed = WireFormat.encode(
            Event(
                payload=(corpus.get("lowentropy") or b"payload ")[:512],
                attributes={"method": "huffman", "k": 1},
                channel_id="fuzz",
                sequence=7,
            )
        )
        targets.append(
            FuzzTarget(
                name="wire",
                execute=_decode_wire,
                acceptable=_WIRE_ACCEPTABLE,
                seeds=(wire_seed,),
            )
        )
    except ImportError:  # pragma: no cover - middleware is always present today
        pass
    names = list(codec_names) if codec_names is not None else available_codecs()
    for name in names:
        codec = get_codec(name)
        if codec.family == "lossy":
            # Lossy codecs consume float64 blocks; their decode surface
            # obeys the same contract over arbitrary payload bytes.
            import numpy as np

            sample = np.linspace(-2.0, 2.0, 512).astype("<f8").tobytes()
        else:
            size = 2048 if name.startswith("arithmetic") else 4096
            sample = (corpus.get("commercial") or b"codec seed corpus ")[:size]
        seeds = (codec.compress(sample), codec.compress(b""))
        targets.append(
            FuzzTarget(name=f"codec:{name}", execute=codec.decompress, seeds=seeds)
        )
    return targets


def _signature(target: FuzzTarget, status: str, detail: object) -> Tuple:
    """Coarse outcome signature standing in for branch coverage."""
    if status == "ok":
        if isinstance(detail, (bytes, bytearray)):
            size = len(detail)
        elif isinstance(detail, list):
            size = len(detail)
        else:
            size = 0
        return (target.name, "ok", size.bit_length())
    return (target.name, "rejected", detail)


class Fuzzer:
    """Seeded mutation loop over a set of :class:`FuzzTarget`\\ s."""

    def __init__(
        self,
        seed: int = 0,
        targets: Optional[Sequence[FuzzTarget]] = None,
        corpus: Optional[Dict[str, bytes]] = None,
    ) -> None:
        self.seed = seed
        self.targets = (
            list(targets) if targets is not None else build_default_targets(corpus)
        )
        if not self.targets:
            raise ValueError("fuzzer needs at least one target")
        self._pools: Dict[str, List[bytes]] = {
            target.name: list(target.seeds) or [b""] for target in self.targets
        }
        self._seen: set = set()

    # -- execution -------------------------------------------------------------

    def _execute(
        self, target: FuzzTarget, data: bytes
    ) -> Tuple[str, object, Optional[BaseException]]:
        """Run one input; returns (status, detail, violation)."""
        try:
            result = target.execute(data)
        except target.acceptable as exc:
            return "rejected", type(exc).__name__, None
        except Exception as exc:  # noqa: BLE001 - the violation we hunt for
            return "crash", type(exc).__name__, exc
        return "ok", result, None

    def _violates(self, target: FuzzTarget, data: bytes, error_type: str) -> bool:
        status, detail, _ = self._execute(target, data)
        return status == "crash" and detail == error_type

    def shrink(self, target: FuzzTarget, data: bytes, error_type: str) -> bytes:
        """Greedy deterministic minimization preserving the failure type."""
        attempts = 0
        current = data
        # Pass 1: halving — keep either half while the failure persists.
        changed = True
        while changed and attempts < _SHRINK_ATTEMPTS:
            changed = False
            half = len(current) // 2
            for candidate in (current[:half], current[half:]):
                attempts += 1
                if len(candidate) < len(current) and self._violates(
                    target, candidate, error_type
                ):
                    current = candidate
                    changed = True
                    break
        # Pass 2: chunk deletion with shrinking windows, then single bytes.
        window = max(1, len(current) // 4)
        while window >= 1 and attempts < _SHRINK_ATTEMPTS:
            position = 0
            while position < len(current) and attempts < _SHRINK_ATTEMPTS:
                candidate = current[:position] + current[position + window :]
                attempts += 1
                if self._violates(target, candidate, error_type):
                    current = candidate
                else:
                    position += window
            if window == 1:
                break
            window //= 2
        return current

    def _record_crash(
        self,
        target: FuzzTarget,
        data: bytes,
        iteration: int,
        exc: BaseException,
        crashes: List[CrashEntry],
        seen_keys: set,
    ) -> None:
        error_type = type(exc).__name__
        key = (target.name, error_type)
        if key in seen_keys:
            return
        seen_keys.add(key)
        minimal = self.shrink(target, data, error_type)
        status, detail, final_exc = self._execute(target, minimal)
        message = str(final_exc) if status == "crash" else str(exc)
        digest = hashlib.sha256(
            target.name.encode() + b"\x00" + minimal
        ).hexdigest()[:12]
        crashes.append(
            CrashEntry(
                id=digest,
                target=target.name,
                seed=self.seed,
                iteration=iteration,
                error_type=error_type,
                error_message=message[:200],
                data=minimal,
            )
        )

    # -- the loop --------------------------------------------------------------

    def run(
        self,
        iterations: int = 2000,
        budget_seconds: Optional[float] = None,
        clock: Optional[Clock] = None,
    ) -> FuzzReport:
        """Execute the deterministic mutation schedule.

        ``iterations`` bounds the schedule (the determinism contract);
        ``budget_seconds`` is a wall-clock safety cap that can only stop
        the run early, flagged in the report.
        """
        rng = random.Random(self.seed)
        clock = clock if clock is not None else WallClock()
        deadline = (
            clock.now() + budget_seconds if budget_seconds is not None else None
        )
        crashes: List[CrashEntry] = []
        crash_keys: set = set()
        executed = 0
        budget_exhausted = False
        # Seed round: every target's seeds run unmutated so their
        # signatures populate the coverage map before mutation starts.
        for target in self.targets:
            for seed_input in self._pools[target.name]:
                status, detail, exc = self._execute(target, seed_input)
                self._seen.add(_signature(target, status, detail))
                if exc is not None:
                    self._record_crash(
                        target, seed_input, -1, exc, crashes, crash_keys
                    )
        for iteration in range(iterations):
            if deadline is not None and clock.now() >= deadline:
                budget_exhausted = True
                break
            target = self.targets[rng.randrange(len(self.targets))]
            pool = self._pools[target.name]
            base = pool[rng.randrange(len(pool))]
            mutated = _mutate(base, rng)
            status, detail, exc = self._execute(target, mutated)
            executed += 1
            if exc is not None:
                self._record_crash(target, mutated, iteration, exc, crashes, crash_keys)
                continue
            signature = _signature(target, status, detail)
            if signature not in self._seen:
                self._seen.add(signature)
                if len(pool) < 256:  # bound memory; determinism unaffected
                    pool.append(mutated)
        return FuzzReport(
            seed=self.seed,
            iterations_run=executed,
            signatures=len(self._seen),
            crashes=crashes,
            budget_exhausted=budget_exhausted,
            pool_sizes={name: len(pool) for name, pool in self._pools.items()},
        )


# -- crash corpus I/O ----------------------------------------------------------


def write_corpus(path: str, entries: Sequence[CrashEntry]) -> None:
    """Write a JSONL crash corpus (one entry per line)."""
    with open(path, "w", encoding="utf-8") as sink:
        for entry in entries:
            sink.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")


def load_corpus(path: str) -> List[CrashEntry]:
    """Load a JSONL crash corpus written by :func:`write_corpus`."""
    entries: List[CrashEntry] = []
    with open(path, encoding="utf-8") as source:
        for line in source:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            entries.append(CrashEntry.from_dict(json.loads(line)))
    return entries


def replay_corpus(
    entries: Sequence[CrashEntry],
    targets: Optional[Sequence[FuzzTarget]] = None,
) -> List[Tuple[CrashEntry, bool, str]]:
    """Re-run each entry; returns (entry, still_fails, detail) triples.

    A committed corpus doubles as a regression suite: every entry records
    a once-minimal reproducer, and replay proves the decode surface now
    handles it within the contract (``still_fails`` must be False).
    """
    if targets is None:
        targets = build_default_targets()
    by_name = {target.name: target for target in targets}
    results: List[Tuple[CrashEntry, bool, str]] = []
    for entry in entries:
        target = by_name.get(entry.target)
        if target is None:
            results.append((entry, True, f"unknown target {entry.target!r}"))
            continue
        try:
            result = target.execute(entry.data)
        except target.acceptable as exc:
            results.append(
                (entry, False, f"rejected with {type(exc).__name__} (contract)")
            )
        except Exception as exc:  # noqa: BLE001
            results.append(
                (entry, True, f"still crashes: {type(exc).__name__}: {exc}")
            )
        else:
            kind = type(result).__name__
            results.append((entry, False, f"decoded cleanly ({kind})"))
    return results
