"""Correctness tooling: conformance kit, differential oracles, fuzzing.

The selector (paper §2.5) can only pick among codecs it can trust; this
package is the machinery that keeps every registry entry trustworthy:

* :mod:`repro.verify.conformance` — declarative invariants run against
  every codec in ``available_codecs()`` with zero per-codec test code;
* :mod:`repro.verify.differential` — cross-checks against standard-
  library counterparts (zlib/bz2), scalar reference loops, and pool
  strategies;
* :mod:`repro.verify.fuzz` — deterministic coverage-guided byte fuzzing
  of every decode surface, with shrinking and a JSONL crash corpus;
* :mod:`repro.verify.corpus` — the seeded corpus generator feeding all
  three;
* :mod:`repro.verify.references` — the scalar textbook implementations
  kept as differential oracles.
"""

from .conformance import (
    CONFORMANCE_CHECKS,
    CheckResult,
    conformance_failures,
    run_conformance,
)
from .corpus import DEFAULT_CORPUS_SEED, EDGE_CASES, CorpusGenerator
from .differential import (
    REFERENCE_COUNTERPARTS,
    DifferentialResult,
    counterpart_for,
    differential_failures,
    run_differential,
)
from .fuzz import (
    CrashEntry,
    Fuzzer,
    FuzzReport,
    FuzzTarget,
    build_default_targets,
    load_corpus,
    mutated_copies,
    replay_corpus,
    write_corpus,
)

__all__ = [
    "CONFORMANCE_CHECKS",
    "CheckResult",
    "conformance_failures",
    "run_conformance",
    "DEFAULT_CORPUS_SEED",
    "EDGE_CASES",
    "CorpusGenerator",
    "REFERENCE_COUNTERPARTS",
    "DifferentialResult",
    "counterpart_for",
    "differential_failures",
    "run_differential",
    "CrashEntry",
    "Fuzzer",
    "FuzzReport",
    "FuzzTarget",
    "build_default_targets",
    "load_corpus",
    "mutated_copies",
    "replay_corpus",
    "write_corpus",
]
