"""Scalar reference implementations for differential testing.

The hot loops in :mod:`repro.compression` (move-to-front, the 254-capped
RLE, the Burrows-Wheeler transform, and the structured codecs'
zigzag/delta/bitpack column primitives) are vectorized numpy rewrites of
classic per-byte algorithms.  This module keeps the classic formulations
— short, obviously-correct Python loops straight out of the textbook —
as the differential oracle: the optimized path must be **byte-identical**
to these on every input, forever.

They are deliberately slow (the BWT reference sorts suffixes with
Python's ``sorted``, O(n² log n)); use them on test-sized inputs only.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..compression.base import CorruptStreamError
from ..compression.rle import ESCAPE, MAX_RUN, MIN_RUN

__all__ = [
    "reference_mtf_encode",
    "reference_mtf_decode",
    "reference_rle_encode",
    "reference_rle_decode",
    "reference_bwt_transform",
    "reference_bwt_inverse",
    "reference_bitpack",
    "reference_bitunpack",
    "reference_delta_zigzag",
    "reference_undelta_zigzag",
]

_U64_MASK = (1 << 64) - 1


def reference_mtf_encode(data: bytes) -> bytes:
    """Classic per-byte move-to-front (paper §2.4 step 2, verbatim)."""
    table = list(range(256))
    out = bytearray()
    for byte in data:
        index = table.index(byte)
        out.append(index)
        table.pop(index)
        table.insert(0, byte)
    return bytes(out)


def reference_mtf_decode(ranks: bytes) -> bytes:
    """Invert :func:`reference_mtf_encode`, one rank at a time."""
    table = list(range(256))
    out = bytearray()
    for rank in ranks:
        byte = table.pop(rank)
        out.append(byte)
        table.insert(0, byte)
    return bytes(out)


def reference_rle_encode(data: bytes) -> bytes:
    """Classic greedy per-byte RLE into the 0..254 alphabet."""
    out = bytearray()
    i = 0
    while i < len(data):
        byte = data[i]
        if byte == 0:
            run = 1
            while i + run < len(data) and data[i + run] == 0 and run < MAX_RUN:
                run += 1
            if run >= MIN_RUN:
                out += bytes((ESCAPE, run))
            else:
                out += b"\x00" * run
            i += run
        elif byte >= ESCAPE:
            out += bytes((ESCAPE, byte - ESCAPE))
            i += 1
        else:
            out.append(byte)
            i += 1
    return bytes(out)


def reference_rle_decode(data: bytes) -> bytes:
    """Per-byte inverse of :func:`reference_rle_encode`."""
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        byte = data[i]
        if byte == 255:
            raise CorruptStreamError("reserved byte 255 inside RLE payload")
        if byte == ESCAPE:
            if i + 1 >= n:
                raise CorruptStreamError("truncated escape sequence")
            argument = data[i + 1]
            if argument == 0:
                out.append(254)
            elif argument == 1:
                out.append(255)
            elif argument == 255:
                raise CorruptStreamError("reserved byte 255 inside RLE payload")
            else:
                out += b"\x00" * argument
            i += 2
        else:
            out.append(byte)
            i += 1
    return bytes(out)


def reference_bwt_transform(data: bytes) -> Tuple[bytes, int]:
    """Suffix sort by actual suffix comparison (sentinel semantics intact).

    Mirrors :func:`repro.compression.bwt.bwt_transform` exactly: symbols
    are shifted up by one, a unique smallest sentinel (0) is appended, the
    sentinel's own row is dropped from the last column, and its position
    is returned as the primary index.
    """
    if not data:
        return b"", 0
    terminated = [b + 1 for b in data] + [0]
    m = len(terminated)
    order = sorted(range(m), key=lambda i: terminated[i:])
    primary = order.index(0)
    last_column = bytearray()
    for row, start in enumerate(order):
        if row == primary:
            continue
        last_column.append(terminated[(start - 1) % m] - 1)
    return bytes(last_column), primary


def reference_bwt_inverse(last_column: bytes, primary: int) -> bytes:
    """Classic one-step-per-byte LF-mapping backward walk."""
    n = len(last_column)
    if n == 0:
        if primary != 0:
            raise CorruptStreamError("primary index out of range for empty block")
        return b""
    if not 0 <= primary <= n:
        raise CorruptStreamError("primary index out of range")
    m = n + 1
    column = [b + 1 for b in last_column[:primary]]
    column.append(0)
    column += [b + 1 for b in last_column[primary:]]
    order = sorted(range(m), key=lambda i: (column[i], i))
    lf = [0] * m
    for slot, position in enumerate(order):
        lf[position] = slot
    out = []
    row = primary
    for _ in range(m):
        out.append(column[row])
        row = lf[row]
    out.reverse()
    if out[-1] != 0:
        raise CorruptStreamError("sentinel did not surface at end of inverse BWT")
    body = out[:-1]
    if any(value == 0 for value in body):
        raise CorruptStreamError("sentinel surfaced inside inverse BWT output")
    return bytes(value - 1 for value in body)


def _reference_zigzag(delta: int) -> int:
    """Zigzag-map one signed 64-bit delta (small magnitudes stay small)."""
    return (delta << 1) if delta >= 0 else ((-delta << 1) - 1)


def _reference_unzigzag(value: int) -> int:
    """Invert :func:`_reference_zigzag`."""
    return (value >> 1) if not (value & 1) else -((value + 1) >> 1)


def reference_bitpack(values: Sequence[int], width: int) -> bytes:
    """Pack uint64 values into ``width`` bits each, MSB first, one bit
    at a time; the final partial byte is zero-padded on the right."""
    if not 0 <= width <= 64:
        raise ValueError(f"bit width out of range: {width}")
    if width == 0 or not values:
        return b""
    bits = []
    for value in values:
        for position in range(width - 1, -1, -1):
            bits.append((value >> position) & 1)
    while len(bits) % 8:
        bits.append(0)
    out = bytearray()
    for start in range(0, len(bits), 8):
        byte = 0
        for bit in bits[start : start + 8]:
            byte = (byte << 1) | bit
        out.append(byte)
    return bytes(out)


def reference_bitunpack(packed: bytes, count: int, width: int) -> List[int]:
    """Invert :func:`reference_bitpack`; returns ``count`` uint64 values."""
    if not 0 <= width <= 64:
        raise ValueError(f"bit width out of range: {width}")
    if width == 0 or count == 0:
        return [0] * count
    out = []
    for index in range(count):
        value = 0
        for offset in range(width):
            position = index * width + offset
            byte = packed[position >> 3]
            value = (value << 1) | ((byte >> (7 - (position & 7))) & 1)
        out.append(value)
    return out


def reference_delta_zigzag(column: Sequence[int]) -> List[int]:
    """Wrapping first differences of a uint64 column, zigzag-mapped.

    The wrapped difference is reinterpreted as a two's-complement signed
    64-bit value before zigzagging, matching the vectorized path's
    ``view("<i8")``.
    """
    out = []
    for previous, current in zip(column, column[1:]):
        delta = (current - previous) & _U64_MASK
        if delta >= 1 << 63:
            delta -= 1 << 64
        out.append(_reference_zigzag(delta))
    return out


def reference_undelta_zigzag(first: int, encoded: Sequence[int]) -> List[int]:
    """Invert :func:`reference_delta_zigzag` given the first raw value."""
    out = [first & _U64_MASK]
    for value in encoded:
        out.append((out[-1] + _reference_unzigzag(value)) & _U64_MASK)
    return out
