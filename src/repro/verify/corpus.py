"""Seeded corpus generation for conformance, differential, and fuzz runs.

One generator, one seed, one corpus: commercial OIS XML and molecular
per-field blocks (the paper's two workloads) plus adversarial synthetic
blocks engineered at the codecs' edge cases — the RLE escape alphabet
(254/255), zero runs straddling the 254 cap, chunk-terminator-adjacent
values for the BW pipeline, incompressible noise for the expansion guard,
and the degenerate empty/1-byte/all-equal shapes.

Everything is a pure function of the seed, so a corpus name + seed fully
identifies a block — which is what lets the fuzz gate commit minimal
reproducers instead of megabytes of input.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, Tuple

from ..data.commercial import CommercialDataGenerator
from ..data.logs import LogDataGenerator
from ..data.molecular import MolecularDataGenerator
from ..data.timeseries import TimeSeriesGenerator

__all__ = ["CorpusGenerator", "DEFAULT_CORPUS_SEED", "EDGE_CASES"]

DEFAULT_CORPUS_SEED = 20040431

#: The degenerate shapes every codec must survive (conformance "edge
#: corpora" invariant); deliberately seed-independent.
EDGE_CASES: Dict[str, bytes] = {
    "empty": b"",
    "single": b"x",
    "single-zero": b"\x00",
    "single-255": b"\xff",
    "tiny": b"abcabc",
    "all-equal": b"m" * 4096,
    "all-zero": b"\x00" * 4096,
    "all-255": b"\xff" * 2048,
}


class CorpusGenerator:
    """Deterministic named blocks spanning the paper's data classes."""

    def __init__(self, seed: int = DEFAULT_CORPUS_SEED, size: int = 16 * 1024) -> None:
        if size < 1024:
            raise ValueError("corpus block size must be at least 1 KB")
        self.seed = seed
        self.size = size

    def _rng(self, salt: str) -> random.Random:
        return random.Random(f"{self.seed}:{salt}")

    # -- workload blocks (the paper's two datasets) ----------------------------

    def commercial(self) -> bytes:
        """OIS XML transactions — string-repetitive, medium entropy."""
        return CommercialDataGenerator(seed=self.seed).xml_block(self.size)

    def molecular_coordinates(self) -> bytes:
        """Float64 coordinates — near-incompressible mantissas."""
        generator = MolecularDataGenerator(atom_count=512, seed=self.seed)
        return generator.coordinates_block()[: self.size]

    def molecular_types(self) -> bytes:
        """Species ids in contiguous blocks — long runs, highly compressible."""
        generator = MolecularDataGenerator(atom_count=2048, seed=self.seed)
        return generator.types_block()[: self.size]

    # -- adversarial synthetics ------------------------------------------------

    def incompressible(self) -> bytes:
        """Uniform random bytes: every codec should expand or break even."""
        rng = self._rng("incompressible")
        return rng.randbytes(self.size)

    def lowentropy(self) -> bytes:
        """4-symbol skewed alphabet — the entropy coders' best case."""
        rng = self._rng("lowentropy")
        return bytes(rng.choices([65, 66, 67, 68], weights=[70, 20, 7, 3], k=self.size))

    def rle_adversarial(self) -> bytes:
        """Bytes drawn from {0, 1, 253, 254, 255}: the RLE escape alphabet."""
        rng = self._rng("rle")
        return bytes(rng.choices([0, 0, 0, 0, 1, 253, 254, 255], k=self.size))

    def zero_runs(self) -> bytes:
        """Zero runs of lengths straddling the 254-run cap and the MIN_RUN floor."""
        rng = self._rng("zeroruns")
        out = bytearray()
        while len(out) < self.size:
            out += b"\x00" * rng.choice([1, 2, 3, 253, 254, 255, 509])
            out.append(rng.randrange(1, 255))
        return bytes(out[: self.size])

    def alternating(self) -> bytes:
        """Period-2 text: maximal MTF rank-1 churn, worst case for RLE."""
        return b"ab" * (self.size // 2)

    def sawtooth(self) -> bytes:
        """All 256 values cycling — defeats run detection, exercises full tables."""
        return bytes(range(256)) * (self.size // 256)

    def templated_logs(self) -> bytes:
        """LogHub-style templated lines — the template codec's workload."""
        return next(iter(LogDataGenerator(seed=self.seed).stream(self.size, 1)))

    def columnar_records(self) -> bytes:
        """Fixed-width telemetry records — the columnar codec's workload."""
        return next(iter(TimeSeriesGenerator(seed=self.seed).stream(self.size, 1)))

    def blocks(self) -> Iterator[Tuple[str, bytes]]:
        """Every named block, edge cases first (deterministic order)."""
        yield from EDGE_CASES.items()
        yield "commercial", self.commercial()
        yield "molecular-coordinates", self.molecular_coordinates()
        yield "molecular-types", self.molecular_types()
        yield "incompressible", self.incompressible()
        yield "lowentropy", self.lowentropy()
        yield "rle-adversarial", self.rle_adversarial()
        yield "zero-runs", self.zero_runs()
        yield "alternating", self.alternating()
        yield "sawtooth", self.sawtooth()
        yield "templated-logs", self.templated_logs()
        yield "columnar-records", self.columnar_records()

    def as_dict(self) -> Dict[str, bytes]:
        return dict(self.blocks())
