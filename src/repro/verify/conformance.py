"""The codec conformance kit: declarative invariants over the registry.

Paper §3.2 lets "a new compression method … be introduced at any time
during a system's operation".  That extensibility is only safe if every
registered codec honors the contracts the middleware builds on, so this
module states them **once**, declaratively, and runs them against every
entry :func:`~repro.compression.registry.available_codecs` returns — a
newly registered codec is conformance-checked with zero new test code.

The invariants (one check function each, all registered in
:data:`CONFORMANCE_CHECKS`):

* ``roundtrip-identity`` — ``decompress(compress(x)) == x`` over the
  seeded corpus (lossless codecs).
* ``deterministic-wire`` — compressing the same block twice yields the
  same bytes; stateless codecs have no business being nondeterministic
  (the serial-vs-parallel and differential oracles rely on this).
* ``edge-corpora`` — the degenerate shapes (empty, 1-byte, all-equal,
  incompressible) survive a round trip.
* ``streaming-wire-equality`` — a :class:`StreamingCompressor` stream
  equals the concatenation of per-block frames, and the streaming
  decoder recovers the input from arbitrary chunk splits.
* ``block-boundary-resume`` — codecs exposing ``decode_from`` (the BW
  pipeline's 255-marker resynchronization) recover a chunk-aligned
  suffix from any starting offset; codecs exposing ``decompress_chunk``
  (parallel containers) give random access equal to the slice.
* ``expansion-guard`` — under :class:`~repro.core.engine.CodecExecutor`'s
  expansion fallback, an incompressible block ships as ``none`` with the
  original bytes, never larger than the input.
* ``corruption-discipline`` — mutated payloads either raise one of
  :data:`~repro.compression.base.ACCEPTABLE_DECODE_ERRORS` or return
  bytes; any other exception is a conformance failure.
* ``lossy-contract`` — lossy codecs preserve shape (length) on aligned
  float64 input, honor their declared error bound, and reject unaligned
  input with the contract exceptions.
* ``structured-fallback`` — structure-aware codecs (family
  ``structured``) fed non-conforming input (binary noise, empty, a
  single byte) must engage their whole-block raw fallback and still
  round-trip byte-exact; mining structure out of noise is a bug even
  when it happens to round-trip.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional

import numpy as np

from ..compression.base import ACCEPTABLE_DECODE_ERRORS, Codec
from ..compression.framing import encode_block_frame
from ..compression.registry import available_codecs, get_codec
from ..compression.streaming import StreamingCompressor, StreamingDecompressor
from ..core.engine import CodecExecutor
from .corpus import EDGE_CASES, CorpusGenerator
from .fuzz import mutated_copies

__all__ = [
    "CheckResult",
    "CONFORMANCE_CHECKS",
    "run_conformance",
    "conformance_failures",
]

#: Streaming check geometry: small enough that even the arithmetic coder
#: stays fast, large enough for several frames plus a partial tail.
_STREAM_BLOCK = 2048
_STREAM_LENGTH = 3 * _STREAM_BLOCK + 513


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one (check, codec, case) cell."""

    check: str
    codec: str
    case: str
    passed: bool
    detail: str = ""


CheckFn = Callable[[str, Codec, Dict[str, bytes]], Iterator[CheckResult]]

#: The declarative suite: check name -> generator of results.
CONFORMANCE_CHECKS: Dict[str, CheckFn] = {}


def _check(name: str) -> Callable[[CheckFn], CheckFn]:
    def register(fn: CheckFn) -> CheckFn:
        CONFORMANCE_CHECKS[name] = fn
        return fn

    return register


def _result(check: str, codec: str, case: str, passed: bool, detail: str = "") -> CheckResult:
    return CheckResult(check=check, codec=codec, case=case, passed=passed, detail=detail)


def _is_lossy(codec: Codec) -> bool:
    return codec.family == "lossy"


def _float_block(corpus: Dict[str, bytes]) -> bytes:
    source = corpus.get("molecular-coordinates")
    if source and len(source) >= 8:
        return source[: len(source) - len(source) % 8]
    return np.linspace(-4.0, 4.0, 1024).astype("<f8").tobytes()


@_check("roundtrip-identity")
def check_roundtrip(name: str, codec: Codec, corpus: Dict[str, bytes]) -> Iterator[CheckResult]:
    if _is_lossy(codec):
        return
    for case, data in corpus.items():
        try:
            restored = codec.decompress(codec.compress(data))
        except Exception as exc:  # noqa: BLE001 - the kit reports, never raises
            yield _result("roundtrip-identity", name, case, False, f"raised {exc!r}")
            continue
        yield _result(
            "roundtrip-identity", name, case, restored == data,
            "" if restored == data else
            f"round trip changed {len(data)} bytes into {len(restored)}",
        )


@_check("deterministic-wire")
def check_deterministic(name: str, codec: Codec, corpus: Dict[str, bytes]) -> Iterator[CheckResult]:
    for case in ("commercial", "lowentropy", "all-equal"):
        data = corpus.get(case)
        if data is None:
            continue
        if _is_lossy(codec):
            data = _float_block(corpus)
            case = "float64"
        try:
            first, second = codec.compress(data), codec.compress(data)
        except Exception as exc:  # noqa: BLE001
            yield _result("deterministic-wire", name, case, False, f"raised {exc!r}")
            continue
        yield _result(
            "deterministic-wire", name, case, first == second,
            "" if first == second else "same block compressed to different bytes",
        )
        if _is_lossy(codec):
            break


@_check("edge-corpora")
def check_edges(name: str, codec: Codec, corpus: Dict[str, bytes]) -> Iterator[CheckResult]:
    if _is_lossy(codec):
        return
    for case, data in EDGE_CASES.items():
        try:
            ok = codec.decompress(codec.compress(data)) == data
            detail = "" if ok else "edge round trip mismatched"
        except Exception as exc:  # noqa: BLE001
            ok, detail = False, f"raised {exc!r}"
        yield _result("edge-corpora", name, case, ok, detail)


@_check("streaming-wire-equality")
def check_streaming(name: str, codec: Codec, corpus: Dict[str, bytes]) -> Iterator[CheckResult]:
    if _is_lossy(codec):
        return
    data = (corpus.get("commercial") or corpus.get("lowentropy") or b"")[:_STREAM_LENGTH]
    if len(data) < _STREAM_BLOCK + 1:
        return
    compressor = StreamingCompressor(method=name, block_size=_STREAM_BLOCK)
    stream = compressor.write(data) + compressor.flush()
    expected = bytearray()
    for start in range(0, len(data), _STREAM_BLOCK):
        block = data[start : start + _STREAM_BLOCK]
        expected += encode_block_frame(name, codec.compress(block))
    equal = stream == bytes(expected)
    yield _result(
        "streaming-wire-equality", name, "wire", equal,
        "" if equal else "streamed frames differ from per-block framing",
    )
    decompressor = StreamingDecompressor()
    out = bytearray()
    rng = random.Random(f"stream:{name}")
    position = 0
    while position < len(stream):
        step = rng.randrange(1, 700)
        out += decompressor.write(stream[position : position + step])
        position += step
    decompressor.close()
    ok = bytes(out) == data
    yield _result(
        "streaming-wire-equality", name, "chunked-decode", ok,
        "" if ok else "streaming decoder did not reproduce the input",
    )


@_check("block-boundary-resume")
def check_resume(name: str, codec: Codec, corpus: Dict[str, bytes]) -> Iterator[CheckResult]:
    if hasattr(codec, "decode_from"):
        chunk_size = getattr(codec, "chunk_size", 32768)
        base = corpus.get("lowentropy") or corpus.get("commercial") or b""
        while len(base) < 3 * chunk_size + chunk_size // 2:
            base += base or b"resume corpus "
        data = base[: 3 * chunk_size + chunk_size // 2]
        chunks = [data[i : i + chunk_size] for i in range(0, len(data), chunk_size)]
        suffixes = {b"".join(chunks[k:]) for k in range(len(chunks) + 1)}
        payload = codec.compress(data)
        rng = random.Random(f"resume:{name}")
        offsets = [0] + sorted(rng.randrange(1, len(payload) * 8) for _ in range(6))
        for start_bit in offsets:
            try:
                recovered, count = codec.decode_from(payload, start_bit)
            except ACCEPTABLE_DECODE_ERRORS:
                continue
            except Exception as exc:  # noqa: BLE001
                yield _result(
                    "block-boundary-resume", name, f"bit={start_bit}", False,
                    f"raised {exc!r}",
                )
                continue
            aligned = recovered in suffixes
            if start_bit == 0:
                aligned = aligned and recovered == data and count == len(chunks)
            yield _result(
                "block-boundary-resume", name, f"bit={start_bit}", aligned,
                "" if aligned else
                f"recovered {len(recovered)} bytes ({count} chunks) is not a "
                "chunk-aligned suffix",
            )
    if hasattr(codec, "decompress_chunk"):
        data = (corpus.get("commercial") or b"chunked random access ").ljust(8192, b"q")
        chunk_size = getattr(codec, "chunk_size", 65536)
        payload = codec.compress(data)
        total = (len(data) + chunk_size - 1) // chunk_size
        for index in range(total):
            piece = codec.decompress_chunk(payload, index)
            want = data[index * chunk_size : (index + 1) * chunk_size]
            yield _result(
                "block-boundary-resume", name, f"chunk={index}", piece == want,
                "" if piece == want else "random-access chunk mismatched the slice",
            )


@_check("expansion-guard")
def check_expansion_guard(
    name: str, codec: Codec, corpus: Dict[str, bytes]
) -> Iterator[CheckResult]:
    if _is_lossy(codec):
        return
    block = corpus.get("incompressible")
    if not block:
        return
    executor = CodecExecutor(expansion_fallback=True)
    try:
        execution = executor.compress(name, block, codec=codec)
    except Exception as exc:  # noqa: BLE001
        yield _result("expansion-guard", name, "incompressible", False, f"raised {exc!r}")
        return
    if execution.fell_back:
        ok = execution.method == "none" and execution.payload == block
        detail = "" if ok else "fallback did not ship the original bytes as 'none'"
    else:
        ok = len(execution.payload) < len(block) or name == "none"
        detail = "" if ok else "expanded payload escaped the guard"
    yield _result("expansion-guard", name, "incompressible", ok, detail)


@_check("corruption-discipline")
def check_corruption(name: str, codec: Codec, corpus: Dict[str, bytes]) -> Iterator[CheckResult]:
    if _is_lossy(codec):
        data = _float_block(corpus)[:4096]
    else:
        data = (corpus.get("commercial") or corpus.get("lowentropy") or b"corpus ")[:4096]
        if name.startswith("arithmetic"):
            data = data[:2048]
    payload = codec.compress(data)
    rng = random.Random(f"corrupt:{name}")
    failures = 0
    detail = ""
    for mutated in mutated_copies(payload, rng, count=16):
        try:
            result = codec.decompress(mutated)
        except ACCEPTABLE_DECODE_ERRORS:
            continue
        except Exception as exc:  # noqa: BLE001
            failures += 1
            detail = f"raised {type(exc).__name__}: {exc}"
            continue
        if not isinstance(result, bytes):
            failures += 1
            detail = f"returned {type(result).__name__}, not bytes"
    yield _result(
        "corruption-discipline", name, "mutations", failures == 0,
        detail if failures else "",
    )


@_check("buffer-protocol-inputs")
def check_buffer_inputs(
    name: str, codec: Codec, corpus: Dict[str, bytes]
) -> Iterator[CheckResult]:
    """Codecs must accept any buffer-protocol input with identical wire bytes.

    The zero-copy pipeline hands codecs ``memoryview`` slices of larger
    buffers (engine blocks, cached payloads) and ``bytearray`` scratch
    space; the wire bytes must not depend on the container type, or the
    differential oracles and the bench's CRC gates would diverge based on
    which layer called compress.
    """
    if _is_lossy(codec):
        data = _float_block(corpus)[:4096]
    else:
        data = (corpus.get("commercial") or corpus.get("lowentropy") or b"corpus ")[:4096]
        if name.startswith("arithmetic"):
            data = data[:2048]
    try:
        baseline = codec.compress(data)
    except Exception as exc:  # noqa: BLE001
        yield _result("buffer-protocol-inputs", name, "bytes", False, f"raised {exc!r}")
        return
    variants = {
        "bytearray": bytearray(data),
        "memoryview": memoryview(data),
        "memoryview-slice": memoryview(b"\x00" + data + b"\x00")[1:-1],
    }
    for case, variant in variants.items():
        try:
            wire = codec.compress(variant)
        except Exception as exc:  # noqa: BLE001
            yield _result("buffer-protocol-inputs", name, case, False, f"raised {exc!r}")
            continue
        yield _result(
            "buffer-protocol-inputs", name, case, wire == baseline,
            "" if wire == baseline else
            f"{case} input compressed to different wire bytes than bytes input",
        )
    for case, payload in (
        ("decompress-bytearray", bytearray(baseline)),
        ("decompress-memoryview", memoryview(baseline)),
    ):
        try:
            restored = codec.decompress(payload)
        except Exception as exc:  # noqa: BLE001
            yield _result("buffer-protocol-inputs", name, case, False, f"raised {exc!r}")
            continue
        expected = codec.decompress(baseline)
        yield _result(
            "buffer-protocol-inputs", name, case, restored == expected,
            "" if restored == expected else
            f"{case} decoded differently than the bytes payload",
        )


@_check("lossy-contract")
def check_lossy(name: str, codec: Codec, corpus: Dict[str, bytes]) -> Iterator[CheckResult]:
    if not _is_lossy(codec):
        return
    data = _float_block(corpus)
    try:
        restored = codec.decompress(codec.compress(data))
    except Exception as exc:  # noqa: BLE001
        yield _result("lossy-contract", name, "float64", False, f"raised {exc!r}")
        return
    ok = len(restored) == len(data)
    detail = "" if ok else "lossy round trip changed the payload length"
    if ok and hasattr(codec, "max_error"):
        error = float(
            np.max(
                np.abs(
                    np.frombuffer(restored, dtype="<f8")
                    - np.frombuffer(data, dtype="<f8")
                )
            )
        ) if data else 0.0
        bound = codec.max_error()
        ok = error <= bound * (1 + 1e-9)
        detail = "" if ok else f"error {error:g} exceeds declared bound {bound:g}"
    yield _result("lossy-contract", name, "float64", ok, detail)
    try:
        codec.compress(b"\x01" * 7)
    except ACCEPTABLE_DECODE_ERRORS:
        yield _result("lossy-contract", name, "unaligned-reject", True)
    except Exception as exc:  # noqa: BLE001
        yield _result(
            "lossy-contract", name, "unaligned-reject", False,
            f"unaligned input raised {type(exc).__name__} instead of the contract set",
        )
    else:
        yield _result(
            "lossy-contract", name, "unaligned-reject", False,
            "unaligned input was accepted silently",
        )


@_check("structured-fallback")
def check_structured_fallback(
    name: str, codec: Codec, corpus: Dict[str, bytes]
) -> Iterator[CheckResult]:
    """Non-conforming input must take the raw fallback and round-trip."""
    if getattr(codec, "family", "") != "structured":
        return
    noise = corpus.get("incompressible") or bytes(range(256)) * 16
    cases = (
        ("binary-noise", noise),
        ("empty", b""),
        ("single-byte", b"\x5a"),
    )
    for case, data in cases:
        try:
            payload = codec.compress(data)
            fell_back = bool(codec.is_fallback(payload))
            restored = codec.decompress(payload)
        except Exception as exc:  # noqa: BLE001
            yield _result("structured-fallback", name, case, False, f"raised {exc!r}")
            continue
        if restored != data:
            ok, detail = False, "fallback round trip did not restore the input"
        elif not fell_back:
            ok, detail = False, "structured mode engaged on non-conforming input"
        else:
            ok, detail = True, ""
        yield _result("structured-fallback", name, case, ok, detail)


def run_conformance(
    names: Optional[Iterable[str]] = None,
    corpus: Optional[Dict[str, bytes]] = None,
    checks: Optional[Iterable[str]] = None,
) -> List[CheckResult]:
    """Run the kit over ``names`` (default: every registered codec).

    Never raises on codec misbehavior — every violation comes back as a
    failed :class:`CheckResult`, so one broken codec cannot mask another.
    """
    if corpus is None:
        corpus = CorpusGenerator().as_dict()
    selected = list(names) if names is not None else available_codecs()
    check_names = list(checks) if checks is not None else list(CONFORMANCE_CHECKS)
    results: List[CheckResult] = []
    for name in selected:
        codec = get_codec(name)
        for check_name in check_names:
            fn = CONFORMANCE_CHECKS[check_name]
            try:
                results.extend(fn(name, codec, corpus))
            except Exception as exc:  # noqa: BLE001 - a crashing check is a failure
                results.append(
                    _result(check_name, name, "harness", False, f"check crashed: {exc!r}")
                )
    return results


def conformance_failures(results: Iterable[CheckResult]) -> List[CheckResult]:
    """The failed subset, for assertion messages and gate output."""
    return [result for result in results if not result.passed]
