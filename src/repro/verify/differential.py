"""Differential testing: our codecs cross-checked against references.

Three families of oracle, per the bicriteria-compression argument that
compressor choice must be *verified*, not assumed:

* **Wire-level counterparts.**  The native codecs emit standard formats
  (zlib's DEFLATE, bz2's bzip2), so the standard library can decode what
  we encode and vice versa — a full cross-implementation check of the
  wire bytes, not just a round trip through our own code.  ``lzma`` is
  wired the same way and activates automatically if an xz-family codec
  is ever registered (none is today).
* **Scalar vs vectorized.**  The numpy hot loops (mtf/rle/bwt) must be
  byte-identical to the classic scalar formulations kept in
  :mod:`repro.verify.references`.
* **Serial vs parallel.**  A :class:`ParallelCodec` must emit identical
  container bytes under every pool strategy — the strategy is an
  execution detail, never a wire-format input.

Both sides of every comparison are timed through
:func:`repro.core.engine.measure_callable` (the one sanctioned timing
site), so a differential run doubles as a reference-speed probe.
"""

from __future__ import annotations

import bz2
import lzma
import zlib

import numpy as np
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..compression import native as _native
from ..compression.bwt import bwt_inverse, bwt_transform
from ..compression.mtf import mtf_decode, mtf_encode
from ..compression.parallel import ParallelCodec
from ..compression.registry import available_codecs, get_codec
from ..compression.rle import rle_decode, rle_encode
from ..compression.structured import bitpack, bitunpack, delta_zigzag, undelta_zigzag
from ..core.engine import measure_callable
from .corpus import CorpusGenerator
from .references import (
    reference_bitpack,
    reference_bitunpack,
    reference_bwt_inverse,
    reference_bwt_transform,
    reference_delta_zigzag,
    reference_mtf_decode,
    reference_mtf_encode,
    reference_rle_decode,
    reference_rle_encode,
    reference_undelta_zigzag,
)

__all__ = [
    "DifferentialResult",
    "REFERENCE_COUNTERPARTS",
    "counterpart_for",
    "run_differential",
    "differential_failures",
    "diff_wire_counterpart",
    "diff_scalar_vectorized",
    "diff_serial_parallel",
    "diff_structured_primitives",
]


@dataclass(frozen=True)
class DifferentialResult:
    """Outcome of one differential comparison."""

    kind: str
    subject: str
    case: str
    passed: bool
    detail: str = ""
    subject_seconds: float = 0.0
    reference_seconds: float = 0.0


@dataclass(frozen=True)
class ReferenceCounterpart:
    """A standard-library codec sharing a wire format with one of ours."""

    label: str
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]


#: Registry-name -> standard-library counterpart.  Keyed by codec name so
#: a newly registered xz-family codec picks up the lzma oracle for free.
REFERENCE_COUNTERPARTS: Dict[str, ReferenceCounterpart] = {
    "lempel-ziv-native": ReferenceCounterpart(
        label="zlib", compress=zlib.compress, decompress=zlib.decompress
    ),
    "burrows-wheeler-native": ReferenceCounterpart(
        label="bz2", compress=bz2.compress, decompress=bz2.decompress
    ),
    "lzma-native": ReferenceCounterpart(
        label="lzma", compress=lzma.compress, decompress=lzma.decompress
    ),
}

# The optional fast-compressor tier gets its oracles only when a binding
# is importable — matching the registry, which skips the codecs then.
# The counterpart drives the binding's *module-level* one-shot helpers at
# default settings while our codec goes through the object API: the check
# is that the wrapper emits the standard frame format (level and API
# choices must not leak into decodability).
if _native.HAVE_ZSTD:
    REFERENCE_COUNTERPARTS["zstd-native"] = ReferenceCounterpart(
        label="zstd",
        compress=lambda data: _native._zstd_impl.compress(data),
        decompress=lambda payload: _native._zstd_impl.decompress(payload),
    )
if _native.HAVE_LZ4:
    import lz4.frame as _lz4_frame  # type: ignore[import-not-found]

    REFERENCE_COUNTERPARTS["lz4-native"] = ReferenceCounterpart(
        label="lz4", compress=_lz4_frame.compress, decompress=_lz4_frame.decompress
    )


def counterpart_for(name: str) -> Optional[ReferenceCounterpart]:
    """The standard-library counterpart for ``name``, if one exists."""
    return REFERENCE_COUNTERPARTS.get(name)


def diff_wire_counterpart(name: str, case: str, data: bytes) -> List[DifferentialResult]:
    """Cross-decode: reference reads our bytes, we read the reference's."""
    reference = counterpart_for(name)
    if reference is None:
        return []
    codec = get_codec(name)
    ours = measure_callable(name, codec.compress, data)
    theirs = measure_callable(reference.label, reference.compress, data)
    results = []
    assert ours.payload is not None and theirs.payload is not None
    try:
        cross = reference.decompress(ours.payload)
        ok, detail = cross == data, "" if cross == data else (
            f"{reference.label} decoded our bytes to {len(cross)} bytes, "
            f"want {len(data)}"
        )
    except Exception as exc:  # noqa: BLE001
        ok, detail = False, f"{reference.label} rejected our bytes: {exc!r}"
    results.append(
        DifferentialResult(
            kind="wire-counterpart",
            subject=name,
            case=f"{case}:ours->{reference.label}",
            passed=ok,
            detail=detail,
            subject_seconds=ours.elapsed_seconds,
            reference_seconds=theirs.elapsed_seconds,
        )
    )
    try:
        back = codec.decompress(theirs.payload)
        ok, detail = back == data, "" if back == data else (
            f"we decoded {reference.label} bytes to {len(back)} bytes, "
            f"want {len(data)}"
        )
    except Exception as exc:  # noqa: BLE001
        ok, detail = False, f"we rejected {reference.label} bytes: {exc!r}"
    results.append(
        DifferentialResult(
            kind="wire-counterpart",
            subject=name,
            case=f"{case}:{reference.label}->ours",
            passed=ok,
            detail=detail,
            subject_seconds=ours.elapsed_seconds,
            reference_seconds=theirs.elapsed_seconds,
        )
    )
    return results


_SCALAR_PAIRS: Tuple[Tuple[str, Callable, Callable], ...] = (
    ("mtf-encode", mtf_encode, reference_mtf_encode),
    ("rle-encode", rle_encode, reference_rle_encode),
)


def diff_scalar_vectorized(case: str, data: bytes) -> List[DifferentialResult]:
    """The vectorized mtf/rle/bwt paths vs the scalar textbook loops."""
    results = []
    for label, vectorized, scalar in _SCALAR_PAIRS:
        fast = measure_callable(f"{label}:numpy", vectorized, data)
        slow = measure_callable(f"{label}:scalar", scalar, data)
        ok = fast.payload == slow.payload
        results.append(
            DifferentialResult(
                kind="scalar-vectorized",
                subject=label,
                case=case,
                passed=ok,
                detail="" if ok else "vectorized output diverged from scalar",
                subject_seconds=fast.elapsed_seconds,
                reference_seconds=slow.elapsed_seconds,
            )
        )
    # Decoders: run on the (already cross-checked) encoded form.
    encoded_mtf = mtf_encode(data)
    ok = mtf_decode(encoded_mtf) == reference_mtf_decode(encoded_mtf)
    results.append(
        DifferentialResult(
            kind="scalar-vectorized", subject="mtf-decode", case=case, passed=ok,
            detail="" if ok else "vectorized mtf decode diverged from scalar",
        )
    )
    encoded_rle = rle_encode(data)
    ok = rle_decode(encoded_rle) == reference_rle_decode(encoded_rle)
    results.append(
        DifferentialResult(
            kind="scalar-vectorized", subject="rle-decode", case=case, passed=ok,
            detail="" if ok else "vectorized rle decode diverged from scalar",
        )
    )
    # BWT is O(n² log n) in the scalar reference; cap the input.
    sample = data[:2048]
    fast_column, fast_primary = bwt_transform(sample)
    slow_column, slow_primary = reference_bwt_transform(sample)
    ok = (fast_column, fast_primary) == (slow_column, slow_primary)
    results.append(
        DifferentialResult(
            kind="scalar-vectorized", subject="bwt-transform", case=case, passed=ok,
            detail="" if ok else "prefix-doubling BWT diverged from suffix sort",
        )
    )
    if ok:
        restored = bwt_inverse(fast_column, fast_primary)
        reference = reference_bwt_inverse(slow_column, slow_primary)
        ok = restored == reference == sample
        results.append(
            DifferentialResult(
                kind="scalar-vectorized", subject="bwt-inverse", case=case, passed=ok,
                detail="" if ok else "pointer-doubling inverse diverged from LF walk",
            )
        )
    return results


#: Bit widths the structured-primitive differential sweeps: the packer's
#: byte-aligned sweet spots, the odd widths that straddle byte boundaries,
#: and the degenerate 1/64 extremes.
_BITPACK_WIDTHS = (1, 7, 12, 24, 33, 64)


def diff_structured_primitives(case: str, data: bytes) -> List[DifferentialResult]:
    """The structured codecs' column primitives vs the scalar oracles.

    The corpus bytes are reinterpreted as a uint64 column (the same view
    the columnar codec takes of an 8-byte field), then the vectorized
    delta/zigzag/bitpack pipeline is cross-checked bit-for-bit against
    the per-value loops in :mod:`repro.verify.references`.
    """
    usable = len(data) - len(data) % 8
    if usable < 16:
        return []
    column = np.frombuffer(data[:usable], dtype="<u8")
    scalar_column = [int(v) for v in column]
    results = []

    fast = measure_callable("delta-zigzag:numpy", delta_zigzag, column)
    slow = measure_callable("delta-zigzag:scalar", reference_delta_zigzag, scalar_column)
    assert fast.payload is not None and slow.payload is not None
    ok = [int(v) for v in fast.payload] == slow.payload
    results.append(
        DifferentialResult(
            kind="scalar-vectorized",
            subject="delta-zigzag",
            case=case,
            passed=ok,
            detail="" if ok else "vectorized delta-zigzag diverged from scalar",
            subject_seconds=fast.elapsed_seconds,
            reference_seconds=slow.elapsed_seconds,
        )
    )

    encoded = delta_zigzag(column)
    restored = undelta_zigzag(scalar_column[0], encoded)
    reference = reference_undelta_zigzag(scalar_column[0], slow.payload)
    ok = [int(v) for v in restored] == reference == scalar_column
    results.append(
        DifferentialResult(
            kind="scalar-vectorized",
            subject="undelta-zigzag",
            case=case,
            passed=ok,
            detail="" if ok else "vectorized undelta-zigzag diverged from scalar",
        )
    )

    for width in _BITPACK_WIDTHS:
        narrowed = column & np.uint64((1 << width) - 1)
        scalar_narrowed = [int(v) for v in narrowed]
        packed = bitpack(narrowed, width)
        ok = packed == reference_bitpack(scalar_narrowed, width)
        detail = "" if ok else "vectorized bitpack diverged from scalar"
        if ok:
            unpacked = bitunpack(packed, len(narrowed), width)
            ok = (
                [int(v) for v in unpacked]
                == reference_bitunpack(packed, len(scalar_narrowed), width)
                == scalar_narrowed
            )
            detail = "" if ok else "vectorized bitunpack diverged from scalar"
        results.append(
            DifferentialResult(
                kind="scalar-vectorized",
                subject=f"bitpack-{width}",
                case=case,
                passed=ok,
                detail=detail,
            )
        )
    return results


def diff_serial_parallel(
    base_name: str, case: str, data: bytes, chunk_size: int = 4096
) -> List[DifferentialResult]:
    """A ParallelCodec's wire bytes must not depend on the pool strategy."""
    base = get_codec(base_name)
    serial = ParallelCodec(base, chunk_size=chunk_size, strategy="serial")
    threaded = ParallelCodec(base, chunk_size=chunk_size, workers=3, strategy="threads")
    serial_run = measure_callable("serial", serial.compress, data)
    threaded_run = measure_callable("threads", threaded.compress, data)
    ok = serial_run.payload == threaded_run.payload
    results = [
        DifferentialResult(
            kind="serial-parallel",
            subject=f"parallel:{base_name}",
            case=case,
            passed=ok,
            detail="" if ok else "pool strategy leaked into the wire bytes",
            subject_seconds=threaded_run.elapsed_seconds,
            reference_seconds=serial_run.elapsed_seconds,
        )
    ]
    assert serial_run.payload is not None
    restored = threaded.decompress(serial_run.payload)
    ok = restored == data
    results.append(
        DifferentialResult(
            kind="serial-parallel",
            subject=f"parallel:{base_name}",
            case=f"{case}:cross-decode",
            passed=ok,
            detail="" if ok else "threaded decode of serial container diverged",
        )
    )
    return results


def run_differential(
    corpus: Optional[Dict[str, bytes]] = None,
    cases: Optional[Iterable[str]] = None,
) -> List[DifferentialResult]:
    """The full differential sweep used by tests and the fuzz gate."""
    if corpus is None:
        corpus = CorpusGenerator(size=8192).as_dict()
    names = list(cases) if cases is not None else [
        "commercial", "lowentropy", "rle-adversarial", "zero-runs", "incompressible",
    ]
    results: List[DifferentialResult] = []
    registered = set(available_codecs())
    for case in names:
        data = corpus.get(case)
        if data is None:
            continue
        for codec_name in sorted(registered & set(REFERENCE_COUNTERPARTS)):
            results.extend(diff_wire_counterpart(codec_name, case, data))
        results.extend(diff_scalar_vectorized(case, data))
        results.extend(diff_structured_primitives(case, data))
    sample = corpus.get("commercial") or next(iter(corpus.values()))
    results.extend(diff_serial_parallel("lempel-ziv", "commercial", sample))
    results.extend(diff_serial_parallel("huffman", "commercial", sample))
    return results


def differential_failures(
    results: Iterable[DifferentialResult],
) -> List[DifferentialResult]:
    """The failed subset, for assertion messages and gate output."""
    return [result for result in results if not result.passed]
