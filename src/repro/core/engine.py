"""The single execution substrate for timed codec work.

Every place the repository compresses or decompresses a block *and
accounts for the cost* — the §2.5 adaptive pipeline, the 4 KB Lempel-Ziv
sampling probe, the middleware compression handlers, the microbenchmark
harnesses — routes through this module's :class:`CodecExecutor`.  It is
the only module in ``src/repro`` outside ``netsim/`` allowed to call
``time.perf_counter`` (``scripts/check.sh`` enforces the invariant), so
the measured-vs-modeled mode switch and the cost-model/CPU scaling rules
exist in exactly one place:

* **measured** (no models): the codec really runs under a wall-clock
  timer and the measured time is reported;
* **CPU-scaled** (``cpu`` only): the measured time is rescaled to the
  modeled machine's speed and load;
* **modeled** (``cost_model``): the codec still really runs (sizes are
  real) but the reported time comes from the calibrated
  :class:`~repro.netsim.cpu.CodecCostModel` — which is what makes the
  Figure 8-12 replays deterministic.

:class:`BlockEngine` layers the paper's block discipline on top: cut a
byte stream into fixed-size blocks, pick a method per block through a
selection callback, execute it on the :class:`CodecExecutor`, and emit
one :class:`BlockStats` per block to pluggable observers.  This is the
substrate later scaling work (parallel workers, async transports,
metrics export) plugs into.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Tuple, Union

from ..compression.base import Codec, CodecError, CompressionResult
from ..compression.registry import get_codec

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "BlockExecution",
    "BlockStats",
    "BlockEngine",
    "CodecExecutor",
    "Observer",
    "Selector",
    "cut_blocks",
    "measure",
    "measure_callable",
    "measure_decompress",
]

#: "Take a block of 128KB" — the paper's block size, chosen "according to
#: the efficiency of compression methods based on [32, 33]".
DEFAULT_BLOCK_SIZE = 128 * 1024


# -- timing primitives (the one perf_counter site) -------------------------------


def measure(codec: Codec, data: bytes, keep_payload: bool = True) -> CompressionResult:
    """Compress ``data`` with ``codec`` under a wall-clock timer.

    This is the measurement primitive behind the sampling process of §2.5:
    the selector periodically compresses a small sample and uses the
    resulting :class:`~repro.compression.base.CompressionResult` to
    estimate both the reducing speed and the achievable ratio for the
    next block.
    """
    start = time.perf_counter()
    payload = codec.compress(data)
    elapsed = time.perf_counter() - start
    return CompressionResult(
        codec_name=codec.name,
        original_size=len(data),
        compressed_size=len(payload),
        elapsed_seconds=elapsed,
        payload=payload if keep_payload else None,
    )


def measure_decompress(codec: Codec, payload: bytes) -> Tuple[bytes, float]:
    """Decompress ``payload`` under a wall-clock timer; returns (data, seconds)."""
    start = time.perf_counter()
    data = codec.decompress(payload)
    elapsed = time.perf_counter() - start
    return data, elapsed


def measure_callable(
    label: str, transform: Callable[[bytes], bytes], data: bytes
) -> CompressionResult:
    """Time an arbitrary ``bytes -> bytes`` transform at the sanctioned site.

    The differential harness (:mod:`repro.verify.differential`) compares
    our codecs against reference implementations (``zlib``, ``bz2``, the
    scalar mtf/rle/bwt loops) and wants both sides timed identically —
    but only this module may read the clock, so the hook lives here.
    """
    start = time.perf_counter()
    out = transform(data)
    elapsed = time.perf_counter() - start
    return CompressionResult(
        codec_name=label,
        original_size=len(data),
        compressed_size=len(out),
        elapsed_seconds=elapsed,
        payload=out,
    )


# -- execution records -----------------------------------------------------------


@dataclass(frozen=True)
class BlockExecution:
    """Outcome of compressing one block through the executor.

    ``method`` is the method that actually produced ``payload``; it
    differs from ``requested_method`` only when the expansion guard fell
    back to ``none`` because the codec grew the block.
    """

    requested_method: str
    method: str
    original_size: int
    payload: bytes
    seconds: float
    fell_back: bool = False
    verified: bool = False

    @property
    def compressed_size(self) -> int:
        return len(self.payload)

    @property
    def ratio(self) -> float:
        if self.original_size == 0:
            return 1.0
        return self.compressed_size / self.original_size

    @property
    def bytes_saved(self) -> int:
        return max(0, self.original_size - self.compressed_size)

    @property
    def reducing_speed(self) -> float:
        """Bytes removed per second of CPU time (paper §4.1, Figure 4)."""
        if self.seconds <= 0.0:
            return float("inf") if self.bytes_saved else 0.0
        return self.bytes_saved / self.seconds


@dataclass(frozen=True)
class BlockStats:
    """Per-block accounting emitted to :class:`BlockEngine` observers."""

    index: int
    requested_method: str
    method: str
    original_size: int
    compressed_size: int
    compression_seconds: float
    decompression_seconds: float
    fell_back: bool = False
    verified: bool = False

    @property
    def ratio(self) -> float:
        if self.original_size == 0:
            return 1.0
        return self.compressed_size / self.original_size

    @property
    def bytes_saved(self) -> int:
        return max(0, self.original_size - self.compressed_size)

    @property
    def reducing_speed(self) -> float:
        if self.compression_seconds <= 0.0:
            return float("inf") if self.bytes_saved else 0.0
        return self.bytes_saved / self.compression_seconds


# -- the executor ----------------------------------------------------------------


class CodecExecutor:
    """Timed compress/decompress with the cost-model/CPU scaling rules.

    ``verify`` round-trips every compressed block and raises
    :class:`~repro.compression.base.CodecError` on mismatch.
    ``expansion_fallback`` enables the expansion guard: when a codec
    *grows* a block (common on molecular coordinates) the executor ships
    the original bytes under method ``none`` instead, so the method name
    the receiver sees stays truthful.  ``cost_model_fallback`` makes a
    cost model that lacks the requested codec fall back to the measured
    path instead of raising ``KeyError`` (runtime-tunable codecs are not
    calibrated).
    """

    def __init__(
        self,
        cost_model: Optional["object"] = None,
        cpu: Optional["object"] = None,
        verify: bool = False,
        expansion_fallback: bool = False,
        cost_model_fallback: bool = False,
        pool: Optional["object"] = None,
    ) -> None:
        self.cost_model = cost_model
        self.cpu = cpu
        self.verify = verify
        self.expansion_fallback = expansion_fallback
        self.cost_model_fallback = cost_model_fallback
        #: Optional :class:`~repro.core.workers.WorkerPool`.  When set,
        #: registry-resolvable codecs execute on the pool's workers (which
        #: time themselves through :func:`measure`, so this executor stays
        #: the one accounting point); explicit codec instances and method
        #: ``none`` stay in-process.
        self.pool = pool

    # -- scaling rules (the 5× duplicated branch, now in one place) --------------

    def _scale_compression_time(self, method: str, size: int, measured: float) -> float:
        if self.cost_model is not None:
            try:
                return self.cost_model.compression_time(method, size, self.cpu)
            except KeyError:
                if not self.cost_model_fallback:
                    raise
        if self.cpu is not None:
            return self.cpu.scale_time(measured)
        return measured

    def _scale_decompression_time(self, method: str, size: int, measured: float) -> float:
        if self.cost_model is not None:
            try:
                return self.cost_model.decompression_time(method, size, self.cpu)
            except KeyError:
                if not self.cost_model_fallback:
                    raise
        if self.cpu is not None:
            return self.cpu.scale_time(measured)
        return measured

    # -- execution ---------------------------------------------------------------

    def compress(
        self, method: str, block: bytes, codec: Optional[Codec] = None
    ) -> BlockExecution:
        """Compress ``block`` with ``method`` and account for the cost.

        ``codec`` overrides the registry lookup (runtime-tunable or
        unregistered codec instances); the cost model is still consulted
        under ``method``.
        """
        if method == "none":
            return BlockExecution(
                requested_method="none",
                method="none",
                original_size=len(block),
                payload=block,
                seconds=0.0,
            )
        if codec is None and self.pool is not None and self.pool.accepts(method):
            payload, measured = self.pool.run(method, block)
            return self.finalize_compression(method, block, payload, measured)
        codec = codec if codec is not None else get_codec(method)
        result = measure(codec, block)
        payload = result.payload
        assert payload is not None
        return self.finalize_compression(
            method, block, payload, result.elapsed_seconds, codec=codec
        )

    def finalize_compression(
        self,
        method: str,
        block: bytes,
        payload: bytes,
        measured_seconds: float,
        codec: Optional[Codec] = None,
    ) -> BlockExecution:
        """Account for a compression that already ran (locally or on a worker).

        Applies the cost-model/CPU scaling rules, the optional round-trip
        verification, and the expansion guard — the accounting tail every
        compression shares, whether the bytes were produced in-process or
        shipped back from a pool worker with its measured time.
        """
        seconds = self._scale_compression_time(method, len(block), measured_seconds)
        verified = False
        if self.verify:
            codec = codec if codec is not None else get_codec(method)
            if codec.decompress(payload) != block:
                raise CodecError(f"codec {method!r} failed to round-trip a block")
            verified = True
        if self.expansion_fallback and len(payload) >= len(block):
            return BlockExecution(
                requested_method=method,
                method="none",
                original_size=len(block),
                payload=block,
                seconds=seconds,
                fell_back=True,
                verified=verified,
            )
        return BlockExecution(
            requested_method=method,
            method=method,
            original_size=len(block),
            payload=payload,
            seconds=seconds,
            verified=verified,
        )

    def decompression_time(
        self,
        method: str,
        original_size: int,
        payload: bytes,
        codec: Optional[Codec] = None,
    ) -> float:
        """Receiver-side cost of reconstructing ``original_size`` bytes.

        In modeled mode the calibrated table answers without running the
        codec (which keeps the deterministic replays fast); otherwise the
        payload is really decompressed under the timer.
        """
        if method == "none":
            return 0.0
        if self.cost_model is not None:
            try:
                return self.cost_model.decompression_time(method, original_size, self.cpu)
            except KeyError:
                if not self.cost_model_fallback:
                    raise
        codec = codec if codec is not None else get_codec(method)
        _, measured = measure_decompress(codec, payload)
        return self.cpu.scale_time(measured) if self.cpu is not None else measured

    def measure_roundtrip(
        self, method: str, data: bytes, codec: Optional[Codec] = None
    ) -> Tuple[BlockExecution, float]:
        """Compress then decompress ``data``; returns (execution, decompress seconds).

        The microbenchmark primitive (Figures 2, 3, 6): both directions
        really run, both are timed, and the round-trip is checked.
        """
        codec = codec if codec is not None else get_codec(method)
        execution = self.compress(method, data, codec=codec)
        if execution.method == "none":
            return execution, 0.0
        restored, measured = measure_decompress(codec, execution.payload)
        if restored != data:
            raise CodecError(f"codec {method!r} failed to round-trip a block")
        return execution, self._scale_decompression_time(method, len(data), measured)


# -- block discipline ------------------------------------------------------------

Observer = Callable[[BlockStats], None]
Selector = Callable[[int, bytes], str]


def cut_blocks(
    data: Union[bytes, bytearray, memoryview, Iterable[bytes]],
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Iterator[memoryview]:
    """Cut a byte string or a chunk iterable into ``block_size`` blocks.

    The §2.5 "Take a block of 128KB" step: full blocks are emitted as
    soon as enough input accumulated; a non-empty tail becomes the final
    (short) block.

    Zero-copy: a contiguous input (``bytes``/``bytearray``/``memoryview``)
    is cut into read-only :class:`memoryview` slices of one immutable
    snapshot — no per-block copies.  Chunk iterables still reassemble
    across chunk boundaries (inherent), but each completed block is
    likewise handed out as a view of an immutable buffer.
    """
    if block_size < 1:
        raise ValueError("block_size must be positive")
    if isinstance(data, (bytes, bytearray, memoryview)):
        buffer = data if isinstance(data, bytes) else bytes(data)
        view = memoryview(buffer)
        for start in range(0, len(buffer), block_size):
            yield view[start : start + block_size]
        return
    pending = bytearray()
    for chunk in data:
        pending += chunk
        while len(pending) >= block_size:
            block = bytes(memoryview(pending)[:block_size])
            del pending[:block_size]
            yield memoryview(block)
    if pending:
        yield memoryview(bytes(pending))


class BlockEngine:
    """Block cutting + method selection + execution + per-block stats.

    ``selector`` is consulted per block (``selector(index, block) ->
    method name``) when :meth:`execute` is not given an explicit method.
    Observers receive one :class:`BlockStats` per executed block — the
    hook monitoring, metrics export, and tests attach to.
    """

    def __init__(
        self,
        executor: Optional[CodecExecutor] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        selector: Optional[Selector] = None,
        observers: Optional[Iterable[Observer]] = None,
        time_decompression: bool = True,
    ) -> None:
        if block_size < 1024:
            raise ValueError("block_size must be at least 1 KB")
        self.executor = executor if executor is not None else CodecExecutor()
        self.block_size = block_size
        self.selector = selector
        self.observers: List[Observer] = list(observers) if observers else []
        self.time_decompression = time_decompression
        self.blocks_executed = 0

    def add_observer(self, observer: Observer) -> Callable[[], None]:
        """Attach ``observer``; returns a detach callable."""
        self.observers.append(observer)

        def detach() -> None:
            if observer in self.observers:
                self.observers.remove(observer)

        return detach

    def cut(
        self, data: Union[bytes, bytearray, memoryview, Iterable[bytes]]
    ) -> Iterator[memoryview]:
        """Cut ``data`` into this engine's block size."""
        return cut_blocks(data, self.block_size)

    def execute(
        self,
        block: bytes,
        method: Optional[str] = None,
        index: Optional[int] = None,
        codec: Optional[Codec] = None,
    ) -> Tuple[bytes, BlockStats]:
        """Compress one block; returns (payload, stats) and notifies observers."""
        if index is None:
            index = self.blocks_executed
        if method is None:
            if self.selector is None:
                raise ValueError("no method given and no selector configured")
            method = self.selector(index, block)
        execution = self.executor.compress(method, block, codec=codec)
        return self.emit(execution, index, codec=codec)

    def emit(
        self,
        execution: BlockExecution,
        index: int,
        codec: Optional[Codec] = None,
    ) -> Tuple[bytes, BlockStats]:
        """Turn a finished :class:`BlockExecution` into stats + notifications.

        The shared tail of :meth:`execute`, also driven by
        :class:`~repro.core.workers.PipelinedBlockEngine` when it drains
        pool results in submission order.
        """
        decompression_seconds = 0.0
        if self.time_decompression:
            decompression_seconds = self.executor.decompression_time(
                execution.method, execution.original_size, execution.payload, codec=codec
            )
        stats = BlockStats(
            index=index,
            requested_method=execution.requested_method,
            method=execution.method,
            original_size=execution.original_size,
            compressed_size=execution.compressed_size,
            compression_seconds=execution.seconds,
            decompression_seconds=decompression_seconds,
            fell_back=execution.fell_back,
            verified=execution.verified,
        )
        self.blocks_executed += 1
        for observer in list(self.observers):
            observer(stats)
        return execution.payload, stats

    def run(
        self,
        data: Union[bytes, bytearray, Iterable[bytes]],
        method: Optional[str] = None,
    ) -> List[Tuple[bytes, BlockStats]]:
        """Cut ``data`` and execute every block.

        ``method`` fixes the codec for the whole stream; when omitted the
        per-block ``selector`` decides.
        """
        return [
            self.execute(block, method=method, index=i)
            for i, block in enumerate(self.cut(data))
        ]
