"""Continuous resource monitoring for the selector (paper §2.5).

"In this algorithm, we use the term 'reducing speed' to capture the speed
at which (given currently available CPU cycles) a certain method is able
to compress data.  This speed is measured continually, as subsequent
blocks of data are compressed."

:class:`ReducingSpeedMonitor` keeps a smoothed per-codec estimate of that
metric, seeded at infinity for the first block exactly as the pseudocode
prescribes ("Assume the reducing size speed of first block is infinity").

The monitor is a thin view over a
:class:`~repro.obs.metrics.MetricsRegistry`: the EWMA state lives in
labeled gauges (``repro_reducing_speed_bytes_per_second{codec=...}``,
``repro_codec_ratio{codec=...}``), so ``repro stats`` and any other obs
consumer read the same numbers the selector acts on.  Pass a shared
registry to co-locate them with the rest of a process's telemetry; by
default each monitor owns a private one.
"""

from __future__ import annotations

import math
from typing import Optional, Set

from ..compression.base import CompressionResult
from ..obs.metrics import MetricsRegistry

__all__ = ["ReducingSpeedMonitor"]

#: Gauge names under which the monitor stores its estimates.
SPEED_GAUGE = "repro_reducing_speed_bytes_per_second"
RATIO_GAUGE = "repro_codec_ratio"
OBSERVATIONS_COUNTER = "repro_codec_observations_total"


class ReducingSpeedMonitor:
    """EWMA of bytes-removed-per-second, per codec.

    Observations come from both sampling runs (the 4 KB fork of §2.5) and
    full-block compressions, so CPU-load changes show up within a block or
    two.  A codec never observed reports ``math.inf`` — the paper's
    optimistic initial assumption.
    """

    def __init__(
        self, alpha: float = 0.5, registry: Optional[MetricsRegistry] = None
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.registry = registry if registry is not None else MetricsRegistry()
        self._speeds = self.registry.gauge(
            SPEED_GAUGE, help="EWMA reducing speed (bytes removed / second)"
        )
        self._ratios = self.registry.gauge(
            RATIO_GAUGE, help="EWMA compression ratio (compressed / original)"
        )
        self._observations = self.registry.counter(
            OBSERVATIONS_COUNTER, help="speed observations folded into the EWMA"
        )
        # Track which codec labels this monitor wrote, so reset() on a
        # shared registry only clears its own series.
        self._codecs: Set[str] = set()

    def _fold_speed(self, codec_name: str, speed: float) -> None:
        previous = self._speeds.value(codec=codec_name)
        if previous is None or math.isinf(previous):
            updated = speed
        else:
            updated = previous + self.alpha * (speed - previous)
        self._speeds.set(updated, codec=codec_name)
        self._observations.inc(codec=codec_name)
        self._codecs.add(codec_name)

    def observe(self, result: CompressionResult) -> None:
        """Fold one timed compression into the per-codec estimates."""
        speed = result.reducing_speed
        if math.isinf(speed):
            # A zero-duration measurement carries no information.
            return
        self._fold_speed(result.codec_name, speed)
        previous_ratio = self._ratios.value(codec=result.codec_name)
        if previous_ratio is None:
            self._ratios.set(result.ratio, codec=result.codec_name)
        else:
            self._ratios.set(
                previous_ratio + self.alpha * (result.ratio - previous_ratio),
                codec=result.codec_name,
            )

    def observe_raw(self, codec_name: str, bytes_saved: int, seconds: float) -> None:
        """Fold a raw speed observation (does not touch the ratio estimate)."""
        if seconds <= 0 or bytes_saved < 0:
            return
        self._fold_speed(codec_name, bytes_saved / seconds)

    def observe_speed(self, codec_name: str, speed: float) -> None:
        """Fold an already-computed reducing-speed sample (bytes/second)."""
        if speed < 0 or math.isinf(speed) or math.isnan(speed):
            return
        self._fold_speed(codec_name, speed)

    def reducing_speed(self, codec_name: str) -> float:
        """Current estimate; ``inf`` until first observation (pseudocode line 1)."""
        value = self._speeds.value(codec=codec_name)
        return value if value is not None else math.inf

    def observations(self, codec_name: str) -> int:
        """Total speed observations folded for ``codec_name``.

        A consumer that records this count per decision can detect *stale*
        feedback — the count stops moving when the measurement path breaks
        — which is what drives the selector's degraded fallback.
        """
        return int(self._observations.value(codec=codec_name))

    def ratio(self, codec_name: str) -> Optional[float]:
        """Smoothed compression ratio, or None if never observed."""
        return self._ratios.value(codec=codec_name)

    def observed(self, codec_name: str) -> bool:
        return self._speeds.has(codec=codec_name)

    def reset(self) -> None:
        for codec_name in self._codecs:
            self._speeds.remove(codec=codec_name)
            self._ratios.remove(codec=codec_name)
        self._codecs.clear()
