"""Continuous resource monitoring for the selector (paper §2.5).

"In this algorithm, we use the term 'reducing speed' to capture the speed
at which (given currently available CPU cycles) a certain method is able
to compress data.  This speed is measured continually, as subsequent
blocks of data are compressed."

:class:`ReducingSpeedMonitor` keeps a smoothed per-codec estimate of that
metric, seeded at infinity for the first block exactly as the pseudocode
prescribes ("Assume the reducing size speed of first block is infinity").
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..compression.base import CompressionResult

__all__ = ["ReducingSpeedMonitor"]


class ReducingSpeedMonitor:
    """EWMA of bytes-removed-per-second, per codec.

    Observations come from both sampling runs (the 4 KB fork of §2.5) and
    full-block compressions, so CPU-load changes show up within a block or
    two.  A codec never observed reports ``math.inf`` — the paper's
    optimistic initial assumption.
    """

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._speeds: Dict[str, float] = {}
        self._ratios: Dict[str, float] = {}

    def observe(self, result: CompressionResult) -> None:
        """Fold one timed compression into the per-codec estimates."""
        speed = result.reducing_speed
        if math.isinf(speed):
            # A zero-duration measurement carries no information.
            return
        previous = self._speeds.get(result.codec_name)
        if previous is None or math.isinf(previous):
            self._speeds[result.codec_name] = speed
        else:
            self._speeds[result.codec_name] = previous + self.alpha * (speed - previous)
        previous_ratio = self._ratios.get(result.codec_name)
        if previous_ratio is None:
            self._ratios[result.codec_name] = result.ratio
        else:
            self._ratios[result.codec_name] = previous_ratio + self.alpha * (
                result.ratio - previous_ratio
            )

    def observe_raw(self, codec_name: str, bytes_saved: int, seconds: float) -> None:
        """Fold a raw speed observation (does not touch the ratio estimate)."""
        if seconds <= 0 or bytes_saved < 0:
            return
        speed = bytes_saved / seconds
        previous = self._speeds.get(codec_name)
        if previous is None or math.isinf(previous):
            self._speeds[codec_name] = speed
        else:
            self._speeds[codec_name] = previous + self.alpha * (speed - previous)

    def observe_speed(self, codec_name: str, speed: float) -> None:
        """Fold an already-computed reducing-speed sample (bytes/second)."""
        if speed < 0 or math.isinf(speed) or math.isnan(speed):
            return
        previous = self._speeds.get(codec_name)
        if previous is None or math.isinf(previous):
            self._speeds[codec_name] = speed
        else:
            self._speeds[codec_name] = previous + self.alpha * (speed - previous)

    def reducing_speed(self, codec_name: str) -> float:
        """Current estimate; ``inf`` until first observation (pseudocode line 1)."""
        return self._speeds.get(codec_name, math.inf)

    def ratio(self, codec_name: str) -> Optional[float]:
        """Smoothed compression ratio, or None if never observed."""
        return self._ratios.get(codec_name)

    def observed(self, codec_name: str) -> bool:
        return codec_name in self._speeds

    def reset(self) -> None:
        self._speeds.clear()
        self._ratios.clear()
