"""The Lempel-Ziv sampling probe (paper §2.5).

"Fork a sampling process to compress the first 4KB of the next block by
Lempel-Ziv and use its output to determine the reducing speed size and
the compression ratio for the next 128KB block."

:class:`LzSampler` performs that probe.  In *measured* mode it compresses
the sample with the real codec under a wall-clock timer; in *modeled* mode
(when a :class:`~repro.netsim.cpu.CodecCostModel` is supplied) the ratio
still comes from really compressing the sample, but the elapsed time is
taken from the calibrated cost model scaled by the CPU model — which is
what makes the end-to-end replays deterministic.

The fork-overlap semantics (the child samples while the parent sends) are
reproduced by the pipeline's time accounting, which charges
``max(send_time, sample_time)`` for the overlapped phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..compression.base import Codec
from ..compression.registry import get_codec
from ..netsim.cpu import CodecCostModel, CpuModel
from .engine import CodecExecutor

__all__ = ["SampleResult", "LzSampler", "DEFAULT_SAMPLE_SIZE"]

DEFAULT_SAMPLE_SIZE = 4096


@dataclass(frozen=True)
class SampleResult:
    """Outcome of probing one block's head."""

    sample_size: int
    compressed_size: int
    elapsed_seconds: float

    @property
    def ratio(self) -> float:
        if self.sample_size == 0:
            return 1.0
        return self.compressed_size / self.sample_size

    @property
    def reducing_speed(self) -> float:
        """Bytes removed per second during the probe."""
        saved = max(0, self.sample_size - self.compressed_size)
        if self.elapsed_seconds <= 0:
            return float("inf") if saved else 0.0
        return saved / self.elapsed_seconds


class LzSampler:
    """Compress the head of the next block with Lempel-Ziv and report."""

    def __init__(
        self,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        codec: Optional[Codec] = None,
        cost_model: Optional[CodecCostModel] = None,
        cpu: Optional[CpuModel] = None,
    ) -> None:
        if sample_size < 64:
            raise ValueError("sample_size must be at least 64 bytes")
        self.sample_size = sample_size
        self.codec = codec if codec is not None else get_codec("lempel-ziv")
        self.cost_model = cost_model
        self.cpu = cpu
        self.executor = CodecExecutor(cost_model=cost_model, cpu=cpu)

    def sample(self, next_block: bytes) -> SampleResult:
        """Probe ``next_block``'s first ``sample_size`` bytes."""
        head = next_block[: self.sample_size]
        if not head:
            return SampleResult(sample_size=0, compressed_size=0, elapsed_seconds=0.0)
        execution = self.executor.compress(self.codec.name, head, codec=self.codec)
        return SampleResult(
            sample_size=len(head),
            compressed_size=execution.compressed_size,
            elapsed_seconds=execution.seconds,
        )
