"""Bicriteria per-block optimization — the principled decision table.

The paper's §2.5 selector is a hand-tuned threshold grid; Farruggia et
al.'s *bicriteria data compression* (PAPERS.md) gives the principled
replacement: per block, choose the codec **and its parameters** to
minimize modeled end-to-end time subject to a space budget.  This module
builds that machinery:

* :class:`CandidateSpec` — one point of the search grid: a registry
  method, canonical constructor params (LZ window/chain, BW chunk size),
  and a block size;
* :func:`evaluate_candidates` — model each candidate's
  ``(time, space)`` behaviour from :class:`~repro.netsim.cpu.CodecCostModel`
  calibration data plus live :class:`~repro.core.monitor.ReducingSpeedMonitor`
  gauges and the 4 KB sampling probe;
* :func:`pareto_frontier` / :func:`build_frontier` — prune to the small
  Pareto-optimal set (no point is both slower and larger than another);
* :func:`select_point` — pick the frontier point minimizing modeled
  end-to-end time ``compress + transfer + decompress`` under a
  configurable space budget (``ratio <= budget``); when no point fits
  the budget the space-minimal point is returned with a violation flag;
* :func:`codec_for` — resolve a chosen ``(method, params)`` to a real
  codec instance, so the wire bytes are exactly what a direct run of
  that codec would produce.

Parameter effects are modeled declaratively (:data:`PARAM_EFFECTS`):
halving an LZ window or a BW chunk buys throughput at a small ratio
penalty, with exponents fitted once against the microbenchmarks.  The
modeled numbers only *rank* candidates — the chosen codec still really
runs, so sizes on the wire are real and byte-identical to a direct run
(the CI bench gate enforces this).

Decoders for both parametrized families are parameter-agnostic (the LZ
token stream and the BW chunk terminators are self-describing), so a
receiver never needs to learn the sender's chosen parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..compression.base import Codec, CodecError, canonical_params, params_label
from ..compression.registry import available_codecs, get_codec
from .engine import DEFAULT_BLOCK_SIZE

__all__ = [
    "CandidateSpec",
    "FrontierPoint",
    "PARAM_EFFECTS",
    "DICTIONARY_METHODS",
    "default_candidates",
    "evaluate_candidates",
    "pareto_frontier",
    "build_frontier",
    "select_point",
    "codec_for",
]

#: Methods whose ratio estimate the 4 KB Lempel-Ziv probe refines
#: (dictionary/block-sorting families respond to the same structure).
DICTIONARY_METHODS = ("lempel-ziv", "burrows-wheeler", "lzw")

#: Ratio estimates are clamped into this band: a modeled ratio below 1 %
#: is calibration noise, one above 2.0 is a pathological expansion.
_MIN_RATIO, _MAX_RATIO = 0.01, 2.0

#: Time comparisons use this slack so float noise cannot flip a tie.
_EPSILON = 1e-12


@dataclass(frozen=True)
class ParamEffect:
    """Modeled effect of one codec parameter, relative to its default.

    For a value ``v`` against default ``d``, ``steps = log2(d / v)``
    (positive when the parameter shrinks).  Throughput scales by
    ``2 ** (throughput_exponent * steps)`` — smaller windows/chunks sort
    and match faster — and the ratio estimate inflates by
    ``1 + ratio_slope * steps`` — they also see less context.  Larger
    values swing both the other way.  The exponents are fitted once
    against the microbenchmark sweeps; only the *ranking* they induce
    matters, since real compressed sizes come from really running the
    chosen codec.
    """

    default: float
    throughput_exponent: float
    ratio_slope: float


#: method -> param name -> modeled effect.  Parameters not listed here
#: are passed to the codec constructor but priced as neutral.
PARAM_EFFECTS: Dict[str, Dict[str, ParamEffect]] = {
    "lempel-ziv": {
        # Smaller windows cut the match search; longer chains dig deeper.
        "window": ParamEffect(default=32768, throughput_exponent=0.22, ratio_slope=0.045),
        "max_chain": ParamEffect(default=8, throughput_exponent=0.30, ratio_slope=0.025),
    },
    "burrows-wheeler": {
        # Smaller chunks sort faster (n log n per chunk) but break context.
        "chunk_size": ParamEffect(default=32768, throughput_exponent=0.18, ratio_slope=0.05),
    },
}


@dataclass(frozen=True)
class CandidateSpec:
    """One point of the bicriteria search grid.

    ``params`` is the *canonical* tuple from
    :func:`repro.compression.base.canonical_params`; the empty tuple
    means "the codec's registered defaults" and always resolves through
    the shared registry instance.
    """

    method: str
    params: Tuple[Tuple[str, object], ...] = ()
    block_size: int = DEFAULT_BLOCK_SIZE

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")

    @classmethod
    def make(
        cls,
        method: str,
        params: Optional[Mapping[str, object]] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> "CandidateSpec":
        return cls(method=method, params=canonical_params(params), block_size=block_size)

    @property
    def label(self) -> str:
        return f"{self.method}[{params_label(self.params)}]"


@dataclass(frozen=True)
class FrontierPoint:
    """One Pareto-frontier candidate with its modeled criteria.

    ``ratio`` (compressed/original) is the *space* criterion; the *time*
    criterion is the modeled end-to-end cost ``compress + transfer +
    decompress``, normalized per input byte so frontiers may mix block
    sizes (larger blocks amortize per-transfer latency).
    """

    method: str
    params: Tuple[Tuple[str, object], ...]
    block_size: int
    ratio: float
    compress_seconds: float
    transfer_seconds: float
    decompress_seconds: float

    @property
    def total_seconds(self) -> float:
        """Modeled end-to-end seconds for one block of ``block_size``."""
        return self.compress_seconds + self.transfer_seconds + self.decompress_seconds

    @property
    def seconds_per_byte(self) -> float:
        return self.total_seconds / self.block_size

    @property
    def space(self) -> float:
        return self.ratio

    @property
    def label(self) -> str:
        return f"{self.method}[{params_label(self.params)}]"

    def dominates(self, other: "FrontierPoint") -> bool:
        """Pareto dominance: no worse on both criteria, better on one."""
        no_worse = (
            self.seconds_per_byte <= other.seconds_per_byte + _EPSILON
            and self.space <= other.space + _EPSILON
        )
        strictly_better = (
            self.seconds_per_byte < other.seconds_per_byte - _EPSILON
            or self.space < other.space - _EPSILON
        )
        return no_worse and strictly_better


def default_candidates(
    block_size: int = DEFAULT_BLOCK_SIZE,
    block_sizes: Optional[Sequence[int]] = None,
    native: Optional[bool] = None,
    structured: Optional[bool] = None,
) -> Tuple[CandidateSpec, ...]:
    """The default search grid over (codec, parameters, block size).

    Covers the paper's four methods at their registered defaults plus
    fast/thorough parameter variants of the two tunable families.  Pass
    ``block_sizes`` to also span the block-size axis (the standalone
    optimizer and the bench do; the in-pipeline policy pins it to the
    block actually in hand).

    ``native`` controls the optional zstd/lz4 fast-compressor tier:
    ``None`` (the default) includes each codec exactly when its binding
    registered, ``True`` demands them (``CodecError`` if unregistered),
    and ``False`` pins the grid to the always-available pure-Python
    methods — what the deterministic bench uses so baseline CRCs do not
    depend on which bindings the host happens to have.

    ``structured`` gates the structure-aware tier (``template`` /
    ``columnar``).  Their ``DEFAULT_COSTS`` ratios only hold on data the
    :mod:`repro.data.analysis` sniffers matched, and the modeled
    frontier cannot see the data — so unlike ``native`` the default is
    *off* (``None`` behaves like ``False``); callers enable it exactly
    when the sniff says the stream is structured.
    """
    from ..compression.native import HAVE_LZ4, HAVE_ZSTD

    native_methods: List[str] = []
    if native is True or (native is None and HAVE_ZSTD):
        native_methods.append("zstd-native")
    if native is True or (native is None and HAVE_LZ4):
        native_methods.append("lz4-native")
    if native is True:
        registered = set(available_codecs())
        missing = [name for name in native_methods if name not in registered]
        if missing:
            raise CodecError(
                f"native candidates demanded but not registered: {missing}"
            )
    specs: List[CandidateSpec] = []
    for size in tuple(block_sizes) if block_sizes else (block_size,):
        specs.extend(
            [
                CandidateSpec.make("none", block_size=size),
                CandidateSpec.make("huffman", block_size=size),
                CandidateSpec.make("lempel-ziv", block_size=size),
                CandidateSpec.make(
                    "lempel-ziv", {"window": 4096, "max_chain": 4}, block_size=size
                ),
                CandidateSpec.make("lempel-ziv", {"max_chain": 32}, block_size=size),
                CandidateSpec.make("burrows-wheeler", block_size=size),
                CandidateSpec.make(
                    "burrows-wheeler", {"chunk_size": 8192}, block_size=size
                ),
            ]
        )
        specs.extend(
            CandidateSpec.make(method, block_size=size) for method in native_methods
        )
        if structured:
            specs.append(CandidateSpec.make("template", block_size=size))
            specs.append(CandidateSpec.make("columnar", block_size=size))
    return tuple(specs)


def _param_factors(
    method: str, params: Tuple[Tuple[str, object], ...]
) -> Tuple[float, float]:
    """(throughput factor, ratio factor) for a canonical param tuple."""
    throughput_factor = 1.0
    ratio_factor = 1.0
    effects = PARAM_EFFECTS.get(method, {})
    for key, value in params:
        effect = effects.get(key)
        if effect is None or not isinstance(value, (int, float)) or value <= 0:
            continue
        steps = math.log2(effect.default / float(value))
        throughput_factor *= 2.0 ** (effect.throughput_exponent * steps)
        ratio_factor *= max(1.0 + effect.ratio_slope * steps, 0.1)
    return throughput_factor, ratio_factor


def _sample_ratio(sample: object) -> Optional[float]:
    """Extract a compressed/original ratio from a probe result or a float."""
    if sample is None:
        return None
    ratio = getattr(sample, "ratio", sample)
    if not isinstance(ratio, (int, float)) or math.isnan(ratio) or ratio < 0:
        return None
    return float(ratio)


def _base_estimate(
    method: str,
    calibration: Optional[object],
    cpu: Optional[object],
    monitor: Optional[object],
) -> Optional[Tuple[float, float, float]]:
    """(compress_throughput, decompress_throughput, ratio) or None.

    Calibration provides the reference operating point (scaled to the
    ``cpu``); a live monitor that has *observed* the method overrides
    the compression speed — that is how CPU load and data drift steer
    the optimizer between blocks, exactly like the table's reducing
    speed — via ``throughput = reducing_speed / (1 - ratio)``.
    """
    compress = decompress = ratio = None
    if calibration is not None:
        try:
            cost = calibration.cost(method)
        except KeyError:
            cost = None
        if cost is not None:
            compress = cost.compress_throughput
            decompress = cost.decompress_throughput
            ratio = cost.typical_ratio
            if cpu is not None:
                compress = cpu.scale_speed(compress)
                decompress = cpu.scale_speed(decompress)
    if monitor is not None:
        observed_ratio = monitor.ratio(method)
        if observed_ratio is not None:
            ratio = observed_ratio
        speed = monitor.reducing_speed(method)
        if ratio is not None and ratio < 1.0 and speed > 0 and math.isfinite(speed):
            # Monitor speeds are as-measured on this machine: no CPU scaling.
            compress = speed / max(1.0 - ratio, 1e-6)
            if decompress is None:
                decompress = compress
    if compress is None or decompress is None or ratio is None:
        return None
    return compress, decompress, ratio


def evaluate_candidates(
    candidates: Iterable[CandidateSpec],
    sending_time: float,
    calibration: Optional[object] = None,
    cpu: Optional[object] = None,
    monitor: Optional[object] = None,
    sample: Optional[object] = None,
    latency: float = 0.0,
    base_block_size: Optional[int] = None,
) -> Dict[CandidateSpec, FrontierPoint]:
    """Model every candidate the available data can price.

    ``sending_time`` is the estimated time to send ``base_block_size``
    (default: each candidate's own block size) *uncompressed* — the same
    estimate the decision table consumes.  Candidates whose method has
    neither calibration data nor live monitor observations are skipped;
    ``none`` is always priceable, so the result is never empty.
    """
    if sending_time < 0:
        raise ValueError("sending_time must be non-negative")
    if latency < 0 or latency > sending_time:
        latency = min(max(latency, 0.0), sending_time)
    probe = _sample_ratio(sample)
    lz_base = _base_estimate("lempel-ziv", calibration, cpu, monitor)
    points: Dict[CandidateSpec, FrontierPoint] = {}
    for spec in candidates:
        reference = base_block_size if base_block_size else spec.block_size
        raw_transfer = latency + (sending_time - latency) * (spec.block_size / reference)
        if spec.method == "none":
            points[spec] = FrontierPoint(
                method="none",
                params=(),
                block_size=spec.block_size,
                ratio=1.0,
                compress_seconds=0.0,
                transfer_seconds=raw_transfer,
                decompress_seconds=0.0,
            )
            continue
        base = _base_estimate(spec.method, calibration, cpu, monitor)
        if base is None:
            continue
        compress_throughput, decompress_throughput, ratio = base
        if probe is not None and spec.method in DICTIONARY_METHODS:
            # The probe measured Lempel-Ziv; rescale to this method by the
            # ratio gap between their base operating points.
            scale = ratio / lz_base[2] if lz_base and lz_base[2] > 0 else 1.0
            ratio = probe * scale
        throughput_factor, ratio_factor = _param_factors(spec.method, spec.params)
        ratio = min(max(ratio * ratio_factor, _MIN_RATIO), _MAX_RATIO)
        compress_throughput *= throughput_factor
        points[spec] = FrontierPoint(
            method=spec.method,
            params=spec.params,
            block_size=spec.block_size,
            ratio=ratio,
            compress_seconds=spec.block_size / compress_throughput,
            transfer_seconds=latency + (raw_transfer - latency) * ratio,
            decompress_seconds=spec.block_size / decompress_throughput,
        )
    return points


def pareto_frontier(points: Iterable[FrontierPoint]) -> List[FrontierPoint]:
    """Prune to the Pareto-optimal set, sorted fastest-first.

    A point survives iff no other point is at least as good on both
    criteria and strictly better on one.  Among modeled ties (both
    criteria equal) the first-listed point wins, which keeps default
    parameter sets ahead of exotic spellings.
    """
    ordered = sorted(
        points, key=lambda p: (p.seconds_per_byte, p.space)
    )
    frontier: List[FrontierPoint] = []
    best_space = math.inf
    for point in ordered:
        if point.space < best_space - _EPSILON:
            frontier.append(point)
            best_space = point.space
    return frontier


def build_frontier(
    block_size: int,
    sending_time: float,
    calibration: Optional[object] = None,
    cpu: Optional[object] = None,
    monitor: Optional[object] = None,
    sample: Optional[object] = None,
    candidates: Optional[Iterable[CandidateSpec]] = None,
    latency: float = 0.0,
) -> List[FrontierPoint]:
    """Evaluate the candidate grid and return its Pareto frontier.

    With no calibration data and no monitor observations the frontier
    degenerates to the single ``none`` point — the optimizer refuses to
    price codecs it knows nothing about, mirroring the table's "don't
    compress" fallback on a dead feedback loop.
    """
    specs = (
        tuple(candidates) if candidates is not None else default_candidates(block_size)
    )
    points = evaluate_candidates(
        specs,
        sending_time,
        calibration=calibration,
        cpu=cpu,
        monitor=monitor,
        sample=sample,
        latency=latency,
        base_block_size=block_size,
    )
    return pareto_frontier(points.values())


def select_point(
    frontier: Sequence[FrontierPoint], space_budget: float = 1.0
) -> Tuple[FrontierPoint, bool]:
    """Pick the time-minimal frontier point within the space budget.

    Returns ``(point, budget_violated)``.  ``space_budget`` caps the
    modeled compressed/original ratio; 1.0 (the default) only rules out
    modeled expansion, so ``none`` always remains feasible.  When *no*
    point fits the budget — a budget below the best achievable ratio —
    the space-minimal point is returned with ``budget_violated=True``
    so callers can count the miss instead of crashing the stream.
    """
    if not frontier:
        raise ValueError("frontier is empty")
    if space_budget <= 0:
        raise ValueError("space_budget must be positive")
    feasible = [p for p in frontier if p.space <= space_budget + _EPSILON]
    if feasible:
        return min(feasible, key=lambda p: (p.seconds_per_byte, p.space)), False
    return min(frontier, key=lambda p: (p.space, p.seconds_per_byte)), True


# -- codec resolution --------------------------------------------------------------

_CODEC_CACHE: Dict[Tuple[str, Tuple[Tuple[str, object], ...]], Codec] = {}


def codec_for(method: str, params: Tuple[Tuple[str, object], ...] = ()) -> Codec:
    """Resolve a chosen point to a concrete codec instance.

    Default-parameter points resolve through the shared registry
    instance (so caches and wire bytes match every other path);
    parametrized points construct the registered codec's class with the
    canonical kwargs, memoized per ``(method, params)`` — codecs are
    stateless, so instances are shared freely.
    """
    if not params:
        return get_codec(method)
    key = (method, params)
    codec = _CODEC_CACHE.get(key)
    if codec is None:
        prototype = get_codec(method)
        codec = type(prototype)(**dict(params))
        _CODEC_CACHE[key] = codec
    return codec
