"""Placement-aware compression scheduling: producer, raw, or consumer offload.

The paper's §2.5 selector decides *which* codec but always compresses at
the producer.  The DTSchedule line of work (SNIPPETS.md) shows that on
fast links the better question is *where* — shipping raw and letting a
consumer-side relay compress for its slower downstream link wins by an
order of magnitude when the wire outruns the codec, because the producer
never stalls behind its own compressor.  This module prices that choice
from the same substrate the bicriteria optimizer already uses
(:class:`~repro.netsim.cpu.CodecCostModel` calibration scaled by a
:class:`~repro.netsim.cpu.CpuModel`, blended with live
:class:`~repro.core.monitor.ReducingSpeedMonitor` feedback through
:func:`~repro.core.bicriteria.evaluate_candidates`), so codec choice and
placement choice are cross-priced from one candidate set.

Topology: ``producer --upstream link--> relay --downstream link-->
subscriber``.  Without a relay (``downstream_seconds=None``) the model
degenerates to the direct producer/consumer pair and only the
``producer`` and ``raw`` placements exist.  Per block the placements
price as phase sums (pipelining across blocks is the schedule model's
job, :func:`~repro.core.workers.simulate_relay_pipeline`):

* ``producer`` — compress at the source, compressed bytes on every hop::

      compress * (1 + interference) + (up + down) * ratio + decompress

  ``interference`` is DTSchedule's I/O-interference charge: producer-side
  compression competes with the producer's real work (their measured
  overhead is ~15 %), while a relay compresses on an otherwise idle box.
* ``raw`` — no codec anywhere: ``up + down``.
* ``consumer`` — raw on the fast upstream hop, the relay compresses for
  the slow downstream hop: ``up + relay_compress + down * ratio +
  decompress``.  The producer-side compression bar of the time-breakdown
  figure is *empty* — the DTSchedule signature.

The break-even knee between ``raw`` and ``producer`` is the ISSUE's
``send_time(raw) < compress_time + interference`` inequality solved for
the raw send time: compression pays iff the transfer seconds it saves,
``raw * (1 - ratio)``, exceed what it costs,
``compress * (1 + interference) + decompress``
(:func:`raw_breakeven_seconds`).  Comparisons here are deliberately
**exact** (no epsilon slack): modeled ties resolve by the fixed
preference order ``producer < consumer < raw`` — the paper-faithful
arrangement wins unless a placement is strictly faster — so the knee is
a real float boundary that ``math.nextafter`` tests can straddle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from .bicriteria import FrontierPoint

__all__ = [
    "PLACEMENTS",
    "PLACEMENT_MODES",
    "PlacementCost",
    "evaluate_placements",
    "choose_placement",
    "raw_breakeven_seconds",
]

#: The three physical arrangements a block can take.
PLACEMENTS = ("producer", "raw", "consumer")

#: Valid values of ``AdaptivePolicy(placement=...)`` — the arrangements
#: plus ``auto``, which picks the modeled-fastest one per block.
PLACEMENT_MODES = ("auto",) + PLACEMENTS

#: Tie-break preference: the paper's producer-side arrangement wins
#: modeled ties, then consumer offload, then shipping raw.
_PREFERENCE: Dict[str, int] = {"producer": 0, "consumer": 1, "raw": 2}


@dataclass(frozen=True)
class PlacementCost:
    """Modeled per-block phase breakdown of one placement.

    The four phase fields are the columns of the DTSchedule-style
    stacked time-breakdown figure: producer-side compression, wire
    transfer (both hops), relay-side compression, and subscriber-side
    decompression.  ``ratio`` is the modeled compressed/original ratio
    of whatever hop carries compressed bytes (1.0 for ``raw``).
    """

    placement: str
    method: str
    params: Tuple[Tuple[str, object], ...]
    compress_seconds: float
    wire_seconds: float
    relay_seconds: float
    decompress_seconds: float
    ratio: float

    @property
    def total_seconds(self) -> float:
        """Modeled end-to-end seconds for one block, phases summed."""
        return (
            self.compress_seconds
            + self.wire_seconds
            + self.relay_seconds
            + self.decompress_seconds
        )


def raw_breakeven_seconds(
    point: FrontierPoint, interference: float = 0.0
) -> float:
    """Raw send time at which ``raw`` and ``producer`` placements tie.

    Below this many seconds the wire outruns the codec and shipping
    uncompressed wins; above it compression pays.  Solves
    ``raw = compress * (1 + interference) + raw * ratio + decompress``
    for ``raw``.  A point that models no space win (``ratio >= 1``)
    never breaks even: the knee is ``inf`` and raw always wins.
    """
    if interference < 0:
        raise ValueError("interference must be non-negative")
    saved_fraction = 1.0 - point.ratio
    if saved_fraction <= 0.0:
        return math.inf
    cost = point.compress_seconds * (1.0 + interference) + point.decompress_seconds
    return cost / saved_fraction


def evaluate_placements(
    point: Optional[FrontierPoint],
    raw_seconds: float,
    downstream_seconds: Optional[float] = None,
    interference: float = 0.0,
    relay_point: Optional[FrontierPoint] = None,
) -> Dict[str, PlacementCost]:
    """Price every placement the available data supports.

    ``point`` is the compressing candidate to schedule (typically the
    modeled-fastest compressing :class:`FrontierPoint` from the
    bicriteria candidate set); ``None`` means nothing is priceable and
    only ``raw`` is returned.  ``raw_seconds`` is the estimated time to
    send the block *uncompressed* on the producer's (upstream) link —
    the same estimate the decision table consumes.
    ``downstream_seconds`` is the raw send time on the relay's slower
    downstream hop; ``None`` means no relay exists and the ``consumer``
    placement is unavailable.  ``relay_point`` prices the relay's codec
    run when its CPU differs from the producer's (default: ``point``).
    """
    if raw_seconds < 0:
        raise ValueError("raw_seconds must be non-negative")
    if downstream_seconds is not None and downstream_seconds < 0:
        raise ValueError("downstream_seconds must be non-negative")
    if interference < 0:
        raise ValueError("interference must be non-negative")
    down = downstream_seconds if downstream_seconds is not None else 0.0
    costs: Dict[str, PlacementCost] = {
        "raw": PlacementCost(
            placement="raw",
            method="none",
            params=(),
            compress_seconds=0.0,
            wire_seconds=raw_seconds + down,
            relay_seconds=0.0,
            decompress_seconds=0.0,
            ratio=1.0,
        )
    }
    if point is None or point.method == "none":
        return costs
    costs["producer"] = PlacementCost(
        placement="producer",
        method=point.method,
        params=point.params,
        compress_seconds=point.compress_seconds * (1.0 + interference),
        wire_seconds=(raw_seconds + down) * point.ratio,
        relay_seconds=0.0,
        decompress_seconds=point.decompress_seconds,
        ratio=point.ratio,
    )
    if downstream_seconds is not None:
        relay = relay_point if relay_point is not None else point
        costs["consumer"] = PlacementCost(
            placement="consumer",
            method=relay.method,
            params=relay.params,
            compress_seconds=0.0,
            wire_seconds=raw_seconds + downstream_seconds * relay.ratio,
            relay_seconds=relay.compress_seconds,
            decompress_seconds=relay.decompress_seconds,
            ratio=relay.ratio,
        )
    return costs


def choose_placement(costs: Mapping[str, PlacementCost]) -> PlacementCost:
    """The modeled-fastest placement; exact ties go by preference order.

    Exact comparison is load-bearing: the raw-vs-producer knee of
    :func:`raw_breakeven_seconds` must be a real float boundary, so a
    ``nextafter`` step across it flips the choice.
    """
    if not costs:
        raise ValueError("no placements to choose from")
    return min(
        costs.values(),
        key=lambda c: (c.total_seconds, _PREFERENCE.get(c.placement, len(_PREFERENCE))),
    )
