"""The method-selection decision table and algorithm (paper §2.5).

Two artifacts live here:

* :data:`FIGURE1_TABLE` — the paper's qualitative ranking of the four
  methods along six characteristics (Figure 1), exposed programmatically
  so documentation, tests, and the ``bench_fig01`` harness can regenerate
  the table.
* :func:`select_method` — the quantitative per-block selection algorithm.

The paper's pseudocode compares the block's *sending time* against scaled
versions of "the reducing size speed of Lempel-Ziv".  Dimensionally this
only closes if the right-hand side is the *time Lempel-Ziv would need to
reduce the block's worth of data*, i.e.::

    lz_reduce_time = block_size / lz_reducing_speed

where ``lz_reducing_speed`` is the continuously measured bytes-removed-
per-second metric of Figure 4 ("If such space reduction can be performed
faster than the transfer time for a given amount of data, it is worth …
to compress the data", §4.1).  This reading is also what falls out of the
first-principles inequality *compression time < transfer time saved*:
with ``comp_time = saved / reducing_speed`` and
``saved_send_time = sending_time * (1 - ratio)``, the ``(1 - ratio)``
factors cancel, leaving ``sending_time > block_size / reducing_speed``.
A crucial corollary: incompressible data drives the measured reducing
speed toward zero, the reduce time toward infinity, and the selector
toward "don't compress" — regardless of link speed.

With that reading the constants behave exactly as the paper describes:
0.83 is the "is compression worth starting at all" knee, 3.48 is the "is
there enough slack to afford Burrows-Wheeler" knee, and 48.78 % is the
"did the sample respond to dictionary compression" gate.  The first
block's reducing speed is "infinity" (pseudocode line 1), which makes
``lz_reduce_time`` zero and compression maximally attractive until real
measurements arrive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple

__all__ = [
    "Rating",
    "FIGURE1_TABLE",
    "DecisionThresholds",
    "DecisionInputs",
    "Decision",
    "select_method",
]


class Rating(Enum):
    """The paper's four-level qualitative scale (Figure 1)."""

    EXCELLENT = 4
    GOOD = 3
    SATISFACTORY = 2
    POOR = 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.capitalize()


#: Figure 1 verbatim: characteristic -> method -> rating.
FIGURE1_TABLE: Dict[str, Dict[str, Rating]] = {
    "string-repetitions": {
        "burrows-wheeler": Rating.EXCELLENT,
        "lempel-ziv": Rating.EXCELLENT,
        "arithmetic": Rating.POOR,
        "huffman": Rating.POOR,
    },
    "low-entropy": {
        "burrows-wheeler": Rating.EXCELLENT,
        "lempel-ziv": Rating.POOR,
        "arithmetic": Rating.EXCELLENT,
        "huffman": Rating.EXCELLENT,
    },
    "compression-efficiency": {
        "burrows-wheeler": Rating.EXCELLENT,
        "lempel-ziv": Rating.GOOD,
        "arithmetic": Rating.POOR,
        "huffman": Rating.POOR,
    },
    "compression-time": {
        "burrows-wheeler": Rating.POOR,
        "lempel-ziv": Rating.SATISFACTORY,
        "arithmetic": Rating.POOR,
        "huffman": Rating.EXCELLENT,
    },
    "decompression-time": {
        "burrows-wheeler": Rating.SATISFACTORY,
        "lempel-ziv": Rating.EXCELLENT,
        "arithmetic": Rating.POOR,
        "huffman": Rating.EXCELLENT,
    },
    "global-time": {
        "burrows-wheeler": Rating.POOR,
        "lempel-ziv": Rating.GOOD,
        "arithmetic": Rating.POOR,
        "huffman": Rating.EXCELLENT,
    },
}


@dataclass(frozen=True)
class DecisionThresholds:
    """The three tunable constants of the §2.5 algorithm.

    The defaults are the paper's: "these numbers can be tuned easily by
    sampling even a small piece of data … usually, the numbers being used
    are very close to the constants detailed here."
    """

    #: Compress at all when sending_time > compress_factor * lz_reduce_time.
    compress_factor: float = 0.83
    #: Escalate to Burrows-Wheeler when sending_time > bw_factor * lz_reduce_time.
    bw_factor: float = 3.48
    #: Sample must compress below this ratio for dictionary methods to apply.
    ratio_gate: float = 0.4878

    def __post_init__(self) -> None:
        if self.compress_factor <= 0 or self.bw_factor <= 0:
            raise ValueError("threshold factors must be positive")
        if self.bw_factor < self.compress_factor:
            raise ValueError("bw_factor must be >= compress_factor")
        if not 0.0 < self.ratio_gate <= 1.0:
            raise ValueError("ratio_gate must be in (0, 1]")


@dataclass(frozen=True)
class DecisionInputs:
    """Everything the selector observes for one block."""

    #: Size of the block about to be sent, bytes (the paper's 128 KB).
    block_size: int
    #: Estimated time to send the block *uncompressed*, seconds
    #: (from the end-to-end bandwidth estimator).
    sending_time: float
    #: Measured Lempel-Ziv reducing speed, bytes removed / second
    #: (``math.inf`` for the first block, per the pseudocode).
    lz_reducing_speed: float
    #: Compressed/original ratio of the 4 KB Lempel-Ziv sample;
    #: ``None`` when no sample exists yet (first block).
    sampled_ratio: Optional[float] = None

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.sending_time < 0:
            raise ValueError("sending_time must be non-negative")
        if self.lz_reducing_speed < 0:
            raise ValueError("lz_reducing_speed must be non-negative")
        if self.sampled_ratio is not None and self.sampled_ratio < 0:
            raise ValueError("sampled_ratio must be non-negative")


@dataclass(frozen=True)
class Decision:
    """The selector's output plus its visible reasoning.

    ``degraded`` marks a *fallback* decision: the selector refused to act
    on stale monitor feedback and chose ``none`` defensively (see
    :class:`~repro.core.policy.AdaptivePolicy`'s ``staleness_horizon``)
    rather than compress on numbers it no longer trusts.

    The middle five fields exist for the bicriteria policy
    (:mod:`repro.core.bicriteria`): ``params`` carries the chosen
    codec's canonical constructor parameters (empty = registered
    defaults, which is all the table ever chooses), ``frontier_size``
    the Pareto-frontier size behind the choice, ``budget_violated``
    whether no frontier point fit the space budget, and the two modeled
    times let callers audit the optimizer's claimed advantage over the
    table on the *same* observed inputs.

    The placement fields belong to :mod:`repro.core.placement`.
    ``placement`` says where this block's compression runs:
    ``"producer"`` (the paper's arrangement, and the default every
    non-placement policy keeps), ``"raw"`` (nobody compresses — the wire
    outran the codec), or ``"consumer"`` (the producer ships raw and a
    relay compresses with ``relay_method``/``relay_params`` for its
    slower downstream link; ``method`` is then ``"none"`` because the
    *producer* executes nothing).  ``placement_seconds`` and
    ``producer_seconds`` are the modeled end-to-end times of the chosen
    and of the always-producer arrangement on the same inputs — the pair
    the CI placement gate holds ≤.
    """

    method: str
    lz_reduce_time: float
    sending_time: float
    effective_ratio: float
    degraded: bool = False
    params: Tuple[Tuple[str, object], ...] = field(default=())
    frontier_size: int = 0
    budget_violated: bool = False
    modeled_seconds: float = math.nan
    table_modeled_seconds: float = math.nan
    placement: str = "producer"
    relay_method: str = "none"
    relay_params: Tuple[Tuple[str, object], ...] = field(default=())
    placement_seconds: float = math.nan
    producer_seconds: float = math.nan

    @property
    def compresses(self) -> bool:
        return self.method != "none"

    @property
    def offloaded(self) -> bool:
        """Whether compression (if any) runs downstream of the producer."""
        return self.placement == "consumer" and self.relay_method != "none"


#: Ratio assumed for a block that has not been sampled yet (first block).
#: 0.5 sits just above the gate, so an unsampled block that is worth
#: compressing at all gets the safe cheap method (Huffman) rather than an
#: unjustified dictionary method.
_UNSAMPLED_RATIO = 0.5


def select_method(
    inputs: DecisionInputs, thresholds: DecisionThresholds = DecisionThresholds()
) -> Decision:
    """Choose a method for one block — the §2.5 pseudocode.

    ::

        If (sending time) > 0.83*(the reducing size speed of Lempel-Ziv)
            If sampling has been compressed into less than 48.78%
                If (sending time) > 3.48*(the reducing size speed of Lempel-Ziv)
                    Use Burrows-Wheeler
                Else
                    Use Lempel-Ziv
            Else
                Use Huffman
        Else
            Don't Compress
    """
    ratio = inputs.sampled_ratio if inputs.sampled_ratio is not None else _UNSAMPLED_RATIO
    ratio = min(ratio, 1.0)
    if math.isinf(inputs.lz_reducing_speed):
        lz_reduce_time = 0.0
    elif inputs.lz_reducing_speed == 0.0:
        lz_reduce_time = math.inf
    else:
        lz_reduce_time = inputs.block_size / inputs.lz_reducing_speed

    if inputs.sending_time > thresholds.compress_factor * lz_reduce_time:
        if ratio < thresholds.ratio_gate:
            if inputs.sending_time > thresholds.bw_factor * lz_reduce_time:
                method = "burrows-wheeler"
            else:
                method = "lempel-ziv"
        else:
            method = "huffman"
    else:
        method = "none"
    return Decision(
        method=method,
        lz_reduce_time=lz_reduce_time,
        sending_time=inputs.sending_time,
        effective_ratio=ratio,
    )
