"""The paper's primary contribution: table-driven configurable compression.

Monitoring (reducing speed, end-to-end bandwidth), the 4 KB Lempel-Ziv
sampling probe, the Figure 1 decision table with the §2.5 threshold
algorithm, pluggable policies (adaptive vs. fixed baselines), and the
128 KB block pipeline that ties them together over a simulated link.
"""

from .bicriteria import (
    CandidateSpec,
    FrontierPoint,
    build_frontier,
    codec_for,
    default_candidates,
    evaluate_candidates,
    pareto_frontier,
    select_point,
)
from .calibration import (
    OperatingPoint,
    ThresholdCalibration,
    calibrate_thresholds,
)
from .engine import (
    BlockEngine,
    BlockExecution,
    BlockStats,
    CodecExecutor,
    cut_blocks,
    measure,
)
from .decision import (
    FIGURE1_TABLE,
    Decision,
    DecisionInputs,
    DecisionThresholds,
    Rating,
    select_method,
)
from .monitor import ReducingSpeedMonitor
from .pipeline import (
    DEFAULT_BLOCK_SIZE,
    METHOD_CODES,
    AdaptivePipeline,
    BlockRecord,
    StreamResult,
)
from .placement import (
    PLACEMENT_MODES,
    PLACEMENTS,
    PlacementCost,
    choose_placement,
    evaluate_placements,
    raw_breakeven_seconds,
)
from .policy import AdaptivePolicy, CompressionPolicy, FixedPolicy
from .sampler import DEFAULT_SAMPLE_SIZE, LzSampler, SampleResult
from .workers import (
    DEFAULT_QUEUE_DEPTH,
    POOL_MODES,
    PipelinedBlockEngine,
    PipelineSchedule,
    RelaySchedule,
    WorkerPool,
    simulate_pipeline,
    simulate_relay_pipeline,
)

__all__ = [
    "AdaptivePipeline",
    "AdaptivePolicy",
    "BlockEngine",
    "BlockExecution",
    "BlockRecord",
    "BlockStats",
    "CandidateSpec",
    "CodecExecutor",
    "CompressionPolicy",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_SAMPLE_SIZE",
    "Decision",
    "DecisionInputs",
    "DecisionThresholds",
    "FIGURE1_TABLE",
    "FixedPolicy",
    "FrontierPoint",
    "LzSampler",
    "OperatingPoint",
    "METHOD_CODES",
    "PLACEMENTS",
    "PLACEMENT_MODES",
    "POOL_MODES",
    "PipelineSchedule",
    "PipelinedBlockEngine",
    "PlacementCost",
    "Rating",
    "ReducingSpeedMonitor",
    "RelaySchedule",
    "SampleResult",
    "StreamResult",
    "ThresholdCalibration",
    "WorkerPool",
    "build_frontier",
    "calibrate_thresholds",
    "choose_placement",
    "codec_for",
    "cut_blocks",
    "default_candidates",
    "evaluate_candidates",
    "evaluate_placements",
    "measure",
    "pareto_frontier",
    "raw_breakeven_seconds",
    "select_method",
    "select_point",
    "simulate_pipeline",
    "simulate_relay_pipeline",
]
