"""Multi-core block execution: worker pools and the pipelined engine.

The paper's headline end-to-end run spends "slightly more than 60%" of
its time compressing (§4) — the single biggest win left on the table is
overlapping compression of block *i+1* with transmission of block *i*
and spreading codec work across cores, the parallel-compression lineage
of refs [31-33].  This module supplies that layer:

* :class:`WorkerPool` — a ``ProcessPoolExecutor``-backed pool of codec
  workers (``mode="processes"`` for pure-Python codecs, ``"threads"``
  for GIL-releasing natives, ``"serial"`` as the in-process fallback).
  Workers resolve methods through the codec registry and time themselves
  with :func:`~repro.core.engine.measure` — the engine module stays the
  one ``perf_counter`` site — and ship back ``(payload, seconds)`` so
  :class:`~repro.core.engine.CodecExecutor` remains the one accounting
  point.  A broken pool (killed worker, failed fork) degrades to serial
  execution instead of corrupting the stream.
* :class:`PipelinedBlockEngine` — a :class:`~repro.core.engine.BlockEngine`
  that keeps a bounded queue of in-flight blocks on the pool, so
  compression of later blocks overlaps the consumer's handling (send) of
  earlier ones while :class:`~repro.core.engine.BlockStats` still emit
  strictly in block order.
* :func:`simulate_pipeline` — the deterministic schedule model: given
  per-block compression and send seconds (engine-accounted, so modeled
  replays stay exact), it computes the pooled makespan, speedup, and
  overlap fraction without touching a wall clock.  This is what the
  bench gate compares, which keeps the numbers identical run-to-run and
  machine-to-machine.
"""

from __future__ import annotations

import heapq
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..compression.registry import available_codecs, get_codec
from ..obs.block import record_pipeline_block, record_pool_degraded, record_pool_task
from ..obs.metrics import MetricsRegistry
from .engine import (
    DEFAULT_BLOCK_SIZE,
    BlockEngine,
    BlockStats,
    CodecExecutor,
    Observer,
    Selector,
    measure,
)

__all__ = [
    "DEFAULT_QUEUE_DEPTH",
    "POOL_MODES",
    "PipelineSchedule",
    "PipelinedBlockEngine",
    "RelaySchedule",
    "WorkerPool",
    "simulate_pipeline",
    "simulate_relay_pipeline",
]

POOL_MODES = ("processes", "threads", "serial")

#: Default bound on in-flight blocks for the pipelined engine: deep
#: enough to keep 4 workers busy, shallow enough that a stall does not
#: buffer the whole stream.
DEFAULT_QUEUE_DEPTH = 8


def _pool_compress(method: str, data: bytes) -> Tuple[bytes, float]:
    """Worker-side task: compress ``data`` with the registered ``method``.

    Runs inside pool workers (or inline for serial/degraded pools).  The
    timing comes from :func:`repro.core.engine.measure`, keeping the
    engine module the single ``perf_counter`` site; the caller's
    :class:`~repro.core.engine.CodecExecutor` applies the scaling rules
    to the returned measured seconds.
    """
    result = measure(get_codec(method), data)
    payload = result.payload
    assert payload is not None
    return payload, result.elapsed_seconds


class WorkerPool:
    """A pool of codec workers with graceful degradation to serial.

    Process workers are initialized once per pool (the registry's builtin
    codecs register at import time inside each worker); per-task payloads
    are the pickled block bytes plus the method name, and results carry
    the worker-measured seconds.  ``mode="threads"`` suits codecs that
    release the GIL (the zlib/bz2 natives); ``"processes"`` suits the
    pure-Python codecs; ``"serial"`` executes inline and is what a broken
    pool degrades to — permanently, so one dead worker cannot flap.
    """

    def __init__(
        self,
        workers: int = 4,
        mode: str = "processes",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        if mode not in POOL_MODES:
            raise ValueError(f"unknown pool mode {mode!r} (want one of {POOL_MODES})")
        self.workers = workers
        self.mode = mode
        self.registry = registry
        self.degradations = 0
        self._executor: Optional[Union[ProcessPoolExecutor, ThreadPoolExecutor]] = None
        self._known = frozenset(available_codecs())

    # -- lifecycle ---------------------------------------------------------------

    @property
    def effective_mode(self) -> str:
        """The mode tasks actually run under (``serial`` after degradation)."""
        return self.mode

    def _ensure_executor(self) -> Optional[Union[ProcessPoolExecutor, ThreadPoolExecutor]]:
        if self.mode == "serial":
            return None
        if self._executor is None:
            if self.mode == "processes":
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            else:
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
        return self._executor

    def shutdown(self) -> None:
        """Release pool workers (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.shutdown()

    # -- degradation -------------------------------------------------------------

    def _degrade(self) -> None:
        """Fall back to serial for the rest of this pool's life."""
        self.degradations += 1
        if self.registry is not None:
            record_pool_degraded(self.registry, self.mode)
        self.shutdown()
        self.mode = "serial"

    # -- execution ---------------------------------------------------------------

    def accepts(self, method: str) -> bool:
        """Whether ``method`` can execute on pool workers.

        Workers resolve methods through the registry snapshot taken when
        the pool spawned; methods registered afterwards (or resolved from
        explicit codec instances) must run in the caller's process.
        """
        return method in self._known

    def submit(self, method: str, data: bytes) -> "Future[Tuple[bytes, float]]":
        """Schedule one block compression; returns a future of (payload, seconds).

        A pool that is (or becomes) serial returns an already-completed
        future, so callers can treat every mode uniformly.  Futures from a
        worker that dies mid-task raise ``BrokenExecutor``; callers that
        cannot tolerate that use :meth:`run`, which degrades and retries.
        """
        if not isinstance(data, bytes):
            # Process workers receive blocks by pickling, and memoryview
            # blocks (the zero-copy cut path) don't pickle — the IPC copy
            # is inherent to pool mode, so materialize here, once.
            data = bytes(data)
        if self.registry is not None:
            record_pool_task(self.registry, self.effective_mode, self.workers)
        executor = self._ensure_executor()
        if executor is None:
            future: "Future[Tuple[bytes, float]]" = Future()
            future.set_result(_pool_compress(method, data))
            return future
        try:
            return executor.submit(_pool_compress, method, data)
        except (BrokenExecutor, RuntimeError):
            # The pool broke before the task was accepted (killed worker,
            # shutdown race): degrade and answer inline.
            self._degrade()
            future = Future()
            future.set_result(_pool_compress(method, data))
            return future

    def run(self, method: str, data: bytes) -> Tuple[bytes, float]:
        """Compress one block on the pool, degrading to serial on breakage."""
        future = self.submit(method, data)
        try:
            return future.result()
        except BrokenExecutor:
            self._degrade()
            return _pool_compress(method, data)


class PipelinedBlockEngine(BlockEngine):
    """Block engine that overlaps compression with downstream consumption.

    Blocks are submitted to a :class:`WorkerPool` with at most
    ``queue_depth`` in flight; results are drained strictly in submission
    order, so observers see the same in-order
    :class:`~repro.core.engine.BlockStats` stream a serial
    :class:`~repro.core.engine.BlockEngine` would emit and the wire bytes
    are byte-identical to serial execution.  While the caller handles
    block ``i`` (e.g. writes it to a transport), blocks ``i+1 ...
    i+queue_depth`` are already compressing on the workers — the
    compress/send overlap of the paper's pipelined transport, now backed
    by real cores.

    A broken pool degrades mid-stream: already-submitted blocks whose
    futures died are re-executed serially in place, preserving order.
    """

    def __init__(
        self,
        executor: Optional[CodecExecutor] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        selector: Optional[Selector] = None,
        observers: Optional[Iterable[Observer]] = None,
        time_decompression: bool = True,
        pool: Optional[WorkerPool] = None,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(
            executor=executor,
            block_size=block_size,
            selector=selector,
            observers=observers,
            time_decompression=time_decompression,
        )
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        self.pool = pool if pool is not None else WorkerPool(workers=1, mode="serial")
        self.queue_depth = queue_depth
        self.registry = registry

    def run(
        self,
        data: Union[bytes, bytearray, Iterable[bytes]],
        method: Optional[str] = None,
    ) -> List[Tuple[bytes, BlockStats]]:
        """Cut ``data`` and execute every block through the pool."""
        results: List[Tuple[bytes, BlockStats]] = []
        in_flight: "deque[Tuple[int, bytes, str, Optional[Future]]]" = deque()
        for index, block in enumerate(self.cut(data)):
            block_method = method
            if block_method is None:
                if self.selector is None:
                    raise ValueError("no method given and no selector configured")
                block_method = self.selector(index, block)
            if block_method != "none" and self.pool.accepts(block_method):
                future: Optional[Future] = self.pool.submit(block_method, block)
            else:
                future = None  # executes in-process at drain time
            in_flight.append((index, block, block_method, future))
            while len(in_flight) >= self.queue_depth:
                self._drain_one(in_flight, results)
        while in_flight:
            self._drain_one(in_flight, results)
        return results

    def _drain_one(
        self,
        in_flight: "deque[Tuple[int, bytes, str, Optional[Future]]]",
        results: List[Tuple[bytes, BlockStats]],
    ) -> None:
        index, block, method, future = in_flight.popleft()
        if future is None:
            execution = self.executor.compress(method, block)
        else:
            try:
                payload, measured = future.result()
            except BrokenExecutor:
                # The worker died under this block: the pool degrades to
                # serial and the block re-executes in-process, in order.
                payload, measured = self.pool.run(method, block)
            execution = self.executor.finalize_compression(
                method, block, payload, measured
            )
        if self.registry is not None:
            record_pipeline_block(
                self.registry, self.pool.effective_mode, self.queue_depth
            )
        results.append(self.emit(execution, index))


# -- the deterministic schedule model ---------------------------------------------


@dataclass(frozen=True)
class PipelineSchedule:
    """Outcome of scheduling a block stream onto workers + an in-order wire.

    All quantities derive from engine-accounted per-block seconds, so a
    modeled replay produces the identical schedule on every machine — the
    property the bench regression gate relies on.
    """

    makespan: float
    serial_seconds: float
    compression_seconds: float
    send_seconds: float
    workers: int
    queue_depth: int

    @property
    def speedup(self) -> float:
        """Serial (compress-then-send) time over the pipelined makespan."""
        if self.makespan <= 0.0:
            return 1.0
        return self.serial_seconds / self.makespan

    @property
    def overlap_fraction(self) -> float:
        """Fraction of serial time hidden by overlap and multi-core workers."""
        if self.serial_seconds <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.makespan / self.serial_seconds)


def simulate_pipeline(
    compression_seconds: Sequence[float],
    send_seconds: Sequence[float],
    workers: int,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
) -> PipelineSchedule:
    """Schedule blocks onto ``workers`` compressors and one in-order wire.

    Block ``i`` may start compressing once a worker is free *and* block
    ``i - queue_depth`` has finished sending (the bounded in-flight
    queue); it may start sending once compressed and once block ``i-1``
    left the wire (in-order emission).  The serial reference is the
    paper's unpipelined loop: compress, then send, one block at a time.
    """
    if len(compression_seconds) != len(send_seconds):
        raise ValueError("compression and send series must have equal length")
    if workers < 1:
        raise ValueError("workers must be positive")
    if queue_depth < 1:
        raise ValueError("queue_depth must be positive")
    total_compression = float(sum(compression_seconds))
    total_send = float(sum(send_seconds))
    worker_free = [0.0] * workers
    heapq.heapify(worker_free)
    wire_free = 0.0
    send_done: List[float] = []
    for index, (compress_time, send_time) in enumerate(
        zip(compression_seconds, send_seconds)
    ):
        gate = send_done[index - queue_depth] if index >= queue_depth else 0.0
        start = max(heapq.heappop(worker_free), gate)
        compressed_at = start + compress_time
        heapq.heappush(worker_free, compressed_at)
        send_start = max(compressed_at, wire_free)
        wire_free = send_start + send_time
        send_done.append(wire_free)
    return PipelineSchedule(
        makespan=wire_free,
        serial_seconds=total_compression + total_send,
        compression_seconds=total_compression,
        send_seconds=total_send,
        workers=workers,
        queue_depth=queue_depth,
    )


@dataclass(frozen=True)
class RelaySchedule:
    """Outcome of scheduling a block stream through a consumer-offload relay.

    The five per-phase totals are the stacked bars of the DTSchedule-style
    time-breakdown figure (:mod:`repro.experiments.placement`); the
    makespan is what those phases cost end-to-end once compression of
    later blocks overlaps earlier blocks' transfers and relay work.  Like
    :class:`PipelineSchedule`, everything derives from modeled per-block
    seconds, so the schedule is identical on every machine.
    """

    makespan: float
    serial_seconds: float
    compress_seconds: float
    upstream_seconds: float
    relay_seconds: float
    downstream_seconds: float
    decompress_seconds: float
    workers: int
    relay_workers: int
    queue_depth: int

    @property
    def speedup(self) -> float:
        """Serial (phase-sum) time over the pipelined makespan."""
        if self.makespan <= 0.0:
            return 1.0
        return self.serial_seconds / self.makespan

    @property
    def overlap_fraction(self) -> float:
        """Fraction of serial time hidden by overlap across the stages."""
        if self.serial_seconds <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.makespan / self.serial_seconds)

    @property
    def wire_seconds(self) -> float:
        """Total transfer time across both hops (the figure's wire bar)."""
        return self.upstream_seconds + self.downstream_seconds


def simulate_relay_pipeline(
    compress_seconds: Sequence[float],
    upstream_seconds: Sequence[float],
    relay_seconds: Sequence[float],
    downstream_seconds: Sequence[float],
    decompress_seconds: Optional[Sequence[float]] = None,
    workers: int = 1,
    relay_workers: int = 1,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
) -> RelaySchedule:
    """Schedule blocks through producer → upstream wire → relay → downstream wire.

    The five stages generalize :func:`simulate_pipeline` to the relay
    topology of :mod:`repro.core.placement`: block ``i`` compresses once
    a producer worker is free and block ``i - queue_depth`` has left the
    downstream wire (the bounded in-flight queue now spans the whole
    path); each wire is a single in-order server; the relay compresses
    on its own ``relay_workers`` pool but forwards in block order; the
    subscriber decompresses in arrival order.  Placements feed zeros
    into the stages they skip — a ``raw`` stream has all-zero codec
    stages and the model degenerates to two chained wires; with zero
    relay and downstream stages it reproduces :func:`simulate_pipeline`
    exactly.
    """
    series = [compress_seconds, upstream_seconds, relay_seconds, downstream_seconds]
    if decompress_seconds is None:
        decompress_seconds = [0.0] * len(compress_seconds)
    series.append(decompress_seconds)
    lengths = {len(s) for s in series}
    if len(lengths) > 1:
        raise ValueError("all five phase series must have equal length")
    if workers < 1 or relay_workers < 1:
        raise ValueError("workers and relay_workers must be positive")
    if queue_depth < 1:
        raise ValueError("queue_depth must be positive")
    producer_free = [0.0] * workers
    heapq.heapify(producer_free)
    relay_free = [0.0] * relay_workers
    heapq.heapify(relay_free)
    up_free = down_free = decompress_free = 0.0
    relay_order = 0.0  # the relay forwards strictly in block order
    delivered: List[float] = []
    for index in range(len(compress_seconds)):
        gate = delivered[index - queue_depth] if index >= queue_depth else 0.0
        start = max(heapq.heappop(producer_free), gate)
        compressed_at = start + compress_seconds[index]
        heapq.heappush(producer_free, compressed_at)
        up_start = max(compressed_at, up_free)
        up_free = up_start + upstream_seconds[index]
        relay_start = max(up_free, heapq.heappop(relay_free))
        relay_done = relay_start + relay_seconds[index]
        heapq.heappush(relay_free, relay_done)
        relay_order = max(relay_order, relay_done)
        down_start = max(relay_order, down_free)
        down_free = down_start + downstream_seconds[index]
        done = max(down_free, decompress_free) + decompress_seconds[index]
        decompress_free = done
        delivered.append(done)
    totals = [float(sum(s)) for s in series]
    return RelaySchedule(
        makespan=delivered[-1] if delivered else 0.0,
        serial_seconds=sum(totals),
        compress_seconds=totals[0],
        upstream_seconds=totals[1],
        relay_seconds=totals[2],
        downstream_seconds=totals[3],
        decompress_seconds=totals[4],
        workers=workers,
        relay_workers=relay_workers,
        queue_depth=queue_depth,
    )
