"""Compression policies: adaptive (the contribution) and fixed baselines.

The paper's evaluation implicitly compares the adaptive selector against
"non-adaptive approaches" — always using one method, or never compressing.
Expressing all of these behind one interface lets the pipeline,
middleware, and the headline end-to-end benchmark treat them uniformly.

:class:`AdaptivePolicy` now speaks two dialects of "adaptive":

* ``policy="table"`` (default) — the paper-faithful §2.5 threshold
  table, unchanged;
* ``policy="bicriteria"`` — the :mod:`repro.core.bicriteria` optimizer:
  build a per-block Pareto frontier over (codec, parameters, block
  size) points from calibration data plus live monitor gauges, then
  take the point minimizing modeled end-to-end time under a space
  budget.  The table stays the default until the CI bench gate proves
  the optimizer wins.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, Optional, Protocol, Sequence, Tuple

from ..compression.registry import get_codec
from ..obs.bicriteria import record_choice
from ..obs.placement import record_placement, record_placement_degraded
from .bicriteria import (
    CandidateSpec,
    default_candidates,
    evaluate_candidates,
    pareto_frontier,
    select_point,
)
from .decision import Decision, DecisionInputs, DecisionThresholds, select_method
from .monitor import ReducingSpeedMonitor
from .placement import PLACEMENT_MODES, choose_placement, evaluate_placements
from .sampler import SampleResult

__all__ = [
    "CompressionPolicy",
    "AdaptivePolicy",
    "FixedPolicy",
    "DEGRADED_COUNTER",
    "POLICY_NAMES",
]

#: Counter incremented (on the monitor's registry) for every degraded
#: fallback decision.
DEGRADED_COUNTER = "repro_selector_degraded_total"

#: The two selection dialects AdaptivePolicy speaks.
POLICY_NAMES = ("table", "bicriteria")


class CompressionPolicy(Protocol):
    """Chooses a compression method for each block."""

    def choose(
        self,
        block_size: int,
        sending_time: float,
        monitor: ReducingSpeedMonitor,
        sample: Optional[SampleResult],
    ) -> Decision:
        """Return the decision for the block about to be compressed."""
        ...


def _lz_reduce_time(block_size: int, lz_reducing_speed: float) -> float:
    """The table's pivot quantity, shared by both dialects for visibility."""
    if math.isinf(lz_reducing_speed):
        return 0.0
    if lz_reducing_speed == 0.0:
        return math.inf
    return block_size / lz_reducing_speed


class AdaptivePolicy:
    """The adaptive selector: threshold table or bicriteria optimizer.

    ``staleness_horizon`` arms the degradation contract: the policy
    watches the monitor's observation counter, and once it has made more
    than ``staleness_horizon`` consecutive decisions without a single
    fresh lempel-ziv observation arriving, the feedback loop is
    considered broken — the selector stops trusting its numbers, falls
    back to ``none`` (marked ``degraded=True``), and increments
    :data:`DEGRADED_COUNTER` on the monitor's registry.  The fallback
    clears itself the moment fresh observations resume.  ``None``
    (default) disables the horizon entirely, preserving the paper's
    always-optimistic behaviour.  The horizon guards both dialects: a
    dead feedback loop poisons modeled frontiers exactly as it poisons
    thresholds.

    Bicriteria knobs (ignored under ``policy="table"``):

    * ``space_budget`` — modeled compressed/original ratio cap; 1.0
      (default) only rules out modeled expansion.
    * ``cost_model`` / ``cpu`` — the calibration substrate
      (:class:`~repro.netsim.cpu.CodecCostModel` scaled by a
      :class:`~repro.netsim.cpu.CpuModel`).  Without it the optimizer
      prices only what the monitor has observed, degenerating to a
      lone ``none`` point on a cold start.
    * ``candidates`` — override the search grid (defaults to
      :func:`~repro.core.bicriteria.default_candidates` at each
      block's size).
    * ``native`` — forwarded to
      :func:`~repro.core.bicriteria.default_candidates`: ``None``
      auto-includes the zstd/lz4 tier when its bindings registered,
      ``False`` pins the grid to the pure-Python methods, ``True``
      demands the native tier.

    Table-dialect knob:

    * ``method_map`` — rename the table's paper-method choices before
      they leave the selector, e.g. ``{"lempel-ziv": "zstd-native"}``
      swaps the native operating point in wherever the §2.5 thresholds
      would pick Lempel-Ziv.  Target names are validated against the
      registry eagerly, so an unmapped binding fails at construction
      rather than mid-stream.  The thresholds themselves still reason
      in paper-method terms.

    Placement knobs (:mod:`repro.core.placement`):

    * ``placement`` — where compression runs.  ``"producer"`` (default)
      is the paper's arrangement and leaves every decision untouched;
      ``"raw"`` always ships uncompressed; ``"consumer"`` always
      offloads to a downstream relay; ``"auto"`` prices all available
      placements per block — from the same bicriteria candidate set both
      dialects use — and takes the modeled-fastest one.
    * ``interference`` — producer-side interference fraction: the
      compression-time surcharge for competing with the producer's real
      work (DTSchedule measures ~15 %; a relay compresses unloaded).
    * ``downstream_factor`` — the relay's downstream hop modeled as a
      multiple of the upstream raw send time (``None`` = no relay, so
      the ``consumer`` placement does not exist).

    Placement decisions degrade with the same staleness horizon: on a
    dead feedback loop the scheduler stops trusting its break-even
    numbers and falls back to the ``producer`` arrangement (counted in
    ``repro_placement_degraded_total``).  The running totals
    ``placement_modeled_seconds_total`` /
    ``producer_placement_seconds_total`` compare the chosen placements
    against always-producer on the same observed inputs — the pair the
    CI placement gate holds ≤.

    Every bicriteria decision lands in the monitor's registry under the
    ``repro_bicriteria_*`` vocabulary, and the running totals
    ``modeled_seconds_total`` / ``table_modeled_seconds_total`` compare
    the optimizer against what the table would have chosen on the same
    observed inputs — the quantity the CI bench gate holds ≤.
    """

    def __init__(
        self,
        thresholds: DecisionThresholds = DecisionThresholds(),
        staleness_horizon: Optional[int] = None,
        policy: str = "table",
        space_budget: float = 1.0,
        cost_model: Optional[object] = None,
        cpu: Optional[object] = None,
        candidates: Optional[Sequence[CandidateSpec]] = None,
        native: Optional[bool] = None,
        structured: Optional[bool] = None,
        method_map: Optional[Dict[str, str]] = None,
        placement: str = "producer",
        interference: float = 0.0,
        downstream_factor: Optional[float] = None,
    ) -> None:
        if staleness_horizon is not None and staleness_horizon < 1:
            raise ValueError("staleness_horizon must be positive (or None)")
        if policy not in POLICY_NAMES:
            raise ValueError(f"unknown policy {policy!r}; choose from {POLICY_NAMES}")
        if space_budget <= 0:
            raise ValueError("space_budget must be positive")
        if placement not in PLACEMENT_MODES:
            raise ValueError(
                f"unknown placement {placement!r}; choose from {PLACEMENT_MODES}"
            )
        if interference < 0:
            raise ValueError("interference must be non-negative")
        if downstream_factor is not None and downstream_factor <= 0:
            raise ValueError("downstream_factor must be positive (or None)")
        if placement == "consumer" and downstream_factor is None:
            raise ValueError(
                "placement='consumer' needs a downstream_factor: without a "
                "downstream hop there is nobody to offload to"
            )
        if method_map:
            for target in method_map.values():
                get_codec(target)  # validate eagerly; raises CodecError
        self.thresholds = thresholds
        self.staleness_horizon = staleness_horizon
        self.policy = policy
        self.space_budget = space_budget
        self.cost_model = cost_model
        self.cpu = cpu
        self.candidates = tuple(candidates) if candidates is not None else None
        self.native = native
        #: Admit the structure-aware tier (template/columnar) to the
        #: bicriteria grid.  Off by default: their modeled ratios only
        #: hold on sniffed-structured streams (see default_candidates).
        self.structured = structured
        self.method_map = dict(method_map) if method_map else {}
        self.placement = placement
        self.interference = interference
        self.downstream_factor = downstream_factor
        self.degraded_decisions = 0
        self.budget_violations = 0
        self.choices = 0
        #: Accumulated modeled end-to-end seconds of the chosen points and
        #: of the table's counterpart choices on the same inputs.
        self.modeled_seconds_total = 0.0
        self.table_modeled_seconds_total = 0.0
        #: Placement decisions by arrangement, and the accumulated modeled
        #: seconds of the chosen vs. always-producer arrangements on the
        #: same inputs (empty/zero under ``placement="producer"``).
        self.placement_counts: Dict[str, int] = {}
        self.placement_modeled_seconds_total = 0.0
        self.producer_placement_seconds_total = 0.0
        self._last_observations: Optional[int] = None
        self._stale_decisions = 0
        self._grids: Dict[int, Tuple[CandidateSpec, ...]] = {}

    def _feedback_is_stale(self, monitor: ReducingSpeedMonitor) -> bool:
        if self.staleness_horizon is None:
            return False
        observed = monitor.observations("lempel-ziv")
        if self._last_observations is not None and observed == self._last_observations:
            self._stale_decisions += 1
        else:
            self._stale_decisions = 0
        self._last_observations = observed
        return self._stale_decisions > self.staleness_horizon

    def _grid(self, block_size: int) -> Tuple[CandidateSpec, ...]:
        if self.candidates is not None:
            return self.candidates
        grid = self._grids.get(block_size)
        if grid is None:
            grid = default_candidates(
                block_size, native=self.native, structured=self.structured
            )
            self._grids[block_size] = grid
        return grid

    def _choose_bicriteria(
        self,
        block_size: int,
        sending_time: float,
        monitor: ReducingSpeedMonitor,
        sample: Optional[SampleResult],
        inputs: DecisionInputs,
    ) -> Decision:
        points = evaluate_candidates(
            self._grid(block_size),
            sending_time,
            calibration=self.cost_model,
            cpu=self.cpu,
            monitor=monitor,
            sample=sample,
            base_block_size=block_size,
        )
        frontier = pareto_frontier(points.values())
        point, violated = select_point(frontier, self.space_budget)

        # What would the table have done with the same observations?  The
        # default-param spec for its choice is always in the evaluated
        # set, so the comparison prices both choices identically.
        table_method = select_method(inputs, self.thresholds).method
        table_point = points.get(
            CandidateSpec(method=table_method, block_size=block_size)
        )
        table_seconds = (
            table_point.total_seconds if table_point is not None else math.nan
        )

        self.choices += 1
        if violated:
            self.budget_violations += 1
        self.modeled_seconds_total += point.total_seconds
        if not math.isnan(table_seconds):
            self.table_modeled_seconds_total += table_seconds
        record_choice(
            monitor.registry,
            frontier_size=len(frontier),
            method=point.method,
            params=point.params,
            modeled_seconds=point.total_seconds,
            budget_violated=violated,
        )
        return Decision(
            method=point.method,
            lz_reduce_time=_lz_reduce_time(block_size, inputs.lz_reducing_speed),
            sending_time=sending_time,
            effective_ratio=point.ratio,
            params=point.params,
            frontier_size=len(frontier),
            budget_violated=violated,
            modeled_seconds=point.total_seconds,
            table_modeled_seconds=table_seconds,
        )

    def _apply_placement(
        self,
        decision: Decision,
        block_size: int,
        sending_time: float,
        monitor: ReducingSpeedMonitor,
        sample: Optional[SampleResult],
    ) -> Decision:
        """Re-decide *where* the chosen compression runs (if anywhere).

        Prices the placements from the same candidate set the codec
        choice came from; when nothing compressing is priceable (no
        calibration, no observations) the paper's producer arrangement
        is kept untouched rather than scheduled on guesswork.
        """
        points = evaluate_candidates(
            self._grid(block_size),
            sending_time,
            calibration=self.cost_model,
            cpu=self.cpu,
            monitor=monitor,
            sample=sample,
            base_block_size=block_size,
        )
        point = None
        if decision.compresses:
            point = points.get(
                CandidateSpec(
                    method=decision.method,
                    params=decision.params,
                    block_size=block_size,
                )
            )
        if point is None:
            compressing = [p for p in points.values() if p.method != "none"]
            if compressing:
                point = min(compressing, key=lambda p: (p.total_seconds, p.space))
        downstream = (
            sending_time * self.downstream_factor
            if self.downstream_factor is not None
            else None
        )
        costs = evaluate_placements(
            point,
            sending_time,
            downstream_seconds=downstream,
            interference=self.interference,
        )
        chosen = (
            choose_placement(costs)
            if self.placement == "auto"
            else costs.get(self.placement)
        )
        if chosen is None:
            return decision
        producer_cost = costs.get("producer", costs["raw"])
        self.placement_counts[chosen.placement] = (
            self.placement_counts.get(chosen.placement, 0) + 1
        )
        self.placement_modeled_seconds_total += chosen.total_seconds
        self.producer_placement_seconds_total += producer_cost.total_seconds
        record_placement(
            monitor.registry,
            placement=chosen.placement,
            method=chosen.method,
            params=chosen.params,
            modeled_seconds=chosen.total_seconds,
            producer_seconds=producer_cost.total_seconds,
        )
        if chosen.placement == "producer":
            return replace(
                decision,
                method=chosen.method,
                params=chosen.params,
                effective_ratio=chosen.ratio,
                placement="producer",
                placement_seconds=chosen.total_seconds,
                producer_seconds=producer_cost.total_seconds,
            )
        relay_method = chosen.method if chosen.placement == "consumer" else "none"
        relay_params = chosen.params if chosen.placement == "consumer" else ()
        return replace(
            decision,
            method="none",
            params=(),
            effective_ratio=1.0,
            placement=chosen.placement,
            relay_method=relay_method,
            relay_params=relay_params,
            placement_seconds=chosen.total_seconds,
            producer_seconds=producer_cost.total_seconds,
        )

    def choose(
        self,
        block_size: int,
        sending_time: float,
        monitor: ReducingSpeedMonitor,
        sample: Optional[SampleResult],
    ) -> Decision:
        if self._feedback_is_stale(monitor):
            self.degraded_decisions += 1
            monitor.registry.counter(
                DEGRADED_COUNTER,
                help="selector fell back to 'none' on stale monitor feedback",
            ).inc()
            if self.placement != "producer":
                # The break-even numbers are no more trustworthy than the
                # thresholds: scheduling degrades to the paper's
                # producer-side arrangement alongside the method fallback.
                record_placement_degraded(monitor.registry)
            return Decision(
                method="none",
                lz_reduce_time=math.nan,
                sending_time=sending_time,
                effective_ratio=1.0,
                degraded=True,
            )
        # Duck-typed like the bicriteria evaluator: a SampleResult or a
        # bare ratio float both work.
        sampled_ratio = getattr(sample, "ratio", sample) if sample is not None else None
        inputs = DecisionInputs(
            block_size=block_size,
            sending_time=sending_time,
            lz_reducing_speed=monitor.reducing_speed("lempel-ziv"),
            sampled_ratio=sampled_ratio,
        )
        if self.policy == "bicriteria":
            decision = self._choose_bicriteria(
                block_size, sending_time, monitor, sample, inputs
            )
        else:
            decision = select_method(inputs, self.thresholds)
            mapped = self.method_map.get(decision.method)
            if mapped is not None and mapped != decision.method:
                decision = replace(decision, method=mapped)
        if self.placement == "producer":
            # The default arrangement is the paper's: decisions leave
            # exactly as the dialects made them, baseline CRCs never move.
            return decision
        return self._apply_placement(
            decision, block_size, sending_time, monitor, sample
        )


class FixedPolicy:
    """Always use one method — the non-adaptive baseline."""

    def __init__(self, method: str) -> None:
        get_codec(method)  # validate the name eagerly
        self.method = method

    def choose(
        self,
        block_size: int,
        sending_time: float,
        monitor: ReducingSpeedMonitor,
        sample: Optional[SampleResult],
    ) -> Decision:
        return Decision(
            method=self.method,
            lz_reduce_time=float("nan"),
            sending_time=sending_time,
            effective_ratio=sample.ratio if sample is not None else 1.0,
        )
