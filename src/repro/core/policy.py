"""Compression policies: adaptive (the contribution) and fixed baselines.

The paper's evaluation implicitly compares the adaptive selector against
"non-adaptive approaches" — always using one method, or never compressing.
Expressing all of these behind one interface lets the pipeline,
middleware, and the headline end-to-end benchmark treat them uniformly.
"""

from __future__ import annotations

from typing import Optional, Protocol

from ..compression.registry import get_codec
from .decision import Decision, DecisionInputs, DecisionThresholds, select_method
from .monitor import ReducingSpeedMonitor
from .sampler import SampleResult

__all__ = ["CompressionPolicy", "AdaptivePolicy", "FixedPolicy"]


class CompressionPolicy(Protocol):
    """Chooses a compression method for each block."""

    def choose(
        self,
        block_size: int,
        sending_time: float,
        monitor: ReducingSpeedMonitor,
        sample: Optional[SampleResult],
    ) -> Decision:
        """Return the decision for the block about to be compressed."""
        ...


class AdaptivePolicy:
    """The paper's table-driven selector (§2.5)."""

    def __init__(self, thresholds: DecisionThresholds = DecisionThresholds()) -> None:
        self.thresholds = thresholds

    def choose(
        self,
        block_size: int,
        sending_time: float,
        monitor: ReducingSpeedMonitor,
        sample: Optional[SampleResult],
    ) -> Decision:
        inputs = DecisionInputs(
            block_size=block_size,
            sending_time=sending_time,
            lz_reducing_speed=monitor.reducing_speed("lempel-ziv"),
            sampled_ratio=sample.ratio if sample is not None else None,
        )
        return select_method(inputs, self.thresholds)


class FixedPolicy:
    """Always use one method — the non-adaptive baseline."""

    def __init__(self, method: str) -> None:
        get_codec(method)  # validate the name eagerly
        self.method = method

    def choose(
        self,
        block_size: int,
        sending_time: float,
        monitor: ReducingSpeedMonitor,
        sample: Optional[SampleResult],
    ) -> Decision:
        return Decision(
            method=self.method,
            lz_reduce_time=float("nan"),
            sending_time=sending_time,
            effective_ratio=sample.ratio if sample is not None else 1.0,
        )
