"""Compression policies: adaptive (the contribution) and fixed baselines.

The paper's evaluation implicitly compares the adaptive selector against
"non-adaptive approaches" — always using one method, or never compressing.
Expressing all of these behind one interface lets the pipeline,
middleware, and the headline end-to-end benchmark treat them uniformly.
"""

from __future__ import annotations

import math
from typing import Optional, Protocol

from ..compression.registry import get_codec
from .decision import Decision, DecisionInputs, DecisionThresholds, select_method
from .monitor import ReducingSpeedMonitor
from .sampler import SampleResult

__all__ = ["CompressionPolicy", "AdaptivePolicy", "FixedPolicy", "DEGRADED_COUNTER"]

#: Counter incremented (on the monitor's registry) for every degraded
#: fallback decision.
DEGRADED_COUNTER = "repro_selector_degraded_total"


class CompressionPolicy(Protocol):
    """Chooses a compression method for each block."""

    def choose(
        self,
        block_size: int,
        sending_time: float,
        monitor: ReducingSpeedMonitor,
        sample: Optional[SampleResult],
    ) -> Decision:
        """Return the decision for the block about to be compressed."""
        ...


class AdaptivePolicy:
    """The paper's table-driven selector (§2.5).

    ``staleness_horizon`` arms the degradation contract: the policy
    watches the monitor's observation counter, and once it has made more
    than ``staleness_horizon`` consecutive decisions without a single
    fresh lempel-ziv observation arriving, the feedback loop is
    considered broken — the selector stops trusting its numbers, falls
    back to ``none`` (marked ``degraded=True``), and increments
    :data:`DEGRADED_COUNTER` on the monitor's registry.  The fallback
    clears itself the moment fresh observations resume.  ``None``
    (default) disables the horizon entirely, preserving the paper's
    always-optimistic behaviour.
    """

    def __init__(
        self,
        thresholds: DecisionThresholds = DecisionThresholds(),
        staleness_horizon: Optional[int] = None,
    ) -> None:
        if staleness_horizon is not None and staleness_horizon < 1:
            raise ValueError("staleness_horizon must be positive (or None)")
        self.thresholds = thresholds
        self.staleness_horizon = staleness_horizon
        self.degraded_decisions = 0
        self._last_observations: Optional[int] = None
        self._stale_decisions = 0

    def _feedback_is_stale(self, monitor: ReducingSpeedMonitor) -> bool:
        if self.staleness_horizon is None:
            return False
        observed = monitor.observations("lempel-ziv")
        if self._last_observations is not None and observed == self._last_observations:
            self._stale_decisions += 1
        else:
            self._stale_decisions = 0
        self._last_observations = observed
        return self._stale_decisions > self.staleness_horizon

    def choose(
        self,
        block_size: int,
        sending_time: float,
        monitor: ReducingSpeedMonitor,
        sample: Optional[SampleResult],
    ) -> Decision:
        if self._feedback_is_stale(monitor):
            self.degraded_decisions += 1
            monitor.registry.counter(
                DEGRADED_COUNTER,
                help="selector fell back to 'none' on stale monitor feedback",
            ).inc()
            return Decision(
                method="none",
                lz_reduce_time=math.nan,
                sending_time=sending_time,
                effective_ratio=1.0,
                degraded=True,
            )
        inputs = DecisionInputs(
            block_size=block_size,
            sending_time=sending_time,
            lz_reducing_speed=monitor.reducing_speed("lempel-ziv"),
            sampled_ratio=sample.ratio if sample is not None else None,
        )
        return select_method(inputs, self.thresholds)


class FixedPolicy:
    """Always use one method — the non-adaptive baseline."""

    def __init__(self, method: str) -> None:
        get_codec(method)  # validate the name eagerly
        self.method = method

    def choose(
        self,
        block_size: int,
        sending_time: float,
        monitor: ReducingSpeedMonitor,
        sample: Optional[SampleResult],
    ) -> Decision:
        return Decision(
            method=self.method,
            lz_reduce_time=float("nan"),
            sending_time=sending_time,
            effective_ratio=sample.ratio if sample is not None else 1.0,
        )
