"""Threshold calibration — the paper's tuning procedure (§2.5).

"Obviously, this information is specific to the particular data used ...
However, these numbers can be tuned easily by sampling even a small piece
of data extracted from the original file and send this piece of data over
an unloaded line employing unloaded CPUs."

:func:`calibrate_thresholds` reconstructs the paper's constants from
measurable primitives, and applied to the paper's own Figure 2/4 numbers
it *reproduces them*:

* ``compress_factor = 1 - margin``.  The §2.5 inequality ``sending_time >
  f * block/reducing_speed`` marks the exact break-even between "send
  raw" and "compress with LZ, then send" at ``f = 1`` (algebra: LZ wins
  when ``block/throughput < sending_time * (1 - ratio)``; dividing by
  ``reducing_speed = throughput * (1 - ratio)`` cancels the ratio).  The
  paper's 0.83 is that knee with a 17 % eagerness margin.
* ``bw_factor = 2 * compress_factor * rs_lz / rs_bw`` — "escalate to
  Burrows-Wheeler once the sending time exceeds (with the same margin)
  twice *Burrows-Wheeler's own* reduce time", re-expressed in the LZ
  units the pseudocode uses.  With the Figure 4 reducing speeds
  (LZ ≈ 1.3, BW ≈ 0.63 MB/s) this yields ≈ 3.4 — the paper's 3.48.
* ``ratio_gate = 1.19 * lz_sample_ratio`` — "the efficiency of the
  sampling has been set according to the numbers of Figure 2": the
  paper's 48.78 % is exactly 1.19x its Figure 2 Lempel-Ziv ratio (41 %),
  i.e. "treat the probe as dictionary-responsive if it compresses at most
  ~20 % worse than the calibration data did."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..compression.base import Codec
from .engine import measure
from ..compression.registry import get_codec
from .decision import DecisionThresholds

__all__ = ["OperatingPoint", "ThresholdCalibration", "calibrate_thresholds"]

#: The paper's gate-to-sample-ratio multiplier (0.4878 / 0.41).
GATE_HEADROOM = 1.19
#: Sending time must exceed this multiple of BW's own reduce time.
BW_PATIENCE = 2.0


@dataclass(frozen=True)
class OperatingPoint:
    """One codec's measured behaviour on the calibration sample."""

    throughput: float  # input bytes / second
    ratio: float       # compressed / original

    def __post_init__(self) -> None:
        if self.throughput <= 0:
            raise ValueError("throughput must be positive")
        if self.ratio < 0:
            raise ValueError("ratio must be non-negative")

    @property
    def reducing_speed(self) -> float:
        return self.throughput * max(0.0, 1.0 - self.ratio)


@dataclass(frozen=True)
class ThresholdCalibration:
    """The measured primitives plus the derived thresholds."""

    lz: OperatingPoint
    bw: OperatingPoint
    sample_size: int
    thresholds: DecisionThresholds


def _measure_point(codec: Codec, sample: bytes) -> OperatingPoint:
    result = measure(codec, sample, keep_payload=False)
    return OperatingPoint(
        throughput=max(result.throughput, 1e-9), ratio=result.ratio
    )


def calibrate_thresholds(
    sample: bytes,
    lz: Optional[OperatingPoint] = None,
    bw: Optional[OperatingPoint] = None,
    margin: float = 0.17,
) -> ThresholdCalibration:
    """Derive decision thresholds from a small data sample (§2.5).

    ``lz``/``bw`` operating points may be supplied (e.g. taken from a
    :class:`~repro.netsim.cpu.CodecCostModel`, or from a probe run over
    "an unloaded line employing unloaded CPUs") or are measured live from
    the sample with the registered codecs.
    """
    if not sample:
        raise ValueError("calibration sample must be non-empty")
    if not 0.0 <= margin < 1.0:
        raise ValueError("margin must be in [0, 1)")
    lz_point = lz if lz is not None else _measure_point(get_codec("lempel-ziv"), sample)
    bw_point = bw if bw is not None else _measure_point(get_codec("burrows-wheeler"), sample)
    if lz_point.reducing_speed <= 0 or bw_point.reducing_speed <= 0:
        raise ValueError(
            "calibration sample is incompressible; pick a representative sample"
        )

    compress_factor = 1.0 - margin
    bw_factor = max(
        compress_factor,
        BW_PATIENCE
        * compress_factor
        * lz_point.reducing_speed
        / bw_point.reducing_speed,
    )
    ratio_gate = min(0.95, GATE_HEADROOM * lz_point.ratio)

    thresholds = DecisionThresholds(
        compress_factor=compress_factor,
        bw_factor=bw_factor,
        ratio_gate=ratio_gate,
    )
    return ThresholdCalibration(
        lz=lz_point, bw=bw_point, sample_size=len(sample), thresholds=thresholds
    )
