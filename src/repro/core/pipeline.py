"""The adaptive block pipeline (paper §2.5 main loop).

::

    Assume the reducing size speed of first block is infinity.
    While not EOF
        Take a block of 128KB.
        <select method via decision table>
        Fork a sampling process to compress the first 4KB of the next
        block by Lempel-Ziv ...
        Send the block.
        Wait for child process.

:class:`AdaptivePipeline` reproduces that loop over a simulated link.  Two
cost modes exist:

* **measured** (default): every block is really compressed by the chosen
  codec and wall-clock timed — right for microbenchmarks on real hosts;
* **modeled**: blocks are still really compressed (sizes are real), but
  times come from a calibrated :class:`~repro.netsim.cpu.CodecCostModel`
  scaled by a :class:`~repro.netsim.cpu.CpuModel` — right for the
  deterministic Figure 8-12 replays.

Both modes are implemented by the shared
:class:`~repro.core.engine.CodecExecutor`; the pipeline itself never
touches a timer.  Every block execution flows through a
:class:`~repro.core.engine.BlockEngine`, so per-block
:class:`~repro.core.engine.BlockStats` reach any registered observers.

Time accounting mirrors the fork: the sampling probe overlaps the send,
so each block advances the virtual clock by
``compression_time + max(send_time, sample_time)``; receiver-side
decompression is folded into the end-to-end delivery observation the
bandwidth estimator sees (§2.5: acceptance speed includes receiver CPU).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..netsim.bandwidth import BandwidthEstimator, EwmaBandwidthEstimator
from ..netsim.clock import Clock, VirtualClock
from ..netsim.cpu import CodecCostModel, CpuModel
from ..netsim.link import SimulatedLink
from ..netsim.loadtrace import LoadTrace
from ..obs.metrics import MetricsRegistry
from .bicriteria import codec_for
from .decision import DecisionThresholds
from .engine import DEFAULT_BLOCK_SIZE, BlockEngine, CodecExecutor, Observer
from .monitor import ReducingSpeedMonitor
from .policy import AdaptivePolicy, CompressionPolicy
from .sampler import LzSampler, SampleResult
from .workers import WorkerPool

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "METHOD_CODES",
    "BlockRecord",
    "StreamResult",
    "AdaptivePipeline",
]

#: Numeric codes used on the y-axes of Figures 8 and 11
#: (1 = no compression, 2 = Lempel-Ziv, 3 = Burrows-Wheeler, 4 = Huffman).
METHOD_CODES: Dict[str, int] = {
    "none": 1,
    "lempel-ziv": 2,
    "burrows-wheeler": 3,
    "huffman": 4,
}


@dataclass(frozen=True)
class BlockRecord:
    """Everything observed while handling one block."""

    index: int
    start_time: float
    send_start_time: float
    method: str
    original_size: int
    compressed_size: int
    compression_time: float
    send_time: float
    decompression_time: float
    sample_time: float
    sending_time_estimate: float
    lz_reducing_speed: float
    sampled_ratio: Optional[float]
    connections: float
    #: Canonical codec parameters behind the block (empty = registered
    #: defaults — everything the table policy ever chooses).
    params: Tuple[Tuple[str, object], ...] = field(default=())
    #: CRC-32 of the wire payload, so benches can assert byte identity
    #: against a direct run of the chosen codec without storing payloads.
    payload_crc32: int = 0
    #: Where compression ran (:mod:`repro.core.placement`): ``producer``
    #: for every non-placement policy; ``raw``/``consumer`` blocks left
    #: the producer uncompressed (``method`` is then ``none``), and a
    #: ``consumer`` block names the codec a downstream relay applies.
    placement: str = "producer"
    relay_method: str = "none"

    @property
    def ratio(self) -> float:
        if self.original_size == 0:
            return 1.0
        return self.compressed_size / self.original_size

    @property
    def method_code(self) -> int:
        return METHOD_CODES.get(self.method, 0)

    @property
    def delivery_time(self) -> float:
        """Network transfer plus receiver decompression."""
        return self.send_time + self.decompression_time


class StreamResult:
    """All block records of one run plus aggregate views."""

    def __init__(self, records: Sequence[BlockRecord], total_time: float) -> None:
        self.records = list(records)
        self.total_time = total_time

    # -- aggregates -------------------------------------------------------------

    @property
    def total_original_bytes(self) -> int:
        return sum(r.original_size for r in self.records)

    @property
    def total_compressed_bytes(self) -> int:
        return sum(r.compressed_size for r in self.records)

    @property
    def total_compression_time(self) -> float:
        return sum(r.compression_time for r in self.records)

    @property
    def total_send_time(self) -> float:
        return sum(r.send_time for r in self.records)

    @property
    def overall_ratio(self) -> float:
        original = self.total_original_bytes
        if original == 0:
            return 1.0
        return self.total_compressed_bytes / original

    @property
    def compression_time_fraction(self) -> float:
        """Share of total time spent compressing (the paper's "slightly
        more than 60%" for the commercial run)."""
        if self.total_time <= 0:
            return 0.0
        return self.total_compression_time / self.total_time

    def method_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.method] = counts.get(record.method, 0) + 1
        return counts

    def placement_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.placement] = counts.get(record.placement, 0) + 1
        return counts

    # -- figure series ------------------------------------------------------------

    def method_series(self) -> List[Tuple[float, int]]:
        """(time, method code) — Figures 8 and 11."""
        return [(r.start_time, r.method_code) for r in self.records]

    def compression_time_series(self) -> List[Tuple[float, float]]:
        """(time, compression microseconds) — Figure 9."""
        return [(r.start_time, r.compression_time * 1e6) for r in self.records]

    def block_size_series(self) -> List[Tuple[float, int]]:
        """(time, compressed block bytes) — Figures 10 and 12."""
        return [(r.start_time, r.compressed_size) for r in self.records]

    def deadline_misses(self, deadline: float) -> int:
        """Blocks whose end-to-end delivery exceeded ``deadline`` seconds.

        Interactive applications (§1) care about "the target rates of data
        transmission": a block produced every T seconds is late if its
        compression + transfer + decompression takes longer than T.
        """
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        misses = 0
        for record in self.records:
            end_to_end = (
                record.compression_time + record.send_time + record.decompression_time
            )
            if end_to_end > deadline:
                misses += 1
        return misses

    def summary(self) -> Dict[str, float]:
        return {
            "blocks": float(len(self.records)),
            "total_time_s": self.total_time,
            "original_mb": self.total_original_bytes / (1 << 20),
            "compressed_mb": self.total_compressed_bytes / (1 << 20),
            "overall_ratio": self.overall_ratio,
            "compression_time_fraction": self.compression_time_fraction,
        }


class AdaptivePipeline:
    """Run the §2.5 loop over a block stream and a simulated link."""

    def __init__(
        self,
        policy: Optional[CompressionPolicy] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        sampler: Optional[LzSampler] = None,
        bandwidth_estimator: Optional[BandwidthEstimator] = None,
        cost_model: Optional[CodecCostModel] = None,
        cpu: Optional[CpuModel] = None,
        monitor_alpha: float = 0.5,
        verify: bool = False,
        observers: Optional[Iterable[Observer]] = None,
        workers: int = 1,
        pool_mode: str = "processes",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if block_size < 1024:
            raise ValueError("block_size must be at least 1 KB")
        if workers < 1:
            raise ValueError("workers must be positive")
        self.policy = policy if policy is not None else AdaptivePolicy(DecisionThresholds())
        self.block_size = block_size
        self.cost_model = cost_model
        self.cpu = cpu
        self.sampler = (
            sampler
            if sampler is not None
            else LzSampler(cost_model=cost_model, cpu=cpu)
        )
        self.bandwidth_estimator = (
            bandwidth_estimator
            if bandwidth_estimator is not None
            else EwmaBandwidthEstimator()
        )
        self.monitor_alpha = monitor_alpha
        #: Shared with each run's monitor so selector-side metrics
        #: (EWMA gauges, degradation counter, repro_bicriteria_*) are
        #: visible to callers; None keeps them on a private registry.
        self.registry = registry
        self.verify = verify
        # With workers > 1, registry-resolvable codec work runs on pool
        # workers.  Under modeled costs the measured worker seconds are
        # discarded in favor of the cost model, so the replay output is
        # bit-identical at any worker count — the pool only buys wall
        # clock.  All accounting still flows through the one executor.
        self.pool: Optional[WorkerPool] = (
            WorkerPool(workers=workers, mode=pool_mode) if workers > 1 else None
        )
        self.executor = CodecExecutor(
            cost_model=cost_model, cpu=cpu, verify=verify, pool=self.pool
        )
        self.engine = BlockEngine(
            executor=self.executor, block_size=block_size, observers=observers
        )

    def close(self) -> None:
        """Release pool workers, if any (idempotent)."""
        if self.pool is not None:
            self.pool.shutdown()

    def run(
        self,
        blocks: Iterable[bytes],
        link: SimulatedLink,
        load: Optional[LoadTrace] = None,
        clock: Optional[Clock] = None,
        production_interval: float = 0.0,
        pipelined: bool = False,
        cpu_load: Optional[LoadTrace] = None,
    ) -> StreamResult:
        """Stream ``blocks`` across ``link`` under ``load``.

        ``cpu_load`` optionally varies the sender CPU's competing load
        over time (a :class:`LoadTrace` whose "connections" are read as a
        load level): the paper's selector uses "better compression
        methods ... when CPU loads are low" and backs off when the machine
        gets busy, because the measured reducing speed drops.  Requires a
        ``cpu`` model on the pipeline.

        ``production_interval`` paces the producer: block ``i`` only
        becomes available at ``i * production_interval`` seconds, which
        models the interactive/collaborative applications of §1 whose data
        is generated over the whole session (the Figure 8-12 replays span
        the 160 s MBone trace this way).  Zero means bulk transfer: every
        block is ready immediately (the headline end-to-end numbers).

        ``pipelined`` selects the transport model.  ``False`` is the
        pseudocode read literally: the producer compresses, sends, and
        waits (the sampling fork overlaps the send).  ``True`` models the
        ECho transport layer sending asynchronously: the producer starts
        compressing block ``i+1`` while block ``i`` is on the wire, so the
        slower of the two stages sets the pace — the regime behind the
        paper's headline bulk-transfer numbers.
        """
        if production_interval < 0:
            raise ValueError("production_interval must be non-negative")
        if cpu_load is not None and self.cpu is None:
            raise ValueError("cpu_load requires a CpuModel on the pipeline")
        block_list = [b for b in blocks if b]
        clock = clock if clock is not None else VirtualClock()
        monitor = ReducingSpeedMonitor(alpha=self.monitor_alpha, registry=self.registry)
        estimator = self.bandwidth_estimator
        if hasattr(estimator, "reset"):
            estimator.reset()

        records: List[BlockRecord] = []
        sample: Optional[SampleResult] = None
        link_free = clock.now()
        last_delivery_done = clock.now()

        for index, block in enumerate(block_list):
            ready_at = index * production_interval
            if clock.now() < ready_at:
                clock.advance(ready_at - clock.now())
            start_time = clock.now()
            if cpu_load is not None and self.cpu is not None:
                self.cpu.load = cpu_load.connections_at(start_time)

            estimated_bandwidth = estimator.estimate
            if estimated_bandwidth is None:
                # Warm line: the nominal unloaded throughput is known
                # (Figure 5 was measured before the experiments began).
                estimated_bandwidth = link.spec.throughput
            sending_time_estimate = len(block) / estimated_bandwidth

            lz_speed = monitor.reducing_speed("lempel-ziv")
            decision = self.policy.choose(len(block), sending_time_estimate, monitor, sample)
            method = decision.method
            params = tuple(getattr(decision, "params", ()) or ())
            codec = codec_for(method, params) if params and method != "none" else None

            payload, stats = self.engine.execute(
                block, method=method, index=index, codec=codec
            )
            compression_time = stats.compression_seconds
            if method != "none" and compression_time > 0:
                monitor.observe_raw(
                    method, max(0, len(block) - len(payload)), compression_time
                )

            # Fork the probe on the next block; it runs while this block is
            # on the wire ("Send the block.  Wait for child process.").
            sample_time = 0.0
            next_sample: Optional[SampleResult] = None
            if index + 1 < len(block_list):
                next_sample = self.sampler.sample(block_list[index + 1])
                sample_time = next_sample.elapsed_seconds
                saved = max(0, next_sample.sample_size - next_sample.compressed_size)
                monitor.observe_raw("lempel-ziv", saved, max(sample_time, 1e-9))

            send_start = max(start_time + compression_time, link_free)
            connections = load.connections_at(send_start) if load is not None else 0.0
            send_time = link.transfer_time(len(payload), connections)
            link_free = send_start + send_time
            decompression_time = stats.decompression_seconds
            last_delivery_done = link_free + decompression_time
            estimator.observe(len(payload), send_time + decompression_time)

            if pipelined:
                # Producer is free once it finishes compressing and joins
                # the sampling child; the transport drains asynchronously.
                clock.advance(compression_time + sample_time)
            else:
                clock.advance(compression_time + max(send_time, sample_time))
                # The synchronous producer cannot run ahead of the link.
                if clock.now() < link_free:
                    clock.advance(link_free - clock.now())

            records.append(
                BlockRecord(
                    index=index,
                    start_time=start_time,
                    send_start_time=send_start,
                    method=method,
                    original_size=len(block),
                    compressed_size=len(payload),
                    compression_time=compression_time,
                    send_time=send_time,
                    decompression_time=decompression_time,
                    sample_time=sample_time,
                    sending_time_estimate=sending_time_estimate,
                    lz_reducing_speed=lz_speed,
                    sampled_ratio=sample.ratio if sample is not None else None,
                    connections=connections,
                    params=params,
                    payload_crc32=zlib.crc32(payload) & 0xFFFFFFFF,
                    placement=getattr(decision, "placement", "producer"),
                    relay_method=getattr(decision, "relay_method", "none"),
                )
            )
            sample = next_sample

        total_time = max(clock.now(), last_delivery_done)
        return StreamResult(records, total_time)
