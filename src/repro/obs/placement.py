"""Placement-scheduler metric vocabulary: the ``repro_placement_*`` names.

The placement-aware selector (:mod:`repro.core.placement` armed through
``AdaptivePolicy(placement=...)``) and the consumer-offload relay
(:mod:`repro.middleware.relay`) self-report into the monitor's
:class:`~repro.obs.metrics.MetricsRegistry` under this fixed vocabulary,
mirroring the ``repro_bicriteria_*`` discipline: ``repro stats`` and the
CI placement gate read the same numbers the scheduler acted on.

Label discipline (bounded cardinality): placements come from the fixed
:data:`~repro.core.placement.PLACEMENTS` tuple and codecs are labeled by
``method`` plus the canonical params label from
:func:`repro.compression.base.params_label`.
"""

from __future__ import annotations

from ..compression.base import params_label
from .metrics import MetricsRegistry

__all__ = [
    "PLACEMENT_CHOICES_TOTAL",
    "PLACEMENT_SECONDS_GAUGE",
    "PLACEMENT_PRODUCER_SECONDS_GAUGE",
    "PLACEMENT_DEGRADED_TOTAL",
    "RELAY_EVENTS_TOTAL",
    "RELAY_BYTES_SAVED_TOTAL",
    "record_placement",
    "record_placement_degraded",
    "record_relay_event",
]

#: Placement decisions taken, labeled by placement and chosen codec.
PLACEMENT_CHOICES_TOTAL = "repro_placement_choices_total"
#: Modeled end-to-end seconds of the most recent chosen placement.
PLACEMENT_SECONDS_GAUGE = "repro_placement_modeled_seconds"
#: Modeled seconds the always-producer arrangement would have taken on
#: the same inputs — the counterpart the CI gate holds the choice ≤.
PLACEMENT_PRODUCER_SECONDS_GAUGE = "repro_placement_producer_modeled_seconds"
#: Placement decisions degraded to ``producer`` on stale feedback.
PLACEMENT_DEGRADED_TOTAL = "repro_placement_degraded_total"
#: Blocks re-compressed by a consumer-offload relay.
RELAY_EVENTS_TOTAL = "repro_placement_relay_events_total"
#: Payload bytes removed by relay-side compression.
RELAY_BYTES_SAVED_TOTAL = "repro_placement_relay_bytes_saved_total"


def record_placement(
    registry: MetricsRegistry,
    placement: str,
    method: str,
    params: object,
    modeled_seconds: float,
    producer_seconds: float,
) -> None:
    """Fold one placement decision into ``registry``."""
    label = params_label(params)
    registry.counter(
        PLACEMENT_CHOICES_TOTAL,
        help="placement decisions by (placement, method, params)",
    ).inc(placement=placement, method=method, params=label)
    registry.gauge(
        PLACEMENT_SECONDS_GAUGE,
        help="modeled end-to-end seconds of the latest chosen placement",
    ).set(modeled_seconds, placement=placement)
    registry.gauge(
        PLACEMENT_PRODUCER_SECONDS_GAUGE,
        help="modeled always-producer seconds on the same inputs",
    ).set(producer_seconds)


def record_placement_degraded(registry: MetricsRegistry) -> None:
    """Count one stale-feedback degradation to the producer placement."""
    registry.counter(
        PLACEMENT_DEGRADED_TOTAL,
        help="placement decisions degraded to producer on stale feedback",
    ).inc()


def record_relay_event(
    registry: MetricsRegistry,
    method: str,
    params: object,
    bytes_in: int,
    bytes_out: int,
) -> None:
    """Fold one relay re-compression into ``registry``."""
    label = params_label(params)
    registry.counter(
        RELAY_EVENTS_TOTAL,
        help="blocks re-compressed by the consumer-offload relay",
    ).inc(method=method, params=label)
    registry.counter(
        RELAY_BYTES_SAVED_TOTAL,
        help="payload bytes removed by relay-side compression",
    ).inc(max(0, bytes_in - bytes_out), method=method)
