"""The machine-readable bench-result schema and regression comparator.

Every benchmark in ``benchmarks/`` emits its results through this one
schema, and the CI bench-smoke gate diffs a PR's report against the
committed ``BENCH_baseline.json`` with explicit per-metric tolerance
bands.  Following Farruggia et al.'s bicriteria framing, a metric says
*which direction is better* and *how much slack is tolerated*, so the
gate's verdicts are reproducible rather than vibes:

* ``better="lower"`` — one-sided gate: candidate may not exceed
  ``baseline * (1 + tolerance)`` (bytes, seconds).
* ``better="higher"`` — one-sided gate the other way (throughput).
* ``better="near"`` — two-sided band: relative deviation beyond
  ``tolerance`` in either direction fails; ``tolerance=0.0`` demands
  exact equality (deterministic series checksums, method counts).

``kind`` separates ``"deterministic"`` metrics (modeled times, byte
counts, decision checksums — exact run-to-run, safe to gate hard) from
``"timing"`` metrics (wall-clock, machine-dependent — reported but not
gated by default, so shared CI runners can't flake the gate).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "SCHEMA",
    "BenchMetric",
    "BenchReport",
    "Regression",
    "Comparison",
    "compare_reports",
    "load_report",
]

SCHEMA = "repro-bench/1"

#: Default relative tolerance band (the ISSUE's ">10% regression" gate).
DEFAULT_TOLERANCE = 0.10


@dataclass(frozen=True)
class BenchMetric:
    """One measured quantity with its comparison contract."""

    name: str
    value: float
    unit: str = ""
    kind: str = "deterministic"  # "deterministic" | "timing"
    better: str = "lower"        # "lower" | "higher" | "near"
    tolerance: float = DEFAULT_TOLERANCE

    def __post_init__(self) -> None:
        if self.kind not in ("deterministic", "timing"):
            raise ValueError(f"unknown metric kind {self.kind!r}")
        if self.better not in ("lower", "higher", "near"):
            raise ValueError(f"unknown direction {self.better!r}")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")


@dataclass
class BenchReport:
    """A named collection of metrics plus free-form metadata."""

    metadata: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, BenchMetric] = field(default_factory=dict)

    def record(
        self,
        name: str,
        value: float,
        unit: str = "",
        kind: str = "deterministic",
        better: str = "lower",
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> BenchMetric:
        metric = BenchMetric(
            name=name, value=float(value), unit=unit, kind=kind,
            better=better, tolerance=tolerance,
        )
        self.metrics[name] = metric
        return metric

    def add(self, metric: BenchMetric) -> None:
        self.metrics[metric.name] = metric

    # -- (de)serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "metadata": self.metadata,
            "metrics": [asdict(self.metrics[name]) for name in sorted(self.metrics)],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    def write(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def from_dict(cls, data: dict) -> "BenchReport":
        schema = data.get("schema")
        if schema != SCHEMA:
            raise ValueError(f"unsupported bench schema {schema!r} (want {SCHEMA!r})")
        report = cls(metadata=dict(data.get("metadata", {})))
        for entry in data.get("metrics", []):
            report.add(BenchMetric(**entry))
        return report


def load_report(path: Union[str, Path]) -> BenchReport:
    return BenchReport.from_dict(json.loads(Path(path).read_text()))


@dataclass(frozen=True)
class Regression:
    """One gate violation (or informational drift)."""

    name: str
    baseline: float
    candidate: float
    limit: str
    gating: bool

    def describe(self) -> str:
        marker = "FAIL" if self.gating else "info"
        return (
            f"[{marker}] {self.name}: baseline={self.baseline:g} "
            f"candidate={self.candidate:g} ({self.limit})"
        )


@dataclass
class Comparison:
    """The outcome of diffing a candidate report against a baseline."""

    regressions: List[Regression] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    compared: int = 0

    @property
    def ok(self) -> bool:
        return not self.missing and not any(r.gating for r in self.regressions)

    def describe(self) -> List[str]:
        lines = [f"compared {self.compared} metrics"]
        for name in self.missing:
            lines.append(f"[FAIL] {name}: present in baseline, missing from candidate")
        for regression in self.regressions:
            lines.append(regression.describe())
        if self.ok:
            lines.append("ok: no gated regressions")
        return lines


def _violates(metric: BenchMetric, baseline: float, candidate: float) -> Optional[str]:
    """Return a human-readable limit description when out of band."""
    tolerance = metric.tolerance
    scale = max(abs(baseline), 1e-12)
    if metric.better == "lower":
        limit = baseline + tolerance * scale
        if candidate > limit:
            return f"limit {limit:g} = baseline +{tolerance:.0%}"
    elif metric.better == "higher":
        limit = baseline - tolerance * scale
        if candidate < limit:
            return f"limit {limit:g} = baseline -{tolerance:.0%}"
    else:  # near
        if abs(candidate - baseline) > tolerance * scale:
            if tolerance == 0.0:
                return "exact match required"
            return f"band ±{tolerance:.0%} of baseline"
    return None


def compare_reports(
    baseline: BenchReport,
    candidate: BenchReport,
    gate_kinds: Iterable[str] = ("deterministic",),
) -> Comparison:
    """Diff ``candidate`` against ``baseline`` metric by metric.

    Every metric present in the baseline must exist in the candidate.
    The *baseline's* contract (direction/tolerance/kind) governs the
    comparison, so a PR cannot loosen the gate by editing its own
    emitted tolerances.  Violations on kinds outside ``gate_kinds`` are
    reported as informational, not failures.
    """
    gate: Tuple[str, ...] = tuple(gate_kinds)
    comparison = Comparison()
    for name in sorted(baseline.metrics):
        metric = baseline.metrics[name]
        other = candidate.metrics.get(name)
        if other is None:
            comparison.missing.append(name)
            continue
        comparison.compared += 1
        limit = _violates(metric, metric.value, other.value)
        if limit is not None:
            comparison.regressions.append(
                Regression(
                    name=name,
                    baseline=metric.value,
                    candidate=other.value,
                    limit=limit,
                    gating=metric.kind in gate,
                )
            )
    return comparison
