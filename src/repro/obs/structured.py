"""Metric vocabulary for the structure-aware codecs.

One place defines every ``repro_structured_*`` series the template and
columnar codecs emit, so dashboards and tests never guess at names.
Label discipline mirrors :mod:`repro.obs.bicriteria`: the only label
values are the codec name (``template``/``columnar``), the block outcome
(``structured``/``fallback``), and the small closed set of channel kinds
(``int``/``ip``/``hex``/``raw`` for template slots, ``raw``/``delta``/
``dod`` for columnar columns) — bounded cardinality by construction.
"""

from __future__ import annotations

from typing import Dict, Mapping

from .metrics import MetricsRegistry

__all__ = [
    "STRUCTURED_BLOCKS_TOTAL",
    "STRUCTURED_CHANNEL_BYTES_TOTAL",
    "STRUCTURED_FALLBACK_TOTAL",
    "STRUCTURED_TEMPLATES_MINED_TOTAL",
    "record_structured_block",
]

#: Blocks seen by a structured codec, labeled by codec and outcome
#: (``structured`` wire vs whole-block ``fallback``); the fallback *rate*
#: is the ratio of the two.
STRUCTURED_BLOCKS_TOTAL = "repro_structured_blocks_total"

#: Fallback blocks alone, for cheap alerting without label math.
STRUCTURED_FALLBACK_TOTAL = "repro_structured_fallback_total"

#: Distinct templates mined (template codec) or columns transposed
#: (columnar codec) across all structured blocks.
STRUCTURED_TEMPLATES_MINED_TOTAL = "repro_structured_templates_mined_total"

#: Encoded slot-channel bytes by channel kind.
STRUCTURED_CHANNEL_BYTES_TOTAL = "repro_structured_channel_bytes_total"


def record_structured_block(
    registry: MetricsRegistry,
    *,
    codec: str,
    fallback: bool,
    templates: int = 0,
    channel_bytes: Mapping[str, int] = (),
) -> None:
    """Record one structured-codec compress call."""
    outcome = "fallback" if fallback else "structured"
    registry.counter(
        STRUCTURED_BLOCKS_TOTAL,
        help="blocks seen by structure-aware codecs by outcome",
    ).inc(codec=codec, outcome=outcome)
    if fallback:
        registry.counter(
            STRUCTURED_FALLBACK_TOTAL,
            help="blocks that took the whole-block raw fallback",
        ).inc(codec=codec)
        return
    if templates:
        registry.counter(
            STRUCTURED_TEMPLATES_MINED_TOTAL,
            help="templates mined / columns transposed in structured blocks",
        ).inc(templates, codec=codec)
    channels: Dict[str, int] = dict(channel_bytes)
    counter = registry.counter(
        STRUCTURED_CHANNEL_BYTES_TOTAL,
        help="encoded slot-channel bytes by channel kind",
    )
    for kind, size in channels.items():
        if size:
            counter.inc(size, codec=codec, channel=kind)
