"""Bicriteria-optimizer metric vocabulary: the ``repro_bicriteria_*`` names.

The bicriteria policy (:mod:`repro.core.bicriteria` selected through
``AdaptivePolicy(policy="bicriteria")``) self-reports every choice into
the monitor's :class:`~repro.obs.metrics.MetricsRegistry` under this
fixed vocabulary, so ``repro stats`` and the bench gate read the same
numbers the optimizer acted on.

Label discipline (bounded cardinality): chosen points are labeled by
``method`` plus the *canonical* params label from
:func:`repro.compression.base.params_label` — the candidate grid is
small and fixed, so the label space is too.
"""

from __future__ import annotations

from ..compression.base import params_label
from .metrics import MetricsRegistry

__all__ = [
    "FRONTIER_SIZE_GAUGE",
    "CHOICES_TOTAL",
    "BUDGET_VIOLATIONS_TOTAL",
    "CHOSEN_SECONDS_GAUGE",
    "record_choice",
]

#: Size of the Pareto frontier behind the most recent decision.
FRONTIER_SIZE_GAUGE = "repro_bicriteria_frontier_size"
#: Decisions taken, labeled by the chosen (method, canonical params).
CHOICES_TOTAL = "repro_bicriteria_choices_total"
#: Decisions where no frontier point fit the space budget.
BUDGET_VIOLATIONS_TOTAL = "repro_bicriteria_budget_violations_total"
#: Modeled end-to-end seconds of the most recent chosen point.
CHOSEN_SECONDS_GAUGE = "repro_bicriteria_modeled_seconds"


def record_choice(
    registry: MetricsRegistry,
    frontier_size: int,
    method: str,
    params: object,
    modeled_seconds: float,
    budget_violated: bool,
) -> None:
    """Fold one bicriteria decision into ``registry``."""
    label = params_label(params)
    registry.gauge(
        FRONTIER_SIZE_GAUGE, help="Pareto frontier size behind the latest decision"
    ).set(float(frontier_size))
    registry.counter(
        CHOICES_TOTAL, help="bicriteria decisions by chosen (method, params)"
    ).inc(method=method, params=label)
    registry.gauge(
        CHOSEN_SECONDS_GAUGE,
        help="modeled end-to-end seconds of the latest chosen point",
    ).set(modeled_seconds, method=method, params=label)
    if budget_violated:
        registry.counter(
            BUDGET_VIOLATIONS_TOTAL,
            help="decisions where no frontier point fit the space budget",
        ).inc()
