"""Fabric metric vocabulary: one home for every ``repro_fabric_*`` name.

The event fabric (``repro.fabric``) is the compress-once/fan-out-many
delivery path; these helpers fold its self-measurements into a
:class:`~repro.obs.metrics.MetricsRegistry` under a fixed vocabulary so
the cache, the shard loops, and the load generator all land in the same
families — and so tests and the bench gate can read hit rates and
fan-out ratios from one place.

Label discipline (bounded cardinality): shards are labeled by index,
compression groups by ``method`` plus the *canonical* params label from
:func:`repro.compression.base.params_label` — never by channel id, which
is unbounded at fabric scale.
"""

from __future__ import annotations

from .metrics import MetricsRegistry

__all__ = [
    "CACHE_HITS_TOTAL",
    "CACHE_MISSES_TOTAL",
    "CACHE_EVICTIONS_TOTAL",
    "CACHE_BYTES",
    "CACHE_ENTRIES",
    "FABRIC_EVENTS_TOTAL",
    "FABRIC_DELIVERIES_TOTAL",
    "FABRIC_COMPRESSIONS_TOTAL",
    "FABRIC_FANOUT_RATIO",
    "FABRIC_SHARD_QUEUE_DEPTH",
    "BATCH_FRAMES_TOTAL",
    "BATCH_FILL_RATIO",
    "record_batch_flush",
    "record_cache_hit",
    "record_cache_miss",
    "record_cache_eviction",
    "record_cache_size",
    "record_fabric_delivery",
    "record_shard_queue_depth",
]

#: Shared compressed-block cache (repro.fabric.cache).
CACHE_HITS_TOTAL = "repro_fabric_cache_hits_total"
CACHE_MISSES_TOTAL = "repro_fabric_cache_misses_total"
CACHE_EVICTIONS_TOTAL = "repro_fabric_cache_evictions_total"
CACHE_BYTES = "repro_fabric_cache_bytes"
CACHE_ENTRIES = "repro_fabric_cache_entries"

#: Shard loops (repro.fabric.broker).
FABRIC_EVENTS_TOTAL = "repro_fabric_events_total"
FABRIC_DELIVERIES_TOTAL = "repro_fabric_deliveries_total"
FABRIC_COMPRESSIONS_TOTAL = "repro_fabric_compressions_total"
FABRIC_FANOUT_RATIO = "repro_fabric_fanout_ratio"
FABRIC_SHARD_QUEUE_DEPTH = "repro_fabric_shard_queue_depth"

#: Jumbo-frame batching (repro.fabric.batching).
BATCH_FRAMES_TOTAL = "repro_batch_frames_total"
BATCH_FILL_RATIO = "repro_batch_fill_ratio"


def record_batch_flush(
    registry: MetricsRegistry, frames: int, fill_ratio: float, reason: str
) -> None:
    """Fold one flushed jumbo frame into the batching vocabulary.

    ``frames`` is how many inner event frames the super-frame coalesced;
    ``fill_ratio`` is its payload bytes over the batcher's byte budget
    (how full the batch was when it shipped), and ``reason`` labels what
    tripped the flush — ``frames``/``bytes`` thresholds, a ``deadline``
    expiry, or an explicit ``drain``.
    """
    registry.counter(
        BATCH_FRAMES_TOTAL, help="event frames coalesced into jumbo super-frames"
    ).inc(frames, reason=reason)
    registry.gauge(
        BATCH_FILL_RATIO, help="payload fill ratio of the last flushed batch"
    ).set(fill_ratio, reason=reason)


def record_cache_hit(registry: MetricsRegistry, method: str, params: str) -> None:
    """Count one block served from the shared cache."""
    registry.counter(
        CACHE_HITS_TOTAL, help="compressed blocks served from the shared cache"
    ).inc(method=method, params=params)


def record_cache_miss(registry: MetricsRegistry, method: str, params: str) -> None:
    """Count one block that had to be compressed (then cached)."""
    registry.counter(
        CACHE_MISSES_TOTAL, help="cache misses that ran the codec"
    ).inc(method=method, params=params)


def record_cache_eviction(registry: MetricsRegistry, method: str, params: str) -> None:
    """Count one LRU eviction under the cache's entry/byte bounds."""
    registry.counter(
        CACHE_EVICTIONS_TOTAL, help="LRU evictions from the shared block cache"
    ).inc(method=method, params=params)


def record_cache_size(registry: MetricsRegistry, bytes_held: int, entries: int) -> None:
    """Publish the cache's current footprint."""
    registry.gauge(CACHE_BYTES, help="compressed bytes held by the cache").set(bytes_held)
    registry.gauge(CACHE_ENTRIES, help="entries held by the cache").set(entries)


def record_fabric_delivery(
    registry: MetricsRegistry,
    shard: int,
    deliveries: int,
    compressions: int,
    events_total: int,
    deliveries_total: int,
) -> None:
    """Fold one processed event into the shard's fabric counters.

    ``deliveries`` is this event's fan-out (subscriptions served) and
    ``compressions`` how many codec runs it took (cache misses only);
    the running totals feed the fan-out ratio gauge — delivered events
    per published event, the number the compress-once story scales.
    """
    shard_label = str(shard)
    registry.counter(
        FABRIC_EVENTS_TOTAL, help="events processed by fabric shards"
    ).inc(shard=shard_label)
    registry.counter(
        FABRIC_DELIVERIES_TOTAL, help="subscriber deliveries fanned out"
    ).inc(deliveries, shard=shard_label)
    if compressions:
        registry.counter(
            FABRIC_COMPRESSIONS_TOTAL, help="codec runs the fabric actually paid for"
        ).inc(compressions, shard=shard_label)
    if events_total:
        registry.gauge(
            FABRIC_FANOUT_RATIO, help="deliveries per published event (running)"
        ).set(deliveries_total / events_total)


def record_shard_queue_depth(registry: MetricsRegistry, shard: int, depth: int) -> None:
    """Publish one shard's current queue depth."""
    registry.gauge(
        FABRIC_SHARD_QUEUE_DEPTH, help="pending events per fabric shard"
    ).set(depth, shard=str(shard))
