"""Per-block telemetry: the observer that plugs into the BlockEngine.

:class:`BlockTelemetry` is a
:class:`~repro.core.engine.BlockEngine`/:class:`~repro.core.pipeline.AdaptivePipeline`
observer: every executed block lands one
:class:`~repro.core.engine.BlockStats` here, which is folded into a
:class:`~repro.obs.metrics.MetricsRegistry` (counters + histograms,
labeled by channel and method), optionally echoed to a
:class:`~repro.obs.trace.TraceWriter`, and retained as an in-order
series so tests can compare against the golden replay byte-for-byte.

The same recording helper (:func:`record_execution`) is shared by the
middleware compression handlers, so handler-side and engine-side metrics
land under the same names and labels.

This module deliberately never imports :mod:`repro.core` at runtime —
stats objects are duck-typed — so the core monitor can be a view over
the registry without an import cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from .metrics import (
    DEFAULT_RATIO_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
)
from .trace import TraceWriter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import BlockStats

__all__ = [
    "BlockTelemetry",
    "record_execution",
    "record_pool_task",
    "record_pool_degraded",
    "record_pipeline_block",
]

#: Metric names (one vocabulary for engine and handler paths).
BLOCKS_TOTAL = "repro_blocks_total"
FALLBACKS_TOTAL = "repro_block_fallbacks_total"
BYTES_IN_TOTAL = "repro_block_bytes_in_total"
BYTES_OUT_TOTAL = "repro_block_bytes_out_total"
COMPRESSION_SECONDS = "repro_block_compression_seconds"
DECOMPRESSION_SECONDS = "repro_block_decompression_seconds"
BLOCK_RATIO = "repro_block_ratio"

#: Worker-pool vocabulary (the multi-core execution layer).
POOL_TASKS_TOTAL = "repro_pool_tasks_total"
POOL_DEGRADED_TOTAL = "repro_pool_degraded_total"
POOL_WORKERS = "repro_pool_workers"
PIPELINE_BLOCKS_TOTAL = "repro_pipeline_blocks_total"


def record_pool_task(registry: MetricsRegistry, pool_mode: str, workers: int) -> None:
    """Count one codec task dispatched to a worker pool."""
    registry.counter(POOL_TASKS_TOTAL, help="codec tasks dispatched to pool workers").inc(
        pool_mode=pool_mode
    )
    registry.gauge(POOL_WORKERS, help="configured pool worker count").set(
        workers, pool_mode=pool_mode
    )


def record_pool_degraded(registry: MetricsRegistry, pool_mode: str) -> None:
    """Count one pool degradation (e.g. a broken process pool) to serial."""
    registry.counter(
        POOL_DEGRADED_TOTAL, help="pool degradations to serial execution"
    ).inc(pool_mode=pool_mode)


def record_pipeline_block(
    registry: MetricsRegistry, pool_mode: str, queue_depth: int
) -> None:
    """Count one block emitted by a pipelined engine, labeled by its shape."""
    registry.counter(
        PIPELINE_BLOCKS_TOTAL, help="blocks emitted by pipelined block engines"
    ).inc(pool_mode=pool_mode, queue_depth=str(queue_depth))


def record_execution(
    registry: MetricsRegistry,
    channel: str,
    method: str,
    requested_method: str,
    original_size: int,
    compressed_size: int,
    compression_seconds: float,
    decompression_seconds: float = 0.0,
    fell_back: bool = False,
) -> None:
    """Fold one block execution into ``registry`` under channel/method labels."""
    labels = {"channel": channel, "method": method}
    registry.counter(BLOCKS_TOTAL, help="blocks executed").inc(**labels)
    registry.counter(BYTES_IN_TOTAL, help="uncompressed bytes in").inc(
        original_size, **labels
    )
    registry.counter(BYTES_OUT_TOTAL, help="wire bytes out").inc(
        compressed_size, **labels
    )
    if fell_back:
        registry.counter(
            FALLBACKS_TOTAL, help="expansion-guard fallbacks to method=none"
        ).inc(channel=channel, method=requested_method)
    registry.histogram(
        COMPRESSION_SECONDS,
        boundaries=DEFAULT_SECONDS_BUCKETS,
        help="per-block compression seconds (engine-accounted)",
    ).observe(compression_seconds, **labels)
    if decompression_seconds:
        registry.histogram(
            DECOMPRESSION_SECONDS,
            boundaries=DEFAULT_SECONDS_BUCKETS,
            help="per-block decompression seconds (engine-accounted)",
        ).observe(decompression_seconds, **labels)
    if original_size:
        registry.histogram(
            BLOCK_RATIO,
            boundaries=DEFAULT_RATIO_BUCKETS,
            help="per-block compressed/original ratio",
        ).observe(compressed_size / original_size, **labels)


class BlockTelemetry:
    """BlockEngine observer recording per-block method/size/time telemetry.

    Attach with ``engine.add_observer(telemetry)`` or pass in an
    ``observers=[telemetry]`` list to :class:`~repro.core.pipeline.AdaptivePipeline`
    / :func:`~repro.experiments.replay.run_replay`.  Keeps an in-order
    ``(method, original_size, compressed_size)`` series (``keep_series``)
    so replay telemetry can be compared against golden fixtures exactly.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        trace: Optional[TraceWriter] = None,
        channel: str = "pipeline",
        keep_series: bool = True,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace
        self.channel = channel
        self.keep_series = keep_series
        self.blocks_seen = 0
        self._series: List[Tuple[str, int, int]] = []

    def __call__(self, stats: "BlockStats") -> None:
        self.blocks_seen += 1
        record_execution(
            self.registry,
            channel=self.channel,
            method=stats.method,
            requested_method=stats.requested_method,
            original_size=stats.original_size,
            compressed_size=stats.compressed_size,
            compression_seconds=stats.compression_seconds,
            decompression_seconds=stats.decompression_seconds,
            fell_back=stats.fell_back,
        )
        if self.keep_series:
            self._series.append(
                (stats.method, stats.original_size, stats.compressed_size)
            )
        if self.trace is not None:
            self.trace.event(
                "block",
                channel=self.channel,
                index=stats.index,
                method=stats.method,
                requested_method=stats.requested_method,
                original_size=stats.original_size,
                compressed_size=stats.compressed_size,
                compression_seconds=stats.compression_seconds,
                decompression_seconds=stats.decompression_seconds,
                fell_back=stats.fell_back,
            )

    # -- series views (golden-fixture comparisons) -------------------------------

    def method_series(self) -> List[str]:
        return [method for method, _, _ in self._series]

    def original_size_series(self) -> List[int]:
        return [original for _, original, _ in self._series]

    def compressed_size_series(self) -> List[int]:
        return [compressed for _, _, compressed in self._series]
