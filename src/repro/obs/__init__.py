"""repro.obs — the unified observability subsystem.

One home for everything the system knows about itself:

* :mod:`repro.obs.metrics` — process-local counters, gauges, and
  fixed-bucket histograms in a :class:`MetricsRegistry`;
* :mod:`repro.obs.trace` — JSON-lines span/event traces
  (:class:`TraceWriter` / :func:`read_trace`);
* :mod:`repro.obs.block` — :class:`BlockTelemetry`, the
  :class:`~repro.core.engine.BlockEngine` observer recording per-block
  method choice, sizes, engine-accounted times, and expansion-guard
  fallbacks;
* :mod:`repro.obs.benchfmt` — the machine-readable benchmark-result
  schema and the tolerance-band regression comparator behind the CI
  bench-smoke gate;
* :mod:`repro.obs.fabric` — the ``repro_fabric_*`` metric vocabulary for
  the sharded event fabric (cache hits/misses/evictions, shard queue
  depth, fan-out ratio), labels bounded by method + canonical params.

Nothing here reads wall-clock time: values arrive from the sanctioned
timing sites (:mod:`repro.core.engine`, ``netsim``) or from virtual
clocks, so attaching telemetry cannot perturb the deterministic replays.
"""

from .bicriteria import (
    BUDGET_VIOLATIONS_TOTAL,
    CHOICES_TOTAL,
    CHOSEN_SECONDS_GAUGE,
    FRONTIER_SIZE_GAUGE,
    record_choice,
)
from .benchfmt import (
    SCHEMA as BENCH_SCHEMA,
    BenchMetric,
    BenchReport,
    Comparison,
    Regression,
    compare_reports,
    load_report,
)
from .block import BlockTelemetry, record_execution
from .fabric import (
    BATCH_FILL_RATIO,
    BATCH_FRAMES_TOTAL,
    record_batch_flush,
    record_cache_eviction,
    record_cache_hit,
    record_cache_miss,
    record_cache_size,
    record_fabric_delivery,
    record_shard_queue_depth,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .placement import (
    PLACEMENT_CHOICES_TOTAL,
    PLACEMENT_DEGRADED_TOTAL,
    PLACEMENT_PRODUCER_SECONDS_GAUGE,
    PLACEMENT_SECONDS_GAUGE,
    RELAY_BYTES_SAVED_TOTAL,
    RELAY_EVENTS_TOTAL,
    record_placement,
    record_placement_degraded,
    record_relay_event,
)
from .structured import (
    STRUCTURED_BLOCKS_TOTAL,
    STRUCTURED_CHANNEL_BYTES_TOTAL,
    STRUCTURED_FALLBACK_TOTAL,
    STRUCTURED_TEMPLATES_MINED_TOTAL,
    record_structured_block,
)
from .trace import TraceWriter, read_trace

__all__ = [
    "BATCH_FILL_RATIO",
    "BATCH_FRAMES_TOTAL",
    "BENCH_SCHEMA",
    "BUDGET_VIOLATIONS_TOTAL",
    "BenchMetric",
    "BenchReport",
    "BlockTelemetry",
    "CHOICES_TOTAL",
    "CHOSEN_SECONDS_GAUGE",
    "Comparison",
    "Counter",
    "FRONTIER_SIZE_GAUGE",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PLACEMENT_CHOICES_TOTAL",
    "PLACEMENT_DEGRADED_TOTAL",
    "PLACEMENT_PRODUCER_SECONDS_GAUGE",
    "PLACEMENT_SECONDS_GAUGE",
    "RELAY_BYTES_SAVED_TOTAL",
    "RELAY_EVENTS_TOTAL",
    "Regression",
    "STRUCTURED_BLOCKS_TOTAL",
    "STRUCTURED_CHANNEL_BYTES_TOTAL",
    "STRUCTURED_FALLBACK_TOTAL",
    "STRUCTURED_TEMPLATES_MINED_TOTAL",
    "TraceWriter",
    "compare_reports",
    "get_registry",
    "load_report",
    "read_trace",
    "record_batch_flush",
    "record_cache_eviction",
    "record_cache_hit",
    "record_cache_miss",
    "record_cache_size",
    "record_choice",
    "record_execution",
    "record_fabric_delivery",
    "record_placement",
    "record_placement_degraded",
    "record_relay_event",
    "record_shard_queue_depth",
    "record_structured_block",
    "set_registry",
]
