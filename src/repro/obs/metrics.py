"""Process-local metrics: counters, gauges, histograms (the obs core).

The paper's selector only works because the middleware continuously
measures itself — reducing speed, sending time, per-block method choice
(§2.5, §3 "IQ" quality attributes).  This module gives those
measurements one home: a :class:`MetricsRegistry` holding named metric
families, each fanned out over label sets (``channel=...``,
``method=...``).  Views such as
:class:`~repro.core.monitor.ReducingSpeedMonitor` and
:class:`~repro.middleware.monitoring.ChannelMonitor` store their state
here, so ``repro stats`` and the bench gate read everything from one
place.

Design constraints:

* **No clocks.**  Nothing in this module reads wall-clock time; values
  arrive from the sanctioned timing sites (:mod:`repro.core.engine`,
  ``netsim``) or from virtual clocks.  That keeps telemetry free of
  behavioral drift — the golden replays are bit-identical with or
  without observers attached.
* **Fixed histogram buckets.**  Bucket boundaries are declared at
  registration, so two runs (or two machines) aggregate into comparable
  shapes — the property Matt et al.'s comparative benchmark schema
  relies on.
* **Bounded cardinality.**  A metric family refuses to grow past
  ``max_series`` label combinations; a typo'd unbounded label (event id,
  timestamp) fails loudly instead of eating memory.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

#: Labels are stored as a canonical sorted tuple of (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]

#: Default per-family series bound; generous for channel×method fan-out,
#: far below anything an unbounded label would produce.
DEFAULT_MAX_SERIES = 1024

#: Default histogram boundaries: sub-millisecond to tens of seconds,
#: roughly log-spaced — covers codec times from 4 KB samples to 128 KB
#: Burrows-Wheeler blocks on slow hosts.
DEFAULT_SECONDS_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0
)

#: Default boundaries for compression ratios (compressed / original).
DEFAULT_RATIO_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _MetricFamily:
    """Shared label bookkeeping for the three metric kinds."""

    kind = "metric"

    def __init__(self, name: str, help: str = "", max_series: int = DEFAULT_MAX_SERIES) -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        if max_series < 1:
            raise ValueError("max_series must be positive")
        self.name = name
        self.help = help
        self.max_series = max_series
        self._series: Dict[LabelKey, object] = {}

    def _slot(self, labels: Mapping[str, str]) -> object:
        key = _label_key(labels)
        slot = self._series.get(key)
        if slot is None:
            if len(self._series) >= self.max_series:
                raise ValueError(
                    f"metric {self.name!r} exceeded max_series={self.max_series}; "
                    "an unbounded label is probably leaking"
                )
            slot = self._new_slot()
            self._series[key] = slot
        return slot

    def _new_slot(self) -> object:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def series_count(self) -> int:
        return len(self._series)

    def labelsets(self) -> List[Dict[str, str]]:
        """Every label combination observed so far."""
        return [dict(key) for key in self._series]

    def clear(self) -> None:
        """Drop every series (used by view resets)."""
        self._series.clear()


class Counter(_MetricFamily):
    """A monotonically increasing total, per label set."""

    kind = "counter"

    def _new_slot(self) -> List[float]:
        return [0.0]

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self._slot(labels)[0] += amount  # type: ignore[index]

    def value(self, **labels: str) -> float:
        slot = self._series.get(_label_key(labels))
        return slot[0] if slot is not None else 0.0  # type: ignore[index]

    def total(self) -> float:
        """Sum across all label sets."""
        return sum(slot[0] for slot in self._series.values())  # type: ignore[index]

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": slot[0]}  # type: ignore[index]
                for key, slot in sorted(self._series.items())
            ],
        }


class Gauge(_MetricFamily):
    """A settable point-in-time value, per label set."""

    kind = "gauge"

    def _new_slot(self) -> List[float]:
        return [0.0]

    def set(self, value: float, **labels: str) -> None:
        self._slot(labels)[0] = float(value)  # type: ignore[index]

    def add(self, amount: float, **labels: str) -> None:
        self._slot(labels)[0] += amount  # type: ignore[index]

    def value(self, default: Optional[float] = None, **labels: str) -> Optional[float]:
        slot = self._series.get(_label_key(labels))
        return slot[0] if slot is not None else default  # type: ignore[index]

    def has(self, **labels: str) -> bool:
        return _label_key(labels) in self._series

    def remove(self, **labels: str) -> None:
        self._series.pop(_label_key(labels), None)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": slot[0]}  # type: ignore[index]
                for key, slot in sorted(self._series.items())
            ],
        }


class _HistogramSlot:
    __slots__ = ("counts", "sum", "count", "min", "max")

    def __init__(self, bucket_count: int) -> None:
        self.counts = [0] * bucket_count
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")


class Histogram(_MetricFamily):
    """Fixed-boundary histogram, per label set.

    ``boundaries`` are the upper-inclusive bucket edges; one implicit
    overflow bucket catches everything above the last edge.  Boundaries
    are fixed at registration so aggregates from different runs are
    directly comparable.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        boundaries: Iterable[float],
        help: str = "",
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        super().__init__(name, help=help, max_series=max_series)
        edges = [float(b) for b in boundaries]
        if not edges:
            raise ValueError("histogram needs at least one bucket boundary")
        if edges != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("bucket boundaries must be strictly increasing")
        self.boundaries: Tuple[float, ...] = tuple(edges)

    def _new_slot(self) -> _HistogramSlot:
        return _HistogramSlot(len(self.boundaries) + 1)

    def observe(self, value: float, **labels: str) -> None:
        slot: _HistogramSlot = self._slot(labels)  # type: ignore[assignment]
        # Edges are upper-inclusive: a value exactly on boundary i lands
        # in bucket i; anything above the last edge is overflow.
        index = bisect_left(self.boundaries, value)
        slot.counts[index] += 1
        slot.sum += value
        slot.count += 1
        slot.min = min(slot.min, value)
        slot.max = max(slot.max, value)

    def snapshot(self, **labels: str) -> Optional[dict]:
        slot = self._series.get(_label_key(labels))
        if slot is None:
            return None
        assert isinstance(slot, _HistogramSlot)
        return {
            "boundaries": list(self.boundaries),
            "counts": list(slot.counts),
            "sum": slot.sum,
            "count": slot.count,
            "min": slot.min if slot.count else None,
            "max": slot.max if slot.count else None,
            "mean": slot.sum / slot.count if slot.count else None,
        }

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "boundaries": list(self.boundaries),
            "series": [
                {"labels": dict(key), **(self.snapshot(**dict(key)) or {})}
                for key, _ in sorted(self._series.items())
            ],
        }


class MetricsRegistry:
    """A process-local namespace of metric families.

    Registration is idempotent: asking for an existing name returns the
    existing family (histogram boundaries must match).  Asking for an
    existing name as a *different kind* is an error — one name, one
    meaning.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _MetricFamily] = {}

    # -- registration ------------------------------------------------------------

    def _register(self, family: _MetricFamily) -> _MetricFamily:
        existing = self._metrics.get(family.name)
        if existing is None:
            self._metrics[family.name] = family
            return family
        if existing.kind != family.kind:
            raise ValueError(
                f"metric {family.name!r} already registered as {existing.kind}"
            )
        if isinstance(family, Histogram):
            assert isinstance(existing, Histogram)
            if existing.boundaries != family.boundaries:
                raise ValueError(
                    f"histogram {family.name!r} re-registered with different boundaries"
                )
        return existing

    def counter(self, name: str, help: str = "", max_series: int = DEFAULT_MAX_SERIES) -> Counter:
        family = self._register(Counter(name, help=help, max_series=max_series))
        assert isinstance(family, Counter)
        return family

    def gauge(self, name: str, help: str = "", max_series: int = DEFAULT_MAX_SERIES) -> Gauge:
        family = self._register(Gauge(name, help=help, max_series=max_series))
        assert isinstance(family, Gauge)
        return family

    def histogram(
        self,
        name: str,
        boundaries: Iterable[float] = DEFAULT_SECONDS_BUCKETS,
        help: str = "",
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> Histogram:
        family = self._register(Histogram(name, boundaries, help=help, max_series=max_series))
        assert isinstance(family, Histogram)
        return family

    # -- access ------------------------------------------------------------------

    def get(self, name: str) -> Optional[_MetricFamily]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def clear(self) -> None:
        self._metrics.clear()

    # -- export ------------------------------------------------------------------

    def as_dict(self) -> dict:
        return {name: family.as_dict() for name, family in sorted(self._metrics.items())}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


#: The process-local default registry `repro stats` and library consumers
#: share when none is passed explicitly.
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-local default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests, CLI runs); returns the old one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
