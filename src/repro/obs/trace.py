"""JSON-lines span/event traces (the obs wire record).

A :class:`TraceWriter` turns observations into one JSON object per line
— the same shape whether the sink is a file, an in-memory buffer, or a
socket wrapper.  Records carry no wall-clock reads of their own: the
writer is either given an explicit ``ts`` per record (virtual replay
time, engine-accounted seconds) or constructed with an injected clock
callable (e.g. a :class:`~repro.netsim.clock.VirtualClock`'s ``now``).
With neither, records carry only a monotonically increasing ``seq`` —
deterministic by construction, which is what lets ``--trace`` runs diff
cleanly in CI.

Record shapes::

    {"seq": 0, "type": "event", "name": "block", ...fields}
    {"seq": 1, "type": "span",  "name": "replay", "duration": 1.25, ...fields}

:func:`read_trace` parses the format back into dicts (the round-trip the
tests and the bench gate rely on).
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

__all__ = ["TraceWriter", "read_trace"]


class TraceWriter:
    """Append span/event records to a text sink as JSON lines."""

    def __init__(
        self,
        sink: Union[io.TextIOBase, "io.TextIO", None] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._sink = sink if sink is not None else io.StringIO()
        self._owns_sink = sink is None
        self._clock = clock
        self._seq = 0
        self.records_written = 0

    # -- emission ----------------------------------------------------------------

    def _emit(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        self._sink.write(line + "\n")
        self.records_written += 1

    def _stamp(self, record: Dict[str, object], ts: Optional[float]) -> Dict[str, object]:
        record["seq"] = self._seq
        self._seq += 1
        if ts is not None:
            record["ts"] = ts
        elif self._clock is not None:
            record["ts"] = self._clock()
        return record

    def event(self, name: str, ts: Optional[float] = None, **fields: object) -> None:
        """Record a point event."""
        record: Dict[str, object] = {"type": "event", "name": name}
        record.update(fields)
        self._emit(self._stamp(record, ts))

    def span(
        self,
        name: str,
        duration: float,
        ts: Optional[float] = None,
        **fields: object,
    ) -> None:
        """Record a completed span of ``duration`` seconds.

        The duration is supplied by the caller (engine-accounted or
        virtual-clock time) — the writer never times anything itself.
        """
        record: Dict[str, object] = {"type": "span", "name": name, "duration": duration}
        record.update(fields)
        self._emit(self._stamp(record, ts))

    # -- sink access -------------------------------------------------------------

    def getvalue(self) -> str:
        """The buffered text (only for writer-owned in-memory sinks)."""
        if not isinstance(self._sink, io.StringIO):
            raise TypeError("getvalue() requires the writer-owned StringIO sink")
        return self._sink.getvalue()

    def flush(self) -> None:
        self._sink.flush()

    def close(self) -> None:
        if not self._owns_sink:
            self._sink.flush()
        self._sink.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_trace(source: Union[str, Path, io.TextIOBase]) -> Iterator[Dict[str, object]]:
    """Parse a JSON-lines trace back into record dicts."""
    if isinstance(source, (str, Path)):
        with open(source, encoding="utf-8") as handle:
            yield from _parse_lines(handle.read().splitlines())
        return
    yield from _parse_lines(source.read().splitlines())


def _parse_lines(lines: List[str]) -> Iterator[Dict[str, object]]:
    for line in lines:
        line = line.strip()
        if line:
            yield json.loads(line)
