"""Command-line interface: compress, analyze, and replay from the shell.

Usage (also available as ``python -m repro``)::

    repro compress  INPUT [-o OUT] [--method M]   # file -> envelope
    repro decompress INPUT [-o OUT]               # envelope -> file
    repro analyze   INPUT                         # entropy/repetition report
    repro methods                                 # list registered codecs
    repro replay    [--dataset D] [--link L] ...  # run a simulated stream
    repro figure    N                             # print a paper figure
    repro fuzz      [--seed S] [--budget 30s] ... # fuzz the decode surfaces

``compress --method adaptive`` profiles a sample of the input (entropy +
repetition, §4.1) and picks the recommended method.  Compressed output is
wrapped in a tiny self-describing envelope so ``decompress`` knows which
codec to apply — the CLI equivalent of the middleware's method attribute.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .compression.base import CorruptStreamError
from .compression.registry import available_codecs, get_codec
from .compression.varint import read_canonical_varint, write_varint
from .data.analysis import profile, recommended_methods

_ENVELOPE_MAGIC = b"RPRZ"


def _wrap(method: str, payload: bytes) -> bytes:
    name = method.encode()
    out = bytearray(_ENVELOPE_MAGIC)
    write_varint(out, len(name))
    out += name
    out += payload
    return bytes(out)


def _unwrap(data: bytes) -> tuple:
    if data[: len(_ENVELOPE_MAGIC)] != _ENVELOPE_MAGIC:
        raise SystemExit("error: input is not a repro envelope")
    try:
        length, offset = read_canonical_varint(data, len(_ENVELOPE_MAGIC))
    except CorruptStreamError as exc:
        raise SystemExit(f"error: corrupt envelope ({exc})") from exc
    method = bytes(data[offset : offset + length]).decode()
    return method, data[offset + length :]


def _pick_method(data: bytes) -> str:
    sample = data[: 64 * 1024]
    recommendations = recommended_methods(profile(sample))
    return recommendations[0]


def cmd_compress(args: argparse.Namespace) -> int:
    data = Path(args.input).read_bytes()
    method = args.method
    if method == "adaptive":
        method = _pick_method(data)
    codec = get_codec(method)
    payload = codec.compress(data)
    out_path = Path(args.output or args.input + ".rprz")
    out_path.write_bytes(_wrap(method, payload))
    ratio = len(payload) / len(data) if data else 1.0
    print(
        f"{args.input}: {len(data)} -> {len(payload)} bytes "
        f"({100 * ratio:.1f}%) via {method} -> {out_path}"
    )
    return 0


def cmd_decompress(args: argparse.Namespace) -> int:
    method, payload = _unwrap(Path(args.input).read_bytes())
    codec = get_codec(method)
    data = codec.decompress(payload)
    default = args.input[:-5] if args.input.endswith(".rprz") else args.input + ".out"
    out_path = Path(args.output or default)
    out_path.write_bytes(data)
    print(f"{args.input}: {len(payload)} -> {len(data)} bytes via {method} -> {out_path}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    data = Path(args.input).read_bytes()
    sample = data[: 256 * 1024]
    report = profile(sample)
    print(f"file           : {args.input} ({len(data)} bytes)")
    print(f"entropy        : {report.entropy_bits_per_byte:.2f} bits/byte")
    print(f"repetition     : {report.repetition:.2f} (repeated 4-gram fraction)")
    print(f"characteristic : {report.characteristic}")
    print(f"recommended    : {', '.join(recommended_methods(report))}")
    if args.ratios:
        print("measured ratios (on the sample):")
        for method in ("huffman", "lempel-ziv", "lzw", "burrows-wheeler"):
            codec = get_codec(method)
            print(f"  {method:16s} {100 * codec.ratio(sample):5.1f}%")
    return 0


def cmd_methods(_args: argparse.Namespace) -> int:
    for name in available_codecs():
        codec = get_codec(name)
        print(f"{name:26s} family={codec.family}")
    return 0


def _replay_result(args: argparse.Namespace, observers=None, registry=None):
    from .experiments.config import ReplayConfig
    from .experiments.replay import dataset_blocks, run_replay

    plan = None
    if getattr(args, "faults", None):
        from .netsim.faults import FaultPlan

        plan = FaultPlan.load(args.faults)
    config = ReplayConfig(
        link=args.link,
        block_count=args.blocks,
        production_interval=args.interval,
        trace_offset=args.trace_offset,
        pipelined=args.pipelined,
        workers=args.workers,
        pool_mode=args.pool_mode,
        fault_plan=plan,
        policy=args.policy,
        space_budget=args.space_budget,
        placement=args.placement,
        interference=args.interference,
        downstream_factor=args.downstream_factor,
    )
    blocks = dataset_blocks(args.dataset, config)
    return run_replay(blocks, config, observers=observers, registry=registry), plan


def _write_replay_trace(path: str, args: argparse.Namespace, result) -> None:
    """Dump one JSON-lines trace record per block (virtual timestamps)."""
    from .obs.trace import TraceWriter

    with open(path, "w", encoding="utf-8") as sink, TraceWriter(sink) as writer:
        for r in result.records:
            writer.event(
                "block",
                ts=r.start_time,
                index=r.index,
                method=r.method,
                original_size=r.original_size,
                compressed_size=r.compressed_size,
                compression_seconds=r.compression_time,
                send_seconds=r.send_time,
                decompression_seconds=r.decompression_time,
                connections=r.connections,
            )
        writer.span(
            "replay",
            duration=result.total_time,
            ts=0.0,
            dataset=args.dataset,
            link=args.link,
            blocks=len(result.records),
        )


def cmd_replay(args: argparse.Namespace) -> int:
    result, plan = _replay_result(args)
    if args.trace:
        _write_replay_trace(args.trace, args, result)
        print(f"trace -> {args.trace}")
    print(
        f"dataset={args.dataset} link={args.link} blocks={args.blocks} "
        f"policy={args.policy}"
    )
    for key, value in result.summary().items():
        print(f"  {key:26s} {value:12.3f}")
    print(f"  methods: {result.method_counts()}")
    if plan is not None:
        injected = {k: v for k, v in plan.counts.items() if v}
        print(
            f"  faults: plan={plan.name or args.faults} seed={plan.seed} "
            f"injected={injected or 'none'} (recovery charged to virtual time)"
        )
    if args.series:
        previous = None
        for t, code in result.method_series():
            if code != previous:
                print(f"  t={t:7.1f}s method -> {code}")
                previous = code
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    from .experiments import micro

    number = args.number
    if number == 1:
        methods = ["burrows-wheeler", "lempel-ziv", "arithmetic", "huffman"]
        rows = [(label, [cells[m] for m in methods]) for label, cells in micro.figure1_rows()]
        print(micro.format_table(rows, ["characteristic"] + methods))
    elif number in (2, 3):
        results = micro.figure2_ratios()
        for method, r in results.items():
            print(
                f"{method:18s} ratio={r.percent:5.1f}%  "
                f"comp={r.compress_seconds * 1e3:8.1f}ms  "
                f"decomp={r.decompress_seconds * 1e3:8.1f}ms"
            )
    elif number == 4:
        speeds = micro.figure4_reducing_speeds()
        for machine, by_method in speeds.items():
            print(machine)
            for method, speed in by_method.items():
                print(f"  {method:18s} {speed / (1 << 20):6.3f} MB/s removed")
    elif number == 5:
        from .experiments.links import figure5_link_speeds

        for name, m in figure5_link_speeds().items():
            print(f"{name:15s} {m.mean_mb_per_s:9.4f} MB/s  sigma={m.stddev_percent:6.2f}%")
    elif number == 6:
        results = micro.figure6_molecular_ratios()
        for field, by_method in results.items():
            row = "  ".join(f"{m}={r.percent:5.1f}%" for m, r in by_method.items())
            print(f"{field:12s} {row}")
    elif number == 7:
        from .experiments.replay import figure7_trace_series

        for t, connections in figure7_trace_series(step=5.0):
            print(f"{t:6.0f}s {connections:5.0f} {'#' * int(connections)}")
    else:
        raise SystemExit(
            "error: figures 1-7 print directly; use `repro replay` for "
            "figures 8-12 (add --series)"
        )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Run a replay with telemetry attached and dump the registry as JSON."""
    from .obs.block import BlockTelemetry
    from .obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    telemetry = BlockTelemetry(registry=registry, channel=args.dataset)
    result, _ = _replay_result(args, observers=[telemetry], registry=registry)
    if args.trace:
        _write_replay_trace(args.trace, args, result)
    print(registry.to_json(indent=2))
    return 0


def cmd_fanout(args: argparse.Namespace) -> int:
    """Run the fan-out load scenario through the event fabric."""
    import json

    from .fabric.loadgen import FanoutConfig, run_fanout

    config = FanoutConfig(
        subscribers=args.subscribers,
        channels=args.channels,
        events=args.events,
        event_size=args.event_size,
        shards=args.shards,
        zipf_exponent=args.zipf,
        seed=args.seed,
        link=args.link,
        batch=args.batch,
        batch_frames=args.batch_frames,
    )
    result = run_fanout(config)
    if args.json:
        payload = dict(result.summary())
        payload.update(
            crc_ok=result.crc_ok,
            wire_crc32=result.wire_crc32,
            fabric_compressions=result.fabric_compressions,
            baseline_compressions=result.baseline_compressions,
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            shard_events=result.shard_events,
            batches_emitted=result.batches_emitted,
            batched_frames=result.batched_frames,
        )
        print(json.dumps(payload, indent=2))
        return 0 if result.crc_ok else 1
    print(
        f"fan-out: {result.subscribers} subscribers, {result.channels_used} channels, "
        f"{result.events_published} events published, {result.deliveries} deliveries "
        f"(ratio {result.fanout_ratio:.1f})"
    )
    print(
        f"fabric:   {result.fabric_seconds:.3f}s virtual "
        f"({result.fabric_compressions} codec runs, "
        f"{result.fabric_events_per_second:,.0f} deliveries/s)"
    )
    print(
        f"baseline: {result.baseline_seconds:.3f}s virtual "
        f"({result.baseline_compressions} codec runs, "
        f"{result.baseline_events_per_second:,.0f} deliveries/s)"
    )
    print(
        f"speedup {result.speedup:.1f}x   cache hit rate {result.cache_hit_rate:.1%} "
        f"({result.cache_hits} hits / {result.cache_misses} misses, "
        f"{result.cache_evictions} evictions)"
    )
    print(f"shard events: {result.shard_events}")
    if result.batches_emitted:
        print(
            f"batching: {result.batched_frames} frames in {result.batches_emitted} "
            f"jumbo flushes ({result.batched_frames / result.batches_emitted:.1f} frames/batch)"
        )
    print(f"wire CRC32 {result.wire_crc32:#010x}  byte-identical to serial path: {result.crc_ok}")
    return 0 if result.crc_ok else 1


#: Relative slack for placement makespan comparisons: on slow links the
#: auto and producer arrangements tie to the last ulp, so the gate only
#: tolerates float-summation noise, never a real regression.
_PLACEMENT_RTOL = 1e-9


def cmd_placement(args: argparse.Namespace) -> int:
    """Run the DTSchedule-style placement time-breakdown matrix."""
    import json

    from .experiments.placement import (
        LINK_CLASSES,
        PLACEMENT_MODES_ORDER,
        placement_breakdown,
    )

    links = tuple(args.links) if args.links else LINK_CLASSES
    cells = placement_breakdown(
        total_blocks=args.blocks,
        block_size=args.block_size,
        links=links,
        interference=args.interference,
        workers=args.workers,
        queue_depth=args.queue_depth,
        seed=args.seed,
    )
    by_key = {(c.link, c.mode): c for c in cells}
    failures: List[str] = []
    for link in links:
        producer, auto = by_key[(link, "producer")], by_key[(link, "auto")]
        consumer = by_key[(link, "consumer")]
        if auto.makespan > producer.makespan * (1.0 + _PLACEMENT_RTOL):
            failures.append(
                f"{link}: auto makespan {auto.makespan:.6f}s exceeds "
                f"always-producer {producer.makespan:.6f}s"
            )
        if auto.serial_seconds > producer.serial_seconds * (1.0 + _PLACEMENT_RTOL):
            failures.append(
                f"{link}: auto serial {auto.serial_seconds:.6f}s exceeds "
                f"always-producer {producer.serial_seconds:.6f}s"
            )
        if consumer.downstream_crc32 != producer.downstream_crc32:
            failures.append(
                f"{link}: consumer downstream CRC {consumer.downstream_crc32:#010x} "
                f"!= producer {producer.downstream_crc32:#010x}"
            )
    if args.json:
        payload = {
            "blocks": args.blocks,
            "block_size": args.block_size,
            "interference": args.interference,
            "upstream": "1gbit",
            "cells": [
                {
                    "link": c.link,
                    "mode": c.mode,
                    "compress_seconds": c.compress_seconds,
                    "upstream_seconds": c.upstream_seconds,
                    "relay_seconds": c.relay_seconds,
                    "downstream_seconds": c.downstream_seconds,
                    "decompress_seconds": c.decompress_seconds,
                    "makespan": c.makespan,
                    "serial_seconds": c.serial_seconds,
                    "placements": c.placements,
                    "downstream_crc32": c.downstream_crc32,
                }
                for c in cells
            ],
            "failures": failures,
            "ok": not failures,
        }
        print(json.dumps(payload, indent=2))
        return 0 if not failures else 1
    print(
        f"placement breakdown: {args.blocks} blocks x {args.block_size} bytes, "
        f"1gbit upstream, interference {args.interference:.2f}"
    )
    header = (
        f"{'link':14s} {'mode':9s} {'compress':>9s} {'wire':>9s} "
        f"{'relay':>9s} {'decomp':>9s} {'makespan':>9s} placements"
    )
    for link in links:
        print()
        print(header)
        for mode in PLACEMENT_MODES_ORDER:
            c = by_key[(link, mode)]
            chosen = ",".join(f"{k}:{v}" for k, v in sorted(c.placements.items()))
            print(
                f"{c.link:14s} {c.mode:9s} {c.compress_seconds:9.3f} "
                f"{c.wire_seconds:9.3f} {c.relay_seconds:9.3f} "
                f"{c.decompress_seconds:9.3f} {c.makespan:9.3f} {chosen}"
            )
    print()
    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print(
        "ok: auto <= always-producer on every link class; "
        "relay bytes CRC-identical to producer-side compression"
    )
    return 0


def _parse_budget(text: str) -> float:
    """Parse a wall budget like ``30``, ``30s``, or ``2m`` into seconds."""
    text = text.strip().lower()
    scale = 1.0
    if text.endswith("m"):
        scale, text = 60.0, text[:-1]
    elif text.endswith("s"):
        text = text[:-1]
    try:
        seconds = float(text) * scale
    except ValueError:
        raise SystemExit(f"error: bad --budget {text!r} (try 30s or 2m)") from None
    if seconds <= 0:
        raise SystemExit("error: --budget must be positive")
    return seconds


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .verify.fuzz import Fuzzer, load_corpus, replay_corpus, write_corpus

    if args.replay:
        entries = load_corpus(args.replay)
        if not entries:
            print(f"{args.replay}: no crash entries")
            return 0
        still_failing = 0
        for entry, fails, detail in replay_corpus(entries):
            status = "STILL-FAILING" if fails else "ok"
            print(f"{entry.id}  {entry.target:24s} {entry.error_type:22s} {status}  {detail}")
            still_failing += fails
        print(f"{len(entries)} entries, {still_failing} still failing")
        return 1 if still_failing else 0

    budget = _parse_budget(args.budget) if args.budget else None
    report = Fuzzer(seed=args.seed).run(iterations=args.iterations, budget_seconds=budget)
    suffix = " (budget exhausted)" if report.budget_exhausted else ""
    print(
        f"seed={report.seed} iterations={report.iterations_run} "
        f"signatures={report.signatures} crashes={len(report.crashes)}{suffix}"
    )
    for crash in report.crashes:
        print(
            f"CRASH {crash.id} target={crash.target} "
            f"{crash.error_type}: {crash.error_message} ({len(crash.data)} bytes)"
        )
    if args.corpus_out and report.crashes:
        write_corpus(args.corpus_out, report.crashes)
        print(f"crash corpus -> {args.corpus_out}")
    return 1 if report.crashes else 0


def cmd_report(args: argparse.Namespace) -> int:
    from .experiments.config import HEADLINE_CONFIG, ReplayConfig
    from .experiments.report import generate_report
    from dataclasses import replace as dc_replace

    replay = ReplayConfig(
        block_count=args.blocks, workers=args.workers, pool_mode=args.pool_mode
    )
    headline = dc_replace(
        HEADLINE_CONFIG,
        block_count=max(16, args.blocks),
        workers=args.workers,
        pool_mode=args.pool_mode,
    )
    document = generate_report(replay_config=replay, headline_config=headline)
    if args.trace:
        from .experiments.endtoend import headline_comparison
        from .obs.trace import TraceWriter

        with open(args.trace, "w", encoding="utf-8") as sink, TraceWriter(sink) as writer:
            for row in headline_comparison(config=headline):
                writer.span(
                    "headline",
                    duration=row.total_seconds,
                    dataset=row.dataset,
                    policy=row.policy,
                    compression_fraction=row.compression_fraction,
                    overall_ratio=row.overall_ratio,
                )
        print(f"trace -> {args.trace}")
    if args.output:
        Path(args.output).write_text(document)
        print(f"wrote {args.output} ({len(document)} bytes)")
    else:
        print(document)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Configurable compression for end-to-end data exchange (ICDCS 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="compress a file into a self-describing envelope")
    p.add_argument("input")
    p.add_argument("-o", "--output")
    p.add_argument(
        "--method",
        default="adaptive",
        help="codec name, or 'adaptive' to pick from a data profile (default)",
    )
    p.set_defaults(func=cmd_compress)

    p = sub.add_parser("decompress", help="decompress a repro envelope")
    p.add_argument("input")
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_decompress)

    p = sub.add_parser("analyze", help="entropy/repetition profile and method advice")
    p.add_argument("input")
    p.add_argument("--ratios", action="store_true", help="also measure codec ratios")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("methods", help="list registered codecs")
    p.set_defaults(func=cmd_methods)

    def add_replay_options(p: argparse.ArgumentParser) -> None:
        datasets = ["commercial", "molecular", "logs", "timeseries"]
        p.add_argument("--dataset", choices=datasets, default="commercial")
        p.add_argument(
            "--source",
            dest="dataset",
            choices=datasets,
            help="alias for --dataset (structured workloads: logs, timeseries)",
        )
        p.add_argument("--link", choices=["1gbit", "100mbit", "1mbit", "international"], default="100mbit")
        p.add_argument("--blocks", type=int, default=64)
        p.add_argument("--interval", type=float, default=1.25, help="seconds between blocks (0 = bulk)")
        p.add_argument("--trace-offset", type=float, default=0.0)
        p.add_argument("--pipelined", action="store_true")
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            help="codec pool workers (1 = in-process; output is identical at any count)",
        )
        p.add_argument(
            "--pool-mode",
            choices=["processes", "threads", "serial"],
            default="processes",
            help="worker pool strategy when --workers > 1",
        )
        p.add_argument(
            "--policy",
            choices=["table", "bicriteria"],
            default="table",
            help="method selector: the paper's decision table (default) or "
            "the bicriteria Pareto optimizer",
        )
        p.add_argument(
            "--space-budget",
            type=float,
            default=1.0,
            help="bicriteria only: modeled compressed/original ratio cap (default 1.0)",
        )
        p.add_argument(
            "--placement",
            choices=["producer", "raw", "consumer", "auto"],
            default="producer",
            help="where compression runs: the paper's producer side "
            "(default), ship raw, offload to a relay (consumer), or "
            "break-even auto scheduling per block",
        )
        p.add_argument(
            "--interference",
            type=float,
            default=0.0,
            help="producer-side I/O-interference fraction for placement "
            "pricing (DTSchedule measures ~0.15)",
        )
        p.add_argument(
            "--downstream-factor",
            type=float,
            default=None,
            help="relay topology for consumer/auto placement: downstream "
            "hop as a multiple of the link's sending time",
        )
        p.add_argument("--trace", metavar="PATH", help="write a JSON-lines block trace to PATH")
        p.add_argument(
            "--faults",
            metavar="PLAN.json",
            help="inject faults from a seeded FaultPlan JSON file (drop/duplicate/"
            "reorder/delay/corrupt); recovery costs land in the simulated times",
        )

    p = sub.add_parser("replay", help="run a simulated adaptive stream")
    add_replay_options(p)
    p.add_argument("--series", action="store_true", help="print method transitions")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("stats", help="run a replay with telemetry and dump the metrics registry as JSON")
    add_replay_options(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("fuzz", help="fuzz the decode surfaces (deterministic per seed)")
    p.add_argument("--seed", type=int, default=0, help="mutation schedule seed")
    p.add_argument("--iterations", type=int, default=2000, help="schedule length")
    p.add_argument(
        "--budget",
        metavar="30s",
        help="wall-clock cap (e.g. 30s, 2m); only truncates the schedule",
    )
    p.add_argument(
        "--corpus-out",
        metavar="PATH",
        help="write shrunken crash reproducers to a JSONL corpus",
    )
    p.add_argument(
        "--replay",
        metavar="PATH",
        help="replay a JSONL crash corpus instead of fuzzing; exits 1 if any entry still fails",
    )
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "fanout",
        help="run the fan-out load scenario (sharded fabric vs per-subscriber baseline)",
    )
    p.add_argument("--subscribers", type=int, default=1024, help="simulated subscriber count")
    p.add_argument("--channels", type=int, default=64, help="channel population (Zipf-skewed)")
    p.add_argument("--events", type=int, default=32, help="events published per channel")
    p.add_argument("--event-size", type=int, default=8 * 1024, help="payload bytes per event")
    p.add_argument("--shards", type=int, default=4, help="fabric shard count")
    p.add_argument("--zipf", type=float, default=1.1, help="Zipf skew exponent")
    p.add_argument("--seed", type=int, default=2004, help="scenario seed")
    p.add_argument("--link", default="1gbit", help="netsim link profile")
    p.add_argument(
        "--batch",
        action="store_true",
        help="coalesce per-subscriber frames into jumbo super-frames",
    )
    p.add_argument(
        "--batch-frames",
        type=int,
        default=8,
        help="frames per jumbo flush when --batch is on",
    )
    p.add_argument("--json", action="store_true", help="emit the result as JSON")
    p.set_defaults(func=cmd_fanout)

    p = sub.add_parser(
        "placement",
        help="run the placement time-breakdown matrix (compress/wire/relay/"
        "decompress per link class and arrangement)",
    )
    p.add_argument("--blocks", type=int, default=16, help="blocks per cell")
    p.add_argument("--block-size", type=int, default=128 * 1024, help="bytes per block")
    p.add_argument(
        "--interference",
        type=float,
        default=0.15,
        help="producer-side I/O-interference fraction (DTSchedule ~0.15)",
    )
    p.add_argument("--workers", type=int, default=1, help="producer/relay pool width")
    p.add_argument("--queue-depth", type=int, default=8, help="producer send-queue depth")
    p.add_argument("--seed", type=int, default=2004, help="commercial stream seed")
    p.add_argument(
        "--links",
        nargs="*",
        default=None,
        metavar="LINK",
        help="link classes to sweep (default: the paper's four)",
    )
    p.add_argument("--json", action="store_true", help="emit the matrix as JSON")
    p.set_defaults(func=cmd_placement)

    p = sub.add_parser("figure", help="print a paper figure (1-7)")
    p.add_argument("number", type=int)
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser("report", help="regenerate the full reproduction report")
    p.add_argument("-o", "--output", help="write markdown to a file instead of stdout")
    p.add_argument("--blocks", type=int, default=64, help="replay length (blocks)")
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="codec pool workers for the replays (output identical at any count)",
    )
    p.add_argument(
        "--pool-mode",
        choices=["processes", "threads", "serial"],
        default="processes",
        help="worker pool strategy when --workers > 1",
    )
    p.add_argument("--trace", metavar="PATH", help="write a JSON-lines headline trace to PATH")
    p.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; standard CLI etiquette.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
