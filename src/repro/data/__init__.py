"""Dataset substrates: PBIO-like binary interchange, the paper's two
workload generators (commercial OIS transactions and molecular-dynamics
trajectories), the structured-workload generators (templated logs and
multi-channel telemetry), and data-characteristic analysis."""

from .analysis import (
    DataProfile,
    looks_like_log_lines,
    looks_like_records,
    profile,
    recommended_methods,
    repetition_fraction,
    shannon_entropy,
)
from .commercial import AIRPORTS, EQUIPMENT, STATUSES, CommercialDataGenerator
from .logs import LogDataGenerator
from .molecular import FRAME_FORMAT, MolecularDataGenerator
from .timeseries import TimeSeriesGenerator
from .pbio import (
    Field,
    FieldType,
    PbioError,
    RecordFormat,
    decode_records,
    encode_records,
)

__all__ = [
    "AIRPORTS",
    "CommercialDataGenerator",
    "DataProfile",
    "EQUIPMENT",
    "FRAME_FORMAT",
    "Field",
    "FieldType",
    "LogDataGenerator",
    "MolecularDataGenerator",
    "PbioError",
    "RecordFormat",
    "STATUSES",
    "TimeSeriesGenerator",
    "decode_records",
    "encode_records",
    "looks_like_log_lines",
    "looks_like_records",
    "profile",
    "recommended_methods",
    "repetition_fraction",
    "shannon_entropy",
]
