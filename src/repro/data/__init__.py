"""Dataset substrates: PBIO-like binary interchange, the paper's two
workload generators (commercial OIS transactions and molecular-dynamics
trajectories), and data-characteristic analysis."""

from .analysis import (
    DataProfile,
    profile,
    recommended_methods,
    repetition_fraction,
    shannon_entropy,
)
from .commercial import AIRPORTS, EQUIPMENT, STATUSES, CommercialDataGenerator
from .molecular import FRAME_FORMAT, MolecularDataGenerator
from .pbio import (
    Field,
    FieldType,
    PbioError,
    RecordFormat,
    decode_records,
    encode_records,
)

__all__ = [
    "AIRPORTS",
    "CommercialDataGenerator",
    "DataProfile",
    "EQUIPMENT",
    "FRAME_FORMAT",
    "Field",
    "FieldType",
    "MolecularDataGenerator",
    "PbioError",
    "RecordFormat",
    "STATUSES",
    "decode_records",
    "encode_records",
    "profile",
    "recommended_methods",
    "repetition_fraction",
    "shannon_entropy",
]
