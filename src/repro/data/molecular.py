"""Synthetic molecular-dynamics data (paper ref [4]).

The paper's scientific dataset "contains the coordinates of atoms, their
velocities and their types", PBIO-encoded, with very different
compressibility per field (Figure 6):

* **coordinates** — essentially incompressible (high-entropy mantissas),
* **velocities** — intermediate (thermal distribution, quantized output),
* **types** — highly compressible (a handful of species, long runs).

The generator reproduces those signatures from a small Lennard-Jones-style
random walk: positions diffuse inside a box, velocities follow a
Maxwell-Boltzmann distribution quantized to instrument precision, and
types are constant per atom with species sorted in blocks (as MD codes
typically lay them out).
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from .pbio import FieldType, RecordFormat, encode_records

__all__ = ["MolecularDataGenerator", "FRAME_FORMAT"]

FRAME_FORMAT = RecordFormat(
    "md_frame",
    [
        ("step", FieldType.INT64),
        ("coordinates", FieldType.FLOAT64_ARRAY),
        ("velocities", FieldType.FLOAT32_ARRAY),
        ("types", FieldType.INT32_ARRAY),
    ],
)

_SPECIES_COUNT = 5
_VELOCITY_QUANTUM = 1.0 / 512.0


class MolecularDataGenerator:
    """Deterministic MD trajectory generator with per-field extractors."""

    def __init__(self, atom_count: int = 2048, seed: int = 42, box: float = 64.0) -> None:
        if atom_count < 1:
            raise ValueError("atom_count must be positive")
        self.atom_count = atom_count
        self.box = box
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._step = 0
        self._positions = self._rng.uniform(0.0, box, size=(atom_count, 3))
        # Species assigned in contiguous blocks, as MD codes order atoms.
        sizes = self._rng.multinomial(atom_count, [1 / _SPECIES_COUNT] * _SPECIES_COUNT)
        self._types = np.repeat(np.arange(_SPECIES_COUNT, dtype=np.int32), sizes)

    def reset(self) -> None:
        """Rewind to the initial trajectory state."""
        self.__init__(self.atom_count, self._seed, self.box)

    def advance(self) -> None:
        """Integrate one (stochastic) timestep."""
        self._step += 1
        displacement = self._rng.normal(0.0, 0.05, size=self._positions.shape)
        self._positions = (self._positions + displacement) % self.box

    # -- per-field raw blocks (Figure 6 microbenchmark inputs) -----------------

    def coordinates_block(self) -> bytes:
        """Raw float64 coordinates — the near-incompressible field."""
        return self._positions.astype("<f8").tobytes()

    def velocities_block(self) -> bytes:
        """Quantized float32 velocities — intermediate compressibility."""
        velocities = self._rng.normal(0.0, 1.2, size=(self.atom_count, 3))
        quantized = np.round(velocities / _VELOCITY_QUANTUM) * _VELOCITY_QUANTUM
        return quantized.astype("<f4").tobytes()

    def types_block(self) -> bytes:
        """Species ids — long runs over a 5-symbol alphabet, very compressible."""
        return self._types.astype("<i4").tobytes()

    # -- full frames ------------------------------------------------------------

    def frame(self) -> bytes:
        """One PBIO-encoded trajectory frame (all three fields)."""
        velocities = self._rng.normal(0.0, 1.2, size=(self.atom_count, 3))
        quantized = np.round(velocities / _VELOCITY_QUANTUM) * _VELOCITY_QUANTUM
        record = {
            "step": self._step,
            "coordinates": [float(x) for x in self._positions.reshape(-1)],
            "velocities": [float(x) for x in quantized.reshape(-1)],
            "types": [int(t) for t in self._types],
        }
        self.advance()
        return encode_records(FRAME_FORMAT, [record])

    def stream(
        self,
        block_size: int,
        block_count: int,
        metadata_period: int = 12,
    ) -> Iterator[bytes]:
        """Fixed-size blocks cut from the trajectory byte stream.

        Every ``metadata_period``-th contribution is a type/topology refresh
        (pure species tables) — the "small portions of the data that have
        string repetitions" which the paper's selector catches and routes
        to Lempel-Ziv or Burrows-Wheeler (Figure 11); everything else is
        coordinate/velocity payload.
        """
        pending = bytearray()
        emitted = 0
        contribution = 0
        while emitted < block_count:
            while len(pending) < block_size:
                contribution += 1
                if metadata_period and contribution % metadata_period == 0:
                    # Topology refresh: repeat the species table several
                    # times (bond tables, group maps, exclusion lists all
                    # derive from it in real MD codes).
                    pending += self.types_block() * 6
                else:
                    pending += self.coordinates_block()
                    pending += self.velocities_block()
                    self.advance()
            yield bytes(pending[:block_size])
            del pending[:block_size]
            emitted += 1
