"""Synthetic commercial transactional data (paper ref [2]).

The paper's commercial dataset is "a set of transactions captured from the
operational information system of a large company" — the airline OIS of
the WIESS 2000 paper — serialized as XML.  The real trace is proprietary,
so this generator synthesizes transactions with the same *compressibility
signature* the paper reports (Figure 2): a high rate of string repetition
(fixed XML scaffolding, small vocabularies of airports, statuses, and
equipment) around per-transaction entropy (ids, timestamps, seat maps,
fares), so that Burrows-Wheeler compresses best, Lempel-Ziv next, and the
context-free entropy coders (Huffman, arithmetic) trail — while none of
them get anywhere near zero.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List

__all__ = ["CommercialDataGenerator", "AIRPORTS", "STATUSES", "EQUIPMENT"]

AIRPORTS = [
    "ATL", "BOS", "ORD", "DFW", "DEN", "JFK", "LAX", "MIA", "SEA", "SFO",
    "IAH", "MCO", "EWR", "MSP", "DTW", "PHL", "LGA", "BWI", "SLC", "TLV",
]

STATUSES = [
    "SCHEDULED", "BOARDING", "DEPARTED", "ENROUTE", "LANDED",
    "ARRIVED", "DELAYED", "CANCELLED", "DIVERTED",
]

EQUIPMENT = ["B737", "B757", "B767", "B777", "A319", "A320", "A321", "MD88"]

_FIRST_NAMES = [
    "JAMES", "MARY", "JOHN", "PATRICIA", "ROBERT", "JENNIFER", "MICHAEL",
    "LINDA", "WILLIAM", "ELIZABETH", "DAVID", "BARBARA", "RICHARD", "SUSAN",
]

_LAST_NAMES = [
    "SMITH", "JOHNSON", "WILLIAMS", "BROWN", "JONES", "GARCIA", "MILLER",
    "DAVIS", "RODRIGUEZ", "MARTINEZ", "WILSON", "ANDERSON", "TAYLOR",
]


class CommercialDataGenerator:
    """Deterministic generator of airline-OIS-style XML transactions."""

    def __init__(self, seed: int = 2004) -> None:
        self._seed = seed
        self._rng = random.Random(seed)
        self._sequence = 0

    def reset(self) -> None:
        """Rewind the generator to its initial state."""
        self._rng = random.Random(self._seed)
        self._sequence = 0

    def transaction(self) -> Dict[str, object]:
        """One transaction as a plain dict (pre-serialization)."""
        rng = self._rng
        self._sequence += 1
        origin = rng.choice(AIRPORTS)
        destination = rng.choice([a for a in AIRPORTS if a != origin])
        passengers = [
            f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"
            for _ in range(rng.randint(1, 4))
        ]
        return {
            "sequence": self._sequence,
            "flight": f"{rng.choice(['DL', 'AA', 'UA', 'NW'])}{rng.randint(100, 2999)}",
            "origin": origin,
            "destination": destination,
            "equipment": rng.choice(EQUIPMENT),
            "status": rng.choice(STATUSES),
            "gate": f"{rng.choice('ABCDET')}{rng.randint(1, 38)}",
            "departure": self._timestamp(rng),
            "fare": round(rng.uniform(79.0, 1450.0), 2),
            "record_locator": "".join(rng.choices("ABCDEFGHJKLMNPQRSTUVWXYZ23456789", k=6)),
            "passengers": passengers,
            "seats": [
                f"{rng.randint(1, 42)}{rng.choice('ABCDEF')}" for _ in passengers
            ],
        }

    @staticmethod
    def _timestamp(rng: random.Random) -> str:
        return (
            f"2004-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
            f"T{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}:{rng.randint(0, 59):02d}Z"
        )

    def transaction_xml(self) -> str:
        """One transaction rendered as the OIS XML fragment.

        Alongside the repetitive scaffolding, each transaction carries a
        telemetry segment of per-flight measurements (positions, fuel,
        weights — mostly digits).  The real OIS trace has this mix too; it
        is what keeps Lempel-Ziv near the paper's 41 % instead of
        collapsing to single-digit ratios on pure scaffolding.
        """
        rng = self._rng
        txn = self.transaction()
        passengers = "".join(
            f"      <passenger seat=\"{seat}\"><name>{name}</name></passenger>\n"
            for name, seat in zip(txn["passengers"], txn["seats"])
        )
        samples = " ".join(
            f"{rng.uniform(-99.9999, 99.9999):.4f}" for _ in range(96)
        )
        checksum = "".join(rng.choices("0123456789abcdef", k=32))
        telemetry = (
            f"    <telemetry checksum=\"{checksum}\">\n"
            f"      <samples unit=\"raw\">{samples}</samples>\n"
            f"      <fuel lbs=\"{rng.randint(9000, 180000)}\"/>"
            f"<weight lbs=\"{rng.randint(80000, 520000)}\"/>\n"
            f"    </telemetry>\n"
        )
        return (
            f"  <transaction id=\"{txn['sequence']:010d}\" locator=\"{txn['record_locator']}\">\n"
            f"    <flight carrier-equipment=\"{txn['equipment']}\">{txn['flight']}</flight>\n"
            f"    <route origin=\"{txn['origin']}\" destination=\"{txn['destination']}\"/>\n"
            f"    <status gate=\"{txn['gate']}\">{txn['status']}</status>\n"
            f"    <departure>{txn['departure']}</departure>\n"
            f"    <fare currency=\"USD\">{txn['fare']:.2f}</fare>\n"
            f"    <manifest count=\"{len(txn['passengers'])}\">\n"
            f"{passengers}"
            f"    </manifest>\n"
            f"{telemetry}"
            f"  </transaction>\n"
        )

    def xml_block(self, size: int) -> bytes:
        """At least ``size`` bytes of concatenated transactions, with envelope."""
        parts: List[str] = ["<operational-information-system feed=\"airline\">\n"]
        total = len(parts[0])
        while total < size:
            fragment = self.transaction_xml()
            parts.append(fragment)
            total += len(fragment)
        parts.append("</operational-information-system>\n")
        return "".join(parts).encode()

    def stream(self, block_size: int, block_count: int) -> Iterator[bytes]:
        """Yield ``block_count`` blocks of exactly ``block_size`` bytes.

        Blocks are cut from a continuous transaction stream, mirroring how
        the middleware producer pulls fixed 128 KB blocks off the event
        queue (§2.5).
        """
        pending = bytearray()
        for _ in range(block_count):
            while len(pending) < block_size:
                pending += self.transaction_xml().encode()
            yield bytes(pending[:block_size])
            del pending[:block_size]
