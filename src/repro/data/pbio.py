"""PBIO-like self-describing binary record format (paper ref [35]).

The paper's binary datasets are "represented in an efficient format
developed by our group, termed PBIO" — a format in which record layouts
are declared once and records are exchanged as compact packed binary,
letting heterogeneous endpoints interpret each other's data.

This module implements the subset the experiments need:

* :class:`RecordFormat` — a named, ordered list of typed fields,
* :func:`encode_records` / :func:`decode_records` — pack/unpack a list of
  record dicts into a single self-describing buffer (the format metadata
  travels in a header, so a receiver needs no out-of-band schema),
* fixed little-endian scalar layouts plus varint-length-prefixed strings,
  bytes, and numeric arrays.

The molecular-dynamics generator uses it to produce the paper's binary
science data; the middleware uses it as the event payload encoding.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, List, Sequence, Tuple

from ..compression.varint import read_varint, write_varint

__all__ = [
    "FieldType",
    "Field",
    "RecordFormat",
    "PbioError",
    "encode_records",
    "decode_records",
]

_MAGIC = b"PBI1"


class PbioError(Exception):
    """Malformed PBIO buffer or record/schema mismatch."""


class FieldType(Enum):
    """Wire types supported by the format."""

    INT32 = 1
    INT64 = 2
    FLOAT32 = 3
    FLOAT64 = 4
    STRING = 5
    BYTES = 6
    FLOAT32_ARRAY = 7
    FLOAT64_ARRAY = 8
    INT32_ARRAY = 9

    @property
    def is_array(self) -> bool:
        return self in (
            FieldType.FLOAT32_ARRAY,
            FieldType.FLOAT64_ARRAY,
            FieldType.INT32_ARRAY,
        )


_SCALAR_STRUCTS = {
    FieldType.INT32: struct.Struct("<i"),
    FieldType.INT64: struct.Struct("<q"),
    FieldType.FLOAT32: struct.Struct("<f"),
    FieldType.FLOAT64: struct.Struct("<d"),
}

_ARRAY_ITEM_STRUCTS = {
    FieldType.FLOAT32_ARRAY: struct.Struct("<f"),
    FieldType.FLOAT64_ARRAY: struct.Struct("<d"),
    FieldType.INT32_ARRAY: struct.Struct("<i"),
}


@dataclass(frozen=True)
class Field:
    """One typed field of a record format."""

    name: str
    type: FieldType

    def __post_init__(self) -> None:
        if not self.name or len(self.name.encode()) > 255:
            raise PbioError("field names must be 1..255 encoded bytes")


class RecordFormat:
    """An ordered, named collection of fields — the PBIO schema unit."""

    def __init__(self, name: str, fields: Sequence[Tuple[str, FieldType]]) -> None:
        if not name or len(name.encode()) > 255:
            raise PbioError("format names must be 1..255 encoded bytes")
        if not fields:
            raise PbioError("a record format needs at least one field")
        self.name = name
        self.fields = [Field(field_name, field_type) for field_name, field_type in fields]
        seen = set()
        for field in self.fields:
            if field.name in seen:
                raise PbioError(f"duplicate field name {field.name!r}")
            seen.add(field.name)

    def field_names(self) -> List[str]:
        return [field.name for field in self.fields]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecordFormat):
            return NotImplemented
        return self.name == other.name and self.fields == other.fields

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(f"{f.name}:{f.type.name}" for f in self.fields)
        return f"<RecordFormat {self.name} [{names}]>"

    # -- schema (de)serialization ---------------------------------------------

    def to_bytes(self) -> bytes:
        out = bytearray()
        encoded_name = self.name.encode()
        out.append(len(encoded_name))
        out += encoded_name
        write_varint(out, len(self.fields))
        for field in self.fields:
            encoded_field = field.name.encode()
            out.append(len(encoded_field))
            out += encoded_field
            out.append(field.type.value)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes, offset: int) -> Tuple["RecordFormat", int]:
        try:
            name_length = data[offset]
            offset += 1
            name = bytes(data[offset : offset + name_length]).decode()
            offset += name_length
            field_count, offset = read_varint(data, offset)
            fields: List[Tuple[str, FieldType]] = []
            for _ in range(field_count):
                field_name_length = data[offset]
                offset += 1
                field_name = bytes(data[offset : offset + field_name_length]).decode()
                offset += field_name_length
                field_type = FieldType(data[offset])
                offset += 1
                fields.append((field_name, field_type))
        except (IndexError, ValueError, UnicodeDecodeError) as exc:
            raise PbioError(f"malformed format header: {exc}") from exc
        return cls(name, fields), offset


def encode_records(fmt: RecordFormat, records: Sequence[Dict[str, Any]]) -> bytes:
    """Pack ``records`` (dicts keyed by field name) into one buffer."""
    out = bytearray(_MAGIC)
    out += fmt.to_bytes()
    write_varint(out, len(records))
    for record in records:
        for field in fmt.fields:
            try:
                value = record[field.name]
            except KeyError:
                raise PbioError(
                    f"record missing field {field.name!r} of format {fmt.name!r}"
                ) from None
            _encode_value(out, field.type, value)
    return bytes(out)


def decode_records(data: bytes) -> Tuple[RecordFormat, List[Dict[str, Any]]]:
    """Invert :func:`encode_records`."""
    if data[: len(_MAGIC)] != _MAGIC:
        raise PbioError("not a PBIO buffer (bad magic)")
    fmt, offset = RecordFormat.from_bytes(data, len(_MAGIC))
    record_count, offset = read_varint(data, offset)
    records: List[Dict[str, Any]] = []
    for _ in range(record_count):
        record: Dict[str, Any] = {}
        for field in fmt.fields:
            value, offset = _decode_value(data, offset, field.type)
            record[field.name] = value
        records.append(record)
    if offset != len(data):
        raise PbioError("trailing bytes after last record")
    return fmt, records


def _encode_value(out: bytearray, field_type: FieldType, value: Any) -> None:
    if field_type in _SCALAR_STRUCTS:
        try:
            out += _SCALAR_STRUCTS[field_type].pack(value)
        except struct.error as exc:
            raise PbioError(f"cannot pack {value!r} as {field_type.name}: {exc}") from exc
    elif field_type is FieldType.STRING:
        encoded = str(value).encode()
        write_varint(out, len(encoded))
        out += encoded
    elif field_type is FieldType.BYTES:
        payload = bytes(value)
        write_varint(out, len(payload))
        out += payload
    elif field_type.is_array:
        item_struct = _ARRAY_ITEM_STRUCTS[field_type]
        items = list(value)
        write_varint(out, len(items))
        for item in items:
            try:
                out += item_struct.pack(item)
            except struct.error as exc:
                raise PbioError(
                    f"cannot pack array item {item!r} as {field_type.name}: {exc}"
                ) from exc
    else:  # pragma: no cover - exhaustive enum
        raise PbioError(f"unsupported field type {field_type}")


def _decode_value(data: bytes, offset: int, field_type: FieldType) -> Tuple[Any, int]:
    try:
        if field_type in _SCALAR_STRUCTS:
            scalar_struct = _SCALAR_STRUCTS[field_type]
            value = scalar_struct.unpack_from(data, offset)[0]
            return value, offset + scalar_struct.size
        if field_type is FieldType.STRING:
            length, offset = read_varint(data, offset)
            raw = bytes(data[offset : offset + length])
            if len(raw) != length:
                raise PbioError("truncated string")
            return raw.decode(), offset + length
        if field_type is FieldType.BYTES:
            length, offset = read_varint(data, offset)
            raw = bytes(data[offset : offset + length])
            if len(raw) != length:
                raise PbioError("truncated bytes field")
            return raw, offset + length
        if field_type.is_array:
            item_struct = _ARRAY_ITEM_STRUCTS[field_type]
            count, offset = read_varint(data, offset)
            end = offset + count * item_struct.size
            if end > len(data):
                raise PbioError("truncated array field")
            values = [
                item_struct.unpack_from(data, offset + i * item_struct.size)[0]
                for i in range(count)
            ]
            return values, end
    except struct.error as exc:
        raise PbioError(f"truncated value: {exc}") from exc
    raise PbioError(f"unsupported field type {field_type}")  # pragma: no cover
