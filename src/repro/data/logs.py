"""Seeded templated-log generator (LogHub-style datacenter logs).

Emits the workload the ``template`` codec is built for: newline-delimited
lines drawn from a small set of long literal skeletons (java class
paths, fixed phrases — the ~60-70 % boilerplate real HDFS logs carry),
interleaved with typed variable fields chosen so the structured encoding
has room the generic codecs cannot reach:

* monotone counters rendered as wide decimals (epoch-microsecond
  timestamp, a global sequence number) — tiny varint deltas in a slot
  channel, near-random digit runs to a byte-stream codec;
* fully random IPv4 addresses — 4 packed bytes (the information
  floor) versus ~11 digit/dot characters of text;
* random hex ids and traces — nibble-packed at exactly 4 bits/char;
* random decimal ids, sizes, and latencies — zigzag-varint deltas.

The ``structured_ratio`` bench gate pins the resulting >= 1.3x ratio win
over the best generic codec on this exact seeded corpus.

Deterministic: same seed, same bytes, on every platform (pure
``random.Random``), mirroring
:class:`repro.data.commercial.CommercialDataGenerator`.
"""

from __future__ import annotations

import random
from typing import Iterator, List

__all__ = ["LogDataGenerator"]


class LogDataGenerator:
    """Deterministic generator of templated datacenter log lines."""

    def __init__(self, seed: int = 2004) -> None:
        self.seed = seed
        self.reset()

    def reset(self) -> None:
        """Restart the deterministic sequence from the seed."""
        self._rng = random.Random(self.seed)
        # Epoch microseconds and a global event counter; both advance
        # monotonically so their slot channels delta-code tightly.
        self._clock_us = 1_086_600_000_000_000
        self._sequence = 1

    def _ip(self) -> str:
        rng = self._rng
        return "%d.%d.%d.%d" % (
            rng.randrange(256),
            rng.randrange(256),
            rng.randrange(256),
            rng.randrange(1, 255),
        )

    def _line(self) -> str:
        rng = self._rng
        self._clock_us += rng.randrange(200, 250_000)
        self._sequence += rng.randrange(1, 40)
        head = f"ts={self._clock_us} seq={self._sequence}"
        block_id = rng.randrange(10**17, 10**18)
        size = rng.randrange(1, 1 << 27)
        latency = rng.randrange(100, 90_000)
        digest = "%016x" % rng.getrandbits(64)
        trace = "%032x" % rng.getrandbits(128)
        shape = rng.randrange(5)
        if shape == 0:
            return (
                f"{head} INFO org.apache.hadoop.hdfs.server.datanode."
                f"DataNode$DataXceiver: Receiving block blk_{block_id} "
                f"src: /{self._ip()}:54106 dest: /{self._ip()}:50010 trace {trace}"
            )
        if shape == 1:
            return (
                f"{head} INFO org.apache.hadoop.hdfs.server.datanode."
                f"BlockReceiver: Received block blk_{block_id} of size {size} "
                f"from /{self._ip()} latency_us={latency} csum {digest}"
            )
        if shape == 2:
            return (
                f"{head} WARN org.apache.hadoop.hdfs.server.namenode."
                f"FSNamesystem: BLOCK* NameSystem.addStoredBlock: blockMap "
                f"updated: {self._ip()}:50010 is added to blk_{block_id} size {size}"
            )
        if shape == 3:
            return (
                f"{head} DEBUG org.apache.hadoop.ipc.Server$Responder: "
                f"responding to getBlockLocations from {self._ip()}:50010 "
                f"trace {trace} took_us={latency}"
            )
        return (
            f"{head} INFO org.apache.hadoop.hdfs.server.datanode.DataNode: "
            f"Served block blk_{block_id} to /{self._ip()} bytes {size} "
            f"op READ_BLOCK latency_us={latency} csum {digest}"
        )

    def log_block(self, size: int) -> bytes:
        """At least ``size`` bytes of whole newline-terminated log lines."""
        chunks: List[str] = []
        total = 0
        while total < size:
            line = self._line() + "\n"
            chunks.append(line)
            total += len(line)
        return "".join(chunks).encode("ascii")

    def stream(self, block_size: int, block_count: int) -> Iterator[bytes]:
        """Yield ``block_count`` blocks of exactly ``block_size`` bytes."""
        pending = bytearray()
        for _ in range(block_count):
            while len(pending) < block_size:
                pending += self.log_block(block_size - len(pending))
            yield bytes(pending[:block_size])
            del pending[:block_size]
