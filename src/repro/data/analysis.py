"""Data-characteristic analysis for method selection (paper §4.1).

"The consequent approach taken in our work is one that samples data as it
is being produced and transported, to detect whether data has low entropy,
string repetitions, or both."  This module provides exactly those two
detectors plus the qualitative mapping of Figure 1:

* :func:`shannon_entropy` — order-0 entropy in bits/byte (low entropy →
  Huffman/arithmetic do well),
* :func:`repetition_fraction` — fraction of positions covered by repeated
  4-grams (string repetitions → Lempel-Ziv/Burrows-Wheeler do well),
* :func:`profile` / :func:`recommended_methods` — combine both into the
  paper's data-characteristic classes,
* :func:`looks_like_log_lines` / :func:`looks_like_records` — structure
  sniffing for the structure-aware codec family: newline-delimited
  printable text routes to the ``template`` codec, fixed-width numeric
  record arrays to ``columnar`` (both in
  :mod:`repro.compression.structured`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "DataProfile",
    "shannon_entropy",
    "repetition_fraction",
    "looks_like_log_lines",
    "looks_like_records",
    "profile",
    "recommended_methods",
]

#: Below this many bits/byte the data counts as "low entropy".
LOW_ENTROPY_THRESHOLD = 6.0
#: Above this repeated-4-gram fraction the data counts as "repetitive".
REPETITION_THRESHOLD = 0.5

#: A log sample must be at least this many lines to count as templated.
MIN_LOG_LINES = 4
#: Candidate fixed-record widths the record sniffer scores, in the same
#: preference order the columnar codec's own layout detection uses.
RECORD_WIDTH_CANDIDATES = (64, 56, 48, 40, 32, 24, 16, 8)

#: The typed-value alternation the template codec's miner slots out
#: (keep in sync with ``repro.compression.structured._VALUE_RE``): IPv4
#: dotted quads, long lowercase hex runs, decimal runs.
_VALUE_RUN = re.compile(
    rb"(?:\d{1,3}\.){3}\d{1,3}"
    rb"|(?=[0-9a-f]*[a-f])[0-9a-f]{8,}"
    rb"|\d+"
)
#: Lines sampled for the skeleton-repetition test; enough to judge a
#: block, bounded so profiling stays cheap on large samples.
_SKELETON_SAMPLE_LINES = 512


def looks_like_log_lines(data: bytes) -> bool:
    """True when ``data`` reads as *templated* newline-delimited text.

    Three tests, mirroring what the ``template`` codec's miner needs
    satisfied before it can win: no NUL bytes and overwhelmingly
    printable ASCII; at least :data:`MIN_LOG_LINES` lines of plausible
    length (tail piece excluded — a block boundary may split a line);
    and, decisively, *repeating line skeletons* — with typed value runs
    masked out, the distinct residues must cover at most an eighth of
    the sampled lines.  Free-form prose and markup whose line variation
    lives outside the typed values (XML bodies with enumerated
    attributes, say) fail the skeleton test even though they are
    printable line-delimited text.
    """
    if len(data) < 64 or b"\x00" in data:
        return False
    pieces = data.split(b"\n")
    if len(pieces) < MIN_LOG_LINES:
        return False
    body = pieces[:-1]
    if not body or max(len(piece) for piece in body) > 1024:
        return False
    sample = np.frombuffer(data[: 1 << 16], dtype=np.uint8)
    printable = ((sample >= 0x20) & (sample < 0x7F)) | (sample == 0x0A) | (sample == 0x09)
    if float(np.mean(printable)) <= 0.97:
        return False
    sampled = body[:_SKELETON_SAMPLE_LINES]
    skeletons = {_VALUE_RUN.sub(b"\x01", line) for line in sampled}
    return len(skeletons) <= max(2, len(sampled) // 8)


def looks_like_records(data: bytes) -> Optional[int]:
    """Detected fixed-record width of a numeric record array, else None.

    Scores each candidate width by how strongly per-field byte columns
    separate: in little-endian integer telemetry the high-order bytes of
    every field are near-constant while the low-order bytes churn, so a
    correct width shows both frozen and high-variance byte columns.
    Text and i.i.d. noise smear variance evenly and never show that
    split, so they score zero for every width.
    """
    size = len(data)
    if size < 256 or looks_like_log_lines(data):
        return None
    sample = np.frombuffer(data[: 1 << 16], dtype=np.uint8)
    printable = (sample >= 0x20) & (sample < 0x7F)
    if float(np.mean(printable)) > 0.9:
        return None  # record arrays are binary, not text
    best_width: Optional[int] = None
    best_score = 0.0
    for width in RECORD_WIDTH_CANDIDATES:
        if size % width or size // width < 8:
            continue
        table = np.frombuffer(data, dtype=np.uint8).reshape(-1, width)
        variances = table.astype(np.float64).var(axis=0)
        # Frozen columns are the high-order bytes of fixed fields;
        # churning ones are the live low-order bytes.  Both must appear.
        frozen = float(np.mean(variances < 1.0))
        if not np.any(variances > 100.0):
            continue
        if frozen > best_score:
            best_score = frozen
            best_width = width
    if best_score >= 0.25:
        return best_width
    return None


def shannon_entropy(data: bytes) -> float:
    """Order-0 Shannon entropy of ``data`` in bits per byte (0..8)."""
    if not data:
        return 0.0
    counts = np.bincount(np.frombuffer(data, dtype=np.uint8), minlength=256)
    probabilities = counts[counts > 0] / len(data)
    return float(-np.sum(probabilities * np.log2(probabilities)))


def repetition_fraction(data: bytes, gram: int = 4) -> float:
    """Fraction of ``gram``-gram positions whose gram occurred earlier.

    A cheap proxy for Lempel-Ziv compressibility: 1.0 means every window
    has been seen before (pure repetition), 0.0 means no window repeats.
    """
    n = len(data)
    if n < gram + 1:
        return 0.0
    if n > 1 << 20:
        raise ValueError("repetition_fraction is meant for samples, not whole files")
    # Vectorized rolling hash over 4-byte windows.
    array = np.frombuffer(data, dtype=np.uint8).astype(np.uint64)
    window = np.zeros(n - gram + 1, dtype=np.uint64)
    for k in range(gram):
        window = (window << np.uint64(8)) | array[k : k + len(window)]
    _, first_index = np.unique(window, return_index=True)
    repeated = len(window) - len(first_index)
    return repeated / len(window)


@dataclass(frozen=True)
class DataProfile:
    """Summary of a data sample's compressibility characteristics."""

    entropy_bits_per_byte: float
    repetition: float
    #: Structure sniffs (defaults keep historical two-field construction
    #: working): newline-delimited printable text, and the detected
    #: fixed-record width (None when the sample is not record-shaped).
    log_like: bool = False
    record_width: Optional[int] = None

    @property
    def low_entropy(self) -> bool:
        return self.entropy_bits_per_byte < LOW_ENTROPY_THRESHOLD

    @property
    def repetitive(self) -> bool:
        return self.repetition > REPETITION_THRESHOLD

    @property
    def record_like(self) -> bool:
        return self.record_width is not None

    @property
    def structure(self) -> str:
        """One of ``log-lines``, ``records``, ``opaque``."""
        if self.log_like:
            return "log-lines"
        if self.record_like:
            return "records"
        return "opaque"

    @property
    def characteristic(self) -> str:
        """One of ``both``, ``repetitive``, ``low-entropy``, ``incompressible``."""
        if self.low_entropy and self.repetitive:
            return "both"
        if self.repetitive:
            return "repetitive"
        if self.low_entropy:
            return "low-entropy"
        return "incompressible"


def profile(data: bytes) -> DataProfile:
    """Profile a sample (entropy + repetition + structure sniffs)."""
    return DataProfile(
        entropy_bits_per_byte=shannon_entropy(data),
        repetition=repetition_fraction(data),
        log_like=looks_like_log_lines(data),
        record_width=looks_like_records(data),
    )


def recommended_methods(data_profile: DataProfile) -> List[str]:
    """Methods suited to the sample, best first (Figure 1 / §4.1).

    "Huffman codes and Arithmetic codes are suitable for low entropy data,
    while Lempel-Ziv methods are good at handling data with string
    repetitions.  Burrows-Wheeler handles both of these cases."

    Structure beats statistics: when the sniffers recognize templated
    log lines or fixed-width records, the matching structure-aware codec
    leads the list (its whole-block fallback makes a wrong sniff cost
    only a header, so leading with it is safe).
    """
    characteristic = data_profile.characteristic
    if characteristic == "both":
        methods = ["burrows-wheeler", "lempel-ziv", "huffman", "arithmetic"]
    elif characteristic == "repetitive":
        methods = ["burrows-wheeler", "lempel-ziv"]
    elif characteristic == "low-entropy":
        methods = ["burrows-wheeler", "huffman", "arithmetic"]
    else:
        methods = ["none"]
    if data_profile.log_like:
        methods = ["template"] + methods
    elif data_profile.record_like:
        methods = ["columnar"] + methods
    return methods
