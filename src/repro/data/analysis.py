"""Data-characteristic analysis for method selection (paper §4.1).

"The consequent approach taken in our work is one that samples data as it
is being produced and transported, to detect whether data has low entropy,
string repetitions, or both."  This module provides exactly those two
detectors plus the qualitative mapping of Figure 1:

* :func:`shannon_entropy` — order-0 entropy in bits/byte (low entropy →
  Huffman/arithmetic do well),
* :func:`repetition_fraction` — fraction of positions covered by repeated
  4-grams (string repetitions → Lempel-Ziv/Burrows-Wheeler do well),
* :func:`profile` / :func:`recommended_methods` — combine both into the
  paper's data-characteristic classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = [
    "DataProfile",
    "shannon_entropy",
    "repetition_fraction",
    "profile",
    "recommended_methods",
]

#: Below this many bits/byte the data counts as "low entropy".
LOW_ENTROPY_THRESHOLD = 6.0
#: Above this repeated-4-gram fraction the data counts as "repetitive".
REPETITION_THRESHOLD = 0.5


def shannon_entropy(data: bytes) -> float:
    """Order-0 Shannon entropy of ``data`` in bits per byte (0..8)."""
    if not data:
        return 0.0
    counts = np.bincount(np.frombuffer(data, dtype=np.uint8), minlength=256)
    probabilities = counts[counts > 0] / len(data)
    return float(-np.sum(probabilities * np.log2(probabilities)))


def repetition_fraction(data: bytes, gram: int = 4) -> float:
    """Fraction of ``gram``-gram positions whose gram occurred earlier.

    A cheap proxy for Lempel-Ziv compressibility: 1.0 means every window
    has been seen before (pure repetition), 0.0 means no window repeats.
    """
    n = len(data)
    if n < gram + 1:
        return 0.0
    if n > 1 << 20:
        raise ValueError("repetition_fraction is meant for samples, not whole files")
    # Vectorized rolling hash over 4-byte windows.
    array = np.frombuffer(data, dtype=np.uint8).astype(np.uint64)
    window = np.zeros(n - gram + 1, dtype=np.uint64)
    for k in range(gram):
        window = (window << np.uint64(8)) | array[k : k + len(window)]
    _, first_index = np.unique(window, return_index=True)
    repeated = len(window) - len(first_index)
    return repeated / len(window)


@dataclass(frozen=True)
class DataProfile:
    """Summary of a data sample's compressibility characteristics."""

    entropy_bits_per_byte: float
    repetition: float

    @property
    def low_entropy(self) -> bool:
        return self.entropy_bits_per_byte < LOW_ENTROPY_THRESHOLD

    @property
    def repetitive(self) -> bool:
        return self.repetition > REPETITION_THRESHOLD

    @property
    def characteristic(self) -> str:
        """One of ``both``, ``repetitive``, ``low-entropy``, ``incompressible``."""
        if self.low_entropy and self.repetitive:
            return "both"
        if self.repetitive:
            return "repetitive"
        if self.low_entropy:
            return "low-entropy"
        return "incompressible"


def profile(data: bytes) -> DataProfile:
    """Profile a sample (entropy + repetition)."""
    return DataProfile(
        entropy_bits_per_byte=shannon_entropy(data),
        repetition=repetition_fraction(data),
    )


def recommended_methods(data_profile: DataProfile) -> List[str]:
    """Methods suited to the sample, best first (Figure 1 / §4.1).

    "Huffman codes and Arithmetic codes are suitable for low entropy data,
    while Lempel-Ziv methods are good at handling data with string
    repetitions.  Burrows-Wheeler handles both of these cases."
    """
    characteristic = data_profile.characteristic
    if characteristic == "both":
        return ["burrows-wheeler", "lempel-ziv", "huffman", "arithmetic"]
    if characteristic == "repetitive":
        return ["burrows-wheeler", "lempel-ziv"]
    if characteristic == "low-entropy":
        return ["burrows-wheeler", "huffman", "arithmetic"]
    return ["none"]
