"""Seeded multi-channel telemetry generator (fixed-width records).

Emits the workload the ``columnar`` codec is built for: a stream of
fixed-width little-endian records, one timestamp field plus several
drifting int64 channels with different dynamics — slow random walks,
noisy gauges, and a monotone counter.  Transposed to columns the fields
delta/delta-of-delta code into a few bits per sample; as a flat byte
stream they look nearly incompressible to the generic codecs.

Default layout: 8 fields x 8 bytes = 64-byte records, so every
power-of-two block size >= 64 cuts on record boundaries and the columnar
layout detector sees clean columns.

Deterministic: same seed, same bytes (pure ``random.Random``).
"""

from __future__ import annotations

import random
import struct
from typing import Iterator, List

__all__ = ["TimeSeriesGenerator"]

_U64_MASK = (1 << 64) - 1


class TimeSeriesGenerator:
    """Deterministic generator of drifting multi-channel telemetry."""

    #: Fields per record (timestamp + channels) and bytes per field.
    RECORD_FIELDS = 8
    FIELD_WIDTH = 8
    RECORD_WIDTH = RECORD_FIELDS * FIELD_WIDTH

    def __init__(self, seed: int = 2004) -> None:
        self.seed = seed
        self.reset()

    def reset(self) -> None:
        """Restart the deterministic sequence from the seed."""
        rng = random.Random(self.seed)
        self._rng = rng
        # Millisecond timestamps with jittered cadence.
        self._clock_ms = 1_086_600_000_000
        channels = self.RECORD_FIELDS - 1
        self._levels: List[int] = [
            rng.randrange(1 << 20, 1 << 36) for _ in range(channels)
        ]
        # Per-channel walk scale spans tight gauges to jumpy counters.
        self._scales: List[int] = [
            rng.choice((16, 256, 4096, 65536)) for _ in range(channels)
        ]

    def _record(self) -> bytes:
        rng = self._rng
        self._clock_ms += rng.randrange(90, 110)
        values = [self._clock_ms]
        for index, scale in enumerate(self._scales):
            if index == 0:
                # Monotone counter channel (bytes served, packets, ...).
                self._levels[index] += rng.randrange(scale)
            else:
                self._levels[index] += rng.randrange(-scale, scale + 1)
            values.append(self._levels[index] & _U64_MASK)
        return struct.pack("<%dQ" % self.RECORD_FIELDS, *values)

    def records_block(self, size: int) -> bytes:
        """At least ``size`` bytes of whole records."""
        chunks: List[bytes] = []
        total = 0
        while total < size:
            record = self._record()
            chunks.append(record)
            total += len(record)
        return b"".join(chunks)

    def stream(self, block_size: int, block_count: int) -> Iterator[bytes]:
        """Yield ``block_count`` blocks of exactly ``block_size`` bytes."""
        pending = bytearray()
        for _ in range(block_count):
            while len(pending) < block_size:
                pending += self.records_block(block_size - len(pending))
            yield bytes(pending[:block_size])
            del pending[:block_size]
