"""ECho-like event middleware with integrated configurable compression
(paper §3): channels, handlers, derived channels, quality attributes, a
multiplexing transport bridge over simulated links, and the adaptive
consumer that switches compression methods at runtime."""

from .attributes import (
    ATTR_BANDWIDTH,
    ATTR_COMPRESSION_METHOD,
    ATTR_COMPRESSION_SECONDS,
    ATTR_CPU_LOAD,
    ATTR_LZ_REDUCING_SPEED,
    ATTR_ORIGINAL_SIZE,
    ATTR_SAMPLED_RATIO,
    QualityAttributes,
)
from .channels import ChannelError, EventChannel, Subscription
from .chaos import ChaosWire, DeliveryError, ReliableEventLink
from .echo import AdaptiveSubscriber, DeliveryRecord, EchoSystem, SamplingPublisher
from .events import Event
from .attributes import ATTR_COMPRESSION_PARAMETERS
from .handlers import (
    CompressionHandler,
    DecompressionHandler,
    FilterHandler,
    Handler,
    TapHandler,
    TunableCompressionHandler,
)
from .monitoring import ChannelMonitor, ChannelQuality
from .reassembly import OrderedReassembly, ReorderingBridge
from .relay import (
    ATTR_PLACEMENT,
    ATTR_RELAY_METHOD,
    ATTR_RELAY_PARAMS,
    CompressionRelay,
    chain_crc,
)
from .tcp import ChannelServer, RemoteChannel
from .transport import (
    ATTR_TRANSPORT_RETRANSMISSIONS,
    ATTR_TRANSPORT_SECONDS,
    ATTR_WIRE_SIZE,
    RetryPolicy,
    RudpBridge,
    TransportBridge,
    TransportStats,
    WireFormat,
)

__all__ = [
    "ATTR_BANDWIDTH",
    "ATTR_COMPRESSION_METHOD",
    "ATTR_COMPRESSION_SECONDS",
    "ATTR_CPU_LOAD",
    "ATTR_LZ_REDUCING_SPEED",
    "ATTR_ORIGINAL_SIZE",
    "ATTR_SAMPLED_RATIO",
    "ATTR_PLACEMENT",
    "ATTR_RELAY_METHOD",
    "ATTR_RELAY_PARAMS",
    "ATTR_TRANSPORT_RETRANSMISSIONS",
    "ATTR_TRANSPORT_SECONDS",
    "ATTR_WIRE_SIZE",
    "AdaptiveSubscriber",
    "ChannelError",
    "ChannelMonitor",
    "ChannelServer",
    "ChannelQuality",
    "ChaosWire",
    "CompressionHandler",
    "CompressionRelay",
    "DecompressionHandler",
    "DeliveryError",
    "DeliveryRecord",
    "EchoSystem",
    "Event",
    "EventChannel",
    "FilterHandler",
    "Handler",
    "OrderedReassembly",
    "QualityAttributes",
    "ReliableEventLink",
    "RemoteChannel",
    "ReorderingBridge",
    "RetryPolicy",
    "RudpBridge",
    "SamplingPublisher",
    "Subscription",
    "TapHandler",
    "TransportBridge",
    "TunableCompressionHandler",
    "ATTR_COMPRESSION_PARAMETERS",
    "TransportStats",
    "WireFormat",
    "chain_crc",
]
