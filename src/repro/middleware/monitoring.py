"""Quality monitoring — the "IQ" in IQ-ECho (paper §3.1, ref [36]).

"ECho can transport performance information ... across end users and
address spaces and across different implementation layers."  The
:class:`ChannelMonitor` is the middleware-level producer of that
performance information: subscribed to any channel (typically a mirror on
the consumer side), it aggregates delivery statistics — event rate,
throughput, compression effectiveness, transport latency — over a sliding
window and publishes them into a :class:`QualityAttributes` namespace
where any layer (the adaptive controller, the application, an operator
console) can read them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from ..netsim.clock import Clock, VirtualClock
from ..obs.metrics import MetricsRegistry
from .attributes import (
    ATTR_COMPRESSION_METHOD,
    ATTR_ORIGINAL_SIZE,
    QualityAttributes,
)
from .channels import EventChannel, Subscription
from .events import Event
from .transport import ATTR_TRANSPORT_SECONDS, ATTR_WIRE_SIZE

__all__ = ["ChannelQuality", "ChannelMonitor"]

#: Attribute name prefix under which monitors publish, completed with the
#: channel id: ``quality.<channel_id>``.
QUALITY_ATTR_PREFIX = "quality"

#: Obs metric names for channel quality (labeled ``channel=<id>``).
EVENTS_COUNTER = "repro_channel_events_total"
ORIGINAL_BYTES_COUNTER = "repro_channel_original_bytes_total"
WIRE_BYTES_COUNTER = "repro_channel_wire_bytes_total"
QUALITY_GAUGE_PREFIX = "repro_channel_quality"


@dataclass(frozen=True)
class ChannelQuality:
    """One snapshot of a channel's observed quality."""

    channel_id: str
    events: int
    event_rate: float          # events / second over the window
    goodput: float             # application bytes / second over the window
    wire_throughput: float     # wire bytes / second over the window
    mean_transport_seconds: float
    compression_ratio: float   # wire / original over the window

    def as_dict(self) -> dict:
        return {
            "channel_id": self.channel_id,
            "events": self.events,
            "event_rate": self.event_rate,
            "goodput": self.goodput,
            "wire_throughput": self.wire_throughput,
            "mean_transport_seconds": self.mean_transport_seconds,
            "compression_ratio": self.compression_ratio,
        }


class ChannelMonitor:
    """Sliding-window quality aggregation for one channel.

    When given a :class:`~repro.obs.metrics.MetricsRegistry` the monitor
    doubles as an obs producer: per-event counters (events, original and
    wire bytes) accumulate as they arrive, and every :meth:`publish`
    refreshes ``repro_channel_quality_*`` gauges — all labeled with the
    channel id, so many monitors can share one registry.
    """

    def __init__(
        self,
        channel: EventChannel,
        clock: Optional[Clock] = None,
        attributes: Optional[QualityAttributes] = None,
        window: int = 32,
        publish_every: int = 1,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        if publish_every < 1:
            raise ValueError("publish_every must be positive")
        self.channel = channel
        self.clock = clock if clock is not None else VirtualClock()
        self.attributes = attributes
        self.registry = registry
        self.window = window
        self.publish_every = publish_every
        self.total_events = 0
        # (arrival_time, original_size, wire_size, transport_seconds)
        self._samples: Deque[Tuple[float, int, int, float]] = deque(maxlen=window)
        self._subscription: Subscription = channel.subscribe(self._on_event)

    def detach(self) -> None:
        """Stop observing the channel."""
        self._subscription.cancel()

    def _on_event(self, event: Event) -> None:
        self.total_events += 1
        original = int(event.attributes.get(ATTR_ORIGINAL_SIZE, event.size))
        wire = int(event.attributes.get(ATTR_WIRE_SIZE, event.size))
        transport = float(event.attributes.get(ATTR_TRANSPORT_SECONDS, 0.0))
        self._samples.append((self.clock.now(), original, wire, transport))
        if self.registry is not None:
            labels = {"channel": self.channel.channel_id}
            method = str(event.attributes.get(ATTR_COMPRESSION_METHOD, "none"))
            self.registry.counter(EVENTS_COUNTER, help="events observed").inc(
                channel=self.channel.channel_id, method=method
            )
            self.registry.counter(
                ORIGINAL_BYTES_COUNTER, help="application bytes observed"
            ).inc(original, **labels)
            self.registry.counter(WIRE_BYTES_COUNTER, help="wire bytes observed").inc(
                wire, **labels
            )
        if self.attributes is not None and self.total_events % self.publish_every == 0:
            self.publish()

    def snapshot(self) -> ChannelQuality:
        """Current quality over the window."""
        samples = list(self._samples)
        if not samples:
            return ChannelQuality(
                channel_id=self.channel.channel_id,
                events=0,
                event_rate=0.0,
                goodput=0.0,
                wire_throughput=0.0,
                mean_transport_seconds=0.0,
                compression_ratio=1.0,
            )
        span = max(samples[-1][0] - samples[0][0], 1e-9)
        total_original = sum(original for _, original, _, _ in samples)
        total_wire = sum(wire for _, _, wire, _ in samples)
        total_transport = sum(seconds for _, _, _, seconds in samples)
        return ChannelQuality(
            channel_id=self.channel.channel_id,
            events=len(samples),
            event_rate=(len(samples) - 1) / span if len(samples) > 1 else 0.0,
            goodput=total_original / span,
            wire_throughput=total_wire / span,
            mean_transport_seconds=total_transport / len(samples),
            compression_ratio=(total_wire / total_original) if total_original else 1.0,
        )

    def publish(self) -> ChannelQuality:
        """Publish the current snapshot into the attribute namespace.

        With a registry attached, the snapshot also lands in the
        ``repro_channel_quality_*`` gauges.
        """
        quality = self.snapshot()
        if self.attributes is not None:
            self.attributes.set(
                f"{QUALITY_ATTR_PREFIX}.{self.channel.channel_id}", quality.as_dict()
            )
        if self.registry is not None:
            labels = {"channel": self.channel.channel_id}
            for field_name in (
                "event_rate",
                "goodput",
                "wire_throughput",
                "mean_transport_seconds",
                "compression_ratio",
            ):
                self.registry.gauge(
                    f"{QUALITY_GAUGE_PREFIX}_{field_name}",
                    help=f"windowed {field_name.replace('_', ' ')}",
                ).set(getattr(quality, field_name), **labels)
        return quality
