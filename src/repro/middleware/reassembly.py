"""Out-of-order event delivery and reassembly (paper §2.4 motivation).

The modified Burrows-Wheeler pipeline exists "to enable us to decompress
the file when the order of blocks received does not exactly correspond to
the order in which it is sent."  Two pieces realize that here:

* :class:`ReorderingBridge` — a :class:`~repro.middleware.transport.TransportBridge`
  that perturbs delivery order within a bounded window (deterministic per
  seed), modelling multi-path/striped transports;
* :class:`OrderedReassembly` — a consumer-side buffer that releases events
  in sequence order, tracks gaps, and (optionally) flushes stragglers
  after a window overflow.

Because every compressed event is self-contained (method id in the
attributes, self-describing codec payloads), events can be *decompressed*
in arrival order and only the application byte stream needs reassembly —
exactly the property the paper engineered with its 255 chunk markers.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from ..netsim.clock import Clock
from ..netsim.link import SimulatedLink
from ..netsim.loadtrace import LoadTrace
from .channels import EventChannel
from .events import Event
from .transport import TransportBridge

__all__ = ["OrderedReassembly", "ReorderingBridge"]


class OrderedReassembly:
    """Release events strictly in ``sequence`` order.

    ``deliver`` is called for each released event.  Out-of-sequence
    arrivals are buffered; ``pending`` exposes the gap state.  If the
    buffer exceeds ``max_pending``, the oldest missing sequence is
    declared lost and delivery resumes after it (counted in ``gaps``) —
    the behaviour a streaming consumer needs on lossy paths.

    On paths with fault injection a buffered fragment can turn out to be
    damaged after the fact (e.g. its decompression fails even though the
    frame checksum passed, or an application-level digest mismatches):
    :meth:`damaged` discards it and asks the sender for a fresh copy
    through the ``request`` callback, and :meth:`missing` lists the
    sequence gaps a re-request loop should fill.
    """

    def __init__(
        self,
        deliver: Callable[[Event], None],
        first_sequence: int = 1,
        max_pending: Optional[int] = None,
        request: Optional[Callable[[int], None]] = None,
    ) -> None:
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be positive")
        self._deliver = deliver
        self._next = first_sequence
        self._buffer: Dict[int, Event] = {}
        self.max_pending = max_pending
        self._request = request
        self.delivered = 0
        self.gaps = 0
        self.rerequested = 0

    @property
    def pending(self) -> int:
        """Number of buffered out-of-order events."""
        return len(self._buffer)

    @property
    def next_sequence(self) -> int:
        return self._next

    def push(self, event: Event) -> None:
        """Accept one event in arrival order."""
        if event.sequence < self._next:
            return  # duplicate or already skipped-over; drop silently
        self._buffer[event.sequence] = event
        self._drain()
        if self.max_pending is not None and len(self._buffer) > self.max_pending:
            # Declare the head-of-line sequence lost and move on.
            self._next = min(self._buffer)
            self.gaps += 1
            self._drain()

    def _drain(self) -> None:
        while self._next in self._buffer:
            event = self._buffer.pop(self._next)
            self._next += 1
            self.delivered += 1
            self._deliver(event)

    def damaged(self, sequence: int) -> None:
        """Discard a damaged buffered fragment and re-request it.

        No-op for sequences already released (too late to matter).  The
        sequence becomes an ordinary gap the sender must refill — the
        ``request`` callback (when attached) carries the ask.
        """
        if sequence < self._next:
            return
        self._buffer.pop(sequence, None)
        self.rerequested += 1
        if self._request is not None:
            self._request(sequence)

    def missing(self) -> List[int]:
        """Sequence numbers a re-request loop should fill (current gaps)."""
        if not self._buffer:
            return []
        return [
            sequence
            for sequence in range(self._next, max(self._buffer))
            if sequence not in self._buffer
        ]

    def flush(self) -> List[int]:
        """Release everything buffered (in order), returning missing seqs."""
        missing: List[int] = []
        while self._buffer:
            head = min(self._buffer)
            missing.extend(range(self._next, head))
            if head > self._next:
                self.gaps += 1
            self._next = head
            self._drain()
        return missing


class ReorderingBridge(TransportBridge):
    """A transport bridge that delivers within-window out of order.

    Events are held in a small buffer; each new arrival randomly (but
    deterministically per seed) evicts one buffered event for delivery.
    ``close`` drains the tail.  Transfer timing is charged on arrival,
    exactly like the in-order bridge.
    """

    def __init__(
        self,
        link: SimulatedLink,
        clock: Clock,
        load: Optional[LoadTrace] = None,
        advance_clock: bool = True,
        window: int = 4,
        seed: int = 0,
    ) -> None:
        super().__init__(link, clock, load=load, advance_clock=advance_clock)
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self._rng = random.Random(seed)
        self._held: List[tuple] = []

    def _deliver(self, event: Event, mirror: EventChannel) -> None:
        self._held.append((event, mirror))
        if len(self._held) >= self.window:
            index = self._rng.randrange(len(self._held))
            held_event, held_mirror = self._held.pop(index)
            super()._deliver(held_event, held_mirror)

    def close(self) -> None:
        """Drain all held events (in randomized order)."""
        while self._held:
            index = self._rng.randrange(len(self._held))
            event, mirror = self._held.pop(index)
            super()._deliver(event, mirror)
