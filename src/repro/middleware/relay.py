"""The consumer-offload relay: compress raw blocks for slower downstream links.

The ``consumer`` placement of :mod:`repro.core.placement` ships blocks
raw across the producer's fast upstream hop and compresses *here*, at a
relay (or the subscriber itself) sitting in front of a slower downstream
link — the DTSchedule arrangement where the producer never stalls behind
its own compressor.  :class:`CompressionRelay` is that stage for the
event middleware: a handler-shaped callable that re-compresses incoming
raw events per their placement attributes and fans the compressed copies
out to downstream sinks.

Contract (what the CI placement gate enforces):

* **Byte-exactness** — the relay routes codec work through the same
  :class:`~repro.core.engine.CodecExecutor` / registry instances as
  producer-side compression, so its wire bytes are *identical* to what
  the producer would have produced for the same ``(method, params)``.
  The running :attr:`~CompressionRelay.crc_chain` over forwarded
  payloads makes that auditable without storing payloads: it must equal
  :func:`chain_crc` over a producer-side compression of the same block
  sequence.
* **Compress-once fan-out** — an optional
  :class:`~repro.fabric.cache.BlockCache` amortizes the codec run when
  several relays (or repeated payloads) resolve to one configuration.
* **Expansion guard** — a block the codec would expand is forwarded raw
  with method ``none``, exactly like every other compression site.

The only wall-clock read in this module is :func:`_relay_now`, which
stamps :attr:`~CompressionRelay.last_forward_monotonic` so operators can
spot a stalled relay; ``scripts/check.sh`` pins this module to exactly
one sanctioned clock-read site.  No modeled or accounted time ever comes
from it — codec seconds are engine-accounted, keeping relay replays
deterministic.
"""

from __future__ import annotations

import time
import zlib
from typing import Callable, Iterable, List, Mapping, Optional, Tuple

from ..compression.base import canonical_params
from ..core.bicriteria import codec_for
from ..core.engine import CodecExecutor
from ..obs.metrics import MetricsRegistry
from ..obs.placement import record_relay_event
from .attributes import (
    ATTR_COMPRESSION_METHOD,
    ATTR_COMPRESSION_SECONDS,
    ATTR_ORIGINAL_SIZE,
)
from .events import Event

__all__ = [
    "ATTR_PLACEMENT",
    "ATTR_RELAY_METHOD",
    "ATTR_RELAY_PARAMS",
    "CompressionRelay",
    "chain_crc",
]

#: Which arrangement the producer chose for this event
#: (:data:`repro.core.placement.PLACEMENTS`).
ATTR_PLACEMENT = "placement.arrangement"
#: Codec a downstream relay should apply to a ``consumer``-placed event.
ATTR_RELAY_METHOD = "placement.relay_method"
#: Canonical parameter tuple for the relay codec (as produced by
#: :func:`repro.compression.base.canonical_params`).
ATTR_RELAY_PARAMS = "placement.relay_parameters"


def _relay_now() -> float:
    """The relay's single sanctioned wall-clock read (liveness stamp)."""
    return time.monotonic()


def chain_crc(payloads: Iterable[bytes], crc: int = 0) -> int:
    """CRC-32 chained over ``payloads`` in order.

    The chain fingerprints an entire ordered payload sequence in one
    integer: producer-side and relay-side compression of the same blocks
    must yield equal chains, which is how benches and the CI gate assert
    byte-exact fan-out without retaining payloads.
    """
    for payload in payloads:
        crc = zlib.crc32(payload, crc)
    return crc & 0xFFFFFFFF


class CompressionRelay:
    """Re-compress ``consumer``-placed events for a slower downstream link.

    Handler-shaped: calling the relay with an :class:`Event` returns the
    forwarded (possibly compressed) event after delivering it to every
    subscribed sink, so it slots wherever a
    :class:`~repro.middleware.handlers.CompressionHandler` does —
    including as the ``deliver`` target of a
    :class:`~repro.middleware.chaos.ReliableEventLink`.

    Method resolution per event: an event carrying
    :data:`ATTR_RELAY_METHOD` (set by the placement-aware producer) is
    compressed with that codec; otherwise the relay's constructor-default
    configuration applies.  Events that arrive already compressed
    (producer placement) pass through untouched — the relay never
    double-compresses — but still enter the CRC chain, which therefore
    covers the full forwarded wire sequence.
    """

    def __init__(
        self,
        method: str = "lempel-ziv",
        params: Optional[Mapping[str, object]] = None,
        cost_model: Optional[object] = None,
        cpu: Optional[object] = None,
        executor: Optional[CodecExecutor] = None,
        cache: Optional[object] = None,
        registry: Optional[MetricsRegistry] = None,
        channel: str = "relay",
    ) -> None:
        self.method = method
        self.params = dict(params) if params else None
        self.cache = cache
        self.registry = registry
        self.channel = channel
        self.executor = (
            executor
            if executor is not None
            else CodecExecutor(cost_model=cost_model, cpu=cpu, expansion_fallback=True)
        )
        self._sinks: List[Callable[[Event], None]] = []
        #: Running CRC-32 over every forwarded wire payload, in order.
        self.crc_chain = 0
        self.events_forwarded = 0
        self.events_compressed = 0
        self.cache_hits = 0
        self.bytes_in = 0
        self.bytes_out = 0
        #: Engine-accounted codec seconds spent at the relay (the
        #: "relay" bar of the time-breakdown figure).
        self.relay_seconds = 0.0
        #: Monotonic stamp of the last forward (liveness; never modeled).
        self.last_forward_monotonic: Optional[float] = None

    def subscribe(self, sink: Callable[[Event], None]) -> None:
        """Add a downstream sink; every forwarded event reaches each one."""
        self._sinks.append(sink)

    # -- the relay stage ---------------------------------------------------------

    def _resolve(self, event: Event) -> Tuple[str, Optional[Mapping[str, object]]]:
        method = event.attributes.get(ATTR_RELAY_METHOD, self.method)
        params = event.attributes.get(ATTR_RELAY_PARAMS)
        if params is None:
            params = self.params if method == self.method else None
        elif not isinstance(params, Mapping):
            params = dict(params)
        return method, params

    def __call__(self, event: Event) -> Event:
        """Compress (if placement asks for it) and fan out one event."""
        self.last_forward_monotonic = _relay_now()
        self.bytes_in += event.size
        already = event.attributes.get(ATTR_COMPRESSION_METHOD, "none")
        method, params = self._resolve(event)
        if already != "none" or method == "none":
            forwarded = event
        else:
            if self.cache is not None:
                execution, hit = self.cache.execute(
                    self.executor, method, event.payload, params
                )
                if hit:
                    self.cache_hits += 1
            else:
                codec = (
                    codec_for(method, canonical_params(params)) if params else None
                )
                execution = self.executor.compress(method, event.payload, codec=codec)
            self.events_compressed += 1
            self.relay_seconds += execution.seconds
            if self.registry is not None:
                record_relay_event(
                    self.registry,
                    method=execution.method,
                    params=params,
                    bytes_in=event.size,
                    bytes_out=execution.compressed_size,
                )
            attributes = {
                ATTR_COMPRESSION_METHOD: execution.method,
                ATTR_ORIGINAL_SIZE: event.size,
                ATTR_COMPRESSION_SECONDS: execution.seconds,
                ATTR_PLACEMENT: "consumer",
            }
            if execution.method == "none":
                # Expansion guard: the codec would have grown the block.
                forwarded = event.with_attributes(**attributes)
            else:
                forwarded = event.with_payload(execution.payload, **attributes)
        self.events_forwarded += 1
        self.bytes_out += forwarded.size
        self.crc_chain = zlib.crc32(forwarded.payload, self.crc_chain) & 0xFFFFFFFF
        for sink in self._sinks:
            sink(forwarded)
        return forwarded
