"""Quality attributes (paper §3.1).

"ECho supports the definition and use of globally named and interpreted
quality attributes.  Using attributes, ECho can transport performance
information and/or dynamic change instructions, across end users and
address spaces and across different implementation layers."

:class:`QualityAttributes` is a named key/value store with change
listeners.  The adaptive machinery uses it in both directions:

* monitoring flows up — the transport publishes measured bandwidth, the
  producer publishes sampling results and CPU load;
* control flows down — the consumer publishes the compression method it
  wants the producer-side handler chain to apply.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "QualityAttributes",
    "ATTR_COMPRESSION_METHOD",
    "ATTR_BANDWIDTH",
    "ATTR_CPU_LOAD",
    "ATTR_SAMPLED_RATIO",
    "ATTR_LZ_REDUCING_SPEED",
    "ATTR_COMPRESSION_SECONDS",
    "ATTR_ORIGINAL_SIZE",
    "ATTR_COMPRESSION_PARAMETERS",
]

# Globally interpreted attribute names (the paper's "globally named").
ATTR_COMPRESSION_METHOD = "compression.method"
ATTR_BANDWIDTH = "network.end_to_end_bandwidth"
ATTR_CPU_LOAD = "cpu.load"
ATTR_SAMPLED_RATIO = "compression.sampled_ratio"
ATTR_LZ_REDUCING_SPEED = "compression.lz_reducing_speed"
ATTR_COMPRESSION_SECONDS = "compression.elapsed_seconds"
ATTR_ORIGINAL_SIZE = "compression.original_size"
ATTR_COMPRESSION_PARAMETERS = "compression.parameters"

Listener = Callable[[str, Any], None]


class QualityAttributes:
    """A shared, observable attribute namespace."""

    def __init__(self) -> None:
        self._values: Dict[str, Any] = {}
        self._listeners: List[Listener] = []

    def set(self, name: str, value: Any) -> None:
        """Publish an attribute value and notify listeners."""
        if not name:
            raise ValueError("attribute names must be non-empty")
        self._values[name] = value
        for listener in list(self._listeners):
            listener(name, value)

    def get(self, name: str, default: Any = None) -> Any:
        return self._values.get(name, default)

    def snapshot(self) -> Dict[str, Any]:
        """Copy of all current attributes."""
        return dict(self._values)

    def subscribe(self, listener: Listener) -> Callable[[], None]:
        """Register a change listener; returns an unsubscribe callable."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return unsubscribe
