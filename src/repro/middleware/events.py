"""Events — the unit of exchange in the ECho-like middleware (paper §3.1).

An event carries an opaque payload (application data, typically
PBIO-encoded), a free-form attribute map (the paper's *quality
attributes* travel here when they are per-event), and bookkeeping set by
the channel machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict

__all__ = ["Event"]


@dataclass(frozen=True)
class Event:
    """One immutable event.  Handlers produce transformed copies."""

    payload: bytes
    attributes: Dict[str, Any] = field(default_factory=dict)
    channel_id: str = ""
    sequence: int = 0
    timestamp: float = 0.0

    def with_payload(self, payload: bytes, **extra_attributes: Any) -> "Event":
        """Copy with a new payload and optional added attributes."""
        attributes = dict(self.attributes)
        attributes.update(extra_attributes)
        return replace(self, payload=payload, attributes=attributes)

    def with_attributes(self, **extra_attributes: Any) -> "Event":
        """Copy with added/overridden attributes."""
        attributes = dict(self.attributes)
        attributes.update(extra_attributes)
        return replace(self, attributes=attributes)

    @property
    def size(self) -> int:
        return len(self.payload)
