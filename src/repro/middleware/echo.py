"""IQ-ECho facade: adaptive compressed event streaming (paper §3).

This module wires the pieces of §3.2 together exactly as the paper
describes the integration:

* the producer publishes raw blocks to a base channel, with the 4 KB
  Lempel-Ziv sampling probe run "integrated into the producer-side
  actions taken on events" (§4.1) and its results attached as quality
  attributes;
* one *derived channel* exists per compression method, each applying a
  :class:`~repro.middleware.handlers.CompressionHandler` producer-side;
* a :class:`TransportBridge` multiplexes whichever derived channels have
  remote subscribers over the simulated link;
* the consumer-side :class:`AdaptiveSubscriber` measures end-to-end
  delivery, runs the §2.5 decision algorithm, and switches its
  subscription between derived channels — "the consumer can then
  unsubscribe from the original channel and subscribe to the new one,
  thereby connecting to an event stream with newly embedded data
  compression."

Producers never learn who consumes what; all coordination happens through
channel derivation and the shared :class:`QualityAttributes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..compression.registry import PAPER_METHODS
from ..core.decision import DecisionInputs, DecisionThresholds, select_method
from ..core.monitor import ReducingSpeedMonitor
from ..core.sampler import LzSampler
from ..netsim.bandwidth import EwmaBandwidthEstimator
from ..netsim.clock import Clock, VirtualClock
from ..netsim.cpu import CodecCostModel, CpuModel
from ..netsim.link import SimulatedLink
from ..netsim.loadtrace import LoadTrace
from .attributes import (
    ATTR_COMPRESSION_METHOD,
    ATTR_COMPRESSION_SECONDS,
    ATTR_LZ_REDUCING_SPEED,
    ATTR_ORIGINAL_SIZE,
    ATTR_SAMPLED_RATIO,
    QualityAttributes,
)
from .channels import ChannelError, EventChannel, Subscription
from .events import Event
from .handlers import CompressionHandler, DecompressionHandler
from .transport import ATTR_TRANSPORT_SECONDS, ATTR_WIRE_SIZE, TransportBridge

__all__ = ["EchoSystem", "SamplingPublisher", "AdaptiveSubscriber", "DeliveryRecord"]


class EchoSystem:
    """A named registry of channels plus the shared attribute namespace."""

    def __init__(self) -> None:
        self._channels: Dict[str, EventChannel] = {}
        self.attributes = QualityAttributes()

    def create_channel(self, channel_id: str) -> EventChannel:
        if channel_id in self._channels:
            raise ChannelError(f"channel {channel_id!r} already exists")
        channel = EventChannel(channel_id)
        self._channels[channel_id] = channel
        return channel

    def get_channel(self, channel_id: str) -> EventChannel:
        try:
            return self._channels[channel_id]
        except KeyError:
            raise ChannelError(f"no channel {channel_id!r}") from None

    def channel_ids(self) -> List[str]:
        return sorted(self._channels)


class SamplingPublisher:
    """Producer-side publisher with the §2.5 sampling probe built in.

    ``publish`` submits the *previous* pending block after probing the new
    one, so each published event carries the sampling attributes that
    apply to it — mirroring "fork a sampling process to compress the
    first 4KB of the next block".
    """

    def __init__(
        self,
        channel: EventChannel,
        sampler: Optional[LzSampler] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.channel = channel
        self.sampler = sampler if sampler is not None else LzSampler()
        self.clock = clock if clock is not None else VirtualClock()
        self.published = 0

    def publish(self, block: bytes) -> None:
        """Probe and publish one block."""
        sample = self.sampler.sample(block)
        event = Event(
            payload=block,
            attributes={
                ATTR_SAMPLED_RATIO: sample.ratio,
                ATTR_LZ_REDUCING_SPEED: sample.reducing_speed,
            },
            timestamp=self.clock.now(),
        )
        self.channel.submit(event)
        self.published += 1


@dataclass(frozen=True)
class DeliveryRecord:
    """What the adaptive consumer observed for one delivered event."""

    sequence: int
    timestamp: float
    method: str
    original_size: int
    wire_size: int
    transport_seconds: float
    sampled_ratio: Optional[float]


class AdaptiveSubscriber:
    """Consumer-side adaptive controller (paper §3.2).

    Subscribes to the derived channel of its current method, measures
    every delivery end to end, and re-runs the selection algorithm; when
    the decision changes it re-subscribes to a different derived channel
    and announces the change through the shared quality attributes.
    """

    def __init__(
        self,
        system: EchoSystem,
        source: EventChannel,
        bridge: TransportBridge,
        thresholds: DecisionThresholds = DecisionThresholds(),
        methods: Optional[List[str]] = None,
        cost_model: Optional[CodecCostModel] = None,
        cpu: Optional[CpuModel] = None,
        on_delivery: Optional[Callable[[DeliveryRecord], None]] = None,
        consumer_id: Optional[str] = None,
    ) -> None:
        self.system = system
        self.source = source
        self.bridge = bridge
        self.thresholds = thresholds
        self.consumer_id = consumer_id
        self.methods = list(methods) if methods is not None else list(PAPER_METHODS)
        self.monitor = ReducingSpeedMonitor()
        self.estimator = EwmaBandwidthEstimator()
        self.decompressor = DecompressionHandler()
        self.on_delivery = on_delivery
        self.records: List[DeliveryRecord] = []
        self.switches = 0

        self._derived: Dict[str, EventChannel] = {}
        self._mirrors: Dict[str, EventChannel] = {}
        self._cost_model = cost_model
        self._cpu = cpu
        self._subscription: Optional[Subscription] = None
        self._current_method: Optional[str] = None
        self._switch_to("none")

    @property
    def current_method(self) -> str:
        assert self._current_method is not None
        return self._current_method

    # -- channel plumbing ----------------------------------------------------------

    def _derived_for(self, method: str) -> EventChannel:
        """Lazily derive the compression channel for ``method`` and export it."""
        if method not in self._derived:
            handler = CompressionHandler(method, cost_model=self._cost_model, cpu=self._cpu)
            suffix = f"/{self.consumer_id}" if self.consumer_id else ""
            derived = self.source.derive(
                handler, f"{self.source.channel_id}/{method}{suffix}"
            )
            self._derived[method] = derived
        return self._derived[method]

    def _switch_to(self, method: str) -> None:
        if method == self._current_method:
            return
        if method not in self.methods:
            raise ChannelError(f"method {method!r} not offered by this subscriber")
        if self._subscription is not None:
            self._subscription.cancel()
            previous = self._derived[self._current_method]
            self.bridge.unexport(previous)
        derived = self._derived_for(method)
        mirror = self._mirrors.get(method)
        refreshed = self.bridge.export(derived, mirror)
        self._mirrors[method] = refreshed
        self._subscription = refreshed.subscribe(self._on_event)
        if self._current_method is not None:
            self.switches += 1
        self._current_method = method
        attribute = ATTR_COMPRESSION_METHOD
        if self.consumer_id:
            attribute = f"{ATTR_COMPRESSION_METHOD}.{self.consumer_id}"
        self.system.attributes.set(attribute, method)

    # -- delivery path -----------------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        decompressed = self.decompressor(event)
        method = event.attributes.get(ATTR_COMPRESSION_METHOD, "none")
        original_size = int(event.attributes.get(ATTR_ORIGINAL_SIZE, decompressed.size))
        wire_size = int(event.attributes.get(ATTR_WIRE_SIZE, event.size))
        transport_seconds = float(event.attributes.get(ATTR_TRANSPORT_SECONDS, 0.0))
        sampled_ratio = event.attributes.get(ATTR_SAMPLED_RATIO)
        lz_speed = event.attributes.get(ATTR_LZ_REDUCING_SPEED)

        if transport_seconds > 0:
            self.estimator.observe(wire_size, transport_seconds)
        if lz_speed is not None:
            # Producer-side probe results arrive as attributes; fold them
            # into the consumer's reducing-speed view.
            self.monitor.observe_speed("lempel-ziv", float(lz_speed))

        record = DeliveryRecord(
            sequence=event.sequence,
            timestamp=event.timestamp,
            method=method,
            original_size=original_size,
            wire_size=wire_size,
            transport_seconds=transport_seconds,
            sampled_ratio=sampled_ratio,
        )
        self.records.append(record)
        if self.on_delivery is not None:
            self.on_delivery(record)

        self._reconsider(original_size, sampled_ratio)

    def _reconsider(self, block_size: int, sampled_ratio: Optional[float]) -> None:
        bandwidth = self.estimator.estimate
        if bandwidth is None or bandwidth <= 0 or block_size <= 0:
            return
        inputs = DecisionInputs(
            block_size=block_size,
            sending_time=block_size / bandwidth,
            lz_reducing_speed=self.monitor.reducing_speed("lempel-ziv"),
            sampled_ratio=sampled_ratio,
        )
        decision = select_method(inputs, self.thresholds)
        if decision.method in self.methods:
            self._switch_to(decision.method)
