"""Event channels with derivation (paper §3.1-3.2).

"Event subscription utilizes event channels, which are the mechanisms
through which event producers and consumers are matched. ... it is
straightforward for ECho to apply computations — termed handlers — to
events, at any point in the data path between event producer and
consumer."

A channel delivers submitted events to its subscribers and to its
*derived* channels, each of which applies its handler first.  Deriving a
new channel at runtime — the consumer-driven operation at the heart of
§3.2 — therefore composes handler chains without touching producers,
which stay anonymous.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .events import Event
from .handlers import Handler

__all__ = ["EventChannel", "Subscription", "ChannelError"]


class ChannelError(Exception):
    """Misuse of the channel API (duplicate ids, dead subscriptions...)."""


class Subscription:
    """Handle returned by :meth:`EventChannel.subscribe`."""

    def __init__(self, channel: "EventChannel", callback: Callable[[Event], None]) -> None:
        self.channel = channel
        self.callback = callback
        self.active = True
        self.delivered = 0

    def cancel(self) -> None:
        """Unsubscribe; idempotent."""
        if self.active:
            self.active = False
            self.channel._remove(self)


class EventChannel:
    """A pub/sub channel with handler-deriving children."""

    def __init__(self, channel_id: str) -> None:
        if not channel_id:
            raise ChannelError("channel ids must be non-empty")
        self.channel_id = channel_id
        self._subscriptions: List[Subscription] = []
        self._derived: List[Tuple[Handler, "EventChannel"]] = []
        self._sequence = 0
        self.submitted = 0
        self.delivered_bytes = 0
        self._fabric = None

    def bind_fabric(self, fabric) -> None:
        """Route this channel's dispatch through an event fabric.

        Once bound, delivery runs on the shard that owns this channel id
        (:meth:`EventFabric.submit_channel <repro.fabric.broker.EventFabric.submit_channel>`):
        synchronous in the fabric's inline mode — identical semantics to
        the unbound channel — and serialized on a shard loop in threads
        mode.  Duck-typed on purpose: the middleware stays importable
        without the fabric package.
        """
        self._fabric = fabric

    def unbind_fabric(self) -> None:
        """Return to direct in-thread dispatch."""
        self._fabric = None

    # -- subscription -----------------------------------------------------------

    def subscribe(self, callback: Callable[[Event], None]) -> Subscription:
        """Register ``callback`` for every event on this channel."""
        subscription = Subscription(self, callback)
        self._subscriptions.append(subscription)
        return subscription

    def _remove(self, subscription: Subscription) -> None:
        if subscription in self._subscriptions:
            self._subscriptions.remove(subscription)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscriptions)

    # -- derivation ----------------------------------------------------------------

    def derive(self, handler: Handler, channel_id: Optional[str] = None) -> "EventChannel":
        """Create a child channel fed through ``handler``.

        This is the §3.2 operation: "the consumer deploys a new method by
        simply deriving the appropriate event channel with that method."
        """
        child_id = channel_id or f"{self.channel_id}/derived-{len(self._derived)}"
        child = EventChannel(child_id)
        self._derived.append((handler, child))
        return child

    def drop_derived(self, child: "EventChannel") -> None:
        """Disconnect a derived channel (used when a method is retired)."""
        self._derived = [(h, c) for h, c in self._derived if c is not child]

    @property
    def derived_channels(self) -> List["EventChannel"]:
        return [child for _, child in self._derived]

    # -- submission -------------------------------------------------------------------

    def submit(self, event: Event) -> None:
        """Publish an event: deliver locally, then feed derived channels.

        Derived channels with no subscribers anywhere below them are
        skipped entirely, so an idle compression derivation costs nothing —
        the property that makes "maintaining a small number of open
        channels and switching among them" cheap (§3.2).
        """
        self._sequence += 1
        self.submitted += 1
        stamped = Event(
            payload=event.payload,
            attributes=dict(event.attributes),
            channel_id=self.channel_id,
            sequence=self._sequence,
            timestamp=event.timestamp,
        )
        self._dispatch(stamped)

    def submit_stamped(self, event: Event) -> None:
        """Deliver an event that already carries its identity.

        Used by transport mirrors: a remote delivery must keep the
        *origin* channel id and sequence number (out-of-order arrivals
        would otherwise be renumbered into arrival order, defeating
        consumer-side reassembly).
        """
        self.submitted += 1
        self._sequence = max(self._sequence, event.sequence)
        self._dispatch(event)

    def _dispatch(self, stamped: Event) -> None:
        if self._fabric is not None:
            self._fabric.submit_channel(self, stamped)
        else:
            self._deliver_direct(stamped)

    def _deliver_direct(self, stamped: Event) -> None:
        # Snapshot the eligible routes before delivering: a callback may
        # re-subscribe mid-delivery (the adaptive consumer switching
        # methods), and the event must not flow through both the old and
        # the newly activated derivation.
        eligible = [(h, c) for h, c in self._derived if c.has_listeners()]
        for subscription in list(self._subscriptions):
            if subscription.active:
                subscription.callback(stamped)
                subscription.delivered += 1
                self.delivered_bytes += stamped.size
        for handler, child in eligible:
            transformed = handler(stamped)
            if transformed is not None:
                child.submit(transformed)

    def has_listeners(self) -> bool:
        """True if any subscriber exists on this channel or below."""
        if self._subscriptions:
            return True
        return any(child.has_listeners() for _, child in self._derived)
