"""Event handlers — computations applied in the data path (paper §3.1-3.2).

"Handlers may transform events, reduce their sizes or enhance the
information they contain, and they can even prevent events from being
transported ...  They are the key to the integration of compression
methods."

A handler maps an :class:`~repro.middleware.events.Event` to a transformed
event or ``None`` (drop).  :class:`CompressionHandler` and
:class:`DecompressionHandler` are the pair the paper integrates; a couple
of generic handlers (filter, tap) demonstrate the broader mechanism and
are used in tests and examples.

All timed codec work routes through one
:class:`~repro.core.engine.CodecExecutor` per handler — the shared
execution substrate that owns the cost-model/CPU scaling rules and the
expansion guard (a codec that *grows* a block ships the original bytes
under method ``none``, so the method attribute stays truthful).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..compression.registry import get_codec
from ..core.engine import CodecExecutor
from ..netsim.cpu import CodecCostModel, CpuModel
from ..obs.block import record_execution
from ..obs.metrics import MetricsRegistry
from .attributes import (
    ATTR_COMPRESSION_METHOD,
    ATTR_COMPRESSION_SECONDS,
    ATTR_ORIGINAL_SIZE,
)
from .events import Event

__all__ = [
    "Handler",
    "CompressionHandler",
    "DecompressionHandler",
    "FilterHandler",
    "TapHandler",
    "TunableCompressionHandler",
]

Handler = Callable[[Event], Optional[Event]]


class CompressionHandler:
    """Compress event payloads with a fixed method (producer side).

    Each derived channel owns one of these; switching methods at runtime
    means deriving (or re-subscribing to) a channel with a different
    handler — exactly the §3.2 mechanism.  The handler annotates events
    with the method name, original size, and compression time so the
    consumer can decompress and the adaptive controller can observe costs.

    When the codec expands a block (common on near-incompressible data
    such as molecular coordinates), the executor's expansion guard ships
    the original payload with method ``none`` — the time spent is still
    recorded, but the receiver never pays to decode a larger-than-original
    payload.

    ``cache`` (duck-typed: anything with the
    :meth:`repro.fabric.cache.BlockCache.execute` signature) makes
    several handlers sharing one cache compress each distinct payload
    once per ``(method, params)`` configuration; ``params`` names this
    handler's codec-parameter choice for cache keying and metric labels.
    """

    def __init__(
        self,
        method: str,
        cost_model: Optional[CodecCostModel] = None,
        cpu: Optional[CpuModel] = None,
        executor: Optional[CodecExecutor] = None,
        registry: Optional[MetricsRegistry] = None,
        channel: str = "handler",
        pool: Optional["object"] = None,
        cache: Optional["object"] = None,
        params: Optional[dict] = None,
    ) -> None:
        self.method = method
        self.codec = get_codec(method)
        self.cost_model = cost_model
        self.cpu = cpu
        self.registry = registry
        self.channel = channel
        self.cache = cache
        self.params = dict(params) if params else None
        self.cache_hits = 0
        self.executor = (
            executor
            if executor is not None
            else CodecExecutor(
                cost_model=cost_model, cpu=cpu, expansion_fallback=True, pool=pool
            )
        )

    def __call__(self, event: Event) -> Event:
        if self.cache is not None:
            execution, hit = self.cache.execute(
                self.executor, self.method, event.payload, self.params
            )
            if hit:
                self.cache_hits += 1
        else:
            execution = self.executor.compress(self.method, event.payload)
        if self.registry is not None:
            record_execution(
                self.registry,
                channel=self.channel,
                method=execution.method,
                requested_method=execution.requested_method,
                original_size=execution.original_size,
                compressed_size=execution.compressed_size,
                compression_seconds=execution.seconds,
                fell_back=execution.fell_back,
            )
        attributes = {
            ATTR_COMPRESSION_METHOD: execution.method,
            ATTR_ORIGINAL_SIZE: event.size,
            ATTR_COMPRESSION_SECONDS: execution.seconds,
        }
        if execution.method == "none":
            # Requested passthrough, or the expansion guard fell back:
            # either way the payload is the original bytes.
            return event.with_attributes(**attributes)
        return event.with_payload(execution.payload, **attributes)


class DecompressionHandler:
    """Invert :class:`CompressionHandler` (consumer side).

    The method name travels in the event attributes, so the consumer
    always knows how to reconstruct the application data (§3.2: "the
    consumer selected the specific new data compression method, it knows
    which decompression method to apply").
    """

    def __call__(self, event: Event) -> Event:
        method = event.attributes.get(ATTR_COMPRESSION_METHOD, "none")
        if method == "none":
            return event
        codec = get_codec(method)
        return event.with_payload(codec.decompress(event.payload))


class TunableCompressionHandler:
    """A compression handler whose codec parameters change at runtime.

    Paper §5, capability (3): "By permitting end users to dynamically
    change the parameters used by compression methods, they can also
    explicitly affect compression behavior."  The handler holds a codec
    *factory* (e.g. ``lambda chunk_size: BurrowsWheelerCodec(chunk_size)``)
    and, when bound to a :class:`~repro.middleware.attributes.QualityAttributes`
    namespace, rebuilds its codec whenever the parameter attribute is set —
    so a consumer can, say, shrink Burrows-Wheeler chunks or loosen a lossy
    tolerance while events keep flowing.

    Tunable codecs are typically not in the calibrated cost table, so the
    executor runs with ``cost_model_fallback``: a missing calibration
    entry falls back to the measured (CPU-scaled) time instead of raising.
    """

    def __init__(
        self,
        method: str,
        factory: Callable[..., "object"],
        cost_model: Optional[CodecCostModel] = None,
        cpu: Optional[CpuModel] = None,
        registry: Optional[MetricsRegistry] = None,
        channel: str = "tunable",
        **initial_parameters: object,
    ) -> None:
        self.method = method
        self.factory = factory
        self.cost_model = cost_model
        self.cpu = cpu
        self.registry = registry
        self.channel = channel
        self.executor = CodecExecutor(
            cost_model=cost_model, cpu=cpu, cost_model_fallback=True
        )
        self.parameters = dict(initial_parameters)
        self.codec = factory(**self.parameters)
        self.reconfigurations = 0

    def reconfigure(self, **parameters: object) -> None:
        """Rebuild the codec with updated parameters (merged over current)."""
        self.parameters.update(parameters)
        self.codec = self.factory(**self.parameters)
        self.reconfigurations += 1
        if self.registry is not None:
            self.registry.counter(
                "repro_handler_reconfigurations_total",
                help="runtime codec parameter changes",
            ).inc(channel=self.channel, method=self.method)

    def bind(self, attributes: "object", attribute_name: str) -> Callable[[], None]:
        """Follow a quality attribute: its value (a dict) reconfigures us.

        Returns the unsubscribe callable.
        """

        def on_change(name: str, value: object) -> None:
            if name == attribute_name and isinstance(value, dict):
                self.reconfigure(**value)

        return attributes.subscribe(on_change)

    def __call__(self, event: Event) -> Event:
        execution = self.executor.compress(self.method, event.payload, codec=self.codec)
        if self.registry is not None:
            record_execution(
                self.registry,
                channel=self.channel,
                method=execution.method,
                requested_method=execution.requested_method,
                original_size=execution.original_size,
                compressed_size=execution.compressed_size,
                compression_seconds=execution.seconds,
                fell_back=execution.fell_back,
            )
        return event.with_payload(
            execution.payload,
            **{
                ATTR_COMPRESSION_METHOD: execution.method,
                ATTR_ORIGINAL_SIZE: event.size,
                ATTR_COMPRESSION_SECONDS: execution.seconds,
            },
        )


class FilterHandler:
    """Drop events failing a predicate ("prevent events from being transported")."""

    def __init__(self, predicate: Callable[[Event], bool]) -> None:
        self.predicate = predicate

    def __call__(self, event: Event) -> Optional[Event]:
        return event if self.predicate(event) else None


class TapHandler:
    """Pass events through unchanged while recording them (monitoring aid)."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __call__(self, event: Event) -> Event:
        self.events.append(event)
        return event
