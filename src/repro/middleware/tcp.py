"""Real TCP transport for the middleware (deployment substrate).

The simulation bridges model the paper's testbed; this module is the
production counterpart: events cross real sockets, so two processes (or
machines) can run the §3 architecture for real.  The same wire format is
used, the same attributes travel, and the adaptive consumer measures
*actual* transfer times — on a real network the selector adapts to real
conditions with no code changes.

Design (kept deliberately simple and dependency-free):

* :class:`ChannelServer` — listens on a host/port; each client connection
  sends one subscription request line naming a channel id; the server
  subscribes to that channel on the client's behalf and forwards every
  event as a length-prefixed :class:`~repro.middleware.transport.WireFormat`
  frame.  One thread per connection.
* :class:`RemoteChannel` — connects, subscribes, and replays incoming
  frames into a local mirror :class:`~repro.middleware.channels.EventChannel`
  from a reader thread, annotating each event with its measured transfer
  time and wire size (the same attributes the simulated bridges attach).

Delivery callbacks on the mirror run on the reader thread; consumers that
need main-thread delivery should hand off through their own queue.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Dict, List, Optional, Tuple

from .channels import EventChannel, Subscription
from .events import Event
from .transport import ATTR_TRANSPORT_SECONDS, ATTR_WIRE_SIZE, WireFormat

__all__ = ["ChannelServer", "RemoteChannel"]

_LENGTH = struct.Struct("!I")
_MAX_FRAME = 64 * 1024 * 1024


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Optional[bytes]:
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > _MAX_FRAME:
        raise ConnectionError(f"frame of {length} bytes exceeds limit")
    return _recv_exact(sock, length)


class ChannelServer:
    """Serves a set of channels to remote subscribers over TCP."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._channels: Dict[str, EventChannel] = {}
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self._running = True
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self.connections_served = 0
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        """The (host, port) clients should connect to."""
        return self._listener.getsockname()

    def offer(self, channel: EventChannel) -> None:
        """Make ``channel`` subscribable by remote clients."""
        with self._lock:
            self._channels[channel.channel_id] = channel

    def _accept_loop(self) -> None:
        while self._running:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._serve_client, args=(connection,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve_client(self, connection: socket.socket) -> None:
        subscription: Optional[Subscription] = None
        send_lock = threading.Lock()
        try:
            request = _recv_frame(connection)
            if request is None:
                return
            channel_id = request.decode()
            with self._lock:
                channel = self._channels.get(channel_id)
            if channel is None:
                _send_frame(connection, b"ERR unknown channel")
                return
            _send_frame(connection, b"OK")
            self.connections_served += 1

            def forward(event: Event) -> None:
                wire = WireFormat.encode(event)
                try:
                    with send_lock:
                        _send_frame(connection, wire)
                except OSError:
                    if subscription is not None:
                        subscription.cancel()

            subscription = channel.subscribe(forward)
            # Block until the client goes away (any inbound data/EOF ends it).
            while self._running:
                if connection.recv(1) == b"":
                    break
        except (OSError, ConnectionError):
            pass
        finally:
            if subscription is not None:
                subscription.cancel()
            try:
                connection.close()
            except OSError:
                pass

    def close(self) -> None:
        """Stop accepting and drop the listener."""
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass


class RemoteChannel:
    """Client-side mirror of a channel served by :class:`ChannelServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        channel_id: str,
        timeout: float = 5.0,
    ) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._socket.settimeout(timeout)
        _send_frame(self._socket, channel_id.encode())
        response = _recv_frame(self._socket)
        if response != b"OK":
            self._socket.close()
            raise ConnectionError(
                f"subscription to {channel_id!r} refused: {response!r}"
            )
        self.mirror = EventChannel(f"{channel_id}@tcp")
        self.events_received = 0
        self.wire_bytes = 0
        self._closed = threading.Event()
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()

    def _read_loop(self) -> None:
        previous = time.perf_counter()
        while not self._closed.is_set():
            try:
                frame = _recv_frame(self._socket)
            except (OSError, ConnectionError):
                break
            if frame is None:
                break
            now = time.perf_counter()
            try:
                event = WireFormat.decode(frame).with_attributes(
                    **{
                        ATTR_TRANSPORT_SECONDS: max(now - previous, 1e-9),
                        ATTR_WIRE_SIZE: len(frame),
                    }
                )
            except (ValueError, KeyError):
                break  # corrupt peer; drop the connection
            previous = now
            self.wire_bytes += len(frame)
            self.mirror.submit_stamped(event)
            # Count only after local delivery completed, so wait_for(n)
            # implies the n-th subscriber callback has already run.
            self.events_received += 1
        self._closed.set()

    def wait_for(self, count: int, timeout: float = 10.0) -> bool:
        """Block until ``count`` events arrived (or timeout); for tests."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.events_received >= count:
                return True
            if self._closed.is_set() and self.events_received < count:
                return False
            time.sleep(0.005)
        return self.events_received >= count

    def close(self) -> None:
        """Disconnect; the reader thread exits."""
        self._closed.set()
        try:
            self._socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._socket.close()
        except OSError:
            pass
        self._reader.join(timeout=2.0)
