"""Real TCP transport for the middleware (deployment substrate).

The simulation bridges model the paper's testbed; this module is the
production counterpart: events cross real sockets, so two processes (or
machines) can run the §3 architecture for real.  The same wire format is
used, the same attributes travel, and the adaptive consumer measures
*actual* transfer times — on a real network the selector adapts to real
conditions with no code changes.

Design (kept deliberately simple and dependency-free):

* :class:`ChannelServer` — listens on a host/port; each client connection
  sends one subscription request frame naming a channel id; the server
  subscribes to that channel on the client's behalf and forwards every
  event as one :class:`~repro.middleware.transport.WireFormat` frame.
  Forwarding runs on a sharded
  :class:`~repro.fabric.broker.EventFabric` (threads mode): each offered
  channel is published into the fabric, every connection registers a
  socket sink on the shard that owns its channel, and all sinks of one
  channel share a single frame encode per event (zero-copy memoryview
  fan-out).  The per-connection thread that remains only watches for
  client EOF — it no longer carries event traffic.
* :class:`RemoteChannel` — connects, subscribes, and replays incoming
  frames into a local mirror :class:`~repro.middleware.channels.EventChannel`
  from a reader thread, annotating each event with its measured transfer
  time and wire size (the same attributes the simulated bridges attach).

Everything on the socket is a :mod:`repro.compression.framing` frame:
the subscription handshake uses empty-header control frames, and events
travel as WireFormat frames (which *are* framing frames — no second
length prefix).  :class:`FrameReader` is the TCP-side incremental parser
and is nothing but the shared :class:`~repro.compression.framing.FrameDecoder`
fed from a socket, so frames produced by any other layer (e.g. a
:class:`~repro.compression.streaming.StreamingCompressor`) parse here too.

Transfer times are observed with ``time.monotonic`` — wall-clock network
measurement, deliberately distinct from the codec-timing site in
:mod:`repro.core.engine` (the one-timing-site invariant covers CPU cost
accounting, not network arrival stamps).

Delivery callbacks on the mirror run on the reader thread; consumers that
need main-thread delivery should hand off through their own queue.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..compression.base import CorruptStreamError
from ..compression.framing import (
    Frame,
    FrameDecoder,
    encode_frame_parts,
    unpack_jumbo_frame,
)
from ..netsim.faults import RetryPolicy
from ..obs.metrics import MetricsRegistry
from .attributes import ATTR_COMPRESSION_METHOD
from .channels import EventChannel, Subscription
from .events import Event
from .transport import ATTR_TRANSPORT_SECONDS, ATTR_WIRE_SIZE, WireFormat

__all__ = ["ChannelServer", "FrameReader", "RemoteChannel"]

_MAX_FRAME = 64 * 1024 * 1024
_RECV_CHUNK = 65536


def _sendall_gathered(sock: socket.socket, parts) -> None:
    """Write a gather list to ``sock`` without concatenating it first.

    ``sendmsg`` takes the buffers as one vectored write; a short write
    (small socket buffers) resumes from the exact byte reached, slicing
    only the straddled part.  Platforms without ``sendmsg`` fall back to
    per-part ``sendall``.
    """
    buffers = [memoryview(part) for part in parts if len(part)]
    if not hasattr(sock, "sendmsg"):
        for part in buffers:
            sock.sendall(part)
        return
    while buffers:
        sent = sock.sendmsg(buffers)
        while sent > 0:
            if sent >= len(buffers[0]):
                sent -= len(buffers[0])
                buffers.pop(0)
            else:
                buffers[0] = buffers[0][sent:]
                sent = 0


def _send_frame(sock: socket.socket, payload: bytes, header: bytes = b"") -> None:
    _sendall_gathered(sock, encode_frame_parts(header, payload))


class FrameReader:
    """Incremental frame parser over a socket (the TCP-path parser).

    A thin pump around the shared
    :class:`~repro.compression.framing.FrameDecoder`: ``recv`` chunks are
    fed in, complete frames come out.  Corrupt framing surfaces as
    :class:`ConnectionError` so socket loops treat it like any other
    dead-peer condition.
    """

    def __init__(self, sock: socket.socket, max_frame_size: int = _MAX_FRAME) -> None:
        self._sock = sock
        self._decoder = FrameDecoder(max_frame_size=max_frame_size)
        self._ready: Deque[Frame] = deque()

    def next_frame(self) -> Optional[Frame]:
        """Block for the next frame; ``None`` on clean EOF."""
        while not self._ready:
            chunk = self._sock.recv(_RECV_CHUNK)
            if not chunk:
                return None
            try:
                self._ready.extend(self._decoder.feed(chunk))
            except CorruptStreamError as exc:
                raise ConnectionError(f"corrupt frame from peer: {exc}") from exc
        return self._ready.popleft()


class ChannelServer:
    """Serves a set of channels to remote subscribers over TCP.

    With a :class:`~repro.obs.metrics.MetricsRegistry` attached, every
    forwarded event lands in channel-labeled counters
    (``repro_tcp_frames_forwarded_total``, ``repro_tcp_wire_bytes_total``)
    alongside a subscription counter — the server-side half of the
    §3 "transport performance information" the IQ layer propagates.

    Forwarding is fabric-routed: offered channels publish into a
    threads-mode :class:`~repro.fabric.broker.EventFabric` (owned by the
    server unless one is passed in), connections register socket sinks
    on the owning shard, and every sink of one channel shares a single
    wire frame per event.  Per-channel delivery order is the shard's
    FIFO order — identical to the old one-thread-per-connection path,
    but with N shard loops instead of one thread per subscriber.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
        fabric: Optional["object"] = None,
        shards: int = 4,
        batch: Optional["object"] = None,
    ) -> None:
        self.registry = registry
        #: Optional :class:`~repro.fabric.batching.BatchConfig`: when set,
        #: each connection's frames coalesce into jumbo super-frames
        #: (fewer syscalls per event at fan-out scale); clients unpack
        #: them transparently in :class:`RemoteChannel`.
        self.batch = batch
        if fabric is None:
            # Imported here, not at module scope: the middleware package
            # must stay importable independent of the fabric package.
            from ..fabric.broker import EventFabric

            fabric = EventFabric(shards=shards, mode="threads", registry=registry)
            self._owns_fabric = True
        else:
            self._owns_fabric = False
        self.fabric = fabric
        self._channels: Dict[str, EventChannel] = {}
        self._taps: Dict[str, Subscription] = {}
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self._running = True
        self._connections: List[Tuple[threading.Thread, socket.socket]] = []
        self._lock = threading.Lock()
        self.connections_served = 0
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        """The (host, port) clients should connect to."""
        return self._listener.getsockname()

    def offer(self, channel: EventChannel) -> None:
        """Make ``channel`` subscribable by remote clients.

        The channel is tapped once: every delivered event is republished
        into the fabric, which fans it out to however many remote
        subscribers the channel has.  Offering twice is idempotent.
        """
        with self._lock:
            if channel.channel_id in self._channels:
                return
            self._channels[channel.channel_id] = channel
        tap = channel.subscribe(
            lambda event, _id=channel.channel_id: self.fabric.publish(_id, event)
        )
        with self._lock:
            self._taps[channel.channel_id] = tap

    def _accept_loop(self) -> None:
        while self._running:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            if not self._running:
                # close() raced with a blocked accept(2): the kernel kept
                # the listening socket alive for the in-flight syscall, so
                # a dial can still land here — refuse it.
                connection.close()
                return
            thread = threading.Thread(
                target=self._serve_client, args=(connection,), daemon=True
            )
            thread.start()
            with self._lock:
                # Prune finished connections so a long-lived server's
                # bookkeeping stays bounded by *live* connections.
                self._connections = [
                    (t, s) for t, s in self._connections if t.is_alive()
                ]
                self._connections.append((thread, connection))

    def _serve_client(self, connection: socket.socket) -> None:
        subscription = None
        send_lock = threading.Lock()
        try:
            request = FrameReader(connection).next_frame()
            if request is None:
                return
            channel_id = str(request.payload, "utf-8")
            with self._lock:
                channel = self._channels.get(channel_id)
            if channel is None:
                _send_frame(connection, b"ERR unknown channel")
                return

            def sink(event, wire) -> None:
                # The fabric hands every sink of this channel the same
                # shared memoryview — one encode per event, not per
                # subscriber.  sendall never mutates, so no copy.  With
                # batching on, ``wire`` is a jumbo super-frame and
                # ``event`` may be None (deadline flush) — never used.
                try:
                    with send_lock:
                        connection.sendall(wire)
                except OSError:
                    if subscription is not None:
                        subscription.cancel()
                    return
                if self.registry is not None:
                    self.registry.counter(
                        "repro_tcp_frames_forwarded_total",
                        help="event frames forwarded to remote subscribers",
                    ).inc(channel=channel_id)
                    self.registry.counter(
                        "repro_tcp_wire_bytes_total",
                        help="frame bytes sent to remote subscribers",
                    ).inc(len(wire), channel=channel_id)

            # Subscribe BEFORE acking: the moment the client sees OK it may
            # submit events, and an ack-then-subscribe window would drop them.
            subscription = self.fabric.subscribe(
                channel_id, sink, wire=True, batch=self.batch
            )
            _send_frame(connection, b"OK")
            self.connections_served += 1
            if self.registry is not None:
                self.registry.counter(
                    "repro_tcp_subscriptions_total", help="accepted remote subscriptions"
                ).inc(channel=channel_id)
            # Block until the client goes away (any inbound data/EOF ends it).
            while self._running:
                if connection.recv(1) == b"":
                    break
        except (OSError, ConnectionError):
            pass
        finally:
            if subscription is not None:
                subscription.cancel()
            try:
                connection.close()
            except OSError:
                pass

    def close(self, timeout: float = 2.0) -> None:
        """Stop accepting, disconnect clients, and join every thread.

        Shutdown is complete, not best-effort: the listener is woken and
        closed, every live client socket is shut down (which unblocks its
        reader thread's ``recv``), and the accept thread plus all
        per-connection reader threads are joined under ``timeout`` — no
        orphaned daemon threads left spinning against closed sockets.
        The owned fabric (if any) is drained and stopped last.
        """
        self._running = False
        try:
            # Wake a blocked accept(2) *before* closing: close() alone
            # leaves the kernel socket accepting while the syscall holds
            # its reference.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=timeout)
        with self._lock:
            connections = list(self._connections)
            self._connections = []
            taps = list(self._taps.values())
            self._taps = {}
        for tap in taps:
            tap.cancel()
        for _, sock in connections:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        for thread, _ in connections:
            thread.join(timeout=timeout)
        if self._owns_fabric:
            self.fabric.close(timeout=timeout)


class RemoteChannel:
    """Client-side mirror of a channel served by :class:`ChannelServer`.

    With ``reconnect=True`` a dropped connection is not fatal: the reader
    thread re-dials the server under ``retry`` (capped exponential
    backoff with deterministic jitter) and **resubscribes** — the
    subscription handshake is part of every connection attempt, so a
    recovered client keeps receiving events with no caller involvement.
    Events published while disconnected are not replayed (channels have
    no history); recovery restores the *subscription*, and reconnect
    counts are observable via ``reconnects`` and the
    ``repro_tcp_reconnects_total`` counter.
    """

    def __init__(
        self,
        host: str,
        port: int,
        channel_id: str,
        timeout: float = 5.0,
        registry: Optional[MetricsRegistry] = None,
        reconnect: bool = False,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.registry = registry
        self._channel_id = channel_id
        self._host = host
        self._port = port
        self._timeout = timeout
        self._reconnect = reconnect
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=5, base_delay=0.05, max_delay=0.5
        )
        self.reconnects = 0
        self._socket, self._frames = self._connect()
        self.mirror = EventChannel(f"{channel_id}@tcp")
        self.events_received = 0
        self.batches_received = 0
        self.wire_bytes = 0
        self._closed = threading.Event()
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()

    def _connect(self) -> Tuple[socket.socket, FrameReader]:
        """Dial and subscribe (the handshake IS the resubscription)."""
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        sock.settimeout(self._timeout)
        frames = FrameReader(sock)
        _send_frame(sock, self._channel_id.encode())
        response = frames.next_frame()
        if response is None or response.payload != b"OK":
            sock.close()
            refusal = None if response is None else response.payload
            raise ConnectionError(
                f"subscription to {self._channel_id!r} refused: {refusal!r}"
            )
        return sock, frames

    def _try_reconnect(self) -> bool:
        """Re-dial + resubscribe under the retry policy (reader thread)."""
        for attempt in range(1, self.retry.max_attempts + 1):
            if self._closed.is_set():
                return False
            try:
                self._socket, self._frames = self._connect()
            except (OSError, ConnectionError):
                if attempt >= self.retry.max_attempts:
                    return False
                # Real wall-clock wait: this is the deployment transport,
                # deliberately outside the virtual-clock discipline (like
                # the time.monotonic arrival stamps below).
                time.sleep(self.retry.backoff(attempt))
                continue
            self.reconnects += 1
            if self.registry is not None:
                self.registry.counter(
                    "repro_tcp_reconnects_total",
                    help="successful reconnect+resubscribe recoveries",
                ).inc(channel=self._channel_id)
            return True
        return False

    def _read_loop(self) -> None:
        previous = time.monotonic()
        while not self._closed.is_set():
            try:
                frame = self._frames.next_frame()
            except (OSError, ConnectionError):
                frame = None
            if frame is None:
                if (
                    self._closed.is_set()
                    or not self._reconnect
                    or not self._try_reconnect()
                ):
                    break
                previous = time.monotonic()
                continue
            now = time.monotonic()
            try:
                # A jumbo super-frame carries many events per socket
                # frame (server-side batching); unpack is zero-copy and
                # transparent — plain frames pass through as themselves.
                members = unpack_jumbo_frame(frame)
            except CorruptStreamError:
                break  # corrupt peer; drop the connection
            if members is not None:
                self.batches_received += 1
            inner_frames = [frame] if members is None else members
            # The measured interval covers the whole socket frame; each
            # member gets an equal share so per-event transport seconds
            # stay additive across a batch.
            seconds_share = max((now - previous) / len(inner_frames), 1e-9)
            try:
                events = [
                    WireFormat.from_frame(inner).with_attributes(
                        **{
                            ATTR_TRANSPORT_SECONDS: seconds_share,
                            ATTR_WIRE_SIZE: inner.wire_size,
                        }
                    )
                    for inner in inner_frames
                ]
            except (ValueError, KeyError):
                break  # corrupt peer; drop the connection
            previous = now
            self.wire_bytes += frame.wire_size
            if self.registry is not None:
                for event in events:
                    method = str(event.attributes.get(ATTR_COMPRESSION_METHOD, "none"))
                    self.registry.counter(
                        "repro_tcp_frames_received_total",
                        help="event frames received from the server",
                    ).inc(channel=self._channel_id, method=method)
                self.registry.counter(
                    "repro_tcp_wire_bytes_received_total",
                    help="frame bytes received from the server",
                ).inc(frame.wire_size, channel=self._channel_id)
            for event in events:
                self.mirror.submit_stamped(event)
                # Count only after local delivery completed, so wait_for(n)
                # implies the n-th subscriber callback has already run.
                self.events_received += 1
        self._closed.set()

    def wait_for(self, count: int, timeout: float = 10.0) -> bool:
        """Block until ``count`` events arrived (or timeout); for tests."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.events_received >= count:
                return True
            if self._closed.is_set() and self.events_received < count:
                return False
            time.sleep(0.005)
        return self.events_received >= count

    def close(self) -> None:
        """Disconnect; the reader thread exits."""
        self._closed.set()
        try:
            self._socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._socket.close()
        except OSError:
            pass
        self._reader.join(timeout=2.0)
