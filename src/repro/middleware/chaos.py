"""Corrupting in-memory transport + reliable delivery for the middleware.

The simulation bridges charge *time* for transfers but never damage the
bytes; this module supplies the hostile wire.  :class:`ChaosWire` is an
in-memory byte pipe that applies a seeded
:class:`~repro.netsim.faults.FaultPlan` to every framed transmission —
dropping, duplicating, reordering, delaying, or byte-corrupting it — and
:class:`ReliableEventLink` is the recovery protocol on top: every event
is framed with a CRC32 (:mod:`repro.compression.framing` v2), corrupt
arrivals are *rejected by the checksum* (never decoded into garbage),
duplicates are deduplicated by sequence, out-of-order arrivals pass
through :class:`~repro.middleware.reassembly.OrderedReassembly`, and
undelivered events are retried under a
:class:`~repro.netsim.faults.RetryPolicy` with capped exponential
backoff + deterministic jitter, every wait charged to the injected clock
(no wall-clock reads anywhere in this module).

All recovery activity is observable: counters land in a
:class:`~repro.obs.metrics.MetricsRegistry` and per-event delivery spans
(with attempt counts) in a :class:`~repro.obs.trace.TraceWriter` when
either is attached.  This is the substrate ``scripts/chaos.py`` drives
to prove byte-exact recovery under every seeded fault plan.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..compression.base import CorruptStreamError
from ..compression.framing import decode_frame
from ..netsim.clock import Clock
from ..netsim.faults import FaultExhaustedError, FaultPlan, RetryPolicy
from ..netsim.link import SimulatedLink
from ..obs.metrics import MetricsRegistry
from ..obs.trace import TraceWriter
from .events import Event
from .reassembly import OrderedReassembly
from .transport import WireFormat

__all__ = ["ChaosWire", "DeliveryError", "ReliableEventLink"]


class DeliveryError(FaultExhaustedError):
    """An event could not be delivered within the retry budget."""


class ChaosWire:
    """An in-memory byte pipe that applies a fault plan per transmission.

    Each :meth:`send` is one wire transmission (indexed for the plan's
    schedule).  Returns the list of byte strings that *arrive* at the
    receiver for that send — possibly empty (drop, or held for
    reordering), possibly two copies (duplicate), possibly damaged
    (corrupt).  A ``reorder`` fault holds the transmission in a slot and
    releases it after the *next* send's arrivals, swapping their order;
    :meth:`flush` releases anything still held.

    Timing: when a :class:`~repro.netsim.link.SimulatedLink` and clock
    are attached, every transmission charges the link's transfer time
    plus any scheduled ``delay`` to the clock — so recovery cost is
    visible to virtual time exactly like real traffic.
    """

    def __init__(
        self,
        plan: FaultPlan,
        link: Optional[SimulatedLink] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.plan = plan
        self.link = link
        self.clock = clock
        self.sends = 0
        self.bytes_sent = 0
        self.seconds_charged = 0.0
        self._held: List[bytes] = []

    def send(self, data: bytes) -> List[bytes]:
        """Transmit ``data`` once; returns what arrives (in arrival order)."""
        index = self.sends
        self.sends += 1
        self.bytes_sent += len(data)
        decision = self.plan.decide(index)
        seconds = decision.delay
        if self.link is not None:
            seconds += self.link.transfer_time(len(data))
        if seconds and self.clock is not None:
            self.clock.advance(seconds)
        self.seconds_charged += seconds
        if decision.dropped:
            arrived: List[bytes] = []
        else:
            copy = (
                self.plan.corrupt(data, index, decision.corrupt_rule)
                if decision.corrupted
                else data
            )
            arrived = [copy, copy] if decision.duplicated else [copy]
        if decision.reordered and arrived:
            self._held.extend(arrived)
            return []
        # Anything held from an earlier reordered send arrives *after*
        # this send's copies — the order swap.
        arrivals = arrived + self._held
        self._held = []
        return arrivals

    def flush(self) -> List[bytes]:
        """Release transmissions still held by reorder faults."""
        held, self._held = self._held, []
        return held


class ReliableEventLink:
    """At-least-once event delivery over a :class:`ChaosWire`, made exactly-once.

    The sender side frames each event (CRC32-checked v2 frames) and
    transmits until the receiver side has accepted it or the retry
    budget is exhausted (:class:`DeliveryError`).  The receiver side
    rejects corrupt frames by checksum, drops duplicates by sequence,
    re-requests damaged fragments through the retry loop, and releases
    events to ``deliver`` strictly in sequence order via
    :class:`~repro.middleware.reassembly.OrderedReassembly`.
    """

    def __init__(
        self,
        wire: ChaosWire,
        deliver: Callable[[Event], None],
        retry: RetryPolicy = RetryPolicy(),
        clock: Optional[Clock] = None,
        first_sequence: int = 1,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[TraceWriter] = None,
    ) -> None:
        self.wire = wire
        self.retry = retry
        self.clock = clock if clock is not None else wire.clock
        self.registry = registry
        self.tracer = tracer
        self.reassembly = OrderedReassembly(
            deliver, first_sequence=first_sequence, request=self._note_rerequest
        )
        self._accepted: set = set()
        self.events_sent = 0
        self.retries = 0
        self.frames_rejected = 0
        self.duplicates_dropped = 0
        self.rerequests = 0
        self.recovery_seconds = 0.0

    # -- observability -----------------------------------------------------------

    def _count(self, name: str, amount: float = 1.0, **labels: str) -> None:
        if self.registry is not None:
            self.registry.counter(
                name, help="reliable-delivery bookkeeping (repro.middleware.chaos)"
            ).inc(amount, **labels)

    def _note_rerequest(self, sequence: int) -> None:
        self.rerequests += 1
        self._count("repro_fragments_rerequested_total")
        if self.tracer is not None:
            self.tracer.event("chaos.rerequest", sequence=sequence)

    # -- the protocol ------------------------------------------------------------

    def _receive(self, arrivals: List[bytes]) -> None:
        """Receiver side: checksum-check, dedupe, and reassemble arrivals."""
        for data in arrivals:
            try:
                frame, _ = decode_frame(data)
                event = WireFormat.from_frame(frame)
            except (CorruptStreamError, ValueError, KeyError) as exc:
                self.frames_rejected += 1
                self._count("repro_frames_rejected_total")
                if self.tracer is not None:
                    self.tracer.event("chaos.frame_rejected", reason=str(exc))
                continue
            if event.sequence in self._accepted:
                self.duplicates_dropped += 1
                self._count("repro_duplicates_dropped_total")
                continue
            self._accepted.add(event.sequence)
            self.reassembly.push(event)

    def send(self, event: Event) -> int:
        """Deliver ``event`` reliably; returns the number of attempts used."""
        wire_bytes = WireFormat.encode(event)
        self.events_sent += 1
        attempt = 1
        while True:
            self._receive(self.wire.send(wire_bytes))
            if event.sequence in self._accepted:
                if self.tracer is not None:
                    self.tracer.span(
                        "chaos.deliver",
                        duration=0.0,
                        sequence=event.sequence,
                        attempts=attempt,
                    )
                return attempt
            if attempt >= self.retry.max_attempts:
                self._count("repro_deliveries_failed_total")
                raise DeliveryError(
                    f"event sequence {event.sequence} undelivered after "
                    f"{attempt} attempts"
                )
            backoff = self.retry.backoff(attempt)
            if self.clock is not None:
                self.clock.advance(backoff)
            self.retries += 1
            self.recovery_seconds += backoff
            self._count("repro_event_retries_total")
            if self.tracer is not None:
                self.tracer.event(
                    "chaos.retry",
                    sequence=event.sequence,
                    attempt=attempt,
                    backoff=backoff,
                )
            attempt += 1

    def close(self) -> List[int]:
        """Flush reorder holds and the reassembly buffer; returns missing seqs."""
        self._receive(self.wire.flush())
        return self.reassembly.flush()
