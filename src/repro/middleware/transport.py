"""Transport encapsulation layer (paper §3.2).

"ECho channels utilize a transport encapsulation layer that efficiently
multiplexes multiple connections from a single address space."

:class:`TransportBridge` carries events from channels in one (simulated)
address space to mirror channels in another, over a single
:class:`~repro.netsim.link.SimulatedLink` shared by all exported channels
— the multiplexing.  Every delivery charges the simulated clock with the
link's transfer time under the current load and annotates the event with
its wire size and transport time, which is exactly the end-to-end signal
the adaptive consumer measures.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..compression.base import CorruptStreamError
from ..compression.framing import (
    Frame,
    decode_frame,
    encode_frame,
    encode_frame_parts,
)
from ..netsim.clock import Clock
from ..netsim.faults import FaultExhaustedError, FaultPlan, RetryPolicy
from ..netsim.link import SimulatedLink
from ..netsim.loadtrace import LoadTrace
from ..netsim.rudp import RateControlledTransport

# RetryPolicy is defined transport-agnostically in repro.netsim.faults and
# re-exported here: middleware recovery (this module, tcp.py, chaos.py)
# shares one backoff contract with the simulated links.
from .channels import EventChannel, Subscription
from .events import Event

__all__ = [
    "ATTR_TRANSPORT_SECONDS",
    "ATTR_WIRE_SIZE",
    "ATTR_TRANSPORT_RETRANSMISSIONS",
    "RetryPolicy",
    "WireFormat",
    "TransportBridge",
    "RudpBridge",
    "TransportStats",
]

ATTR_TRANSPORT_SECONDS = "transport.seconds"
ATTR_WIRE_SIZE = "transport.wire_size"
ATTR_TRANSPORT_RETRANSMISSIONS = "transport.retransmissions"


class WireFormat:
    """Self-describing event encoding used on the wire.

    One :mod:`repro.compression.framing` frame whose header is a JSON
    document carrying channel id, sequence, timestamp, and the attribute
    map (attributes are required to be JSON-encodable — they are globally
    *interpreted*, so opaque objects would defeat the purpose).  The
    event payload is the frame payload; parsing goes through the shared
    frame parser, so any framing-aware peer can recover the event.
    """

    @staticmethod
    def encode(event: Event) -> bytearray:
        """One owned frame buffer for the event (no trailing copy)."""
        return encode_frame(WireFormat._header(event), event.payload)

    @staticmethod
    def encode_parts(event: Event) -> list:
        """The event frame as a gather list for vectored socket writes.

        The payload element is the event's own payload object — a large
        payload never gets copied into a contiguous wire buffer.
        """
        return encode_frame_parts(WireFormat._header(event), event.payload)

    @staticmethod
    def _header(event: Event) -> bytes:
        return json.dumps(
            {
                "channel": event.channel_id,
                "sequence": event.sequence,
                "timestamp": event.timestamp,
                "attributes": event.attributes,
            },
            separators=(",", ":"),
        ).encode()

    @staticmethod
    def from_frame(frame: Frame) -> Event:
        """Reconstruct an event from an already-parsed frame.

        The payload is taken as-is — a view-backed frame yields a
        view-backed event (zero-copy receive); sinks that retain the
        event past the receive buffer's lifetime must copy.
        """
        header = json.loads(frame.header_bytes)
        return Event(
            payload=frame.payload,
            attributes=dict(header["attributes"]),
            channel_id=header["channel"],
            sequence=header["sequence"],
            timestamp=header["timestamp"],
        )

    @staticmethod
    def decode(data: bytes) -> Event:
        frame, _ = decode_frame(data)
        return WireFormat.from_frame(frame)


@dataclass
class TransportStats:
    """Aggregate counters for one bridge."""

    events: int = 0
    wire_bytes: int = 0
    transfer_seconds: float = 0.0
    retries: int = 0
    frames_rejected: int = 0
    per_channel_events: Dict[str, int] = field(default_factory=dict)


class TransportBridge:
    """Moves events between two address spaces over one shared link.

    With a :class:`~repro.netsim.faults.FaultPlan` attached the wire
    becomes hostile: transmissions may be dropped or byte-corrupted
    (corruption is caught by the frame CRC32 — the corrupt event is
    *rejected*, never decoded), and the bridge recovers by retrying
    under ``retry`` with every backoff charged to the injected clock.
    Exhausting the budget raises
    :class:`~repro.netsim.faults.FaultExhaustedError` — faults are loud,
    never silent data loss.

    ``fabric`` (duck-typed: anything with
    :meth:`repro.fabric.broker.EventFabric.defer`) routes each export's
    deliveries onto the shard that owns the local channel id, so bridge
    traffic shares the fabric's per-channel ordering domain instead of
    running on whichever thread submitted the event.
    """

    def __init__(
        self,
        link: SimulatedLink,
        clock: Clock,
        load: Optional[LoadTrace] = None,
        advance_clock: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        fabric: Optional["object"] = None,
    ) -> None:
        self.link = link
        self.clock = clock
        self.load = load
        self.advance_clock = advance_clock
        self.fault_plan = fault_plan
        self.retry = retry if retry is not None else RetryPolicy()
        self.fabric = fabric
        self.stats = TransportStats()
        self._wire_index = 0
        self._exports: List[Tuple[EventChannel, EventChannel, Subscription]] = []

    def export(self, local: EventChannel, remote: Optional[EventChannel] = None) -> EventChannel:
        """Mirror ``local`` into the remote space; returns the mirror channel."""
        mirror = remote if remote is not None else EventChannel(f"{local.channel_id}@remote")

        def forward(event: Event) -> None:
            if self.fabric is not None:
                self.fabric.defer(local.channel_id, lambda: self._deliver(event, mirror))
            else:
                self._deliver(event, mirror)

        subscription = local.subscribe(forward)
        self._exports.append((local, mirror, subscription))
        return mirror

    def unexport(self, local: EventChannel) -> None:
        """Stop mirroring ``local`` (its wire traffic ceases immediately)."""
        remaining = []
        for channel, mirror, subscription in self._exports:
            if channel is local:
                subscription.cancel()
            else:
                remaining.append((channel, mirror, subscription))
        self._exports = remaining

    def exported_channels(self) -> List[str]:
        return [channel.channel_id for channel, _, _ in self._exports]

    def _transmit(self, wire: bytes, connections: float) -> Tuple[float, Optional[bytes]]:
        """One wire transmission: (seconds charged, arrived bytes or None)."""
        seconds = self.link.transfer_time(len(wire), connections)
        if self.fault_plan is None:
            return seconds, wire
        index = self._wire_index
        self._wire_index += 1
        decision = self.fault_plan.decide(index)
        seconds += decision.delay
        if decision.dropped:
            return seconds, None
        if decision.corrupted:
            return seconds, self.fault_plan.corrupt(wire, index, decision.corrupt_rule)
        return seconds, wire

    def _deliver(self, event: Event, mirror: EventChannel) -> None:
        wire = WireFormat.encode(event)
        connections = (
            self.load.connections_at(self.clock.now()) if self.load is not None else 0.0
        )
        attempt = 1
        seconds = 0.0
        while True:
            sent, arrived = self._transmit(wire, connections)
            seconds += sent
            received = None
            if arrived is not None:
                try:
                    # The frame CRC is the integrity gate: corrupt bytes
                    # raise here and are never decoded into an event.
                    received = WireFormat.decode(arrived)
                except (CorruptStreamError, ValueError, KeyError):
                    self.stats.frames_rejected += 1
            if received is not None:
                break
            if attempt >= self.retry.max_attempts:
                if self.advance_clock:
                    self.clock.advance(seconds)
                raise FaultExhaustedError(
                    f"event on {event.channel_id!r} undelivered after "
                    f"{attempt} attempts"
                )
            seconds += self.retry.backoff(attempt)
            self.stats.retries += 1
            attempt += 1
        if self.advance_clock:
            self.clock.advance(seconds)
        self.stats.events += 1
        self.stats.wire_bytes += len(wire)
        self.stats.transfer_seconds += seconds
        self.stats.per_channel_events[event.channel_id] = (
            self.stats.per_channel_events.get(event.channel_id, 0) + 1
        )
        received = received.with_attributes(
            **{ATTR_TRANSPORT_SECONDS: seconds, ATTR_WIRE_SIZE: len(wire)}
        )
        mirror.submit_stamped(received)


class RudpBridge(TransportBridge):
    """A transport bridge running over the IQ-RUDP model (paper ref [14]).

    Events are carried by a :class:`~repro.netsim.rudp.RateControlledTransport`
    instead of the plain link: each delivery pays packetization, pacing,
    and retransmission costs, and the AIMD rate state persists across
    events.  The delivered event additionally carries the per-event
    retransmission count — transport-level information the middleware can
    surface to the application, which is exactly IQ-RUDP's "coordinating
    application adaptation with network transport" premise.
    """

    def __init__(
        self,
        transport: "RateControlledTransport",
        clock: Clock,
        load: Optional[LoadTrace] = None,
        advance_clock: bool = True,
    ) -> None:
        super().__init__(transport.packet_link.link, clock, load=load, advance_clock=advance_clock)
        self.transport = transport

    def _deliver(self, event: Event, mirror: EventChannel) -> None:
        wire = WireFormat.encode(event)
        connections = (
            self.load.connections_at(self.clock.now()) if self.load is not None else 0.0
        )
        report = self.transport.transfer(len(wire), connections)
        if self.advance_clock:
            self.clock.advance(report.elapsed)
        self.stats.events += 1
        self.stats.wire_bytes += len(wire)
        self.stats.transfer_seconds += report.elapsed
        self.stats.per_channel_events[event.channel_id] = (
            self.stats.per_channel_events.get(event.channel_id, 0) + 1
        )
        received = WireFormat.decode(wire).with_attributes(
            **{
                ATTR_TRANSPORT_SECONDS: report.elapsed,
                ATTR_WIRE_SIZE: len(wire),
                ATTR_TRANSPORT_RETRANSMISSIONS: report.retransmissions,
            }
        )
        mirror.submit_stamped(received)
