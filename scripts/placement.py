#!/usr/bin/env python
"""Placement gate: break-even scheduling beats always-producer, byte-exactly.

Two legs, both deterministic:

* **Breakdown leg** — :func:`repro.experiments.placement.placement_breakdown`
  runs the DTSchedule-style time-breakdown matrix (compress / wire /
  relay / decompress) across the paper's four link classes.  Per link
  class the gate asserts:

  - **auto never loses** — the break-even ``auto`` arrangement's modeled
    end-to-end makespan and serial phase sum are no worse than
    always-``producer`` (tiny relative tolerance: on slow links the two
    arrangements tie to the last ulp);
  - **offload signature** — the ``consumer`` bar has *zero* producer-side
    compression (the empty bar that is the whole point of offloading);
  - **byte-exactness** — the ``consumer`` downstream CRC chain equals the
    ``producer`` one: relay-side compression produced the identical wire
    bytes;
  - **determinism** — a second identical run reproduces every cell.

* **Relay leg** — commercial blocks are shipped raw (consumer placement)
  through the hostile middleware wire (:class:`ChaosWire` +
  :class:`ReliableEventLink` under a seeded :class:`FaultPlan`) into a
  :class:`~repro.middleware.relay.CompressionRelay`.  The gate asserts the
  relay's forwarded CRC chain equals :func:`chain_crc` over producer-side
  compression of the same block sequence (byte-exact through faults), that
  a :class:`DecompressionHandler` recovers every original block, and that
  a second identical run is identical.

Every cell lands in a JSON-lines time-breakdown trace (CI uploads it as
the ``placement_breakdown.jsonl`` artifact).

Usage::

    python scripts/placement.py                            # run both legs
    python scripts/placement.py --trace placement.jsonl    # name the trace

Exit status 0 means every assertion held; 1 lists each failure.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.engine import CodecExecutor  # noqa: E402
from repro.data.commercial import CommercialDataGenerator  # noqa: E402
from repro.experiments.placement import (  # noqa: E402
    DEFAULT_INTERFERENCE,
    LINK_CLASSES,
    placement_breakdown,
)
from repro.middleware.chaos import ChaosWire, ReliableEventLink  # noqa: E402
from repro.middleware.events import Event  # noqa: E402
from repro.middleware.handlers import DecompressionHandler  # noqa: E402
from repro.middleware.relay import (  # noqa: E402
    ATTR_PLACEMENT,
    ATTR_RELAY_METHOD,
    CompressionRelay,
    chain_crc,
)
from repro.netsim.clock import VirtualClock  # noqa: E402
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE  # noqa: E402
from repro.netsim.faults import FaultPlan, FaultRule, RetryPolicy  # noqa: E402
from repro.netsim.link import PAPER_LINKS, SimulatedLink  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.obs.trace import TraceWriter  # noqa: E402

#: Breakdown-leg scale: big enough that every placement regime appears
#: (raw wins the intranet links, consumer offload wins the slow ones).
BLOCKS = 12
BLOCK_SIZE = 128 * 1024

#: Relative slack for makespan comparisons — float-summation noise only.
RTOL = 1e-9

#: Relay-leg traffic and fault schedule (seeded, so fully reproducible).
RELAY_BLOCKS = 24
RELAY_BLOCK_SIZE = 8 * 1024
RELAY_METHOD_CYCLE = ("lempel-ziv", "burrows-wheeler", "huffman")
RELAY_FAULT_SEED = 31
RETRY = dict(max_attempts=8, base_delay=0.01, multiplier=2.0, max_delay=0.2)


def _cell_key(cell) -> Tuple:
    """Everything that must reproduce between identical runs."""
    return (
        cell.link,
        cell.mode,
        cell.blocks,
        cell.compress_seconds,
        cell.upstream_seconds,
        cell.relay_seconds,
        cell.downstream_seconds,
        cell.decompress_seconds,
        cell.makespan,
        cell.serial_seconds,
        tuple(sorted(cell.placements.items())),
        cell.downstream_crc32,
    )


def run_breakdown_leg(tracer: TraceWriter) -> List[str]:
    """The DTSchedule matrix plus its per-link-class assertions."""
    failures: List[str] = []
    cells = placement_breakdown(
        total_blocks=BLOCKS,
        block_size=BLOCK_SIZE,
        interference=DEFAULT_INTERFERENCE,
    )
    rerun = placement_breakdown(
        total_blocks=BLOCKS,
        block_size=BLOCK_SIZE,
        interference=DEFAULT_INTERFERENCE,
    )
    if [_cell_key(c) for c in cells] != [_cell_key(c) for c in rerun]:
        failures.append("breakdown matrix differs between identical runs")
    by_key = {(c.link, c.mode): c for c in cells}
    for cell in cells:
        tracer.event(
            "placement.breakdown",
            link=cell.link,
            mode=cell.mode,
            blocks=cell.blocks,
            compress_seconds=cell.compress_seconds,
            upstream_seconds=cell.upstream_seconds,
            relay_seconds=cell.relay_seconds,
            downstream_seconds=cell.downstream_seconds,
            decompress_seconds=cell.decompress_seconds,
            makespan=cell.makespan,
            serial_seconds=cell.serial_seconds,
            placements=dict(sorted(cell.placements.items())),
            downstream_crc32=cell.downstream_crc32,
        )
    for link in LINK_CLASSES:
        producer = by_key[(link, "producer")]
        consumer = by_key[(link, "consumer")]
        auto = by_key[(link, "auto")]
        ok = True
        if auto.makespan > producer.makespan * (1.0 + RTOL):
            ok = False
            failures.append(
                f"{link}: auto makespan {auto.makespan:.6f}s slower than "
                f"always-producer {producer.makespan:.6f}s"
            )
        if auto.serial_seconds > producer.serial_seconds * (1.0 + RTOL):
            ok = False
            failures.append(
                f"{link}: auto serial {auto.serial_seconds:.6f}s slower than "
                f"always-producer {producer.serial_seconds:.6f}s"
            )
        if consumer.compress_seconds != 0.0:
            ok = False
            failures.append(
                f"{link}: consumer arrangement spent "
                f"{consumer.compress_seconds:.6f}s compressing at the producer"
            )
        if consumer.downstream_crc32 != producer.downstream_crc32:
            ok = False
            failures.append(
                f"{link}: consumer downstream CRC {consumer.downstream_crc32:#010x}"
                f" != producer {producer.downstream_crc32:#010x}"
            )
        print(
            f"link={link:14s} producer={producer.makespan:7.3f}s "
            f"auto={auto.makespan:7.3f}s "
            f"auto_placements={dict(sorted(auto.placements.items()))!s:32s} "
            f"{'OK' if ok else 'FAIL'}"
        )
    return failures


def relay_fault_plan(seed: int) -> FaultPlan:
    return FaultPlan(
        [
            FaultRule(kind="drop", probability=0.15),
            FaultRule(kind="corrupt", probability=0.15),
            FaultRule(kind="duplicate", probability=0.1),
            FaultRule(kind="reorder", probability=0.1),
            FaultRule(kind="delay", probability=0.1, delay=0.02),
        ],
        seed=seed,
        name="relay-hostile",
    )


def consumer_events(blocks: List[bytes]) -> List[Event]:
    """The placement-aware producer's output: raw blocks, relay-annotated."""
    return [
        Event(
            payload=block,
            attributes={
                ATTR_PLACEMENT: "consumer",
                ATTR_RELAY_METHOD: RELAY_METHOD_CYCLE[i % len(RELAY_METHOD_CYCLE)],
            },
            channel_id="placement",
            sequence=i + 1,
            timestamp=float(i),
        )
        for i, block in enumerate(blocks)
    ]


def run_relay_once(blocks: List[bytes], tracer: TraceWriter) -> Tuple:
    """One hostile-wire run into the relay; returns the outcome tuple."""
    clock = VirtualClock()
    wire = ChaosWire(
        relay_fault_plan(RELAY_FAULT_SEED),
        link=SimulatedLink(PAPER_LINKS["100mbit"], seed=2),
        clock=clock,
    )
    relay = CompressionRelay(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
    decompressor = DecompressionHandler()
    recovered: List[bytes] = []
    relay.subscribe(lambda event: recovered.append(decompressor(event).payload))
    reliable = ReliableEventLink(
        wire,
        relay,
        retry=RetryPolicy(seed=RELAY_FAULT_SEED, **RETRY),
        registry=MetricsRegistry(),
        tracer=tracer,
    )
    for event in consumer_events(blocks):
        reliable.send(event)
    missing = reliable.close()
    return (
        tuple(missing),
        relay.crc_chain,
        relay.events_forwarded,
        relay.events_compressed,
        relay.bytes_in,
        relay.bytes_out,
        round(relay.relay_seconds, 9),
        reliable.retries,
        reliable.frames_rejected,
        tuple(recovered),
    )


def run_relay_leg(tracer: TraceWriter) -> List[str]:
    """Byte-exact relay compression through a seeded hostile wire."""
    failures: List[str] = []
    blocks = list(
        CommercialDataGenerator(seed=2004).stream(RELAY_BLOCK_SIZE, RELAY_BLOCKS)
    )
    # The chain the producer would have produced for the same sequence.
    executor = CodecExecutor(
        cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, expansion_fallback=True
    )
    producer_payloads = [
        executor.compress(
            RELAY_METHOD_CYCLE[i % len(RELAY_METHOD_CYCLE)], block
        ).payload
        for i, block in enumerate(blocks)
    ]
    expected_chain = chain_crc(producer_payloads)

    first = run_relay_once(blocks, tracer)
    second = run_relay_once(blocks, tracer)
    missing, chain, forwarded, compressed, bytes_in, bytes_out, relay_s, retries, rejected, recovered = first
    if missing:
        failures.append(f"relay leg: sequences never delivered: {list(missing)}")
    if chain != expected_chain:
        failures.append(
            f"relay leg: relay CRC chain {chain:#010x} != producer-side "
            f"chain {expected_chain:#010x}"
        )
    if forwarded != len(blocks) or compressed != len(blocks):
        failures.append(
            f"relay leg: forwarded {forwarded}/compressed {compressed}, "
            f"want {len(blocks)} each"
        )
    if list(recovered) != blocks:
        failures.append("relay leg: decompressed payloads differ from originals")
    if bytes_out >= bytes_in:
        failures.append(
            f"relay leg: no bytes saved ({bytes_in} in, {bytes_out} out)"
        )
    if first != second:
        failures.append("relay leg: outcome differs between identical runs")
    tracer.event(
        "placement.relay",
        blocks=len(blocks),
        crc_chain=chain,
        expected_chain=expected_chain,
        bytes_in=bytes_in,
        bytes_out=bytes_out,
        relay_seconds=relay_s,
        retries=retries,
        frames_rejected=rejected,
        ok=not failures,
    )
    print(
        f"relay: {len(blocks)} blocks through hostile wire  "
        f"chain={chain:#010x} (want {expected_chain:#010x})  "
        f"saved={bytes_in - bytes_out} bytes  retries={retries} "
        f"crc_rejected={rejected}  "
        f"{'OK' if not failures else 'FAIL'}"
    )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace", metavar="PATH", default="placement_breakdown.jsonl",
        help="JSON-lines time-breakdown trace "
        "(default: placement_breakdown.jsonl)",
    )
    args = parser.parse_args(argv)

    failures: List[str] = []
    with open(args.trace, "w", encoding="utf-8") as sink:
        tracer = TraceWriter(sink)
        failures.extend(run_breakdown_leg(tracer))
        failures.extend(run_relay_leg(tracer))
        tracer.event("placement.done", ok=not failures, failures=len(failures))

    if failures:
        print(f"\nFAIL: {len(failures)} placement assertion(s) broken")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: auto placement never loses; relay fan-out is byte-exact")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
