#!/usr/bin/env bash
# Repository check gate: invariants + lint + tier-1 tests.
#
# Gate order (cheapest first, so failures surface fast):
#   1. invariant greps   — clock reads, struct framing, stray print()
#   2. ruff lint         — style/import hygiene (skipped if not installed)
#   3. tier-1 tests      — the full pytest suite (skipped by --fast)
#   4. bench smoke       — deterministic subset vs BENCH_baseline.json
#                          (opt-in via --bench-smoke; same job CI runs)
#   5. chaos gate        — seeded fault-plan matrix with byte-exact
#                          recovery + CRC-rejection proof (opt-in via
#                          --chaos; same job CI runs)
#   6. fuzz gate         — regression-corpus replay, conformance kit,
#                          differential sweep, and a time-boxed seeded
#                          fuzz run (opt-in via --fuzz; same job CI runs)
#   7. placement gate    — break-even placement never loses to
#                          always-producer; relay fan-out byte-exact
#                          through a hostile wire (opt-in via
#                          --placement; same job CI runs)
#
# Usage: scripts/check.sh [--fast] [--bench-smoke] [--chaos] [--fuzz] [--placement]
#   --fast         skip the test suite (invariant grep + lint only)
#   --bench-smoke  also run the deterministic bench subset and gate it
#                  against BENCH_baseline.json (same job CI runs)
#   --chaos        also run scripts/chaos.py (fault injection + recovery)
#   --fuzz         also run scripts/fuzz.py (conformance + differential +
#                  deterministic byte fuzzing, 30s budget)
#   --placement    also run scripts/placement.py (auto-placement vs
#                  always-producer + relay CRC-chain byte-exactness)
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
bench_smoke=0
chaos=0
fuzz=0
placement=0
for arg in "$@"; do
    case "$arg" in
        --fast) fast=1 ;;
        --bench-smoke) bench_smoke=1 ;;
        --chaos) chaos=1 ;;
        --fuzz) fuzz=1 ;;
        --placement) placement=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

# --- Invariant: one timing site -------------------------------------------------
# Codec-cost timing lives in core/engine.py (the CodecExecutor) and the
# netsim calibration/clock substrate — nowhere else.  Every other layer
# (including the worker pool, whose tasks time themselves by calling
# engine.measure) must account for time through the engine, or the
# measured/modeled mode switch silently stops covering it.  The real TCP
# transport may read time.monotonic: actual network transfers are outside
# the modeled-cost domain.  The event fabric gets exactly ONE sanctioned
# loop-time site (_loop_now in fabric/broker.py, threads-mode flush/close
# deadlines), and the placement relay likewise exactly ONE liveness stamp
# (_relay_now in middleware/relay.py) — both enforced as exact counts
# below so a second read cannot sneak in behind the exclusions.
echo "== invariant: clock reads only in core/engine.py, netsim/, middleware/tcp.py, middleware/relay.py, fabric/broker.py"
stray=$(grep -rnE "time\.(perf_counter|monotonic|time)\(" src/repro --include="*.py" \
    | grep -v "src/repro/core/engine.py" \
    | grep -v "src/repro/netsim/" \
    | grep -v "src/repro/middleware/tcp.py" \
    | grep -v "src/repro/middleware/relay.py" \
    | grep -v "src/repro/fabric/broker.py" || true)
if [ -n "$stray" ]; then
    echo "FAIL: clock read outside the sanctioned timing sites:" >&2
    echo "$stray" >&2
    exit 1
fi
broker_reads=$(grep -cE "time\.(perf_counter|monotonic|time)\(" src/repro/fabric/broker.py || true)
if [ "$broker_reads" != "1" ]; then
    echo "FAIL: fabric/broker.py must contain exactly one clock read (_loop_now); found $broker_reads" >&2
    grep -nE "time\.(perf_counter|monotonic|time)\(" src/repro/fabric/broker.py >&2 || true
    exit 1
fi
relay_reads=$(grep -cE "time\.(perf_counter|monotonic|time)\(" src/repro/middleware/relay.py || true)
if [ "$relay_reads" != "1" ]; then
    echo "FAIL: middleware/relay.py must contain exactly one clock read (_relay_now); found $relay_reads" >&2
    grep -nE "time\.(perf_counter|monotonic|time)\(" src/repro/middleware/relay.py >&2 || true
    exit 1
fi
echo "ok"

# --- Invariant: one frame parser ------------------------------------------------
# All wire parsing goes through repro.compression.framing.parse_frame;
# struct-based length prefixes must not reappear in the transports.
echo "== invariant: no struct-based framing in middleware"
stray=$(grep -rn "struct.unpack\|struct.pack" src/repro/middleware --include="*.py" || true)
if [ -n "$stray" ]; then
    echo "FAIL: raw struct framing in middleware (use repro.compression.framing):" >&2
    echo "$stray" >&2
    exit 1
fi
echo "ok"

# --- Invariant: zero-copy hot paths -------------------------------------------
# The framing codec, the block cache, and the frame batcher are the wire
# hot paths: a bytes() materialization there silently reintroduces the
# per-frame copies the zero-copy work removed.  Every deliberate copy
# must carry a "copy-ok" annotation (same line or the comment block
# directly above, within 3 lines) explaining why the copy is owed.
# to_bytes()/from_bytes()/*_bytes() int-conversion calls are not copies
# and are excluded by the leading-character class.
echo "== invariant: no unannotated bytes() copies in zero-copy hot paths"
stray=$(awk '
    {
        if ($0 ~ /(^|[^_A-Za-z.])bytes\(/ && $0 !~ /copy-ok/) {
            if (license > 0) license = 0  # one annotation covers one copy
            else print FILENAME ":" FNR ": " $0
        }
        if ($0 ~ /copy-ok/) license = 3
        else if (license > 0) license--
    }
' src/repro/compression/framing.py src/repro/fabric/cache.py src/repro/fabric/batching.py)
if [ -n "$stray" ]; then
    echo "FAIL: unannotated bytes() copy on a zero-copy hot path (annotate with # copy-ok: <reason> if the copy is owed):" >&2
    echo "$stray" >&2
    exit 1
fi
echo "ok"

# --- Invariant: no print() in the library -------------------------------------
# Diagnostics go through repro.obs (metrics/traces) or logging; stdout
# belongs to the CLI alone.  Only cli.py and __main__.py may print.
echo "== invariant: no print( in src/repro outside cli.py/__main__.py"
stray=$(grep -rn "print(" src/repro --include="*.py" \
    | grep -v "src/repro/cli.py" \
    | grep -v "src/repro/__main__.py" || true)
if [ -n "$stray" ]; then
    echo "FAIL: print() in library code (route through repro.obs or logging):" >&2
    echo "$stray" >&2
    exit 1
fi
echo "ok"

# --- Lint -----------------------------------------------------------------------
if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check"
    ruff check src tests
else
    echo "== ruff not installed; skipping lint"
fi

# --- Tier-1 tests ---------------------------------------------------------------
if [ "$fast" -eq 1 ]; then
    echo "== --fast: skipping test suite"
else
    echo "== tier-1 test suite"
    PYTHONPATH=src python -m pytest -x -q
fi

# --- Bench smoke gate -----------------------------------------------------------
if [ "$bench_smoke" -eq 1 ]; then
    echo "== bench smoke (deterministic subset vs BENCH_baseline.json)"
    python scripts/bench_smoke.py
fi

# --- Chaos gate -----------------------------------------------------------------
if [ "$chaos" -eq 1 ]; then
    echo "== chaos gate (seeded fault plans, byte-exact recovery)"
    python scripts/chaos.py --trace chaos_trace.jsonl
fi

# --- Fuzz gate ------------------------------------------------------------------
if [ "$fuzz" -eq 1 ]; then
    echo "== fuzz gate (conformance + differential + seeded byte fuzzing)"
    python scripts/fuzz.py --budget 30s --artifact fuzz_crashes.jsonl
fi

# --- Placement gate -------------------------------------------------------------
if [ "$placement" -eq 1 ]; then
    echo "== placement gate (auto vs always-producer, relay byte-exactness)"
    python scripts/placement.py --trace placement_breakdown.jsonl
fi
