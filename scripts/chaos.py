#!/usr/bin/env python
"""Seeded chaos gate: byte-exact recovery under a matrix of fault plans.

Replays fig08-style traffic — commercial blocks, per-block compression
with a cycling method — through the hostile middleware wire
(:class:`~repro.middleware.chaos.ChaosWire` +
:class:`~repro.middleware.chaos.ReliableEventLink`) under a matrix of
seeded :class:`~repro.netsim.faults.FaultPlan`\\ s, and through the
simulation path (:class:`~repro.netsim.faults.FaultyLink` wrapping the
fig08 replay).  For every (plan, seed) cell the gate asserts:

* **byte-exact recovery** — every delivered payload equals the payload
  sent, in sequence order, with nothing missing;
* **bounded retries** — total retries stay within the per-event budget
  of the :class:`~repro.netsim.faults.RetryPolicy`;
* **determinism** — a second identical run produces the identical
  outcome tuple (retries, rejections, duplicates, virtual clock);
* **CRC proof** — the corrupting plans must show ``frames_rejected > 0``
  (damage is rejected by the frame checksum, never decoded).

Every fault/retry/recovery event is written to a JSON-lines trace (CI
uploads it as an artifact when the gate fails).

Usage::

    python scripts/chaos.py                      # run the full matrix
    python scripts/chaos.py --trace chaos.jsonl  # also write the trace
    python scripts/chaos.py --list               # show the plan matrix

Exit status 0 means every cell recovered; 1 lists each failed assertion.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.compression.registry import get_codec  # noqa: E402
from repro.data.commercial import CommercialDataGenerator  # noqa: E402
from repro.experiments.config import ReplayConfig  # noqa: E402
from repro.experiments.replay import commercial_blocks, run_replay  # noqa: E402
from repro.middleware.chaos import ChaosWire, ReliableEventLink  # noqa: E402
from repro.middleware.events import Event  # noqa: E402
from repro.netsim.clock import VirtualClock  # noqa: E402
from repro.netsim.faults import FaultPlan, FaultRule, RetryPolicy  # noqa: E402
from repro.netsim.link import PAPER_LINKS, SimulatedLink  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.obs.trace import TraceWriter  # noqa: E402

#: fig08-style traffic: commercial blocks, methods cycling like the
#: adaptive selector does across the load trace.
BLOCK_SIZE = 8 * 1024
BLOCK_COUNT = 24
METHOD_CYCLE = ("lempel-ziv", "burrows-wheeler", "huffman", "none")

#: Every plan runs under each seed; determinism is checked per cell.
SEEDS = (11, 29)

#: Retry budget: generous enough that every plan below recovers, tight
#: enough that runaway retry loops fail the gate.
RETRY = dict(max_attempts=8, base_delay=0.01, multiplier=2.0, max_delay=0.2)


def plan_matrix(seed: int) -> List[FaultPlan]:
    """The fault-plan matrix, freshly instantiated for ``seed``."""
    return [
        FaultPlan([], seed=seed, name="clean"),
        FaultPlan(
            [FaultRule(kind="drop", probability=0.2)],
            seed=seed, name="drop-20pct",
        ),
        FaultPlan(
            [FaultRule(kind="corrupt", probability=0.25)],
            seed=seed, name="corrupt-25pct",
        ),
        FaultPlan(
            [
                FaultRule(kind="duplicate", probability=0.2),
                FaultRule(kind="reorder", probability=0.15),
            ],
            seed=seed, name="dup-reorder",
        ),
        FaultPlan(
            [
                FaultRule(kind="drop", first=0, last=3),
                FaultRule(kind="delay", probability=0.3, delay=0.05),
            ],
            seed=seed, name="burst-then-delay",
        ),
        FaultPlan(
            [
                FaultRule(kind="drop", probability=0.1),
                FaultRule(kind="corrupt", probability=0.1),
                FaultRule(kind="duplicate", probability=0.1),
                FaultRule(kind="reorder", probability=0.1),
                FaultRule(kind="delay", probability=0.1, delay=0.02),
            ],
            seed=seed, name="kitchen-sink",
        ),
    ]


#: Plans whose runs must prove the CRC rejects damaged frames.
CORRUPTING_PLANS = ("corrupt-25pct", "kitchen-sink")


def fig08_events() -> List[Event]:
    """Commercial blocks compressed with a cycling method, as events."""
    generator = CommercialDataGenerator(seed=2004)
    events = []
    for index, block in enumerate(generator.stream(BLOCK_SIZE, BLOCK_COUNT)):
        method = METHOD_CYCLE[index % len(METHOD_CYCLE)]
        payload = get_codec(method).compress(block)
        events.append(
            Event(
                payload=payload,
                attributes={"method": method},
                channel_id="fig08",
                sequence=index + 1,
                timestamp=float(index),
            )
        )
    return events


def run_cell(
    plan: FaultPlan, seed: int, events: List[Event], tracer: TraceWriter
) -> Tuple:
    """One (plan, seed) run; returns the deterministic outcome tuple."""
    clock = VirtualClock()
    link = SimulatedLink(PAPER_LINKS["100mbit"], seed=2)
    wire = ChaosWire(plan, link=link, clock=clock)
    delivered: List[Event] = []
    reliable = ReliableEventLink(
        wire,
        delivered.append,
        retry=RetryPolicy(seed=seed, **RETRY),
        registry=MetricsRegistry(),
        tracer=tracer,
    )
    attempts = [reliable.send(event) for event in events]
    missing = reliable.close()

    failures = []
    if missing:
        failures.append(f"sequences never delivered: {missing}")
    got = [(e.sequence, e.payload) for e in delivered]
    want = [(e.sequence, e.payload) for e in events]
    if got != want:
        failures.append(
            "delivered payloads are not byte-exact/in-order "
            f"(got {len(got)} events, want {len(want)})"
        )
    budget = len(events) * (RETRY["max_attempts"] - 1)
    if reliable.retries > budget:
        failures.append(f"retries {reliable.retries} exceed budget {budget}")
    if max(attempts) > RETRY["max_attempts"]:
        failures.append(f"an event used {max(attempts)} attempts")
    if plan.name in CORRUPTING_PLANS and reliable.frames_rejected == 0:
        failures.append("corrupting plan produced no CRC rejections")
    if plan.name == "clean" and reliable.retries:
        failures.append(f"clean plan retried {reliable.retries} times")
    outcome = (
        plan.counts.copy(),
        reliable.retries,
        reliable.frames_rejected,
        reliable.duplicates_dropped,
        reliable.rerequests,
        round(reliable.recovery_seconds, 9),
        round(clock.now(), 9),
        attempts,
    )
    return outcome, failures


def run_replay_leg(seed: int) -> Tuple:
    """The simulation path: fig08 replay over a FaultyLink."""
    config = ReplayConfig(
        block_count=16,
        production_interval=0.0,
        fault_plan=FaultPlan(
            [
                FaultRule(kind="drop", probability=0.2),
                FaultRule(kind="delay", probability=0.2, delay=0.1),
            ],
            seed=seed,
            name="replay-leg",
        ),
    )
    result = run_replay(commercial_blocks(config), config)
    return (
        tuple(r.method for r in result.records),
        result.total_compressed_bytes,
        round(result.total_time, 9),
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace", metavar="PATH", default="chaos_trace.jsonl",
        help="JSON-lines fault/retry/recovery trace (default: chaos_trace.jsonl)",
    )
    parser.add_argument(
        "--list", action="store_true", help="print the plan matrix and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for plan in plan_matrix(SEEDS[0]):
            rules = ", ".join(r.kind for r in plan.rules) or "no rules"
            print(f"{plan.name:18s} {rules}")
        return 0

    events = fig08_events()
    failures: List[str] = []
    with open(args.trace, "w", encoding="utf-8") as sink:
        tracer = TraceWriter(sink)
        for seed in SEEDS:
            for plan_index, plan in enumerate(plan_matrix(seed)):
                tracer.event("chaos.cell", plan=plan.name, seed=seed)
                first, cell_failures = run_cell(plan, seed, events, tracer)
                # Determinism: an identical fresh run must match exactly.
                rerun_plan = plan_matrix(seed)[plan_index]
                second, _ = run_cell(rerun_plan, seed, events, tracer)
                if first != second:
                    cell_failures.append("outcome differs between identical runs")
                counts, retries, rejected, dups, rerequests, _, clock_s, _ = first
                injected = {k: v for k, v in counts.items() if v}
                print(
                    f"plan={plan.name:18s} seed={seed:3d} "
                    f"injected={sum(counts.values()):3d} retries={retries:3d} "
                    f"crc_rejected={rejected:3d} dups_dropped={dups:3d} "
                    f"virtual_s={clock_s:9.3f}  "
                    f"{'OK' if not cell_failures else 'FAIL'}"
                )
                tracer.event(
                    "chaos.cell_result",
                    plan=plan.name,
                    seed=seed,
                    injected=injected,
                    retries=retries,
                    frames_rejected=rejected,
                    duplicates_dropped=dups,
                    rerequests=rerequests,
                    ok=not cell_failures,
                )
                failures.extend(
                    f"[{plan.name} seed={seed}] {f}" for f in cell_failures
                )
        # Simulation leg: the fig08 replay itself over a FaultyLink.
        for seed in SEEDS:
            first = run_replay_leg(seed)
            second = run_replay_leg(seed)
            ok = first == second
            print(
                f"plan=replay-leg        seed={seed:3d} methods={len(first[0]):3d} "
                f"virtual_s={first[2]:9.3f}  {'OK' if ok else 'FAIL'}"
            )
            tracer.event(
                "chaos.replay_leg", seed=seed, total_time=first[2], ok=ok
            )
            if not ok:
                failures.append(
                    f"[replay-leg seed={seed}] replay outcome not deterministic"
                )

    print(f"trace -> {args.trace}")
    if failures:
        print(f"\nchaos gate FAILED ({len(failures)} assertion(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("chaos gate OK: byte-exact recovery under every seeded plan")
    return 0


if __name__ == "__main__":
    sys.exit(main())
