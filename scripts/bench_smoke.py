#!/usr/bin/env python
"""Deterministic smoke benchmark + regression gate (the CI bench job).

Runs a fixed subset of the benchmark suite whose numbers are exact
run-to-run — the Figure 1 decision-table sweep and the Figure 8
commercial replay in modeled-cost mode — emits a
:mod:`repro.obs.benchfmt` report, and compares it against the committed
``BENCH_baseline.json`` with the baseline's tolerance bands (10% on
scalar aggregates, exact on deterministic series checksums).

Usage::

    python scripts/bench_smoke.py                      # run + gate
    python scripts/bench_smoke.py --out PR.json        # also save candidate
    python scripts/bench_smoke.py --write-baseline     # refresh the baseline

Exit status 0 means no gated regression; 1 means the gate fired (the
output lists each violated band); 2 means the baseline is missing.
"""

from __future__ import annotations

import argparse
import os
import sys
import zlib
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.compression.framing import (  # noqa: E402
    encode_frame,
    encode_frame_parts,
    parse_frame,
)
from repro.compression.registry import get_codec  # noqa: E402
from repro.core.bicriteria import (  # noqa: E402
    CandidateSpec,
    codec_for,
    default_candidates,
    evaluate_candidates,
    pareto_frontier,
    select_point,
)
from repro.core.decision import DecisionInputs, DecisionThresholds, select_method  # noqa: E402
from repro.core.engine import BlockEngine, CodecExecutor, measure_callable  # noqa: E402
from repro.core.monitor import ReducingSpeedMonitor  # noqa: E402
from repro.core.workers import PipelinedBlockEngine, WorkerPool, simulate_pipeline  # noqa: E402
from repro.data.commercial import CommercialDataGenerator  # noqa: E402
from repro.experiments.config import ReplayConfig  # noqa: E402
from repro.experiments.placement import (  # noqa: E402
    DEFAULT_INTERFERENCE,
    placement_breakdown,
)
from repro.experiments.replay import commercial_blocks, make_policy, run_replay  # noqa: E402
from repro.fabric.loadgen import FanoutConfig, run_fanout  # noqa: E402
from repro.middleware.chaos import ChaosWire, ReliableEventLink  # noqa: E402
from repro.middleware.events import Event  # noqa: E402
from repro.netsim.clock import VirtualClock  # noqa: E402
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE  # noqa: E402
from repro.netsim.faults import FaultPlan, FaultRule, RetryPolicy  # noqa: E402
from repro.netsim.link import PAPER_LINKS, SimulatedLink  # noqa: E402
from repro.obs.benchfmt import BenchReport, compare_reports, load_report  # noqa: E402
from repro.obs.block import BlockTelemetry  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "BENCH_baseline.json"

#: The same scaled-down replay the figure benchmarks share (64 blocks
#: over the 160 s trace keeps every regime transition).
SMOKE_REPLAY = ReplayConfig(block_count=64, production_interval=2.5)

#: Pool throughput scenario: 64 commercial blocks of 8 KB through
#: Burrows-Wheeler on 4 workers with the default bounded queue.
POOL_BLOCK_SIZE = 8 * 1024
POOL_BLOCK_COUNT = 64
POOL_WORKERS = 4
POOL_QUEUE_DEPTH = 8

#: Decision-table sweep axes: spans the "compress at all" knee, the
#: Burrows-Wheeler slack knee, and the sampled-ratio gate.
SENDING_TIMES = (0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0)
LZ_SPEEDS = (1e5, 5e5, 1.4e6, 5e6, 2e7)
SAMPLED_RATIOS = (None, 0.2, 0.35, 0.6, 0.9)

#: Chaos recovery scenario (non-gating): 32 events through the seeded
#: kitchen-sink fault plan, recovered by ReliableEventLink.
CHAOS_EVENT_COUNT = 32
CHAOS_EVENT_SIZE = 4 * 1024
CHAOS_SEED = 11

#: Fan-out gate scenario: the loadgen defaults — 1024 Zipf-skewed
#: subscribers over 64 channels sharing 8 (method, params) choices.
FANOUT_CONFIG = FanoutConfig()

#: Bicriteria gate: Figure 5's four link classes, a short paced
#: commercial replay per class, and a tight space budget on the slow link.
LINK_CLASSES = ("1gbit", "100mbit", "1mbit", "international")
BICRITERIA_REPLAY = ReplayConfig(block_count=24, production_interval=2.5)
BICRITERIA_BUDGET = 0.5

#: Raw-path gate geometry: payloads large enough that the copying path's
#: O(n) memcpy work dwarfs the zero-copy path's O(1) bookkeeping (the
#: measured gap is >40x here, so the 2.0x gate has a wide noise margin).
RAW_HEADER = b"bench/raw"
RAW_PAYLOAD_SIZE = 256 * 1024
RAW_FRAME_LOOPS = 40
RAW_FRAME_REPEATS = 9
RAW_CODEC_BLOCK = 16 * 1024
RAW_CODECS = ("huffman", "lempel-ziv", "burrows-wheeler", "lzw")

#: Placement break-even scenario: the DTSchedule-style matrix at a scale
#: small enough for the smoke job, large enough that both regimes appear
#: (raw wins the intranet links, consumer offload wins the slow ones).
PLACEMENT_BLOCKS = 8
PLACEMENT_BLOCK_SIZE = 128 * 1024

#: Structured-codec gate geometry: one engine-sized block of each
#: structured workload, the generic field the template codec must beat,
#: and the minimum ratio win that makes the codec family worth carrying.
STRUCTURED_BLOCK_SIZE = 64 * 1024
STRUCTURED_SEED = 2004
STRUCTURED_RIVALS = ("huffman", "arithmetic", "lempel-ziv", "lzw", "burrows-wheeler")
STRUCTURED_MIN_WIN = 1.3

#: Metrics the raw-path work is never allowed to regress, one-sided.
#: The placement entry ratchets the fast-LAN auto arrangement: modeled
#: end-to-end seconds on 1gbit may improve but never regress.
RAW_RATCHETS = (("pool.pooled_mb_per_s", "higher"),
                ("fig08.compression_seconds_total", "lower"),
                ("placement_breakeven.1gbit.auto_seconds", "lower"))


def _crc(parts) -> int:
    return zlib.crc32(",".join(str(p) for p in parts).encode())


def fig01_decision_sweep(report: BenchReport) -> None:
    """Exact: the selector's verdict over a fixed input grid."""
    thresholds = DecisionThresholds()
    decisions = []
    for sending_time in SENDING_TIMES:
        for lz_speed in LZ_SPEEDS:
            for ratio in SAMPLED_RATIOS:
                decision = select_method(
                    DecisionInputs(
                        block_size=128 * 1024,
                        sending_time=sending_time,
                        lz_reducing_speed=lz_speed,
                        sampled_ratio=ratio,
                    ),
                    thresholds,
                )
                decisions.append(decision.method)
    report.record(
        "fig01.decision_grid_size", len(decisions), unit="decisions",
        better="near", tolerance=0.0,
    )
    report.record(
        "fig01.decisions_crc32", _crc(decisions), unit="crc32",
        better="near", tolerance=0.0,
    )
    for method in ("none", "huffman", "lempel-ziv", "burrows-wheeler"):
        report.record(
            f"fig01.decision_count.{method}", decisions.count(method),
            unit="decisions", better="near", tolerance=0.0,
        )


def fig08_replay(report: BenchReport) -> None:
    """Deterministic modeled-cost replay, observed through BlockTelemetry."""
    telemetry = BlockTelemetry(registry=MetricsRegistry(), channel="smoke")
    result = run_replay(
        commercial_blocks(SMOKE_REPLAY), SMOKE_REPLAY, observers=[telemetry]
    )
    methods = [r.method for r in result.records]
    sizes = [r.compressed_size for r in result.records]
    # Telemetry must mirror the replay exactly — observability adds zero
    # behavioral drift, and the gate enforces it on every PR.
    if telemetry.method_series() != methods or telemetry.compressed_size_series() != sizes:
        raise AssertionError("BlockTelemetry series diverged from the replay records")

    report.record(
        "fig08.blocks", len(result.records), unit="blocks",
        better="near", tolerance=0.0,
    )
    report.record(
        "fig08.method_series_crc32", _crc(methods), unit="crc32",
        better="near", tolerance=0.0,
    )
    report.record(
        "fig08.compressed_size_crc32", _crc(sizes), unit="crc32",
        better="near", tolerance=0.0,
    )
    report.record(
        "fig08.compressed_bytes", result.total_compressed_bytes, unit="bytes",
        better="lower", tolerance=0.10,
    )
    report.record(
        "fig08.overall_ratio", result.overall_ratio, unit="ratio",
        better="lower", tolerance=0.10,
    )
    report.record(
        "fig08.compression_seconds_total", result.total_compression_time,
        unit="seconds", better="lower", tolerance=0.10,
    )
    report.record(
        "fig08.total_time", result.total_time, unit="seconds",
        better="lower", tolerance=0.10,
    )
    counts = result.method_counts()
    for method in ("none", "huffman", "lempel-ziv", "burrows-wheeler"):
        report.record(
            f"fig08.method_count.{method}", counts.get(method, 0),
            unit="blocks", better="near", tolerance=0.10,
        )


def pool_throughput(report: BenchReport) -> None:
    """Multi-core pipeline gate: modeled ≥2x speedup + real-pool wire identity.

    Per-block compression seconds come from the calibrated cost model on
    the SUN_FIRE CPU and send seconds from the nominal 100 MBit line, so
    the serial-vs-pooled comparison is exact run-to-run (the repo's one
    bench requirement).  The 4-worker schedule is computed by
    ``simulate_pipeline``; the wire bytes, however, come from a *real*
    process-pool run, checksummed against the serial engine's output —
    the pool must never change a single byte.
    """
    blocks = list(
        CommercialDataGenerator(seed=2004).stream(POOL_BLOCK_SIZE, POOL_BLOCK_COUNT)
    )
    data = b"".join(blocks)
    serial_engine = BlockEngine(
        CodecExecutor(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE),
        block_size=POOL_BLOCK_SIZE,
    )
    serial_out = serial_engine.run(data, method="burrows-wheeler")
    compression_seconds = [stats.compression_seconds for _, stats in serial_out]
    wire_rate = PAPER_LINKS["100mbit"].throughput
    send_seconds = [len(payload) / wire_rate for payload, _ in serial_out]
    schedule = simulate_pipeline(
        compression_seconds, send_seconds,
        workers=POOL_WORKERS, queue_depth=POOL_QUEUE_DEPTH,
    )
    serial_crc = zlib.crc32(b"".join(payload for payload, _ in serial_out))

    with WorkerPool(workers=POOL_WORKERS, mode="processes") as pool:
        pooled_engine = PipelinedBlockEngine(
            CodecExecutor(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, pool=pool),
            block_size=POOL_BLOCK_SIZE,
            pool=pool,
            queue_depth=POOL_QUEUE_DEPTH,
        )
        pooled_out = pooled_engine.run(data, method="burrows-wheeler")
    pooled_crc = zlib.crc32(b"".join(payload for payload, _ in pooled_out))
    if pooled_crc != serial_crc:
        raise AssertionError(
            f"pooled wire bytes diverged from serial "
            f"(crc {pooled_crc:#010x} != {serial_crc:#010x})"
        )
    if schedule.speedup < 2.0:
        raise AssertionError(
            f"pooled throughput only {schedule.speedup:.2f}x serial (< 2.0x gate)"
        )

    megabytes = len(data) / (1 << 20)
    report.record(
        "pool.serial_mb_per_s", megabytes / schedule.serial_seconds, unit="MB/s",
        better="higher", tolerance=0.05,
    )
    report.record(
        "pool.pooled_mb_per_s", megabytes / schedule.makespan, unit="MB/s",
        better="higher", tolerance=0.05,
    )
    report.record(
        "pool.speedup", schedule.speedup, unit="x",
        better="higher", tolerance=0.05,
    )
    report.record(
        "pool.overlap_fraction", schedule.overlap_fraction, unit="fraction",
        better="higher", tolerance=0.05,
    )
    report.record(
        "pool.wire_crc32_serial", serial_crc, unit="crc32",
        better="near", tolerance=0.0,
    )
    report.record(
        "pool.wire_crc32_pooled", pooled_crc, unit="crc32",
        better="near", tolerance=0.0,
    )


def chaos_recovery(report: BenchReport) -> None:
    """Non-gating (kind="timing"): recovery cost under seeded chaos.

    Replays commercial-data events through a kitchen-sink fault plan on
    the hostile in-memory wire and records what recovery cost: retries,
    CRC rejections, and the virtual seconds the faults added.  Byte-exact
    delivery is *asserted* here (a failure aborts the bench run), but the
    recorded magnitudes are informational — ``compare_reports`` gates
    only ``kind="deterministic"`` metrics, so these track drift without
    failing CI (the hard pass/fail chaos gate is ``scripts/chaos.py``).
    """
    plan = FaultPlan(
        [
            FaultRule(kind="drop", probability=0.1),
            FaultRule(kind="corrupt", probability=0.1),
            FaultRule(kind="duplicate", probability=0.1),
            FaultRule(kind="delay", probability=0.1, delay=0.02),
        ],
        seed=CHAOS_SEED,
        name="bench-kitchen-sink",
    )
    generator = CommercialDataGenerator(seed=2004)
    events = [
        Event(payload=block, channel_id="bench", sequence=i + 1, timestamp=float(i))
        for i, block in enumerate(generator.stream(CHAOS_EVENT_SIZE, CHAOS_EVENT_COUNT))
    ]
    clock = VirtualClock()
    wire = ChaosWire(
        plan, link=SimulatedLink(PAPER_LINKS["100mbit"], seed=2), clock=clock
    )
    delivered = []
    reliable = ReliableEventLink(
        wire,
        delivered.append,
        retry=RetryPolicy(max_attempts=8, base_delay=0.01, max_delay=0.2, seed=CHAOS_SEED),
    )
    for event in events:
        reliable.send(event)
    missing = reliable.close()
    if missing or [e.payload for e in delivered] != [e.payload for e in events]:
        raise AssertionError("chaos recovery was not byte-exact; run scripts/chaos.py")

    report.record(
        "chaos_recovery.events", len(events), unit="events",
        better="near", tolerance=0.0, kind="timing",
    )
    report.record(
        "chaos_recovery.faults_injected", sum(plan.counts.values()), unit="faults",
        better="near", tolerance=0.25, kind="timing",
    )
    report.record(
        "chaos_recovery.retries", reliable.retries, unit="retries",
        better="lower", tolerance=0.25, kind="timing",
    )
    report.record(
        "chaos_recovery.frames_rejected", reliable.frames_rejected, unit="frames",
        better="near", tolerance=0.25, kind="timing",
    )
    report.record(
        "chaos_recovery.recovery_seconds", reliable.recovery_seconds, unit="seconds",
        better="lower", tolerance=0.25, kind="timing",
    )
    report.record(
        "chaos_recovery.virtual_seconds", clock.now(), unit="seconds",
        better="lower", tolerance=0.25, kind="timing",
    )


def fanout_throughput(report: BenchReport) -> None:
    """Fan-out gate: ≥1k subscribers, ≤8 configs — compress-once must win.

    Runs the Zipf-skewed fan-out scenario (1024 subscribers over 64
    channels, 8 distinct ``(method, params)`` choices) through the inline
    sharded fabric and against the per-subscriber-compression baseline.
    Everything is modeled-cost over deterministic link means, so the
    numbers are exact run-to-run.  Hard gates (abort the bench run):

    * every delivered frame byte-identical to the serial path
      (per-subscriber CRC32 chains must match),
    * block-cache hit rate ≥ 0.90,
    * delivered events/second ≥ 3x the per-subscriber baseline.
    """
    result = run_fanout(FANOUT_CONFIG)
    if not result.crc_ok:
        raise AssertionError(
            "fabric fan-out delivered different bytes than the serial path"
        )
    if result.cache_hit_rate < 0.90:
        raise AssertionError(
            f"block-cache hit rate {result.cache_hit_rate:.3f} < 0.90 gate"
        )
    if result.speedup < 3.0:
        raise AssertionError(
            f"fan-out throughput only {result.speedup:.2f}x baseline (< 3.0x gate)"
        )

    report.record(
        "fanout.subscribers", result.subscribers, unit="subscribers",
        better="near", tolerance=0.0,
    )
    report.record(
        "fanout.deliveries", result.deliveries, unit="events",
        better="near", tolerance=0.0,
    )
    report.record(
        "fanout.wire_crc32", result.wire_crc32, unit="crc32",
        better="near", tolerance=0.0,
    )
    report.record(
        "fanout.codec_runs", result.fabric_compressions, unit="runs",
        better="lower", tolerance=0.0,
    )
    report.record(
        "fanout.baseline_codec_runs", result.baseline_compressions, unit="runs",
        better="near", tolerance=0.0,
    )
    report.record(
        "fanout.cache_hit_rate", result.cache_hit_rate, unit="fraction",
        better="higher", tolerance=0.02,
    )
    report.record(
        "fanout.events_per_second", result.fabric_events_per_second, unit="events/s",
        better="higher", tolerance=0.05,
    )
    report.record(
        "fanout.baseline_events_per_second", result.baseline_events_per_second,
        unit="events/s", better="higher", tolerance=0.05,
    )
    report.record(
        "fanout.speedup", result.speedup, unit="x",
        better="higher", tolerance=0.05,
    )
    report.record(
        "fanout.shard_events_crc32", _crc(result.shard_events), unit="crc32",
        better="near", tolerance=0.0,
    )


def _wire_crc(block: bytes, method: str, params) -> int:
    """CRC-32 of what a direct run of the chosen codec would put on the wire."""
    wire = block if method == "none" else codec_for(method, tuple(params)).compress(block)
    return zlib.crc32(wire) & 0xFFFFFFFF


def bicriteria_pareto(report: BenchReport) -> None:
    """Bicriteria gate: the optimizer must never lose to the decision table.

    Two hard gates (an AssertionError aborts the bench run) plus exact
    deterministic series for drift detection:

    * **Model grid** — over fig01's (link class x LZ speed x sampled
      ratio) axes, the frontier point chosen at budget 1.0 must have
      modeled end-to-end time <= the table's choice priced from the
      *same* estimates, with zero budget violations.
    * **Paired replays** — per link class, the same commercial blocks run
      under both policies; the bicriteria policy's accumulated modeled
      time must be <= its table counterpart evaluated on identical
      monitor state, and every wire payload must be byte-identical to a
      direct run of the chosen (codec, params) — the optimizer may only
      rank with models, never alter bytes.
    * **Budget run** — the tight-budget replay on the slow link must
      satisfy ``space_budget=0.5`` with zero violations.
    """
    block_size = 128 * 1024
    thresholds = DecisionThresholds()
    grid_labels = []
    frontier_sizes = []
    model_advantage = 0.0
    model_violations = 0
    for link_name in LINK_CLASSES:
        sending_time = block_size / PAPER_LINKS[link_name].throughput
        for lz_speed in LZ_SPEEDS:
            for ratio in SAMPLED_RATIOS:
                monitor = ReducingSpeedMonitor()
                monitor.observe_speed("lempel-ziv", lz_speed)
                points = evaluate_candidates(
                    default_candidates(block_size),
                    sending_time,
                    calibration=DEFAULT_COSTS,
                    cpu=SUN_FIRE,
                    monitor=monitor,
                    sample=ratio,
                    base_block_size=block_size,
                )
                frontier = pareto_frontier(points.values())
                point, violated = select_point(frontier, space_budget=1.0)
                table_method = select_method(
                    DecisionInputs(
                        block_size=block_size,
                        sending_time=sending_time,
                        lz_reducing_speed=lz_speed,
                        sampled_ratio=ratio,
                    ),
                    thresholds,
                ).method
                table_point = points[
                    CandidateSpec(method=table_method, block_size=block_size)
                ]
                if point.total_seconds > table_point.total_seconds + 1e-9:
                    raise AssertionError(
                        f"bicriteria lost to the table on {link_name} "
                        f"(lz={lz_speed:g}, ratio={ratio}): "
                        f"{point.label} {point.total_seconds:g}s > "
                        f"{table_method} {table_point.total_seconds:g}s"
                    )
                model_violations += violated
                model_advantage += table_point.total_seconds - point.total_seconds
                grid_labels.append(point.label)
                frontier_sizes.append(len(frontier))
    if model_violations:
        raise AssertionError(
            f"{model_violations} budget violations at space_budget=1.0"
        )

    report.record(
        "bicriteria.model_grid_size", len(grid_labels), unit="decisions",
        better="near", tolerance=0.0,
    )
    report.record(
        "bicriteria.model_decisions_crc32", _crc(grid_labels), unit="crc32",
        better="near", tolerance=0.0,
    )
    report.record(
        "bicriteria.model_frontier_crc32", _crc(frontier_sizes), unit="crc32",
        better="near", tolerance=0.0,
    )
    report.record(
        "bicriteria.model_advantage_seconds", model_advantage, unit="seconds",
        better="higher", tolerance=0.10,
    )
    report.record(
        "bicriteria.model_budget_violations", model_violations, unit="decisions",
        better="near", tolerance=0.0,
    )

    blocks = commercial_blocks(BICRITERIA_REPLAY)
    for link_name in LINK_CLASSES:
        table_result = run_replay(
            blocks, replace(BICRITERIA_REPLAY, link=link_name)
        )
        config = replace(BICRITERIA_REPLAY, link=link_name, policy="bicriteria")
        policy = make_policy(config)
        result = run_replay(blocks, config, policy=policy)
        if policy.modeled_seconds_total > policy.table_modeled_seconds_total + 1e-9:
            raise AssertionError(
                f"bicriteria modeled time {policy.modeled_seconds_total:g}s "
                f"exceeds the table's {policy.table_modeled_seconds_total:g}s "
                f"on {link_name}"
            )
        for block, record in zip(blocks, result.records):
            if _wire_crc(block, record.method, record.params) != record.payload_crc32:
                raise AssertionError(
                    f"wire bytes diverged from a direct {record.method}"
                    f"{dict(record.params)} run (block {record.index}, {link_name})"
                )
        report.record(
            f"bicriteria.replay.{link_name}.total_time", result.total_time,
            unit="seconds", better="lower", tolerance=0.10,
        )
        report.record(
            f"bicriteria.replay.{link_name}.table_total_time",
            table_result.total_time, unit="seconds", better="lower", tolerance=0.10,
        )
        report.record(
            f"bicriteria.replay.{link_name}.modeled_advantage_seconds",
            policy.table_modeled_seconds_total - policy.modeled_seconds_total,
            unit="seconds", better="higher", tolerance=0.10,
        )
        report.record(
            f"bicriteria.replay.{link_name}.choices_crc32",
            _crc(f"{r.method}{r.params}" for r in result.records),
            unit="crc32", better="near", tolerance=0.0,
        )
        report.record(
            f"bicriteria.replay.{link_name}.wire_crc32",
            _crc(r.payload_crc32 for r in result.records),
            unit="crc32", better="near", tolerance=0.0,
        )

    config = replace(
        BICRITERIA_REPLAY,
        link="1mbit",
        policy="bicriteria",
        space_budget=BICRITERIA_BUDGET,
    )
    policy = make_policy(config)
    result = run_replay(blocks, config, policy=policy)
    if policy.budget_violations:
        raise AssertionError(
            f"{policy.budget_violations} violations of space budget "
            f"{BICRITERIA_BUDGET} on the 1mbit replay"
        )
    report.record(
        "bicriteria.budget.violations", policy.budget_violations, unit="decisions",
        better="near", tolerance=0.0,
    )
    report.record(
        "bicriteria.budget.choices_crc32",
        _crc(f"{r.method}{r.params}" for r in result.records),
        unit="crc32", better="near", tolerance=0.0,
    )
    report.record(
        "bicriteria.budget.overall_ratio", result.overall_ratio, unit="ratio",
        better="lower", tolerance=0.10,
    )


def raw_path(report: BenchReport) -> None:
    """Raw-speed floor gate: framing must stay zero-copy, codecs byte-stable.

    Two hard gates plus exact wire checksums:

    * **Framing throughput** — one round of gather-list encode
      (:func:`encode_frame_parts`) plus lazy-view parse must run >=2x
      faster than the pre-PR copying path, reproduced inline as
      owned-``bytes`` encode plus ``copy=True`` parse.  CRC is off on
      *both* sides so the measurement isolates the copy elimination (the
      CRC scan costs both paths the same and would only dilute the
      ratio).  Both sides go through ``measure_callable`` — the one
      sanctioned timing site — and take the best of several repeats, so
      scheduler noise can only slow a side down, never speed it up.
    * **Pure-Python wire CRCs** — each paper codec compresses a fixed
      commercial block; the CRC32 is exact-gated against the baseline
      AND must be identical for ``bytes`` and ``memoryview`` input, so
      the zero-copy plumbing can never leak into the wire format.
    """
    payload = bytes(range(256)) * (RAW_PAYLOAD_SIZE // 256)
    wire = bytes(encode_frame(RAW_HEADER, payload, check=False))

    def zero_copy_round(data: bytes) -> bytes:
        for _ in range(RAW_FRAME_LOOPS):
            encode_frame_parts(RAW_HEADER, data, check=False)
            parse_frame(wire, copy=False)
        return data

    def copying_round(data: bytes) -> bytes:
        for _ in range(RAW_FRAME_LOOPS):
            bytes(encode_frame(RAW_HEADER, data, check=False))
            parse_frame(wire, copy=True)
        return data

    def best_seconds(label, fn) -> float:
        return min(
            measure_callable(label, fn, payload).elapsed_seconds
            for _ in range(RAW_FRAME_REPEATS)
        )

    fast = max(best_seconds("raw.zero_copy", zero_copy_round), 1e-9)
    slow = best_seconds("raw.copying", copying_round)
    ratio = slow / fast
    if ratio < 2.0:
        raise AssertionError(
            f"zero-copy framing only {ratio:.2f}x the copying path (< 2.0x gate)"
        )
    megabytes = RAW_FRAME_LOOPS * len(wire) / (1 << 20)
    report.record(
        "raw_path.framing_speedup", ratio, unit="x",
        better="higher", tolerance=0.5, kind="timing",
    )
    report.record(
        "raw_path.framing_mb_per_s", megabytes / fast, unit="MB/s",
        better="higher", tolerance=0.5, kind="timing",
    )

    block = next(iter(CommercialDataGenerator(seed=2004).stream(RAW_CODEC_BLOCK, 1)))
    for name in RAW_CODECS:
        codec = get_codec(name)
        crc = zlib.crc32(codec.compress(block)) & 0xFFFFFFFF
        view_crc = zlib.crc32(codec.compress(memoryview(block))) & 0xFFFFFFFF
        if crc != view_crc:
            raise AssertionError(
                f"{name} wire bytes depend on the input container "
                f"(bytes {crc:#010x} != memoryview {view_crc:#010x})"
            )
        report.record(
            f"raw_path.wire_crc32.{name}", crc, unit="crc32",
            better="near", tolerance=0.0,
        )


def placement_breakeven(report: BenchReport) -> None:
    """Placement gate: break-even auto scheduling must never lose.

    Runs the DTSchedule-style placement matrix (producer → 1gbit relay →
    downstream link, :func:`placement_breakdown`) and hard-gates (an
    AssertionError aborts the bench run):

    * **auto never loses** — per link class the ``auto`` arrangement's
      modeled end-to-end makespan is <= always-``producer`` (tiny
      relative slack: the two tie to the last ulp on slow links);
    * **byte-exactness** — the ``consumer`` arrangement's downstream
      wire CRC chain equals the ``producer`` one (relay compression
      produced identical bytes).

    The recorded per-link seconds are deterministic (modeled costs over
    mean transfer times), so the baseline comparison is exact — and the
    1gbit auto seconds additionally sit on the one-sided ratchet.
    """
    cells = placement_breakdown(
        total_blocks=PLACEMENT_BLOCKS,
        block_size=PLACEMENT_BLOCK_SIZE,
        interference=DEFAULT_INTERFERENCE,
    )
    by_key = {(c.link, c.mode): c for c in cells}
    links = sorted({c.link for c in cells})
    for link in links:
        producer = by_key[(link, "producer")]
        consumer = by_key[(link, "consumer")]
        auto = by_key[(link, "auto")]
        if auto.makespan > producer.makespan * (1.0 + 1e-9):
            raise AssertionError(
                f"auto placement {auto.makespan:g}s slower than "
                f"always-producer {producer.makespan:g}s on {link}"
            )
        if consumer.downstream_crc32 != producer.downstream_crc32:
            raise AssertionError(
                f"consumer downstream CRC {consumer.downstream_crc32:#010x} != "
                f"producer {producer.downstream_crc32:#010x} on {link}"
            )
        report.record(
            f"placement_breakeven.{link}.producer_seconds", producer.makespan,
            unit="seconds", better="lower", tolerance=0.10,
        )
        report.record(
            f"placement_breakeven.{link}.auto_seconds", auto.makespan,
            unit="seconds", better="lower", tolerance=0.10,
        )
        report.record(
            f"placement_breakeven.{link}.auto_placements_crc32",
            _crc(sorted(auto.placements.items())), unit="crc32",
            better="near", tolerance=0.0,
        )
        report.record(
            f"placement_breakeven.{link}.downstream_crc32",
            producer.downstream_crc32, unit="crc32",
            better="near", tolerance=0.0,
        )


def structured_ratio(report: BenchReport) -> None:
    """Structured-codec gate: structure must beat statistics, byte-stably.

    On the seeded templated-log block the ``template`` codec must engage
    (no fallback) and beat the *best* generic codec's ratio by at least
    :data:`STRUCTURED_MIN_WIN`; on the seeded telemetry block ``columnar``
    must engage and beat zlib level-6.  Both are hard gates (an
    AssertionError aborts the run).  The wire CRCs are pinned exactly —
    the structured formats are self-describing, so any byte drift is a
    wire-format change and must arrive with a version bump and a
    deliberate baseline refresh.
    """
    from repro.data.logs import LogDataGenerator
    from repro.data.timeseries import TimeSeriesGenerator

    log_block = next(iter(
        LogDataGenerator(seed=STRUCTURED_SEED).stream(STRUCTURED_BLOCK_SIZE, 1)
    ))
    template = get_codec("template")
    template_wire = template.compress(log_block)
    if template.is_fallback(template_wire):
        raise AssertionError("template codec fell back on its own seeded corpus")
    template_ratio = len(template_wire) / len(log_block)
    generic = {
        name: len(get_codec(name).compress(log_block)) / len(log_block)
        for name in STRUCTURED_RIVALS
    }
    best_name = min(generic, key=generic.get)
    win = generic[best_name] / template_ratio
    if win < STRUCTURED_MIN_WIN:
        raise AssertionError(
            f"template ratio {template_ratio:.4f} only {win:.2f}x better than "
            f"{best_name} {generic[best_name]:.4f} (< {STRUCTURED_MIN_WIN}x gate)"
        )

    record_block = next(iter(
        TimeSeriesGenerator(seed=STRUCTURED_SEED).stream(STRUCTURED_BLOCK_SIZE, 1)
    ))
    columnar = get_codec("columnar")
    columnar_wire = columnar.compress(record_block)
    if columnar.is_fallback(columnar_wire):
        raise AssertionError("columnar codec fell back on its own seeded corpus")
    columnar_ratio = len(columnar_wire) / len(record_block)
    zlib6_ratio = len(zlib.compress(record_block, 6)) / len(record_block)
    if columnar_ratio >= zlib6_ratio:
        raise AssertionError(
            f"columnar ratio {columnar_ratio:.4f} not below "
            f"zlib level-6 {zlib6_ratio:.4f} on the telemetry corpus"
        )

    report.record(
        "structured.template_ratio", template_ratio, unit="ratio",
        better="lower", tolerance=0.0,
    )
    report.record(
        "structured.template_win", win, unit="x",
        better="higher", tolerance=0.0,
    )
    report.record(
        "structured.generic_best_ratio", generic[best_name], unit="ratio",
        better="near", tolerance=0.0,
    )
    report.record(
        "structured.template_wire_crc32", zlib.crc32(template_wire), unit="crc32",
        better="near", tolerance=0.0,
    )
    report.record(
        "structured.columnar_ratio", columnar_ratio, unit="ratio",
        better="lower", tolerance=0.0,
    )
    report.record(
        "structured.zlib6_ratio", zlib6_ratio, unit="ratio",
        better="near", tolerance=0.0,
    )
    report.record(
        "structured.columnar_wire_crc32", zlib.crc32(columnar_wire), unit="crc32",
        better="near", tolerance=0.0,
    )


def check_ratchets(baseline: BenchReport, candidate: BenchReport) -> list:
    """One-sided raw-path ratchet: these may equal the baseline, never lose."""
    failures = []
    for name, direction in RAW_RATCHETS:
        base = baseline.metrics.get(name)
        cand = candidate.metrics.get(name)
        if base is None or cand is None:
            continue
        worse = (
            cand.value < base.value - 1e-9
            if direction == "higher"
            else cand.value > base.value + 1e-9
        )
        if worse:
            failures.append(
                f"ratchet: {name} {cand.value:g} is worse than baseline "
                f"{base.value:g} (must be no {'lower' if direction == 'higher' else 'higher'})"
            )
    return failures


def build_report() -> BenchReport:
    report = BenchReport(
        metadata={
            "suite": "bench-smoke",
            "replay": {
                "block_count": SMOKE_REPLAY.block_count,
                "production_interval": SMOKE_REPLAY.production_interval,
                "link": SMOKE_REPLAY.link,
            },
            "pool": {
                "block_size": POOL_BLOCK_SIZE,
                "block_count": POOL_BLOCK_COUNT,
                "workers": POOL_WORKERS,
                "queue_depth": POOL_QUEUE_DEPTH,
                "method": "burrows-wheeler",
            },
            "chaos": {
                "event_count": CHAOS_EVENT_COUNT,
                "event_size": CHAOS_EVENT_SIZE,
                "seed": CHAOS_SEED,
                "plan": "bench-kitchen-sink",
            },
            "fanout": {
                "subscribers": FANOUT_CONFIG.subscribers,
                "channels": FANOUT_CONFIG.channels,
                "events": FANOUT_CONFIG.events,
                "event_size": FANOUT_CONFIG.event_size,
                "shards": FANOUT_CONFIG.shards,
                "specs": len(FANOUT_CONFIG.specs),
                "zipf_exponent": FANOUT_CONFIG.zipf_exponent,
                "seed": FANOUT_CONFIG.seed,
                "link": FANOUT_CONFIG.link,
            },
            "bicriteria": {
                "block_count": BICRITERIA_REPLAY.block_count,
                "production_interval": BICRITERIA_REPLAY.production_interval,
                "links": list(LINK_CLASSES),
                "space_budget": BICRITERIA_BUDGET,
            },
            "raw_path": {
                "payload_size": RAW_PAYLOAD_SIZE,
                "frame_loops": RAW_FRAME_LOOPS,
                "codec_block": RAW_CODEC_BLOCK,
                "codecs": list(RAW_CODECS),
            },
            "placement_breakeven": {
                "blocks": PLACEMENT_BLOCKS,
                "block_size": PLACEMENT_BLOCK_SIZE,
                "interference": DEFAULT_INTERFERENCE,
                "upstream": "1gbit",
            },
            "structured": {
                "block_size": STRUCTURED_BLOCK_SIZE,
                "seed": STRUCTURED_SEED,
                "rivals": list(STRUCTURED_RIVALS),
                "min_win": STRUCTURED_MIN_WIN,
            },
        }
    )
    fig01_decision_sweep(report)
    fig08_replay(report)
    pool_throughput(report)
    chaos_recovery(report)
    fanout_throughput(report)
    bicriteria_pareto(report)
    raw_path(report)
    placement_breakeven(report)
    structured_ratio(report)
    return report


def write_summary(path, baseline, candidate, comparison) -> None:
    """Append the gate outcome as a markdown table (``$GITHUB_STEP_SUMMARY``).

    One row per baseline metric: section, scalar, baseline vs. candidate
    value, delta, and the gate verdict — ``ok`` (in band), ``drift``
    (out of band but non-gating, e.g. timing metrics), ``FAIL`` (gated
    regression or a metric missing from the candidate).  Metrics the
    candidate added but the baseline lacks show as ``new``.
    """
    regressions = {r.name: r for r in comparison.regressions}
    missing = set(comparison.missing)
    verdict_line = "**PASS** — no gated regressions" if comparison.ok else "**FAIL**"
    lines = [
        "## bench-smoke gate",
        "",
        f"{verdict_line} ({comparison.compared} metrics compared "
        f"against the committed baseline)",
        "",
        "| section | scalar | baseline | candidate | delta | verdict |",
        "| --- | --- | ---: | ---: | ---: | --- |",
    ]
    for name in sorted(baseline.metrics):
        section, _, scalar = name.partition(".")
        base_value = baseline.metrics[name].value
        other = candidate.metrics.get(name)
        if name in missing or other is None:
            lines.append(
                f"| {section} | {scalar} | {base_value:g} | — | — | FAIL (missing) |"
            )
            continue
        regression = regressions.get(name)
        verdict = (
            "ok" if regression is None else ("FAIL" if regression.gating else "drift")
        )
        lines.append(
            f"| {section} | {scalar} | {base_value:g} | {other.value:g} "
            f"| {other.value - base_value:+g} | {verdict} |"
        )
    for name in sorted(set(candidate.metrics) - set(baseline.metrics)):
        section, _, scalar = name.partition(".")
        lines.append(
            f"| {section} | {scalar} | — | {candidate.metrics[name].value:g} "
            f"| — | new |"
        )
    placement_line = placement_verdict(candidate)
    if placement_line:
        lines.extend(["", placement_line])
    with open(path, "a", encoding="utf-8") as sink:
        sink.write("\n".join(lines) + "\n\n")


def placement_verdict(candidate: BenchReport) -> str:
    """One-line placement verdict for the step summary.

    Counts, per link class, whether the auto arrangement's modeled
    end-to-end seconds beat (or tie) always-producer in the candidate
    report; build_report() already hard-gated <=, so this row is the
    human-readable restatement of that result.
    """
    links = sorted(
        name.split(".")[1]
        for name in candidate.metrics
        if name.startswith("placement_breakeven.") and name.endswith(".auto_seconds")
    )
    if not links:
        return ""
    wins = sum(
        1
        for link in links
        if candidate.metrics[f"placement_breakeven.{link}.auto_seconds"].value
        <= candidate.metrics[f"placement_breakeven.{link}.producer_seconds"].value
        * (1.0 + 1e-9)
    )
    fast = min(
        links,
        key=lambda link: candidate.metrics[
            f"placement_breakeven.{link}.producer_seconds"
        ].value,
    )
    saved = (
        candidate.metrics[f"placement_breakeven.{fast}.producer_seconds"].value
        - candidate.metrics[f"placement_breakeven.{fast}.auto_seconds"].value
    )
    return (
        f"**placement**: auto ≤ always-producer on {wins}/{len(links)} "
        f"link classes (fastest link {fast}: {saved:.3f}s saved per "
        f"{PLACEMENT_BLOCKS}-block stream)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help="baseline report to gate against (default: BENCH_baseline.json)",
    )
    parser.add_argument("--out", help="also write the candidate report to PATH")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the candidate as the new baseline instead of gating",
    )
    parser.add_argument(
        "--summary",
        help="append a markdown verdict table to PATH "
        "(default: $GITHUB_STEP_SUMMARY when set)",
    )
    args = parser.parse_args(argv)

    report = build_report()
    if args.out:
        report.write(args.out)
        print(f"candidate report -> {args.out}")
    if args.write_baseline:
        report.write(args.baseline)
        print(f"baseline refreshed -> {args.baseline}")
        return 0

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"error: baseline {baseline_path} not found "
              "(run with --write-baseline to create it)", file=sys.stderr)
        return 2
    baseline = load_report(baseline_path)
    comparison = compare_reports(baseline, report)
    for line in comparison.describe():
        print(line)
    ratchet_failures = check_ratchets(baseline, report)
    for line in ratchet_failures:
        print(line)
    summary_path = args.summary or os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        write_summary(summary_path, baseline, comparison=comparison, candidate=report)
        print(f"summary table -> {summary_path}")
    return 0 if comparison.ok and not ratchet_failures else 1


if __name__ == "__main__":
    sys.exit(main())
