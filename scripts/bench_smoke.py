#!/usr/bin/env python
"""Deterministic smoke benchmark + regression gate (the CI bench job).

Runs a fixed subset of the benchmark suite whose numbers are exact
run-to-run — the Figure 1 decision-table sweep and the Figure 8
commercial replay in modeled-cost mode — emits a
:mod:`repro.obs.benchfmt` report, and compares it against the committed
``BENCH_baseline.json`` with the baseline's tolerance bands (10% on
scalar aggregates, exact on deterministic series checksums).

Usage::

    python scripts/bench_smoke.py                      # run + gate
    python scripts/bench_smoke.py --out PR.json        # also save candidate
    python scripts/bench_smoke.py --write-baseline     # refresh the baseline

Exit status 0 means no gated regression; 1 means the gate fired (the
output lists each violated band); 2 means the baseline is missing.
"""

from __future__ import annotations

import argparse
import sys
import zlib
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.decision import DecisionInputs, DecisionThresholds, select_method  # noqa: E402
from repro.core.engine import BlockEngine, CodecExecutor  # noqa: E402
from repro.core.workers import PipelinedBlockEngine, WorkerPool, simulate_pipeline  # noqa: E402
from repro.data.commercial import CommercialDataGenerator  # noqa: E402
from repro.experiments.config import ReplayConfig  # noqa: E402
from repro.experiments.replay import commercial_blocks, run_replay  # noqa: E402
from repro.fabric.loadgen import FanoutConfig, run_fanout  # noqa: E402
from repro.middleware.chaos import ChaosWire, ReliableEventLink  # noqa: E402
from repro.middleware.events import Event  # noqa: E402
from repro.netsim.clock import VirtualClock  # noqa: E402
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE  # noqa: E402
from repro.netsim.faults import FaultPlan, FaultRule, RetryPolicy  # noqa: E402
from repro.netsim.link import PAPER_LINKS, SimulatedLink  # noqa: E402
from repro.obs.benchfmt import BenchReport, compare_reports, load_report  # noqa: E402
from repro.obs.block import BlockTelemetry  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "BENCH_baseline.json"

#: The same scaled-down replay the figure benchmarks share (64 blocks
#: over the 160 s trace keeps every regime transition).
SMOKE_REPLAY = ReplayConfig(block_count=64, production_interval=2.5)

#: Pool throughput scenario: 64 commercial blocks of 8 KB through
#: Burrows-Wheeler on 4 workers with the default bounded queue.
POOL_BLOCK_SIZE = 8 * 1024
POOL_BLOCK_COUNT = 64
POOL_WORKERS = 4
POOL_QUEUE_DEPTH = 8

#: Decision-table sweep axes: spans the "compress at all" knee, the
#: Burrows-Wheeler slack knee, and the sampled-ratio gate.
SENDING_TIMES = (0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0)
LZ_SPEEDS = (1e5, 5e5, 1.4e6, 5e6, 2e7)
SAMPLED_RATIOS = (None, 0.2, 0.35, 0.6, 0.9)

#: Chaos recovery scenario (non-gating): 32 events through the seeded
#: kitchen-sink fault plan, recovered by ReliableEventLink.
CHAOS_EVENT_COUNT = 32
CHAOS_EVENT_SIZE = 4 * 1024
CHAOS_SEED = 11

#: Fan-out gate scenario: the loadgen defaults — 1024 Zipf-skewed
#: subscribers over 64 channels sharing 8 (method, params) choices.
FANOUT_CONFIG = FanoutConfig()


def _crc(parts) -> int:
    return zlib.crc32(",".join(str(p) for p in parts).encode())


def fig01_decision_sweep(report: BenchReport) -> None:
    """Exact: the selector's verdict over a fixed input grid."""
    thresholds = DecisionThresholds()
    decisions = []
    for sending_time in SENDING_TIMES:
        for lz_speed in LZ_SPEEDS:
            for ratio in SAMPLED_RATIOS:
                decision = select_method(
                    DecisionInputs(
                        block_size=128 * 1024,
                        sending_time=sending_time,
                        lz_reducing_speed=lz_speed,
                        sampled_ratio=ratio,
                    ),
                    thresholds,
                )
                decisions.append(decision.method)
    report.record(
        "fig01.decision_grid_size", len(decisions), unit="decisions",
        better="near", tolerance=0.0,
    )
    report.record(
        "fig01.decisions_crc32", _crc(decisions), unit="crc32",
        better="near", tolerance=0.0,
    )
    for method in ("none", "huffman", "lempel-ziv", "burrows-wheeler"):
        report.record(
            f"fig01.decision_count.{method}", decisions.count(method),
            unit="decisions", better="near", tolerance=0.0,
        )


def fig08_replay(report: BenchReport) -> None:
    """Deterministic modeled-cost replay, observed through BlockTelemetry."""
    telemetry = BlockTelemetry(registry=MetricsRegistry(), channel="smoke")
    result = run_replay(
        commercial_blocks(SMOKE_REPLAY), SMOKE_REPLAY, observers=[telemetry]
    )
    methods = [r.method for r in result.records]
    sizes = [r.compressed_size for r in result.records]
    # Telemetry must mirror the replay exactly — observability adds zero
    # behavioral drift, and the gate enforces it on every PR.
    if telemetry.method_series() != methods or telemetry.compressed_size_series() != sizes:
        raise AssertionError("BlockTelemetry series diverged from the replay records")

    report.record(
        "fig08.blocks", len(result.records), unit="blocks",
        better="near", tolerance=0.0,
    )
    report.record(
        "fig08.method_series_crc32", _crc(methods), unit="crc32",
        better="near", tolerance=0.0,
    )
    report.record(
        "fig08.compressed_size_crc32", _crc(sizes), unit="crc32",
        better="near", tolerance=0.0,
    )
    report.record(
        "fig08.compressed_bytes", result.total_compressed_bytes, unit="bytes",
        better="lower", tolerance=0.10,
    )
    report.record(
        "fig08.overall_ratio", result.overall_ratio, unit="ratio",
        better="lower", tolerance=0.10,
    )
    report.record(
        "fig08.compression_seconds_total", result.total_compression_time,
        unit="seconds", better="lower", tolerance=0.10,
    )
    report.record(
        "fig08.total_time", result.total_time, unit="seconds",
        better="lower", tolerance=0.10,
    )
    counts = result.method_counts()
    for method in ("none", "huffman", "lempel-ziv", "burrows-wheeler"):
        report.record(
            f"fig08.method_count.{method}", counts.get(method, 0),
            unit="blocks", better="near", tolerance=0.10,
        )


def pool_throughput(report: BenchReport) -> None:
    """Multi-core pipeline gate: modeled ≥2x speedup + real-pool wire identity.

    Per-block compression seconds come from the calibrated cost model on
    the SUN_FIRE CPU and send seconds from the nominal 100 MBit line, so
    the serial-vs-pooled comparison is exact run-to-run (the repo's one
    bench requirement).  The 4-worker schedule is computed by
    ``simulate_pipeline``; the wire bytes, however, come from a *real*
    process-pool run, checksummed against the serial engine's output —
    the pool must never change a single byte.
    """
    blocks = list(
        CommercialDataGenerator(seed=2004).stream(POOL_BLOCK_SIZE, POOL_BLOCK_COUNT)
    )
    data = b"".join(blocks)
    serial_engine = BlockEngine(
        CodecExecutor(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE),
        block_size=POOL_BLOCK_SIZE,
    )
    serial_out = serial_engine.run(data, method="burrows-wheeler")
    compression_seconds = [stats.compression_seconds for _, stats in serial_out]
    wire_rate = PAPER_LINKS["100mbit"].throughput
    send_seconds = [len(payload) / wire_rate for payload, _ in serial_out]
    schedule = simulate_pipeline(
        compression_seconds, send_seconds,
        workers=POOL_WORKERS, queue_depth=POOL_QUEUE_DEPTH,
    )
    serial_crc = zlib.crc32(b"".join(payload for payload, _ in serial_out))

    with WorkerPool(workers=POOL_WORKERS, mode="processes") as pool:
        pooled_engine = PipelinedBlockEngine(
            CodecExecutor(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, pool=pool),
            block_size=POOL_BLOCK_SIZE,
            pool=pool,
            queue_depth=POOL_QUEUE_DEPTH,
        )
        pooled_out = pooled_engine.run(data, method="burrows-wheeler")
    pooled_crc = zlib.crc32(b"".join(payload for payload, _ in pooled_out))
    if pooled_crc != serial_crc:
        raise AssertionError(
            f"pooled wire bytes diverged from serial "
            f"(crc {pooled_crc:#010x} != {serial_crc:#010x})"
        )
    if schedule.speedup < 2.0:
        raise AssertionError(
            f"pooled throughput only {schedule.speedup:.2f}x serial (< 2.0x gate)"
        )

    megabytes = len(data) / (1 << 20)
    report.record(
        "pool.serial_mb_per_s", megabytes / schedule.serial_seconds, unit="MB/s",
        better="higher", tolerance=0.05,
    )
    report.record(
        "pool.pooled_mb_per_s", megabytes / schedule.makespan, unit="MB/s",
        better="higher", tolerance=0.05,
    )
    report.record(
        "pool.speedup", schedule.speedup, unit="x",
        better="higher", tolerance=0.05,
    )
    report.record(
        "pool.overlap_fraction", schedule.overlap_fraction, unit="fraction",
        better="higher", tolerance=0.05,
    )
    report.record(
        "pool.wire_crc32_serial", serial_crc, unit="crc32",
        better="near", tolerance=0.0,
    )
    report.record(
        "pool.wire_crc32_pooled", pooled_crc, unit="crc32",
        better="near", tolerance=0.0,
    )


def chaos_recovery(report: BenchReport) -> None:
    """Non-gating (kind="timing"): recovery cost under seeded chaos.

    Replays commercial-data events through a kitchen-sink fault plan on
    the hostile in-memory wire and records what recovery cost: retries,
    CRC rejections, and the virtual seconds the faults added.  Byte-exact
    delivery is *asserted* here (a failure aborts the bench run), but the
    recorded magnitudes are informational — ``compare_reports`` gates
    only ``kind="deterministic"`` metrics, so these track drift without
    failing CI (the hard pass/fail chaos gate is ``scripts/chaos.py``).
    """
    plan = FaultPlan(
        [
            FaultRule(kind="drop", probability=0.1),
            FaultRule(kind="corrupt", probability=0.1),
            FaultRule(kind="duplicate", probability=0.1),
            FaultRule(kind="delay", probability=0.1, delay=0.02),
        ],
        seed=CHAOS_SEED,
        name="bench-kitchen-sink",
    )
    generator = CommercialDataGenerator(seed=2004)
    events = [
        Event(payload=block, channel_id="bench", sequence=i + 1, timestamp=float(i))
        for i, block in enumerate(generator.stream(CHAOS_EVENT_SIZE, CHAOS_EVENT_COUNT))
    ]
    clock = VirtualClock()
    wire = ChaosWire(
        plan, link=SimulatedLink(PAPER_LINKS["100mbit"], seed=2), clock=clock
    )
    delivered = []
    reliable = ReliableEventLink(
        wire,
        delivered.append,
        retry=RetryPolicy(max_attempts=8, base_delay=0.01, max_delay=0.2, seed=CHAOS_SEED),
    )
    for event in events:
        reliable.send(event)
    missing = reliable.close()
    if missing or [e.payload for e in delivered] != [e.payload for e in events]:
        raise AssertionError("chaos recovery was not byte-exact; run scripts/chaos.py")

    report.record(
        "chaos_recovery.events", len(events), unit="events",
        better="near", tolerance=0.0, kind="timing",
    )
    report.record(
        "chaos_recovery.faults_injected", sum(plan.counts.values()), unit="faults",
        better="near", tolerance=0.25, kind="timing",
    )
    report.record(
        "chaos_recovery.retries", reliable.retries, unit="retries",
        better="lower", tolerance=0.25, kind="timing",
    )
    report.record(
        "chaos_recovery.frames_rejected", reliable.frames_rejected, unit="frames",
        better="near", tolerance=0.25, kind="timing",
    )
    report.record(
        "chaos_recovery.recovery_seconds", reliable.recovery_seconds, unit="seconds",
        better="lower", tolerance=0.25, kind="timing",
    )
    report.record(
        "chaos_recovery.virtual_seconds", clock.now(), unit="seconds",
        better="lower", tolerance=0.25, kind="timing",
    )


def fanout_throughput(report: BenchReport) -> None:
    """Fan-out gate: ≥1k subscribers, ≤8 configs — compress-once must win.

    Runs the Zipf-skewed fan-out scenario (1024 subscribers over 64
    channels, 8 distinct ``(method, params)`` choices) through the inline
    sharded fabric and against the per-subscriber-compression baseline.
    Everything is modeled-cost over deterministic link means, so the
    numbers are exact run-to-run.  Hard gates (abort the bench run):

    * every delivered frame byte-identical to the serial path
      (per-subscriber CRC32 chains must match),
    * block-cache hit rate ≥ 0.90,
    * delivered events/second ≥ 3x the per-subscriber baseline.
    """
    result = run_fanout(FANOUT_CONFIG)
    if not result.crc_ok:
        raise AssertionError(
            "fabric fan-out delivered different bytes than the serial path"
        )
    if result.cache_hit_rate < 0.90:
        raise AssertionError(
            f"block-cache hit rate {result.cache_hit_rate:.3f} < 0.90 gate"
        )
    if result.speedup < 3.0:
        raise AssertionError(
            f"fan-out throughput only {result.speedup:.2f}x baseline (< 3.0x gate)"
        )

    report.record(
        "fanout.subscribers", result.subscribers, unit="subscribers",
        better="near", tolerance=0.0,
    )
    report.record(
        "fanout.deliveries", result.deliveries, unit="events",
        better="near", tolerance=0.0,
    )
    report.record(
        "fanout.wire_crc32", result.wire_crc32, unit="crc32",
        better="near", tolerance=0.0,
    )
    report.record(
        "fanout.codec_runs", result.fabric_compressions, unit="runs",
        better="lower", tolerance=0.0,
    )
    report.record(
        "fanout.baseline_codec_runs", result.baseline_compressions, unit="runs",
        better="near", tolerance=0.0,
    )
    report.record(
        "fanout.cache_hit_rate", result.cache_hit_rate, unit="fraction",
        better="higher", tolerance=0.02,
    )
    report.record(
        "fanout.events_per_second", result.fabric_events_per_second, unit="events/s",
        better="higher", tolerance=0.05,
    )
    report.record(
        "fanout.baseline_events_per_second", result.baseline_events_per_second,
        unit="events/s", better="higher", tolerance=0.05,
    )
    report.record(
        "fanout.speedup", result.speedup, unit="x",
        better="higher", tolerance=0.05,
    )
    report.record(
        "fanout.shard_events_crc32", _crc(result.shard_events), unit="crc32",
        better="near", tolerance=0.0,
    )


def build_report() -> BenchReport:
    report = BenchReport(
        metadata={
            "suite": "bench-smoke",
            "replay": {
                "block_count": SMOKE_REPLAY.block_count,
                "production_interval": SMOKE_REPLAY.production_interval,
                "link": SMOKE_REPLAY.link,
            },
            "pool": {
                "block_size": POOL_BLOCK_SIZE,
                "block_count": POOL_BLOCK_COUNT,
                "workers": POOL_WORKERS,
                "queue_depth": POOL_QUEUE_DEPTH,
                "method": "burrows-wheeler",
            },
            "chaos": {
                "event_count": CHAOS_EVENT_COUNT,
                "event_size": CHAOS_EVENT_SIZE,
                "seed": CHAOS_SEED,
                "plan": "bench-kitchen-sink",
            },
            "fanout": {
                "subscribers": FANOUT_CONFIG.subscribers,
                "channels": FANOUT_CONFIG.channels,
                "events": FANOUT_CONFIG.events,
                "event_size": FANOUT_CONFIG.event_size,
                "shards": FANOUT_CONFIG.shards,
                "specs": len(FANOUT_CONFIG.specs),
                "zipf_exponent": FANOUT_CONFIG.zipf_exponent,
                "seed": FANOUT_CONFIG.seed,
                "link": FANOUT_CONFIG.link,
            },
        }
    )
    fig01_decision_sweep(report)
    fig08_replay(report)
    pool_throughput(report)
    chaos_recovery(report)
    fanout_throughput(report)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help="baseline report to gate against (default: BENCH_baseline.json)",
    )
    parser.add_argument("--out", help="also write the candidate report to PATH")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the candidate as the new baseline instead of gating",
    )
    args = parser.parse_args(argv)

    report = build_report()
    if args.out:
        report.write(args.out)
        print(f"candidate report -> {args.out}")
    if args.write_baseline:
        report.write(args.baseline)
        print(f"baseline refreshed -> {args.baseline}")
        return 0

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"error: baseline {baseline_path} not found "
              "(run with --write-baseline to create it)", file=sys.stderr)
        return 2
    comparison = compare_reports(load_report(baseline_path), report)
    for line in comparison.describe():
        print(line)
    return 0 if comparison.ok else 1


if __name__ == "__main__":
    sys.exit(main())
