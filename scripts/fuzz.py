#!/usr/bin/env python
"""Seeded fuzz gate: conformance, differential oracles, and byte fuzzing.

Four stages, each a hard assertion:

* **regression replay** — every entry in the committed crash corpus
  (``tests/verify/crash_corpus.jsonl``) must now be handled within the
  decode contract (:data:`~repro.compression.base.ACCEPTABLE_DECODE_ERRORS`);
* **conformance** — the declarative invariant kit
  (:mod:`repro.verify.conformance`) passes for every codec in
  ``available_codecs()``;
* **differential** — the cross-implementation sweep
  (:mod:`repro.verify.differential`): zlib/bz2 wire counterparts, scalar
  vs vectorized hot loops, serial vs parallel containers;
* **fuzz** — a deterministic coverage-guided mutation run over every
  decode surface.  The schedule is a pure function of ``--seed``; the
  wall ``--budget`` can only truncate it (flagged, never a failure).

New crashes are shrunk to minimal reproducers and written to a JSONL
artifact (CI uploads it when the gate fails); each line replays locally
with ``repro fuzz --replay PATH``.

Usage::

    python scripts/fuzz.py                       # full gate, 30s fuzz budget
    python scripts/fuzz.py --budget 90s --seed 7
    python scripts/fuzz.py --skip-fuzz           # oracle stages only

Exit status 0 means every stage held; 1 lists each failed assertion.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.verify.conformance import (  # noqa: E402
    conformance_failures,
    run_conformance,
)
from repro.verify.corpus import CorpusGenerator  # noqa: E402
from repro.verify.differential import (  # noqa: E402
    differential_failures,
    run_differential,
)
from repro.verify.fuzz import (  # noqa: E402
    Fuzzer,
    load_corpus,
    replay_corpus,
    write_corpus,
)

REGRESSION_CORPUS = REPO_ROOT / "tests" / "verify" / "crash_corpus.jsonl"


def parse_budget(text: str) -> float:
    """``30`` / ``30s`` / ``2m`` -> seconds."""
    text = text.strip().lower()
    scale = 1.0
    if text.endswith("m"):
        scale, text = 60.0, text[:-1]
    elif text.endswith("s"):
        text = text[:-1]
    seconds = float(text) * scale
    if seconds <= 0:
        raise ValueError("budget must be positive")
    return seconds


def stage_regression(failures: List[str]) -> None:
    if not REGRESSION_CORPUS.exists():
        print("regression : no committed corpus, skipping")
        return
    entries = load_corpus(str(REGRESSION_CORPUS))
    still = [
        (entry, detail)
        for entry, fails, detail in replay_corpus(entries)
        if fails
    ]
    print(f"regression : {len(entries)} entries, {len(still)} still failing")
    for entry, detail in still:
        failures.append(
            f"[regression {entry.id}] {entry.target}: {detail} "
            f"(was {entry.error_type})"
        )


def stage_conformance(failures: List[str]) -> None:
    results = run_conformance()
    failed = conformance_failures(results)
    print(f"conformance: {len(results)} checks, {len(failed)} failed")
    for result in failed:
        failures.append(
            f"[conformance] {result.check} {result.codec} {result.case}: "
            f"{result.detail}"
        )


def stage_differential(failures: List[str]) -> None:
    results = run_differential()
    failed = differential_failures(results)
    print(f"differential: {len(results)} comparisons, {len(failed)} failed")
    for result in failed:
        failures.append(
            f"[differential] {result.kind} {result.subject} {result.case}: "
            f"{result.detail}"
        )


def stage_fuzz(
    seed: int, iterations: int, budget: float, artifact: str, failures: List[str]
) -> None:
    corpus = CorpusGenerator(seed=seed, size=4096).as_dict()
    report = Fuzzer(seed=seed, corpus=corpus).run(
        iterations=iterations, budget_seconds=budget
    )
    suffix = " (budget exhausted)" if report.budget_exhausted else ""
    print(
        f"fuzz       : seed={report.seed} iterations={report.iterations_run} "
        f"signatures={report.signatures} crashes={len(report.crashes)}{suffix}"
    )
    if report.crashes:
        write_corpus(artifact, report.crashes)
        print(f"crash artifact -> {artifact}")
        for crash in report.crashes:
            failures.append(
                f"[fuzz {crash.id}] {crash.target} raised {crash.error_type}: "
                f"{crash.error_message} "
                f"(replay: repro fuzz --replay {artifact})"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0, help="fuzz schedule seed")
    parser.add_argument(
        "--iterations", type=int, default=4000, help="fuzz schedule length"
    )
    parser.add_argument(
        "--budget", default="30s", help="fuzz wall cap, e.g. 30s or 2m (default 30s)"
    )
    parser.add_argument(
        "--artifact", metavar="PATH", default="fuzz_crashes.jsonl",
        help="where to write new crash reproducers (default: fuzz_crashes.jsonl)",
    )
    parser.add_argument(
        "--skip-fuzz", action="store_true",
        help="run only the replay/conformance/differential oracle stages",
    )
    args = parser.parse_args(argv)
    try:
        budget = parse_budget(args.budget)
    except ValueError as exc:
        parser.error(str(exc))

    started = time.perf_counter()
    failures: List[str] = []
    stage_regression(failures)
    stage_conformance(failures)
    stage_differential(failures)
    if not args.skip_fuzz:
        stage_fuzz(args.seed, args.iterations, budget, args.artifact, failures)
    print(f"total      : {time.perf_counter() - started:.1f}s")

    if failures:
        print(f"\nfuzz gate FAILED ({len(failures)} assertion(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("fuzz gate OK: contracts hold on every decode surface")
    return 0


if __name__ == "__main__":
    sys.exit(main())
