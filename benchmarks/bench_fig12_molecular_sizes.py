"""Figure 12 — compressed block sizes over the molecular replay.

Paper shape: blocks hover near the full 128 KB (the data "cannot be
compressed well"), with occasional deep drops where the stream's
repetitive portions are caught by dictionary methods.
"""

from conftest import print_series


def test_fig12_block_sizes(benchmark, fig11_result):
    series = benchmark(fig11_result.block_size_series)
    print_series("fig12 size of compressed blocks (bytes)", series, "{:>8.1f}s  {:>10d}")

    sizes = [size for _, size in series]
    full = 128 * 1024
    assert max(sizes) == full  # uncompressed plateaus exist
    assert fig11_result.overall_ratio > 0.6  # nothing dramatic overall
    # the repetitive portions produce at least one deep drop
    assert min(sizes) < full * 0.5
