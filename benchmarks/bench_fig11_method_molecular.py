"""Figure 11 — compression method chosen over time, molecular data.

Paper: "most of the data was compressed by Huffman" ('4'), with '1'
(none) while unloaded and occasional Lempel-Ziv/Burrows-Wheeler on "some
small portions of the data that have string repetitions" (topology
refreshes in our generator).
"""

from conftest import print_series


def test_fig11_method_over_time(benchmark, fig11_result):
    series = benchmark(fig11_result.method_series)
    print_series(
        "fig11 method of compression (1=none 2=LZ 3=BW 4=Huffman)",
        series,
        "{:>8.1f}s  method {}",
    )
    counts = fig11_result.method_counts()
    compressed = {m: c for m, c in counts.items() if m != "none"}
    assert compressed, "load must trigger compression at some point"
    assert max(compressed, key=compressed.get) == "huffman"
    dictionary = counts.get("lempel-ziv", 0) + counts.get("burrows-wheeler", 0)
    assert dictionary >= 1, "repetitive metadata portions must be caught"
    assert dictionary < counts.get("huffman", 0), "dictionary methods stay rare"
