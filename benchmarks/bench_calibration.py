"""§2.5 threshold calibration — recovering the paper's constants.

"These numbers can be tuned easily by sampling even a small piece of
data..."  Applied to the paper's own Figure 2/4 operating points, the
procedure in `repro.core.calibration` reproduces 0.83 / 3.48 / 0.4878;
applied to this host's measurements it produces this machine's constants.
"""

from repro.core.calibration import OperatingPoint, calibrate_thresholds
from repro.data.commercial import CommercialDataGenerator

_MB = 1 << 20
PAPER_LZ = OperatingPoint(throughput=2.2 * _MB, ratio=0.41)
PAPER_BW = OperatingPoint(throughput=0.95 * _MB, ratio=0.34)


def test_calibration(benchmark):
    sample = CommercialDataGenerator(seed=4).xml_block(48 * 1024)
    host = benchmark.pedantic(
        calibrate_thresholds, args=(sample,), rounds=1, iterations=1
    )
    paper = calibrate_thresholds(sample, lz=PAPER_LZ, bw=PAPER_BW)

    print("\nthreshold calibration (compress_factor / bw_factor / ratio_gate)")
    print(f"  paper constants : 0.83 / 3.48 / 0.4878")
    p = paper.thresholds
    print(f"  from paper stats: {p.compress_factor:.2f} / {p.bw_factor:.2f} / {p.ratio_gate:.4f}")
    h = host.thresholds
    print(f"  this host       : {h.compress_factor:.2f} / {h.bw_factor:.2f} / {h.ratio_gate:.4f}")

    assert abs(p.bw_factor - 3.48) / 3.48 < 0.05
    assert abs(p.ratio_gate - 0.4878) < 0.005
    assert h.bw_factor >= h.compress_factor
