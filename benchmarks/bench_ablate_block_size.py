"""Ablation — pipeline block size around the paper's 128 KB.

The paper fixes 128 KB "according to the efficiency of compression
methods based on [32, 33]".  The sweep quantifies the tradeoff: small
blocks decide more often but compress worse and pay more per-block
overhead; large blocks adapt sluggishly.
"""

from repro.experiments import ReplayConfig, sweep_block_size

_CONFIG = ReplayConfig(
    block_count=0, production_interval=0.0, trace_offset=20.0, pipelined=True
)
_SIZES = (32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024)


def test_ablate_block_size(benchmark):
    points = benchmark.pedantic(
        sweep_block_size,
        kwargs={"sizes": _SIZES, "config": _CONFIG, "total_bytes": 3 * 1024 * 1024},
        rounds=1,
        iterations=1,
    )
    print("\nablation: block size (3 MB commercial bulk, loaded 100 Mbit)")
    print(f"{'block size':>12s} {'total s':>9s} {'ratio':>7s}  methods")
    for point in points:
        print(
            f"{int(point.value):>12d} {point.total_seconds:9.2f} "
            f"{point.overall_ratio:7.2f}  {point.method_counts}"
        )
    totals = {int(p.value): p.total_seconds for p in points}
    # the paper's 128 KB sits within 40% of the best point in the sweep
    assert totals[128 * 1024] < min(totals.values()) * 1.4
