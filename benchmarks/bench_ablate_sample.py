"""Ablation — sampling probe size around the paper's 4 KB.

Bigger probes predict block compressibility better but steal more CPU
from the send path; smaller probes are noisy around the 48.78 % gate.
"""

from repro.experiments import ReplayConfig, sweep_sample_size

_CONFIG = ReplayConfig(
    block_count=0, production_interval=0.0, trace_offset=20.0, pipelined=True
)


def test_ablate_sample_size(benchmark):
    points = benchmark.pedantic(
        sweep_sample_size,
        kwargs={
            "sizes": (1024, 4096, 16384),
            "config": _CONFIG,
            "total_bytes": 3 * 1024 * 1024,
        },
        rounds=1,
        iterations=1,
    )
    print("\nablation: sampling probe size (3 MB commercial bulk)")
    print(f"{'sample size':>12s} {'total s':>9s} {'ratio':>7s}  methods")
    for point in points:
        print(
            f"{int(point.value):>12d} {point.total_seconds:9.2f} "
            f"{point.overall_ratio:7.2f}  {point.method_counts}"
        )
    totals = {int(p.value): p.total_seconds for p in points}
    assert totals[4096] < min(totals.values()) * 1.4
