"""Fan-out throughput — sharded fabric vs per-subscriber compression.

Not a paper figure: this benchmarks the event-fabric layer added on top
of the reproduction.  A Zipf-skewed population of 1024 subscribers over
64 channels shares 8 distinct ``(method, params)`` compression choices;
the fabric compresses each payload once per choice through the shared
block cache while the baseline models the pre-fabric middleware, where
every subscriber's derived channel runs the codec itself.  Both paths
are costed on the calibrated model over deterministic link means, so
every number here is exact run-to-run — and the delivered frames must be
byte-identical between the two paths (compress-once is an optimization,
never a semantic change).
"""

from repro.fabric import FanoutConfig, run_fanout

import pytest

#: The same scenario the smoke gate runs (loadgen defaults).
FANOUT_CONFIG = FanoutConfig()


@pytest.fixture(scope="module")
def fanout_result():
    return run_fanout(FANOUT_CONFIG)


def test_fanout_byte_identity(fanout_result, record_bench):
    assert fanout_result.crc_ok, "fabric frames diverged from the serial path"
    record_bench(
        "fanout.wire_crc32", fanout_result.wire_crc32, unit="crc32",
        better="near", tolerance=0.0,
    )
    record_bench(
        "fanout.deliveries", fanout_result.deliveries, unit="events",
        better="near", tolerance=0.0,
    )


def test_fanout_cache_amortization(fanout_result, record_bench):
    assert fanout_result.cache_hit_rate >= 0.90
    # Compress-once really means once: codec runs bounded by
    # (payloads x specs), not by deliveries.
    assert fanout_result.fabric_compressions <= (
        FANOUT_CONFIG.events * len(FANOUT_CONFIG.specs)
    )
    record_bench(
        "fanout.cache_hit_rate", fanout_result.cache_hit_rate, unit="fraction",
        better="higher", tolerance=0.02,
    )
    record_bench(
        "fanout.codec_runs", fanout_result.fabric_compressions, unit="runs",
        better="lower", tolerance=0.0,
    )


def test_fanout_speedup(fanout_result, record_bench):
    assert fanout_result.speedup >= 3.0
    record_bench(
        "fanout.speedup", fanout_result.speedup, unit="x",
        better="higher", tolerance=0.05,
    )
    record_bench(
        "fanout.events_per_second", fanout_result.fabric_events_per_second,
        unit="events/s", better="higher", tolerance=0.05,
    )
    record_bench(
        "fanout.baseline_events_per_second",
        fanout_result.baseline_events_per_second,
        unit="events/s", better="higher", tolerance=0.05,
    )


def test_fanout_shard_balance(fanout_result, record_bench):
    # CRC sharding over 63 active channels: no shard should starve.
    assert min(fanout_result.shard_events) > 0
    spread = max(fanout_result.shard_events) / min(fanout_result.shard_events)
    assert spread <= 2.0
    record_bench(
        "fanout.shard_spread", spread, unit="ratio", better="lower", tolerance=0.05,
    )
