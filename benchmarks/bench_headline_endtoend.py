"""Headline end-to-end numbers (paper §5).

Paper: commercial data 29.1388 s uncompressed vs 10.7142 s adaptive (with
compression slightly more than 60 % of total time); molecular data ~29 s
vs 30.5 s (no benefit).  Reproduced at a reduced block count; the factor
and the who-wins shape are what is asserted.
"""

from repro.core.policy import AdaptivePolicy, FixedPolicy
from repro.experiments import PAPER_HEADLINE, ReplayConfig, headline_comparison

_CONFIG = ReplayConfig(
    block_count=48, production_interval=0.0, trace_offset=20.0, pipelined=True
)


def test_headline_comparison(benchmark):
    rows = benchmark.pedantic(
        headline_comparison,
        args=(_CONFIG,),
        kwargs={"baselines": ["none", "huffman", "lempel-ziv", "burrows-wheeler"]},
        rounds=1,
        iterations=1,
    )
    by_key = {(r.dataset, r.policy): r for r in rows}

    print("\nheadline bulk transfer (48 x 128 KB blocks, loaded 100 Mbit)")
    print(f"{'dataset':12s} {'policy':22s} {'total s':>9s} {'comp frac':>10s} {'ratio':>7s}")
    for row in rows:
        print(
            f"{row.dataset:12s} {row.policy:22s} {row.total_seconds:9.2f} "
            f"{row.compression_fraction:10.2f} {row.overall_ratio:7.2f}"
        )
    print(f"paper reference: commercial adaptive {PAPER_HEADLINE[('commercial', 'adaptive')]}s "
          f"vs none {PAPER_HEADLINE[('commercial', 'none')]}s; "
          f"molecular adaptive {PAPER_HEADLINE[('molecular', 'adaptive')]}s "
          f"vs none {PAPER_HEADLINE[('molecular', 'none')]}s")

    commercial_factor = (
        by_key[("commercial", "fixed:none")].total_seconds
        / by_key[("commercial", "adaptive")].total_seconds
    )
    print(f"commercial speedup factor: {commercial_factor:.2f}x (paper 2.72x)")
    assert commercial_factor > 1.8

    molecular_adaptive = by_key[("molecular", "adaptive")].total_seconds
    molecular_none = by_key[("molecular", "fixed:none")].total_seconds
    assert abs(molecular_none - molecular_adaptive) / molecular_none < 0.25

    # adaptive never loses badly to the best fixed policy on commercial data
    best_fixed = min(
        row.total_seconds
        for row in rows
        if row.dataset == "commercial" and row.policy != "adaptive"
    )
    assert by_key[("commercial", "adaptive")].total_seconds < best_fixed * 1.35
