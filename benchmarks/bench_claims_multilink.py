"""§1 claims — compression utility across all link classes, low/high load.

"...significantly improve the speeds of data exchange [internationally],
in both low-load and high-load usage scenarios ... for home-based
machines, even when using broadband links like DSL ... In Intranets,
however, the utility of compression is less evident."
"""

from repro.experiments.multilink import multilink_matrix


def test_claims_multilink(benchmark):
    cells = benchmark.pedantic(
        multilink_matrix, kwargs={"total_blocks": 12}, rounds=1, iterations=1
    )
    print("\nmultilink utility matrix (1.5 MB commercial bulk, adaptive vs none)")
    print(f"{'link':14s} {'load':10s} {'adaptive s':>11s} {'none s':>9s} {'speedup':>8s}")
    for cell in cells:
        print(
            f"{cell.link:14s} {cell.load_label:10s} {cell.adaptive_seconds:11.2f} "
            f"{cell.uncompressed_seconds:9.2f} {cell.speedup:8.2f}"
        )
    by_key = {(c.link, c.load_label): c for c in cells}
    assert by_key[("1gbit", "low-load")].speedup < 1.3
    assert by_key[("international", "low-load")].speedup > 2.0
    assert by_key[("international", "high-load")].speedup > 2.0
    assert by_key[("dsl", "low-load")].speedup > 1.8
