"""Multi-core pool throughput — serial vs pipelined block execution.

Not a paper figure: this benchmarks the worker-pool layer added on top of
the reproduction.  The modeled schedule (calibrated costs on the SUN_FIRE
CPU, nominal 100 MBit wire) quantifies how much of the paper's "slightly
more than 60%" compression share a 4-worker compress/send pipeline hides;
the real process-pool run proves the pool changes wall clock only, never
wire bytes.
"""

import zlib

import pytest

from repro.core import (
    BlockEngine,
    CodecExecutor,
    PipelinedBlockEngine,
    WorkerPool,
    simulate_pipeline,
)
from repro.data.commercial import CommercialDataGenerator
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE
from repro.netsim.link import PAPER_LINKS

BLOCK_SIZE = 8 * 1024
BLOCK_COUNT = 64
WORKERS = 4
QUEUE_DEPTH = 8


@pytest.fixture(scope="module")
def pool_stream():
    generator = CommercialDataGenerator(seed=2004)
    return b"".join(generator.stream(BLOCK_SIZE, BLOCK_COUNT))


@pytest.fixture(scope="module")
def serial_run(pool_stream):
    engine = BlockEngine(
        CodecExecutor(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE), block_size=BLOCK_SIZE
    )
    return engine.run(pool_stream, method="burrows-wheeler")


def test_pool_schedule_speedup(serial_run, record_bench):
    compression = [stats.compression_seconds for _, stats in serial_run]
    wire_rate = PAPER_LINKS["100mbit"].throughput
    send = [len(payload) / wire_rate for payload, _ in serial_run]
    schedule = simulate_pipeline(
        compression, send, workers=WORKERS, queue_depth=QUEUE_DEPTH
    )
    record_bench(
        "pool.speedup", schedule.speedup, unit="x", better="higher", tolerance=0.05
    )
    record_bench(
        "pool.overlap_fraction", schedule.overlap_fraction, unit="fraction",
        better="higher", tolerance=0.05,
    )
    assert schedule.speedup >= 2.0
    # One wire, in order: the pipeline can never beat the pure
    # compression bound plus the pure send bound.
    assert schedule.makespan >= max(
        schedule.send_seconds, schedule.compression_seconds / WORKERS
    )


def test_pooled_wire_bytes_identical(pool_stream, serial_run, benchmark):
    def pooled():
        with WorkerPool(workers=WORKERS, mode="processes") as pool:
            engine = PipelinedBlockEngine(
                CodecExecutor(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, pool=pool),
                block_size=BLOCK_SIZE,
                pool=pool,
                queue_depth=QUEUE_DEPTH,
            )
            return engine.run(pool_stream, method="burrows-wheeler")

    pooled_out = benchmark.pedantic(pooled, rounds=1, iterations=1)
    serial_wire = b"".join(payload for payload, _ in serial_run)
    pooled_wire = b"".join(payload for payload, _ in pooled_out)
    assert zlib.crc32(pooled_wire) == zlib.crc32(serial_wire)
    assert pooled_wire == serial_wire
