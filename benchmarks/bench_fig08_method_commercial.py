"""Figure 8 — compression method chosen over time, commercial data.

Paper: "Initially, with no network load, no compression is performed
(labeled as '1').  With increasing network load, the first compression
method used is Lempel-Ziv ('2'), followed by Burrows-Wheeler ('3') under
high network loads."
"""

from conftest import BENCH_REPLAY, print_series

from repro.experiments import commercial_blocks, run_replay


def test_fig08_method_over_time(benchmark, fig8_result, record_bench):
    # Benchmark one fresh (shorter) replay; report from the shared run.
    from repro.experiments import ReplayConfig

    small = ReplayConfig(block_count=12, production_interval=2.5)
    benchmark.pedantic(
        run_replay, args=(commercial_blocks(small), small), rounds=1, iterations=1
    )

    record_bench("fig08.blocks", len(fig8_result.records), unit="blocks")
    record_bench(
        "fig08.compressed_bytes", fig8_result.total_compressed_bytes,
        unit="bytes", better="lower", tolerance=0.10,
    )
    record_bench(
        "fig08.overall_ratio", fig8_result.overall_ratio,
        unit="ratio", better="lower", tolerance=0.10,
    )

    series = fig8_result.method_series()
    print_series("fig08 method of compression (1=none 2=LZ 3=BW 4=Huffman)", series, "{:>8.1f}s  method {}")
    codes = [code for _, code in series]
    assert 1 in codes, "an uncompressed phase must exist"
    assert 2 in codes, "Lempel-Ziv must be used under moderate load"
    assert 3 in codes, "Burrows-Wheeler must appear under peak load"
    # the quiet prologue is uncompressed (after the infinite-speed startup block)
    early = [code for t, code in series if 2.0 < t < 6.0]
    assert all(code == 1 for code in early)
