"""Figure 4 — "reducing speed" (bytes removed per second) on two CPUs.

The paper measured a Sun-Fire-280R and an Ultra-Sparc, finding the
Sun-Fire roughly 2.4x faster across methods.  We measure the host (the
reference machine) and derive the second machine through its CpuModel —
then print both next to the paper-calibrated cost model that drives the
deterministic replays.
"""

from repro.experiments import commercial_sample, figure4_reducing_speeds
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE, ULTRA_SPARC

_MB = float(1 << 20)


def test_fig04_reducing_speeds(benchmark):
    data = commercial_sample(128 * 1024)
    speeds = benchmark.pedantic(
        figure4_reducing_speeds, args=(data,), rounds=1, iterations=1
    )
    print("\nfig04 reducing speed (MB/s removed)")
    print(f"{'method':18s} {'host(SunFire)':>14s} {'host(UltraSparc)':>17s} {'paper-model SF':>15s} {'paper-model US':>15s}")
    for method in ("burrows-wheeler", "lempel-ziv", "arithmetic", "huffman"):
        host_fast = speeds["Sun-Fire-280R"][method] / _MB
        host_slow = speeds["Ultra-Sparc"][method] / _MB
        model_fast = DEFAULT_COSTS.reducing_speed(method, SUN_FIRE) / _MB
        model_slow = DEFAULT_COSTS.reducing_speed(method, ULTRA_SPARC) / _MB
        print(f"{method:18s} {host_fast:14.3f} {host_slow:17.3f} {model_fast:15.3f} {model_slow:15.3f}")
    # Figure 4 shapes
    for machine in speeds.values():
        assert machine["huffman"] == max(machine.values())
        assert machine["arithmetic"] == min(machine.values())
    ratio = speeds["Sun-Fire-280R"]["huffman"] / speeds["Ultra-Sparc"]["huffman"]
    assert 2.0 < ratio < 3.0  # the paper's machine gap
