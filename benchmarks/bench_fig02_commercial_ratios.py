"""Figure 2 — compression percentages on commercial data.

Paper values: Burrows-Wheeler ~34 %, Lempel-Ziv ~41 %, arithmetic ~46 %,
Huffman ~47 % of original size.  Each benchmark compresses the same 128 KB
commercial block; the report prints measured vs. paper percentages.
"""

import pytest

from repro.compression import get_codec
from repro.experiments import commercial_sample
from repro.experiments.micro import PAPER_FIG2_PERCENT

_DATA = commercial_sample(128 * 1024)
_RESULTS = {}


@pytest.mark.parametrize(
    "method", ["burrows-wheeler", "lempel-ziv", "arithmetic", "huffman"]
)
def test_fig02_compress(benchmark, method):
    codec = get_codec(method)
    data = _DATA if method != "arithmetic" else _DATA[:32768]
    payload = benchmark(codec.compress, data)
    percent = 100.0 * len(payload) / len(data)
    _RESULTS[method] = percent
    print(
        f"\nfig02 {method:16s} measured {percent:5.1f}%   "
        f"paper {PAPER_FIG2_PERCENT[method]:5.1f}%"
    )
    # shape assertions (who wins)
    if {"burrows-wheeler", "lempel-ziv", "huffman"} <= set(_RESULTS):
        assert (
            _RESULTS["burrows-wheeler"]
            < _RESULTS["lempel-ziv"]
            < _RESULTS["huffman"]
        )
