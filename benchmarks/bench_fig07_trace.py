"""Figure 7 — the MBone connection-count trace.

Prints the 160-second series (quiet start, busy phase peaking below 20
connections, mid-run lull) and benchmarks trace generation + lookup.
"""

from repro.experiments import figure7_trace_series
from repro.netsim.loadtrace import mbone_trace


def test_fig07_trace_generation(benchmark):
    trace = benchmark(mbone_trace)
    assert trace.duration == 160.0

    series = figure7_trace_series(step=4.0)
    print("\nfig07 MBone connections over time")
    for t, connections in series:
        bar = "#" * int(connections)
        print(f"{t:6.0f}s {connections:5.0f} {bar}")
    levels = [c for _, c in series]
    assert levels[0] == 0
    assert 10 <= max(levels) <= 20


def test_fig07_lookup_speed(benchmark):
    trace = mbone_trace()
    result = benchmark(trace.connections_at, 83.0)
    assert result >= 0
