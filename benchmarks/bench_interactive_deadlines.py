"""Interactive streaming deadlines (paper §1 motivation).

"The idea is to provide the levels of performance in data exchange end
users require" — for interactive/collaborative applications that means
each block produced every T seconds must also *arrive* within T.  This
bench paces the commercial stream on the loaded 1 Mbit link and counts
deadline misses per policy: the uncompressed baseline blows most
deadlines, the adaptive selector rescues them.
"""

from repro.core.pipeline import AdaptivePipeline
from repro.core.policy import AdaptivePolicy, FixedPolicy
from repro.data.commercial import CommercialDataGenerator
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE
from repro.netsim.link import PAPER_LINKS, SimulatedLink
from repro.netsim.loadtrace import LoadTrace

_DEADLINE = 2.0
_BLOCKS = 24


def _run(policy):
    link = SimulatedLink(PAPER_LINKS["1mbit"], seed=4, congestion_per_connection=0.25)
    pipeline = AdaptivePipeline(policy=policy, cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
    blocks = list(CommercialDataGenerator(seed=21).stream(128 * 1024, _BLOCKS))
    return pipeline.run(
        blocks,
        link,
        load=LoadTrace.from_pairs([(0, 12)]),
        production_interval=_DEADLINE,
    )


def test_interactive_deadlines(benchmark):
    adaptive = benchmark.pedantic(_run, args=(AdaptivePolicy(),), rounds=1, iterations=1)
    results = {"adaptive": adaptive}
    for method in ("none", "huffman", "lempel-ziv", "burrows-wheeler"):
        results[f"fixed:{method}"] = _run(FixedPolicy(method))

    print(f"\ninteractive pacing: one 128 KB block every {_DEADLINE}s, loaded 1 Mbit link")
    print(f"{'policy':24s} {'misses':>7s} / {_BLOCKS}   {'ratio':>6s}")
    for label, result in results.items():
        misses = result.deadline_misses(_DEADLINE)
        print(f"{label:24s} {misses:7d}          {result.overall_ratio:6.2f}")

    assert results["adaptive"].deadline_misses(_DEADLINE) < results[
        "fixed:none"
    ].deadline_misses(_DEADLINE)
