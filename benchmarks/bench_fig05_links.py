"""Figure 5 — transfer speeds of the four link classes.

Paper: 1 Gbit 26.32 MB/s (sigma 0.782 %), 100 Mbit 7.52 MB/s (8.95 %),
1 Mbit 0.147 MB/s (1.17 %), international 0.109 MB/s (46.02 %).
"""

from repro.experiments import PAPER_FIG5, figure5_link_speeds


def test_fig05_link_speeds(benchmark):
    measured = benchmark.pedantic(
        figure5_link_speeds, kwargs={"transfers": 400}, rounds=1, iterations=1
    )
    print("\nfig05 link transfer speeds (128 KB blocks, warm lines)")
    print(f"{'link':15s} {'measured MB/s':>14s} {'paper MB/s':>11s} {'measured σ%':>12s} {'paper σ%':>9s}")
    for name, (paper_speed, paper_stddev) in PAPER_FIG5.items():
        m = measured[name]
        print(
            f"{name:15s} {m.mean_mb_per_s:14.4f} {paper_speed:11.4f} "
            f"{m.stddev_percent:12.2f} {paper_stddev:9.2f}"
        )
        assert abs(m.mean_mb_per_s - paper_speed) / paper_speed < 0.10
    assert (
        measured["1gbit"].mean_mb_per_s
        > measured["100mbit"].mean_mb_per_s
        > measured["1mbit"].mean_mb_per_s
        > measured["international"].mean_mb_per_s
    )
