"""Bicriteria optimizer — frontier cost and the table-dominance invariant.

The optimizer runs once per 128 KB block in production, exactly like the
§2.5 selector it replaces, so building and pruning the candidate frontier
must stay microseconds-cheap.  The dominance half is the same invariant
the CI smoke gate enforces: because the table's choice (at default
parameters) is always in the evaluated candidate set, the frontier's
budget-feasible minimum can never model slower than the table.
"""

from repro.core.bicriteria import (
    CandidateSpec,
    build_frontier,
    default_candidates,
    evaluate_candidates,
    pareto_frontier,
    select_point,
)
from repro.core.decision import DecisionInputs, select_method
from repro.core.monitor import ReducingSpeedMonitor
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE
from repro.netsim.link import PAPER_LINKS

_BLOCK_SIZE = 128 * 1024


def _frontier_once(sending_time, lz_speed=1.4e6, sampled_ratio=0.35):
    monitor = ReducingSpeedMonitor()
    monitor.observe_speed("lempel-ziv", lz_speed)
    return build_frontier(
        _BLOCK_SIZE,
        sending_time,
        calibration=DEFAULT_COSTS,
        cpu=SUN_FIRE,
        monitor=monitor,
        sample=sampled_ratio,
    )


def test_bicriteria_frontier_speed(benchmark, record_bench):
    """One full evaluate + prune + select cycle (the per-block cost)."""
    sending_time = _BLOCK_SIZE / PAPER_LINKS["100mbit"].throughput
    frontier = benchmark(_frontier_once, sending_time)
    point, violated = select_point(frontier, space_budget=1.0)
    assert not violated
    assert point.total_seconds > 0
    record_bench("bicriteria.frontier_size_100mbit", len(frontier), unit="points")
    record_bench("bicriteria.chosen_method_100mbit", hash(point.label) % 2**32)


def test_bicriteria_dominates_table(record_bench):
    """Per link class, the chosen point models <= the table's choice."""
    advantage = 0.0
    for link_name, spec in PAPER_LINKS.items():
        sending_time = _BLOCK_SIZE / spec.throughput
        monitor = ReducingSpeedMonitor()
        monitor.observe_speed("lempel-ziv", 1.4e6)
        points = evaluate_candidates(
            default_candidates(_BLOCK_SIZE),
            sending_time,
            calibration=DEFAULT_COSTS,
            cpu=SUN_FIRE,
            monitor=monitor,
            sample=0.35,
            base_block_size=_BLOCK_SIZE,
        )
        point, violated = select_point(pareto_frontier(points.values()), 1.0)
        assert not violated
        table_method = select_method(
            DecisionInputs(
                block_size=_BLOCK_SIZE,
                sending_time=sending_time,
                lz_reducing_speed=1.4e6,
                sampled_ratio=0.35,
            )
        ).method
        table_point = points[CandidateSpec(method=table_method, block_size=_BLOCK_SIZE)]
        assert point.total_seconds <= table_point.total_seconds + 1e-9, link_name
        advantage += table_point.total_seconds - point.total_seconds
    record_bench(
        "bicriteria.model_advantage_seconds",
        advantage,
        unit="seconds",
        better="higher",
        tolerance=0.10,
    )
