"""Figure 1 — the qualitative decision table and the selector's speed.

Regenerates the six-characteristic method table verbatim and benchmarks
one invocation of the §2.5 selection algorithm (it runs once per 128 KB
block in production, so it must be microseconds-cheap).
"""

from repro.core.decision import DecisionInputs, DecisionThresholds, select_method
from repro.experiments import figure1_rows, format_table

_METHODS = ["burrows-wheeler", "lempel-ziv", "arithmetic", "huffman"]


def test_fig01_select_method_speed(benchmark, record_bench):
    inputs = DecisionInputs(
        block_size=128 * 1024,
        sending_time=0.5,
        lz_reducing_speed=1.4e6,
        sampled_ratio=0.35,
    )
    thresholds = DecisionThresholds()
    decision = benchmark(select_method, inputs, thresholds)
    assert decision.method == "burrows-wheeler"

    rows = [
        (label, [cells[m] for m in _METHODS]) for label, cells in figure1_rows()
    ]
    record_bench("fig01.table_rows", len(rows), unit="rows")
    print()
    print(format_table(rows, ["characteristic"] + _METHODS))
