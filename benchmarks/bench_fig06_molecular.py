"""Figure 6 — per-field compression of molecular-dynamics data.

Paper: atom coordinates barely compress (~90 %+ of original under every
method), velocities are intermediate, and atom types compress extremely
well — so "decisions about suitable compression techniques should be
based ... also on data characteristics."
"""

import pytest

from repro.compression import get_codec
from repro.data.molecular import MolecularDataGenerator

_GEN = MolecularDataGenerator(atom_count=8192, seed=42)
_FIELDS = {
    "type": _GEN.types_block(),
    "velocity": _GEN.velocities_block(),
    "coordinates": _GEN.coordinates_block(),
}
_RESULTS = {}


@pytest.mark.parametrize("field", ["type", "velocity", "coordinates"])
@pytest.mark.parametrize("method", ["burrows-wheeler", "lempel-ziv", "huffman"])
def test_fig06_field_compression(benchmark, field, method):
    codec = get_codec(method)
    data = _FIELDS[field]
    payload = benchmark(codec.compress, data)
    percent = 100.0 * len(payload) / len(data)
    _RESULTS[(field, method)] = percent
    print(f"\nfig06 {field:12s} {method:16s} {percent:5.1f}%")
    if len(_RESULTS) == 9:
        for m in ("burrows-wheeler", "lempel-ziv", "huffman"):
            assert _RESULTS[("coordinates", m)] > 75.0
            assert (
                _RESULTS[("type", m)]
                < _RESULTS[("velocity", m)]
                < _RESULTS[("coordinates", m)]
            )
        assert _RESULTS[("type", "burrows-wheeler")] < 10.0
