"""§1 claim — method strength tracks CPU availability.

"...better compression methods are used when CPU loads are low and/or
network links are slow, and ... less effective and typically, faster
compression techniques are used in high end network infrastructures."
This bench drives a CPU-load square wave and shows the chosen method
de-escalating while the sender is busy.
"""

from repro.core import AdaptivePipeline, LzSampler
from repro.data.commercial import CommercialDataGenerator
from repro.netsim import DEFAULT_COSTS, PAPER_LINKS, CpuModel, LoadTrace, SimulatedLink

_STRENGTH = {"none": 0, "huffman": 1, "lempel-ziv": 2, "burrows-wheeler": 3}


def _run():
    cpu = CpuModel("dynamic", speed_factor=1.0)
    pipeline = AdaptivePipeline(
        cost_model=DEFAULT_COSTS,
        cpu=cpu,
        sampler=LzSampler(cost_model=DEFAULT_COSTS, cpu=cpu),
    )
    blocks = list(CommercialDataGenerator(seed=3).stream(128 * 1024, 40))
    link = SimulatedLink(PAPER_LINKS["1mbit"], seed=1)
    cpu_trace = LoadTrace.from_pairs([(0, 0), (30, 20), (60, 0)])
    return pipeline.run(blocks, link, production_interval=2.0, cpu_load=cpu_trace)


def test_claims_cpu_load(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\nCPU-load square wave (busy t=30..60) on the 1 Mbit link")
    previous = None
    for record in result.records:
        if record.method != previous:
            print(f"  t={record.start_time:6.1f}s -> {record.method}")
            previous = record.method
    idle = [r for r in result.records if 6 < r.start_time < 28]
    busy = [r for r in result.records if 44 < r.start_time < 60]
    mean = lambda rs: sum(_STRENGTH[r.method] for r in rs) / len(rs)
    assert mean(busy) < mean(idle)
