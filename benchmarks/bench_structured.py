"""Structure-aware codecs — ratio and throughput on their own workloads.

Not a paper figure: the structured family extends the paper's generic
method table with format-aware coding.  Each benchmark compresses one
64 KB seeded block of the matching workload; the report prints the
structured ratio next to the best generic ratio on the same bytes, and
the shape assertions mirror the CI ``structured_ratio`` gate (template
beats the generic field by >=1.3x on logs, columnar beats zlib level-6
on telemetry).
"""

import zlib

import pytest

from repro.compression import get_codec
from repro.data.logs import LogDataGenerator
from repro.data.timeseries import TimeSeriesGenerator

_SIZE = 64 * 1024
_SEED = 2004
_GENERIC = ("huffman", "arithmetic", "lempel-ziv", "lzw", "burrows-wheeler")

_LOG_BLOCK = next(iter(LogDataGenerator(seed=_SEED).stream(_SIZE, 1)))
_RECORD_BLOCK = next(iter(TimeSeriesGenerator(seed=_SEED).stream(_SIZE, 1)))
_BLOCKS = {"template": _LOG_BLOCK, "columnar": _RECORD_BLOCK}


def _best_generic(data: bytes) -> float:
    return min(len(get_codec(name).compress(data)) / len(data) for name in _GENERIC)


@pytest.mark.parametrize("name", ["template", "columnar"])
def test_structured_compress(benchmark, name):
    codec = get_codec(name)
    data = _BLOCKS[name]
    payload = benchmark(codec.compress, data)
    assert not codec.is_fallback(payload)
    ratio = len(payload) / len(data)
    rival = _best_generic(data)
    print(
        f"\nstructured {name:9s} ratio {100.0 * ratio:5.1f}%   "
        f"best generic {100.0 * rival:5.1f}%"
    )
    if name == "template":
        assert rival / ratio >= 1.3
    else:
        assert ratio < len(zlib.compress(data, 6)) / len(data)


@pytest.mark.parametrize("name", ["template", "columnar"])
def test_structured_decompress(benchmark, name):
    codec = get_codec(name)
    data = _BLOCKS[name]
    payload = codec.compress(data)
    restored = benchmark(codec.decompress, payload)
    assert restored == data
