"""Shared session fixtures for the figure benchmarks.

Figures 8-10 present three views of one commercial replay and Figures
11-12 two views of one molecular replay; the runs are computed once per
session here and shared across the per-figure benchmark modules.

Two obs-era duties also live here:

* **One RNG seeding point.**  Every benchmark runs under the autouse
  :func:`pin_rng` fixture, which reseeds the global :mod:`random` (and
  numpy, when present) generators before each test.  Data generators and
  links already take explicit seeds; pinning the *ambient* generators on
  top makes the smoke-bench numbers identical run-to-run, which the CI
  regression gate requires to be non-flaky.
* **One result schema.**  Deterministic figures record metrics into a
  session :class:`~repro.obs.benchfmt.BenchReport` via the
  :func:`record_bench` fixture; pytest-benchmark wall-clock timings are
  folded in (as non-gating ``kind="timing"`` metrics) at session end.
  Set ``REPRO_BENCH_OUT=path.json`` to write the report.
"""

import os
import random

import pytest

from repro.experiments import ReplayConfig, commercial_blocks, molecular_blocks, run_replay
from repro.obs.benchfmt import BenchReport

#: The single ambient seed every benchmark starts from.
BENCH_SEED = 20040431

#: Scaled-down replay (64 blocks over the 160 s trace) keeping benchmark
#: wall time reasonable while preserving every regime transition.
BENCH_REPLAY = ReplayConfig(block_count=64, production_interval=2.5)


@pytest.fixture(autouse=True)
def pin_rng():
    """Reseed ambient RNGs before every benchmark (the one seeding point)."""
    random.seed(BENCH_SEED)
    try:
        import numpy

        numpy.random.seed(BENCH_SEED % (2**32))
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        pass
    yield


@pytest.fixture(scope="session")
def bench_report():
    """The session-wide machine-readable result report."""
    return BenchReport(metadata={"suite": "benchmarks", "seed": BENCH_SEED})


@pytest.fixture()
def record_bench(bench_report):
    """Record a deterministic metric into the session report."""

    def record(name, value, unit="", better="near", tolerance=0.0, kind="deterministic"):
        bench_report.record(
            name, value, unit=unit, kind=kind, better=better, tolerance=tolerance
        )

    return record


def pytest_sessionfinish(session, exitstatus):
    """Fold pytest-benchmark timings in and write the report when asked."""
    out = os.environ.get("REPRO_BENCH_OUT")
    if not out:
        return
    report = getattr(session, "_repro_bench_report", None)
    if report is None:  # no test ran; still emit a valid (empty) schema
        report = BenchReport(metadata={"suite": "benchmarks", "seed": BENCH_SEED})
    benchsession = getattr(session.config, "_benchmarksession", None)
    if benchsession is not None:
        for bench in getattr(benchsession, "benchmarks", []):
            stats = getattr(bench, "stats", None)
            mean = getattr(stats, "mean", None) if stats is not None else None
            if mean is not None:
                report.record(
                    f"timing.{bench.name}.mean_seconds", mean,
                    unit="seconds", kind="timing", better="lower", tolerance=0.25,
                )
    report.write(out)


@pytest.fixture(scope="session", autouse=True)
def _expose_bench_report(request, bench_report):
    """Make the session report reachable from pytest_sessionfinish."""
    request.session._repro_bench_report = bench_report
    yield


@pytest.fixture(scope="session")
def fig8_result():
    return run_replay(commercial_blocks(BENCH_REPLAY), BENCH_REPLAY)


@pytest.fixture(scope="session")
def fig11_result():
    return run_replay(molecular_blocks(BENCH_REPLAY), BENCH_REPLAY)


def print_series(title, series, fmt="{:>10.2f}  {}"):
    print(f"\n=== {title} ===")
    for t, value in series:
        print(fmt.format(t, value))
