"""Shared session fixtures for the figure benchmarks.

Figures 8-10 present three views of one commercial replay and Figures
11-12 two views of one molecular replay; the runs are computed once per
session here and shared across the per-figure benchmark modules.
"""

import pytest

from repro.experiments import ReplayConfig, commercial_blocks, molecular_blocks, run_replay

#: Scaled-down replay (64 blocks over the 160 s trace) keeping benchmark
#: wall time reasonable while preserving every regime transition.
BENCH_REPLAY = ReplayConfig(block_count=64, production_interval=2.5)


@pytest.fixture(scope="session")
def fig8_result():
    return run_replay(commercial_blocks(BENCH_REPLAY), BENCH_REPLAY)


@pytest.fixture(scope="session")
def fig11_result():
    return run_replay(molecular_blocks(BENCH_REPLAY), BENCH_REPLAY)


def print_series(title, series, fmt="{:>10.2f}  {}"):
    print(f"\n=== {title} ===")
    for t, value in series:
        print(fmt.format(t, value))
