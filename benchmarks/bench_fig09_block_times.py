"""Figure 9 — per-block compression time over the commercial replay.

Paper shape: microsecond-to-tens-of-milliseconds spikes tracking the
chosen method — near zero while uncompressed, highest for the
Burrows-Wheeler blocks.
"""

from conftest import print_series


def test_fig09_compression_times(benchmark, fig8_result):
    series = benchmark(fig8_result.compression_time_series)
    print_series("fig09 time of compression (µs)", series, "{:>8.1f}s  {:>12.0f}")

    by_method = {}
    for record in fig8_result.records:
        by_method.setdefault(record.method, []).append(record.compression_time)
    assert all(t == 0.0 for t in by_method.get("none", [0.0]))
    if "burrows-wheeler" in by_method and "lempel-ziv" in by_method:
        assert max(by_method["burrows-wheeler"]) > max(by_method["lempel-ziv"])
