"""Figure 3 — compression and decompression times per method.

Paper shape (Sun-Fire, commercial dataset): Burrows-Wheeler slowest to
compress (~8 s for the dataset), Huffman fastest (~1 s); arithmetic has
the slowest decompression, Huffman/Lempel-Ziv the fastest.  We benchmark
both directions on a 128 KB block and assert the orderings.
"""

import pytest

from repro.compression import get_codec
from repro.experiments import commercial_sample

_DATA = commercial_sample(128 * 1024)
_COMPRESSED = {}
_COMPRESS_TIMES = {}
_DECOMPRESS_TIMES = {}
_METHODS = ["burrows-wheeler", "lempel-ziv", "arithmetic", "huffman"]


def _input_for(method):
    return _DATA if method != "arithmetic" else _DATA[:16384]


@pytest.mark.parametrize("method", _METHODS)
def test_fig03_compress_time(benchmark, method):
    codec = get_codec(method)
    data = _input_for(method)
    payload = benchmark(codec.compress, data)
    _COMPRESSED[method] = (data, payload)
    # normalize to seconds per original MB for cross-method comparison
    _COMPRESS_TIMES[method] = benchmark.stats.stats.mean / len(data) * (1 << 20)
    print(f"\nfig03 compress   {method:16s} {_COMPRESS_TIMES[method]*1e3:8.2f} ms/MB")
    if {"huffman", "burrows-wheeler"} <= set(_COMPRESS_TIMES):
        assert _COMPRESS_TIMES["huffman"] < _COMPRESS_TIMES["burrows-wheeler"]


@pytest.mark.parametrize("method", _METHODS)
def test_fig03_decompress_time(benchmark, method):
    codec = get_codec(method)
    data = _input_for(method)
    payload = codec.compress(data)
    restored = benchmark(codec.decompress, payload)
    assert restored == data
    _DECOMPRESS_TIMES[method] = benchmark.stats.stats.mean / len(data) * (1 << 20)
    print(f"\nfig03 decompress {method:16s} {_DECOMPRESS_TIMES[method]*1e3:8.2f} ms/MB")
    if set(_DECOMPRESS_TIMES) == set(_METHODS):
        # arithmetic decompression is the worst of all methods
        assert _DECOMPRESS_TIMES["arithmetic"] == max(_DECOMPRESS_TIMES.values())
