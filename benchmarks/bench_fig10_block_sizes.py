"""Figure 10 — compressed block sizes over the commercial replay.

Paper shape: 128 KB plateaus while uncompressed, dropping to well under
half once Lempel-Ziv/Burrows-Wheeler engage ("the size reduction of the
data is significant and clear").
"""

from conftest import print_series


def test_fig10_block_sizes(benchmark, fig8_result):
    series = benchmark(fig8_result.block_size_series)
    print_series("fig10 size of compressed blocks (bytes)", series, "{:>8.1f}s  {:>10d}")

    sizes = {m: [] for m in ("none", "lempel-ziv", "burrows-wheeler")}
    for record in fig8_result.records:
        if record.method in sizes:
            sizes[record.method].append(record.compressed_size)
    assert all(size == 128 * 1024 for size in sizes["none"])
    for method in ("lempel-ziv", "burrows-wheeler"):
        if sizes[method]:
            assert max(sizes[method]) < 128 * 1024 * 0.6
    assert fig8_result.overall_ratio < 0.7
