"""Placement break-even model — decision cost and the never-lose invariant.

The placement decision runs once per block on top of the bicriteria
candidate evaluation, so pricing the three arrangements and picking the
winner must stay microseconds-cheap.  The dominance half mirrors the CI
placement gate: because always-``producer`` is itself in the priced set,
the break-even ``auto`` choice can never model slower than it — on any
link class, per block or end-to-end.
"""

import math
import zlib

from repro.core.bicriteria import default_candidates, evaluate_candidates
from repro.core.placement import (
    choose_placement,
    evaluate_placements,
    raw_breakeven_seconds,
)
from repro.experiments.placement import (
    DEFAULT_INTERFERENCE,
    LINK_CLASSES,
    placement_breakdown,
)
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE
from repro.netsim.link import PAPER_LINKS

_BLOCK_SIZE = 128 * 1024


def _best_point(sending_time, sampled_ratio=0.35):
    points = evaluate_candidates(
        default_candidates(_BLOCK_SIZE),
        sending_time,
        calibration=DEFAULT_COSTS,
        cpu=SUN_FIRE,
        sample=sampled_ratio,
        base_block_size=_BLOCK_SIZE,
    )
    compressing = [p for p in points.values() if p.method != "none"]
    return min(compressing, key=lambda p: (p.total_seconds, p.space))


def _decide_once(sending_time, point):
    costs = evaluate_placements(
        point,
        sending_time,
        downstream_seconds=sending_time * 4.0,
        interference=DEFAULT_INTERFERENCE,
    )
    return choose_placement(costs)


def test_placement_decision_speed(benchmark, record_bench):
    """Pricing the three arrangements + picking one (the per-block cost)."""
    sending_time = _BLOCK_SIZE / PAPER_LINKS["100mbit"].throughput
    point = _best_point(sending_time)
    chosen = benchmark(_decide_once, sending_time, point)
    assert chosen.placement in ("producer", "raw", "consumer")
    assert chosen.total_seconds > 0
    record_bench(
        "placement.chosen_100mbit", hash(chosen.placement) % 2**32, unit="hash"
    )
    knee = raw_breakeven_seconds(point, interference=DEFAULT_INTERFERENCE)
    assert math.isfinite(knee) and knee > 0
    record_bench(
        "placement.raw_breakeven_100mbit_seconds", knee,
        unit="seconds", better="near", tolerance=0.10,
    )


def test_placement_auto_never_loses(record_bench):
    """Per link class, auto's modeled makespan <= always-producer's."""
    cells = placement_breakdown(
        total_blocks=6, block_size=_BLOCK_SIZE, interference=DEFAULT_INTERFERENCE
    )
    by_key = {(c.link, c.mode): c for c in cells}
    advantage = 0.0
    crcs = []
    for link in LINK_CLASSES:
        producer = by_key[(link, "producer")]
        consumer = by_key[(link, "consumer")]
        auto = by_key[(link, "auto")]
        assert auto.makespan <= producer.makespan * (1.0 + 1e-9), link
        assert auto.serial_seconds <= producer.serial_seconds * (1.0 + 1e-9), link
        # The relay contract: consumer-placed bytes equal producer-placed.
        assert consumer.downstream_crc32 == producer.downstream_crc32, link
        # The offload signature: nothing compresses at the producer.
        assert consumer.compress_seconds == 0.0, link
        advantage += producer.makespan - auto.makespan
        crcs.append(auto.downstream_crc32)
    record_bench(
        "placement.auto_advantage_seconds", advantage,
        unit="seconds", better="higher", tolerance=0.10,
    )
    record_bench(
        "placement.auto_downstream_crc32",
        zlib.crc32(",".join(str(c) for c in crcs).encode()),
        unit="crc32",
    )
