"""Ablation — sensitivity of the decision thresholds (0.83 / 3.48 / 48.78 %).

The paper: "these numbers can be tuned easily ... usually, the numbers
being used are very close to the constants detailed here."  The sweep
perturbs each constant and reports the end-to-end impact.
"""

from repro.experiments import ReplayConfig, sweep_thresholds

_CONFIG = ReplayConfig(
    block_count=0, production_interval=0.0, trace_offset=20.0, pipelined=True
)


def test_ablate_thresholds(benchmark):
    points = benchmark.pedantic(
        sweep_thresholds,
        kwargs={"config": _CONFIG, "total_bytes": 3 * 1024 * 1024},
        rounds=1,
        iterations=1,
    )
    print("\nablation: decision thresholds (3 MB commercial bulk)")
    print(f"{'variant':>28s} {'total s':>9s} {'ratio':>7s}  methods")
    for point in points:
        print(
            f"{point.value:>28s} {point.total_seconds:9.2f} "
            f"{point.overall_ratio:7.2f}  {point.method_counts}"
        )
    totals = {p.value: p.total_seconds for p in points}
    paper = totals["paper(0.83/3.48/0.4878)"]
    # The paper's constants are competitive with every perturbation tried.
    assert paper < min(totals.values()) * 1.4
