"""Fabric x chaos interop: compressed fan-out survives a hostile wire.

The fabric compresses once and hands every sink shared frames; this must
compose with the recovery stack — events forwarded from a fabric sink
through a :class:`~repro.middleware.chaos.ReliableEventLink` over a
seeded fault plan must arrive byte-exact and in order, identical to what
the serial compression path would have produced.
"""

from repro.core.engine import CodecExecutor
from repro.fabric.broker import EventFabric
from repro.middleware.chaos import ChaosWire, ReliableEventLink
from repro.middleware.events import Event
from repro.middleware.handlers import CompressionHandler
from repro.netsim.clock import VirtualClock
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE
from repro.netsim.faults import FaultPlan, FaultRule, RetryPolicy
from repro.netsim.link import PAPER_LINKS, SimulatedLink

EVENT_COUNT = 12
EVENT_SIZE = 2 * 1024


def modeled_executor():
    return CodecExecutor(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, expansion_fallback=True)


def make_events():
    return [
        Event(
            payload=(bytes([i]) + b"commercial exchange data ") * 80,
            channel_id="feed/chaos",
            sequence=i + 1,
            timestamp=float(i),
        )
        for i in range(EVENT_COUNT)
    ]


def hostile_link(seed=13):
    plan = FaultPlan(
        [
            FaultRule(kind="drop", probability=0.15),
            FaultRule(kind="corrupt", probability=0.15),
            FaultRule(kind="duplicate", probability=0.1),
        ],
        seed=seed,
        name="fabric-interop",
    )
    clock = VirtualClock()
    wire = ChaosWire(plan, link=SimulatedLink(PAPER_LINKS["100mbit"], seed=2), clock=clock)
    return wire


def test_reliable_recovery_through_fabric_is_byte_exact():
    events = make_events()
    # Serial reference: what each event looks like after the per-channel
    # CompressionHandler path.
    handler = CompressionHandler("lempel-ziv", executor=modeled_executor())
    expected = [handler(event) for event in events]

    delivered = []
    wire = hostile_link()
    reliable = ReliableEventLink(
        wire,
        delivered.append,
        retry=RetryPolicy(max_attempts=10, base_delay=0.01, max_delay=0.2, seed=13),
    )

    fabric = EventFabric(shards=4, executor=modeled_executor())
    fabric.subscribe(
        "feed/chaos", lambda event, _wire: reliable.send(event), method="lempel-ziv"
    )
    for event in events:
        fabric.publish("feed/chaos", event)
    missing = reliable.close()

    assert missing == []
    assert len(delivered) == EVENT_COUNT
    assert [e.sequence for e in delivered] == [e.sequence for e in events]
    # Byte-exact through compression, framing, faults, and recovery —
    # and identical to the serial compression path.
    assert [e.payload for e in delivered] == [e.payload for e in expected]
    for got, want in zip(delivered, expected):
        assert got.attributes == want.attributes
    # The plan really did bite (otherwise this test proves nothing).
    assert sum(wire.plan.counts.values()) > 0


def test_recovery_unchanged_by_cache_hits():
    # Publishing the same payloads twice serves the second round from the
    # block cache; the recovered stream must be identical either way.
    events = make_events()

    def run(rounds):
        delivered = []
        reliable = ReliableEventLink(
            hostile_link(),
            delivered.append,
            retry=RetryPolicy(max_attempts=10, base_delay=0.01, max_delay=0.2, seed=13),
        )
        fabric = EventFabric(shards=4, executor=modeled_executor())
        sequence = [0]

        def forward(event, _wire):
            sequence[0] += 1
            reliable.send(
                Event(
                    payload=event.payload,
                    attributes=dict(event.attributes),
                    channel_id=event.channel_id,
                    sequence=sequence[0],
                    timestamp=event.timestamp,
                )
            )

        fabric.subscribe("feed/chaos", forward, method="lempel-ziv")
        for _ in range(rounds):
            for event in events:
                fabric.publish("feed/chaos", event)
        assert reliable.close() == []
        return [e.payload for e in delivered], fabric.cache.hits

    once, hits_once = run(1)
    twice, hits_twice = run(2)
    assert hits_twice > hits_once
    assert twice == once + once
