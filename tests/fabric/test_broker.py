"""EventFabric: byte-exact fan-out, compress-once grouping, mode parity."""

import zlib

import pytest

from repro.core.engine import CodecExecutor
from repro.fabric.broker import EventFabric
from repro.middleware.events import Event
from repro.middleware.handlers import CompressionHandler
from repro.middleware.transport import WireFormat
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE

PAYLOAD = (b"configurable compression for event fabrics " * 64)[:2048]


def modeled_executor():
    return CodecExecutor(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, expansion_fallback=True)


class CountingExecutor(CodecExecutor):
    def __init__(self):
        super().__init__(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, expansion_fallback=True)
        self.runs = 0

    def compress(self, method, block, codec=None):
        self.runs += 1
        return super().compress(method, block, codec=codec)


def make_event(sequence=1, channel_id="feed/0", payload=PAYLOAD):
    return Event(
        payload=payload, channel_id=channel_id, sequence=sequence, timestamp=0.0
    )


def test_wire_bytes_identical_to_serial_compression_handler():
    # The hard fabric invariant: routing through the cache and the shard
    # grouping must produce *byte-identical* frames to the serial
    # per-subscriber CompressionHandler path.
    event = make_event()
    for method in ("huffman", "lempel-ziv", "burrows-wheeler"):
        serial = CompressionHandler(method, executor=modeled_executor())(event)
        expected = WireFormat.encode(serial)

        fabric = EventFabric(shards=4, executor=modeled_executor())
        wires = []
        fabric.subscribe(
            "feed/0", lambda e, w: wires.append(bytes(w)), method=method, wire=True
        )
        fabric.publish("feed/0", event)
        assert wires == [expected]
        assert zlib.crc32(wires[0]) == zlib.crc32(expected)


def test_passthrough_frame_identical_to_wireformat_encode():
    event = make_event()
    fabric = EventFabric(shards=2)
    wires = []
    fabric.subscribe("feed/0", lambda e, w: wires.append(bytes(w)), wire=True)
    fabric.publish("feed/0", event)
    assert wires == [WireFormat.encode(event)]


def test_compress_once_per_group():
    executor = CountingExecutor()
    fabric = EventFabric(shards=4, executor=executor)
    received = [0] * 6
    for i in range(6):
        fabric.subscribe(
            "feed/0",
            lambda e, w, i=i: received.__setitem__(i, received[i] + 1),
            method="huffman",
        )
    fabric.publish("feed/0", make_event())
    assert executor.runs == 1  # six subscribers, one codec run
    assert received == [1] * 6
    assert fabric.deliveries_total == 6
    assert fabric.compressions_total == 1
    assert fabric.fanout_ratio == 6.0


def test_distinct_configurations_get_distinct_runs():
    executor = CountingExecutor()
    fabric = EventFabric(shards=4, executor=executor)
    fabric.subscribe("feed/0", lambda e, w: None, method="huffman")
    fabric.subscribe("feed/0", lambda e, w: None, method="huffman", params={"t": 1})
    fabric.subscribe("feed/0", lambda e, w: None, method="lempel-ziv")
    fabric.subscribe("feed/0", lambda e, w: None)  # passthrough
    fabric.publish("feed/0", make_event())
    assert executor.runs == 3  # params variant is its own configuration
    assert fabric.compressions_total == 3


def test_cache_shared_across_channels_and_events():
    executor = CountingExecutor()
    fabric = EventFabric(shards=4, executor=executor)
    fabric.subscribe("feed/0", lambda e, w: None, method="huffman")
    fabric.subscribe("feed/1", lambda e, w: None, method="huffman")
    event = make_event()
    fabric.publish("feed/0", event)
    fabric.publish("feed/1", make_event(channel_id="feed/1"))
    fabric.publish("feed/0", make_event(sequence=2))
    # Same payload bytes everywhere: one run total, the cache serves the rest.
    assert executor.runs == 1
    assert fabric.cache.hits == 2


def test_one_wire_frame_shared_per_group():
    fabric = EventFabric(shards=2)
    views = []
    fabric.subscribe("feed/0", lambda e, w: views.append(w), method="huffman", wire=True)
    fabric.subscribe("feed/0", lambda e, w: views.append(w), method="huffman", wire=True)
    fabric.publish("feed/0", make_event())
    assert len(views) == 2
    assert views[0].obj is views[1].obj  # one encode, shared memoryview


def test_threads_mode_matches_inline_byte_for_byte():
    event_count = 8
    results = {}
    for mode in ("inline", "threads"):
        fabric = EventFabric(shards=4, executor=modeled_executor(), mode=mode)
        wires = {"a": [], "b": []}
        fabric.subscribe(
            "feed/0", lambda e, w: wires["a"].append(bytes(w)),
            method="huffman", wire=True,
        )
        fabric.subscribe(
            "feed/1", lambda e, w: wires["b"].append(bytes(w)),
            method="lempel-ziv", wire=True,
        )
        for i in range(event_count):
            payload = bytes([i]) * 1024
            fabric.publish("feed/0", make_event(i + 1, "feed/0", payload))
            fabric.publish("feed/1", make_event(i + 1, "feed/1", payload))
        assert fabric.flush(timeout=10.0)
        fabric.close()
        results[mode] = wires
    # Per-channel FIFO order and bytes are identical across modes.
    assert results["inline"] == results["threads"]


def test_threads_mode_isolates_subscriber_errors():
    fabric = EventFabric(shards=2, mode="threads")
    delivered = []

    def bad(event, wire):
        raise RuntimeError("sink exploded")

    fabric.subscribe("feed/0", bad)
    fabric.subscribe("feed/0", lambda e, w: delivered.append(e.sequence))
    try:
        for i in range(3):
            fabric.publish("feed/0", make_event(i + 1))
        assert fabric.flush(timeout=10.0)
    finally:
        fabric.close()
    # A sink exception poisons neither its peers nor the shard loop:
    # every event still reaches the healthy subscriber, in order.
    assert delivered == [1, 2, 3]
    assert fabric.subscriber_errors == 3


def test_cancel_stops_delivery():
    fabric = EventFabric(shards=2)
    got = []
    subscription = fabric.subscribe("feed/0", lambda e, w: got.append(e.sequence))
    fabric.publish("feed/0", make_event(1))
    subscription.cancel()
    subscription.cancel()  # idempotent
    fabric.publish("feed/0", make_event(2))
    assert got == [1]
    assert fabric.subscriber_count("feed/0") == 0


def test_defer_runs_on_owning_shard():
    fabric = EventFabric(shards=4)
    ran = []
    fabric.defer("feed/0", lambda: ran.append("x"))
    assert ran == ["x"]


def test_submit_channel_routes_channel_dispatch():
    from repro.middleware.channels import EventChannel

    fabric = EventFabric(shards=4)
    channel = EventChannel("feed/0")
    got = []
    channel.subscribe(got.append)
    channel.bind_fabric(fabric)
    channel.submit(make_event())
    assert [e.sequence for e in got] == [1]
    channel.unbind_fabric()
    channel.submit(make_event())
    assert [e.sequence for e in got] == [1, 2]


def test_closed_fabric_rejects_publishes():
    fabric = EventFabric(shards=2, mode="threads")
    fabric.close()
    fabric.close()  # idempotent
    with pytest.raises(RuntimeError):
        fabric.publish("feed/0", make_event())


def test_shard_events_follow_stable_assignment():
    fabric = EventFabric(shards=4)
    fabric.subscribe("feed/0", lambda e, w: None)
    fabric.publish("feed/0", make_event())
    expected = [0, 0, 0, 0]
    expected[fabric.shard_of("feed/0")] = 1
    assert fabric.shard_events == expected


def test_expansion_guard_falls_back_through_cache():
    import os

    incompressible = os.urandom(512)
    fabric = EventFabric(shards=2, executor=modeled_executor())
    got = []
    fabric.subscribe("feed/0", lambda e, w: got.append(e), method="huffman")
    fabric.publish("feed/0", make_event(payload=incompressible))
    (event,) = got
    # Random bytes expand under huffman: the guard ships the original
    # payload and the method attribute stays truthful.
    assert event.payload == incompressible
    assert event.attributes["compression.method"] == "none"
