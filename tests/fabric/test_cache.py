"""BlockCache: canonical keying, LRU/byte bounds, zero-copy sharing."""

import pytest

from repro.core.engine import CodecExecutor
from repro.fabric.cache import BlockCache
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE


class CountingExecutor(CodecExecutor):
    """Counts actual codec runs (the thing the cache exists to avoid)."""

    def __init__(self):
        super().__init__(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, expansion_fallback=True)
        self.runs = 0

    def compress(self, method, block, codec=None):
        self.runs += 1
        return super().compress(method, block, codec=codec)


PAYLOAD = (b"the quick brown fox jumps over the lazy dog, " * 40)[:1024]


def test_hit_replays_execution_without_codec_run():
    executor = CountingExecutor()
    cache = BlockCache()
    first, hit1 = cache.execute(executor, "huffman", PAYLOAD)
    second, hit2 = cache.execute(executor, "huffman", PAYLOAD)
    assert (hit1, hit2) == (False, True)
    assert executor.runs == 1
    assert second.payload == first.payload
    assert second.seconds == first.seconds
    assert second.method == first.method
    assert cache.hits == 1 and cache.misses == 1


def test_hit_shares_the_same_bytes_object():
    # Zero-copy: every hit serves the one immutable bytes object, so a
    # thousand subscribers fan out without a thousand copies.
    executor = CountingExecutor()
    cache = BlockCache()
    first, _ = cache.execute(executor, "huffman", PAYLOAD)
    second, _ = cache.execute(executor, "huffman", PAYLOAD)
    assert second.payload is first.payload


def test_param_spellings_share_one_entry():
    executor = CountingExecutor()
    cache = BlockCache()
    cache.execute(executor, "huffman", PAYLOAD, {"level": 6, "window": 32768})
    cache.execute(executor, "huffman", PAYLOAD, {"window": 32768, "level": 6})
    cache.execute(executor, "huffman", PAYLOAD, {"level": 6.0, "window": 32768.0})
    assert executor.runs == 1
    assert len(cache) == 1
    assert cache.hits == 2


def test_distinct_params_are_distinct_entries():
    executor = CountingExecutor()
    cache = BlockCache()
    cache.execute(executor, "huffman", PAYLOAD, {"level": 6})
    cache.execute(executor, "huffman", PAYLOAD, {"level": 9})
    cache.execute(executor, "huffman", PAYLOAD, None)
    assert executor.runs == 3
    assert len(cache) == 3


def test_method_none_is_never_cached():
    executor = CountingExecutor()
    cache = BlockCache()
    _, hit1 = cache.execute(executor, "none", PAYLOAD)
    _, hit2 = cache.execute(executor, "none", PAYLOAD)
    assert (hit1, hit2) == (False, False)
    assert len(cache) == 0


def test_entry_bound_evicts_strict_lru():
    executor = CountingExecutor()
    cache = BlockCache(max_entries=4)
    payloads = [bytes([i]) * 512 for i in range(8)]
    for payload in payloads:
        cache.execute(executor, "huffman", payload)
    assert len(cache) == 4
    assert cache.evictions == 4
    # The four oldest are gone (a re-execute runs the codec again), the
    # four newest are hits.
    runs_before = executor.runs
    for payload in payloads[4:]:
        _, hit = cache.execute(executor, "huffman", payload)
        assert hit
    assert executor.runs == runs_before
    _, hit = cache.execute(executor, "huffman", payloads[0])
    assert not hit


def test_recency_refresh_protects_hot_entries():
    executor = CountingExecutor()
    cache = BlockCache(max_entries=2)
    hot, warm, cold = (bytes([i]) * 512 for i in range(3))
    cache.execute(executor, "huffman", hot)
    cache.execute(executor, "huffman", warm)
    cache.execute(executor, "huffman", hot)  # refresh: warm is now LRU
    cache.execute(executor, "huffman", cold)  # evicts warm, not hot
    _, hit = cache.execute(executor, "huffman", hot)
    assert hit


def test_byte_budget_bound_holds_under_pressure():
    executor = CountingExecutor()
    cache = BlockCache(max_entries=1024, max_bytes=4096)
    for i in range(32):
        cache.execute(executor, "huffman", bytes([i]) * 2048)
    assert cache.bytes_held <= 4096
    assert cache.evictions > 0
    assert len(cache) >= 1


def test_oversized_block_served_uncached():
    executor = CountingExecutor()
    cache = BlockCache(max_entries=8, max_bytes=64)
    execution, hit = cache.execute(executor, "huffman", PAYLOAD)
    assert not hit
    assert execution.payload  # still served correctly
    assert len(cache) == 0  # but one giant block never flushed the cache
    assert cache.misses == 1


def test_stats_snapshot():
    executor = CountingExecutor()
    cache = BlockCache(max_entries=16)
    cache.execute(executor, "huffman", PAYLOAD)
    cache.execute(executor, "huffman", PAYLOAD)
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["entries"] == 1
    assert stats["hit_rate"] == pytest.approx(0.5)
    cache.clear()
    assert len(cache) == 0
    assert cache.bytes_held == 0


def test_bounds_must_be_positive():
    with pytest.raises(ValueError):
        BlockCache(max_entries=0)
    with pytest.raises(ValueError):
        BlockCache(max_bytes=0)


def test_cached_block_view_is_one_shared_readonly_memoryview():
    # One view per cached block, created lazily and handed to every
    # consumer — fan-out of a cached block allocates nothing per
    # subscriber (the fanout bench asserts the same identity end to end).
    executor = CountingExecutor()
    cache = BlockCache()
    cache.execute(executor, "huffman", PAYLOAD)
    (block,) = cache._entries.values()
    first = block.view
    second = block.view
    assert first is second
    assert first.readonly
    assert first.obj is block.payload
    assert bytes(first) == block.payload
