"""Stable CRC32 channel sharding: deterministic, balanced, churn-proof."""

import zlib

from repro.fabric.sharding import shard_assignments, shard_index, shard_load


def test_shard_index_matches_crc32():
    for channel_id in ("feed/0", "alpha", "a/very/long/channel/name"):
        expected = zlib.crc32(channel_id.encode()) % 4
        assert shard_index(channel_id, 4) == expected


def test_shard_index_pinned_values():
    # Literal pins: CRC32 is stable across platforms and processes, so
    # these only change if someone swaps the hash — which would silently
    # remap every channel in a live deployment.  Fail loudly instead.
    assert shard_index("feed/0", 4) == 1
    assert shard_index("feed/1", 4) == 3
    assert shard_index("alpha", 8) == 2
    assert shard_index("beta", 8) == 3


def test_shard_index_in_range():
    for count in (1, 2, 3, 7, 16):
        for i in range(200):
            assert 0 <= shard_index(f"chan-{i}", count) < count


def test_single_shard_owns_everything():
    assert all(shard_index(f"c{i}", 1) == 0 for i in range(50))


def test_assignment_stable_under_churn():
    # Adding or removing other channels must never move an existing one:
    # the assignment of a channel depends only on its own id.
    base = [f"feed/{i}" for i in range(64)]
    before = shard_assignments(base, 4)
    churned = base + [f"late/{i}" for i in range(100)]
    after = shard_assignments(churned, 4)
    for channel_id in base:
        assert after[channel_id] == before[channel_id]
    survivors = base[::3]
    shrunk = shard_assignments(survivors, 4)
    for channel_id in survivors:
        assert shrunk[channel_id] == before[channel_id]


def test_shard_load_counts_and_balance():
    channels = [f"feed/{i}" for i in range(256)]
    load = shard_load(channels, 4)
    assert sum(load) == 256
    assert len(load) == 4
    # CRC32 spreads uniformly enough that no shard hogs the population.
    assert min(load) > 0
    assert max(load) / min(load) <= 2.0
