"""Fan-out load generator: byte-identity, amortization, determinism."""

import pytest

from repro.fabric.loadgen import DEFAULT_SPECS, FanoutConfig, run_fanout
from repro.obs.metrics import MetricsRegistry

#: Scaled-down scenario for unit-test wall time; the bench gate runs the
#: full 1024-subscriber defaults.
SMALL = FanoutConfig(subscribers=512, channels=32, events=8)


@pytest.fixture(scope="module")
def result():
    return run_fanout(SMALL)


def test_fanout_is_byte_identical_to_serial_path(result):
    assert result.crc_ok


def test_cache_amortizes_codec_runs(result):
    assert result.cache_hit_rate >= 0.90
    # Compress-once: codec runs bounded by payloads x configurations,
    # not by deliveries.
    assert result.fabric_compressions <= SMALL.events * len(SMALL.specs)
    assert result.baseline_compressions == result.deliveries
    assert result.fabric_compressions < result.baseline_compressions / 10


def test_throughput_beats_baseline(result):
    assert result.speedup >= 3.0
    assert result.fabric_seconds < result.baseline_seconds


def test_population_accounting(result):
    assert result.subscribers == SMALL.subscribers
    assert 0 < result.channels_used <= SMALL.channels
    assert result.events_published == result.channels_used * SMALL.events
    assert result.deliveries == SMALL.subscribers * SMALL.events
    assert result.fanout_ratio == pytest.approx(
        result.deliveries / result.events_published
    )
    assert sum(result.shard_events) == result.events_published


def test_run_is_deterministic():
    a = run_fanout(SMALL)
    b = run_fanout(SMALL)
    assert a.wire_crc32 == b.wire_crc32
    assert a.fabric_seconds == b.fabric_seconds
    assert a.baseline_seconds == b.baseline_seconds
    assert a.cache_hits == b.cache_hits
    assert a.shard_events == b.shard_events


def test_seed_changes_the_population():
    a = run_fanout(SMALL)
    b = run_fanout(FanoutConfig(subscribers=512, channels=32, events=8, seed=7))
    assert a.wire_crc32 != b.wire_crc32


def test_metrics_registry_receives_fabric_vocabulary():
    registry = MetricsRegistry()
    run_fanout(FanoutConfig(subscribers=64, channels=8, events=4), registry=registry)
    dump = registry.to_json()
    assert "repro_fabric_cache_hits_total" in dump
    assert "repro_fabric_cache_misses_total" in dump
    assert "repro_fabric_deliveries_total" in dump


def test_default_specs_are_bounded():
    # The acceptance scenario: ≤ 8 distinct (method, params) choices.
    assert len(DEFAULT_SPECS) == 8


def test_config_validation():
    with pytest.raises(ValueError):
        FanoutConfig(subscribers=0)
    with pytest.raises(ValueError):
        FanoutConfig(specs=())


class TestBatchedFanout:
    """Jumbo batching: same wire bytes, fewer socket frames."""

    BATCHED = FanoutConfig(
        subscribers=128, channels=16, events=8, batch=True, batch_frames=8
    )
    PLAIN = FanoutConfig(subscribers=128, channels=16, events=8)

    @pytest.fixture(scope="class")
    def batched(self):
        return run_fanout(self.BATCHED)

    def test_batched_wire_is_byte_identical_to_unbatched(self, batched):
        # Members ride verbatim inside the jumbo payload, so the CRC
        # chain over sliced members equals the unbatched chain exactly.
        plain = run_fanout(self.PLAIN)
        assert batched.wire_crc32 == plain.wire_crc32
        assert batched.crc_ok and plain.crc_ok

    def test_batches_actually_happened(self, batched):
        assert batched.batches_emitted > 0
        assert batched.batched_frames == batched.deliveries
        # Coalescing really coalesced: far fewer flushes than deliveries.
        assert batched.batches_emitted < batched.deliveries / 2

    def test_unbatched_run_reports_no_batches(self):
        plain = run_fanout(FanoutConfig(subscribers=64, channels=8, events=4))
        assert plain.batches_emitted == 0
        assert plain.batched_frames == 0

    def test_batch_metrics_recorded(self):
        registry = MetricsRegistry()
        run_fanout(
            FanoutConfig(subscribers=64, channels=8, events=4, batch=True),
            registry=registry,
        )
        names = registry.names()
        assert "repro_batch_frames_total" in names
        assert "repro_batch_fill_ratio" in names
