"""Unit tests for jumbo-frame batching (repro.fabric.batching)."""

import pytest

from repro.compression.framing import (
    decode_frame,
    encode_frame,
    is_jumbo_frame,
    unpack_jumbo_frame,
)
from repro.fabric.batching import BatchConfig, FlushedBatch, FrameBatcher


def frame(i, size=10):
    return bytes(encode_frame(b'{"i": %d}' % i, bytes([i % 256]) * size))


class TestThresholds:
    def test_frame_count_trips_a_flush(self):
        batcher = FrameBatcher(BatchConfig(max_frames=3, max_bytes=1 << 20))
        assert batcher.add(frame(0)) is None
        assert batcher.add(frame(1)) is None
        flushed = batcher.add(frame(2))
        assert flushed is not None
        assert flushed.reason == "frames"
        assert flushed.frames == 3
        assert batcher.pending_frames == 0

    def test_byte_budget_trips_a_flush(self):
        big = frame(0, size=100)
        batcher = FrameBatcher(BatchConfig(max_frames=100, max_bytes=len(big) + 1))
        assert batcher.add(big) is None
        flushed = batcher.add(frame(1, size=5))
        assert flushed is not None
        assert flushed.reason == "bytes"
        assert flushed.frames == 2

    def test_clock_free_batcher_never_deadline_flushes(self):
        batcher = FrameBatcher(BatchConfig(max_frames=100, linger_seconds=0.0))
        for i in range(10):
            assert batcher.add(frame(i)) is None  # now=None: thresholds only
        assert batcher.pending_frames == 10


class TestDeadline:
    def test_first_member_arms_the_deadline(self):
        batcher = FrameBatcher(BatchConfig(max_frames=100, linger_seconds=0.5))
        batcher.add(frame(0), now=10.0)
        assert not batcher.due(10.4)
        assert batcher.due(10.5)

    def test_deadline_trips_on_add(self):
        batcher = FrameBatcher(BatchConfig(max_frames=100, linger_seconds=0.5))
        assert batcher.add(frame(0), now=10.0) is None
        flushed = batcher.add(frame(1), now=10.6)
        assert flushed is not None
        assert flushed.reason == "deadline"

    def test_deadline_rearms_after_a_flush(self):
        batcher = FrameBatcher(BatchConfig(max_frames=2, linger_seconds=0.5))
        batcher.add(frame(0), now=10.0)
        batcher.add(frame(1), now=10.1)  # frames threshold flushes
        assert not batcher.due(11.0)  # empty: nothing owed
        batcher.add(frame(2), now=20.0)
        assert not batcher.due(20.4)
        assert batcher.due(20.5)


class TestFlushShape:
    def test_multi_member_flush_is_a_jumbo_frame(self):
        batcher = FrameBatcher(BatchConfig(max_frames=3))
        batcher.add(frame(0))
        batcher.add(frame(1))
        flushed = batcher.add(frame(2))
        parsed, _ = decode_frame(flushed.wire)
        assert is_jumbo_frame(parsed)
        members = unpack_jumbo_frame(parsed)
        assert [m.payload_bytes for m in members] == [
            decode_frame(frame(i))[0].payload_bytes for i in range(3)
        ]

    def test_single_member_flush_is_the_bare_frame(self):
        batcher = FrameBatcher()
        lone = frame(7)
        batcher.add(lone)
        flushed = batcher.flush()
        assert flushed.wire is lone  # no jumbo envelope around one frame
        parsed, _ = decode_frame(flushed.wire)
        assert not is_jumbo_frame(parsed)

    def test_drain_flushes_everything_pending(self):
        batcher = FrameBatcher(BatchConfig(max_frames=100))
        for i in range(5):
            batcher.add(frame(i))
        flushed = batcher.flush()
        assert flushed.reason == "drain"
        assert flushed.frames == 5
        assert batcher.pending_frames == 0
        assert batcher.pending_bytes == 0

    def test_flush_when_empty_returns_none(self):
        assert FrameBatcher().flush() is None

    def test_counters_accumulate_across_flushes(self):
        batcher = FrameBatcher(BatchConfig(max_frames=2))
        for i in range(4):
            batcher.add(frame(i))
        assert batcher.batches_emitted == 2
        assert batcher.frames_batched == 4
        assert batcher.bytes_batched == sum(len(frame(i)) for i in range(4))

    def test_fill_ratio_bounded_by_one(self):
        config = BatchConfig(max_frames=100, max_bytes=50)
        batch = FlushedBatch(wire=b"", frames=2, member_bytes=40, reason="drain")
        assert batch.fill_ratio(config) == pytest.approx(0.8)
        overfull = FlushedBatch(wire=b"", frames=2, member_bytes=90, reason="bytes")
        assert overfull.fill_ratio(config) == 1.0


class TestConfigValidation:
    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            BatchConfig(max_frames=0)
        with pytest.raises(ValueError):
            BatchConfig(max_bytes=0)
        with pytest.raises(ValueError):
            BatchConfig(linger_seconds=-0.1)
