"""Shared fixtures: representative datasets and codec instances."""

import random

import pytest

from repro.data.commercial import CommercialDataGenerator
from repro.data.molecular import MolecularDataGenerator
from tests.strategies import SUITE_SEED


@pytest.fixture(autouse=True)
def pin_rng():
    """Reseed ambient RNGs before every test (the one seeding point).

    Mirrors ``benchmarks/conftest.py``: generators under test take
    explicit seeds, but pinning the global :mod:`random` / numpy
    generators on top keeps any test that forgets to pass one
    deterministic run-to-run.
    """
    random.seed(SUITE_SEED)
    try:
        import numpy

        numpy.random.seed(SUITE_SEED % (2**32))
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        pass
    yield


@pytest.fixture(scope="session")
def commercial_block() -> bytes:
    """~64 KB of OIS XML (string-repetitive, medium entropy)."""
    return CommercialDataGenerator(seed=99).xml_block(64 * 1024)


@pytest.fixture(scope="session")
def molecular_generator() -> MolecularDataGenerator:
    return MolecularDataGenerator(atom_count=1024, seed=7)


@pytest.fixture(scope="session")
def random_block() -> bytes:
    """16 KB of seeded pseudo-random bytes (incompressible)."""
    rng = random.Random(1234)
    return bytes(rng.getrandbits(8) for _ in range(16 * 1024))


@pytest.fixture(scope="session")
def lowentropy_block() -> bytes:
    """32 KB drawn from a 4-symbol skewed alphabet (low entropy)."""
    rng = random.Random(5)
    return bytes(rng.choices([65, 66, 67, 68], weights=[70, 20, 7, 3], k=32 * 1024))


@pytest.fixture(scope="session")
def corpus(commercial_block, random_block, lowentropy_block) -> dict:
    """Named byte corpora spanning the paper's data-characteristic classes."""
    return {
        "empty": b"",
        "single": b"x",
        "tiny": b"abcabc",
        "commercial": commercial_block,
        "random": random_block,
        "lowentropy": lowentropy_block,
        "zeros": b"\x00" * 20000,
        "alternating": b"ab" * 10000,
        "allbytes": bytes(range(256)) * 64,
    }
